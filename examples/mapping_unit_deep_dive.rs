//! Deep dive into the Mapping Unit: shows each ranking-based mapping
//! operation producing bit-identical results to the golden CPU
//! algorithms, with hardware cycle counts.
//!
//! ```sh
//! cargo run --release --example mapping_unit_deep_dive
//! ```

use pointacc::Mpu;
use pointacc_data::Dataset;
use pointacc_geom::golden;

fn main() {
    let mpu = Mpu::new(64);
    let pts = Dataset::ModelNet40.generate(5, 2048);

    // Farthest point sampling.
    let (fps_mpu, fps_stats) = mpu.farthest_point_sampling(&pts, 512);
    let fps_gold = golden::farthest_point_sampling(&pts, 512);
    assert_eq!(fps_mpu, fps_gold);
    println!("FPS 2048->512:      {:>9} cycles (bit-identical to golden)", fps_stats.cycles);

    // Ball query around the sampled centroids.
    let centroids = pts.select(&fps_mpu);
    let (bq_mpu, bq_stats) = mpu.ball_query_padded(&pts, &centroids, 0.2 * 0.2, 32);
    let bq_gold = golden::ball_query_padded(&pts, &centroids, 0.2 * 0.2, 32);
    assert_eq!(bq_mpu, bq_gold);
    println!("BallQuery 512x32:   {:>9} cycles (bit-identical to golden)", bq_stats.cycles);

    // Kernel mapping on the voxelized cloud.
    let (cloud, _) = pts.voxelize(0.02);
    let (maps_mpu, km_stats) = mpu.kernel_map(&cloud, &cloud, 3);
    let maps_gold = golden::kernel_map_hash(&cloud, &cloud, 3);
    assert_eq!(maps_mpu.canonicalized(), maps_gold.canonicalized());
    println!(
        "KernelMap 3^3 on {} voxels: {:>9} cycles, {} maps (matches hash table)",
        cloud.len(),
        km_stats.cycles,
        maps_mpu.len()
    );

    // Quantization (output cloud construction).
    let (down, q_stats) = mpu.quantize(&cloud, 2);
    let (down_gold, _) = cloud.downsample(2);
    assert_eq!(down, down_gold);
    println!(
        "Quantize {} -> {}:  {:>9} cycles (matches golden downsample)",
        cloud.len(),
        down.len(),
        q_stats.cycles
    );
    println!("\nall four mapping operations ran on ONE ranking-based kernel (paper Fig. 8).");
}
