//! Deep dive into the Mapping Unit: shows each ranking-based mapping
//! operation producing bit-identical results to the golden CPU
//! algorithms, with hardware cycle counts. The four independent
//! operations verify concurrently through the harness.
//!
//! ```sh
//! cargo run --release --example mapping_unit_deep_dive
//! ```

use pointacc::Mpu;
use pointacc_bench::harness::parallel_map;
use pointacc_data::Dataset;
use pointacc_geom::golden;

fn main() {
    let mpu = Mpu::new(64);
    let pts = Dataset::ModelNet40.generate(5, 2048);
    let (cloud, _) = pts.voxelize(0.02);

    // FPS runs once; the ball-query check reuses its centroids.
    let (fps_mpu, fps_stats) = mpu.farthest_point_sampling(&pts, 512);
    let centroids = pts.select(&fps_mpu);

    type Check<'a> = Box<dyn Fn() -> String + Send + Sync + 'a>;
    let checks: Vec<Check> = vec![
        Box::new(|| {
            assert_eq!(fps_mpu, golden::farthest_point_sampling(&pts, 512));
            format!("FPS 2048->512:      {:>9} cycles (bit-identical to golden)", fps_stats.cycles)
        }),
        Box::new(|| {
            let (bq_mpu, stats) = mpu.ball_query_padded(&pts, &centroids, 0.2 * 0.2, 32);
            assert_eq!(bq_mpu, golden::ball_query_padded(&pts, &centroids, 0.2 * 0.2, 32));
            format!("BallQuery 512x32:   {:>9} cycles (bit-identical to golden)", stats.cycles)
        }),
        Box::new(|| {
            let (maps_mpu, stats) = mpu.kernel_map(&cloud, &cloud, 3);
            let maps_gold = golden::kernel_map_hash(&cloud, &cloud, 3);
            assert_eq!(maps_mpu.canonicalized(), maps_gold.canonicalized());
            format!(
                "KernelMap 3^3 on {} voxels: {:>9} cycles, {} maps (matches hash table)",
                cloud.len(),
                stats.cycles,
                maps_mpu.len()
            )
        }),
        Box::new(|| {
            let (down, stats) = mpu.quantize(&cloud, 2);
            let (down_gold, _) = cloud.downsample(2);
            assert_eq!(down, down_gold);
            format!(
                "Quantize {} -> {}:  {:>9} cycles (matches golden downsample)",
                cloud.len(),
                down.len(),
                stats.cycles
            )
        }),
    ];

    for line in parallel_map(&checks, |check| check()) {
        println!("{line}");
    }
    println!("\nall four mapping operations ran on ONE ranking-based kernel (paper Fig. 8).");
}
