//! Design-space exploration with the accelerator model: sweep systolic
//! array sizes, DRAM technologies and cache policies on
//! Mini-MinkowskiUNet, reproducing the style of the paper's ablations.
//! Every sweep evaluates its candidate configurations concurrently
//! through the harness.
//!
//! ```sh
//! cargo run --release --example accelerator_design_space
//! ```

use pointacc::{Accelerator, CachePolicy, Engine, PointAccConfig, RunOptions};
use pointacc_bench::harness::parallel_map;
use pointacc_data::Dataset;
use pointacc_nn::{zoo, ExecMode, Executor};
use pointacc_sim::DramKind;

fn main() {
    let pts = Dataset::S3dis.generate(11, 12_000);
    let trace = Executor::new(ExecMode::TraceOnly, 11).run(&zoo::mini_minkunet(), &pts).trace;
    println!("workload: Mini-MinkowskiUNet, {:.2} GMACs\n", trace.total_macs() as f64 / 1e9);

    println!("-- systolic array size (HBM2) --");
    let pe_sizes = [16usize, 32, 64, 128];
    let accs: Vec<Accelerator> = pe_sizes
        .iter()
        .map(|&pe| {
            let mut cfg = PointAccConfig::full();
            cfg.pe_rows = pe;
            cfg.pe_cols = pe;
            cfg.name = format!("{pe}x{pe}");
            Accelerator::new(cfg)
        })
        .collect();
    let reports = parallel_map(&accs, |acc| acc.run(&trace));
    for (pe, r) in pe_sizes.iter().zip(&reports) {
        println!(
            "  {pe:>3}x{pe:<3} {:>8.3} ms  {:>7.2} mJ  util {:>5.1}%",
            r.latency_ms(),
            r.energy().to_millijoules(),
            r.mean_utilization((pe * pe) as u64) * 100.0
        );
    }

    println!("\n-- DRAM technology (64x64 PEs) --");
    let drams = [DramKind::Hbm2, DramKind::Ddr4_2133, DramKind::Lpddr3_1600];
    let accs: Vec<Accelerator> = drams
        .iter()
        .map(|&dram| {
            let mut cfg = PointAccConfig::full();
            cfg.dram = dram;
            Accelerator::new(cfg)
        })
        .collect();
    let reports = parallel_map(&accs, |acc| acc.evaluate(&trace));
    for (dram, r) in drams.iter().zip(&reports) {
        println!(
            "  {:<12} {:>8.3} ms  {:>7.2} mJ",
            dram.name(),
            r.latency_ms(),
            r.energy.to_millijoules()
        );
    }

    println!("\n-- cache policy (edge config) --");
    let acc = Accelerator::new(PointAccConfig::edge());
    let policies = [
        ("no cache", CachePolicy::Off),
        ("fixed 8", CachePolicy::Fixed(8)),
        ("fixed 32", CachePolicy::Fixed(32)),
        ("searched", CachePolicy::Search),
    ];
    let reports = parallel_map(&policies, |&(_, policy)| {
        acc.run_with(&trace, RunOptions { cache: policy, ..Default::default() })
    });
    for ((name, _), r) in policies.iter().zip(&reports) {
        println!("  {:<10} {:>8.3} ms  DRAM {:>8} KB", name, r.latency_ms(), r.dram_bytes() / 1024);
    }
}
