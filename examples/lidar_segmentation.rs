//! LiDAR semantic segmentation scenario: a synthetic SemanticKITTI sweep
//! through MinkowskiUNet, comparing PointAcc against GPU/CPU baselines —
//! the workload of the paper's headline result.
//!
//! ```sh
//! cargo run --release --example lidar_segmentation
//! ```

use pointacc::{Accelerator, PointAccConfig};
use pointacc_baselines::Platform;
use pointacc_data::Dataset;
use pointacc_nn::{zoo, ExecMode, Executor};

fn main() {
    let n_points = 40_000;
    let sweep = Dataset::SemanticKitti.generate(3, n_points);
    let (voxels, _) = sweep.voxelize(0.1);
    println!(
        "LiDAR sweep: {} points -> {} voxels (density {:.5}%)",
        sweep.len(),
        voxels.len(),
        voxels.density() * 100.0
    );

    let net = zoo::minknet_outdoor();
    let trace = Executor::new(ExecMode::TraceOnly, 3).run(&net, &sweep).trace;
    println!(
        "MinkowskiUNet: {} layers, {:.1} GMACs, {:.1} M maps",
        trace.layers.len(),
        trace.total_macs() as f64 / 1e9,
        trace.total_maps() as f64 / 1e6
    );

    let acc = Accelerator::new(PointAccConfig::full()).run(&trace);
    println!(
        "\nPointAcc:      {:>8.2} ms  {:>8.1} mJ",
        acc.latency_ms(),
        acc.energy().to_millijoules()
    );
    for p in [Platform::rtx_2080ti(), Platform::xeon_6130()] {
        let r = p.run(&trace);
        println!(
            "{:<14} {:>8.2} ms  {:>8.1} mJ  ({:.1}x slower, {:.0}x more energy)",
            r.platform,
            r.total.to_millis(),
            r.energy_j * 1e3,
            r.total.to_millis() / acc.latency_ms(),
            r.energy_j * 1e3 / acc.energy().to_millijoules()
        );
    }

    // Per-level view: the five heaviest layers.
    let mut heavy: Vec<_> = acc.layers.iter().collect();
    heavy.sort_by_key(|l| std::cmp::Reverse(l.latency.get()));
    println!("\nheaviest layers:");
    for l in heavy.iter().take(5) {
        println!(
            "  {:<16} {:>10} cyc  dram {:>8} KB  cache block {:?}",
            l.name,
            l.latency.get(),
            l.dram_bytes / 1024,
            l.cache_block_points
        );
    }
}
