//! LiDAR semantic segmentation scenario: a synthetic SemanticKITTI sweep
//! through MinkowskiUNet, comparing PointAcc against GPU/CPU baselines
//! through the unified engine surface — the workload of the paper's
//! headline result. The three engines evaluate concurrently.
//!
//! ```sh
//! cargo run --release --example lidar_segmentation
//! ```

use pointacc::{Accelerator, Engine, PointAccConfig};
use pointacc_baselines::Platform;
use pointacc_bench::harness::parallel_map;
use pointacc_data::Dataset;
use pointacc_nn::{zoo, ExecMode, Executor};

fn main() {
    let n_points = 40_000;
    let sweep = Dataset::SemanticKitti.generate(3, n_points);
    let (voxels, _) = sweep.voxelize(0.1);
    println!(
        "LiDAR sweep: {} points -> {} voxels (density {:.5}%)",
        sweep.len(),
        voxels.len(),
        voxels.density() * 100.0
    );

    let net = zoo::minknet_outdoor();
    let trace = Executor::new(ExecMode::TraceOnly, 3).run(&net, &sweep).trace;
    println!(
        "MinkowskiUNet: {} layers, {:.1} GMACs, {:.1} M maps",
        trace.layers.len(),
        trace.total_macs() as f64 / 1e9,
        trace.total_maps() as f64 / 1e6
    );

    // The accelerator replays once, natively (we also want its per-layer
    // detail below); the platform models evaluate concurrently.
    let acc = Accelerator::new(PointAccConfig::full());
    let detail = acc.run(&trace);
    let gpu = Platform::rtx_2080ti();
    let cpu = Platform::xeon_6130();
    let engines: Vec<&dyn Engine> = vec![&gpu, &cpu];
    let mut reports = vec![detail.to_engine_report()];
    reports.extend(parallel_map(&engines, |e| e.evaluate(&trace)));

    let ours = &reports[0];
    println!(
        "\n{:<14} {:>8.2} ms  {:>8.1} mJ",
        ours.engine,
        ours.latency_ms(),
        ours.energy.to_millijoules()
    );
    for r in &reports[1..] {
        println!(
            "{:<14} {:>8.2} ms  {:>8.1} mJ  ({:.1}x slower, {:.0}x more energy)",
            r.engine,
            r.latency_ms(),
            r.energy.to_millijoules(),
            r.latency_ms() / ours.latency_ms(),
            r.energy.get() / ours.energy.get()
        );
    }

    // Per-level view: the five heaviest layers (accelerator-native report).
    let mut heavy: Vec<_> = detail.layers.iter().collect();
    heavy.sort_by_key(|l| std::cmp::Reverse(l.latency.get()));
    println!("\nheaviest layers:");
    for l in heavy.iter().take(5) {
        println!(
            "  {:<16} {:>10} cyc  dram {:>8} KB  cache block {:?}",
            l.name,
            l.latency.get(),
            l.dram_bytes / 1024,
            l.cache_block_points
        );
    }
}
