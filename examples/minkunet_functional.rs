//! MinkowskiNet in `ExecMode::Full`: sparse convolutions computed for
//! real via gather–GEMM–scatter over kernel maps, end to end through the
//! U-Net, with the malformed-network error surface demonstrated at the
//! bottom. Scale the input with `POINTACC_SCALE` (e.g. 0.02 for CI
//! smoke).
//!
//! ```sh
//! POINTACC_SCALE=0.02 cargo run --release --example minkunet_functional
//! ```

use pointacc_data::Dataset;
use pointacc_nn::{zoo, Domain, ExecMode, Executor, Network, Op};

fn main() {
    let net = zoo::minkowski_net();
    let n = ((net.default_points() as f64 * pointacc_bench::scale()) as usize).max(256);
    let points = Dataset::S3dis.generate(42, n);
    println!("input: {} points of a synthetic S3DIS room", points.len());

    // Full fidelity: every SparseConv/SparseConvTr layer gathers input
    // features per kernel offset, multiplies by that offset's seeded
    // weight matrix, and scatter-adds into the output voxels.
    let out = Executor::new(ExecMode::Full, 42)
        .try_run(&net, &points)
        .expect("MinkowskiNet on a real cloud is well-formed");
    let sparse_layers = out
        .trace
        .layers
        .iter()
        .filter(|l| l.compute == pointacc_nn::ComputeKind::SparseConv)
        .count();
    let nonzero = out.features.data().iter().filter(|&&v| v != 0.0).count();
    println!(
        "{}: {} layers ({} sparse conv) | {:.2} G MACs | {} maps",
        net.name(),
        out.trace.layers.len(),
        sparse_layers,
        out.trace.total_macs() as f64 / 1e9,
        out.trace.total_maps(),
    );
    println!(
        "output: {} voxels x {} classes | {} / {} nonzero feature values",
        out.features.rows(),
        out.features.cols(),
        nonzero,
        out.features.rows() * out.features.cols(),
    );
    assert!(nonzero > 0, "Full mode must produce real features");

    // Same seed, same bits: serving can cache or replicate fearlessly.
    let again = Executor::new(ExecMode::Full, 42)
        .try_run(&net, &points)
        .expect("well-formed network stays well-formed");
    assert_eq!(out.features, again.features, "seeded execution is deterministic");
    println!("re-run with seed 42 is bit-identical");

    // A malformed network is a typed error, not a worker-killing panic.
    let unbalanced = Network::new("unbalanced", Domain::VoxelBased, 4)
        .with_voxel_size(0.05)
        .push(Op::SparseConvTr { out_ch: 8, kernel_size: 2 });
    let err = Executor::new(ExecMode::Full, 42)
        .try_run(&unbalanced, &points)
        .expect_err("decoder without encoder must be rejected");
    println!("malformed network rejected: {err}");
}
