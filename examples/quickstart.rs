//! Quickstart: run a point cloud network functionally and replay it on
//! both PointAcc configurations through the unified engine surface.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pointacc::{Accelerator, Engine, PointAccConfig};
use pointacc_bench::harness::parallel_map;
use pointacc_data::Dataset;
use pointacc_nn::{zoo, ExecMode, Executor};

fn main() {
    // 1. A synthetic ModelNet40-like object (1024 points).
    let points = Dataset::ModelNet40.generate(42, 1024);
    println!("input: {} points, bounds {:?}", points.len(), points.bounds());

    // 2. Run PointNet++ classification functionally (exact features) and
    //    record the execution trace.
    let net = zoo::pointnet_pp_classification();
    let out = Executor::new(ExecMode::Full, 7).run(&net, &points);
    println!(
        "network: {} | layers: {} | MACs: {:.2} G | maps: {}",
        net.name(),
        out.trace.layers.len(),
        out.trace.total_macs() as f64 / 1e9,
        out.trace.total_maps(),
    );
    let logits = out.features.row(0);
    let best = logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    println!("predicted class (untrained weights, illustrative): {best}");

    // 3. Replay the trace on both PointAcc configurations concurrently.
    let full = Accelerator::new(PointAccConfig::full());
    let edge = Accelerator::new(PointAccConfig::edge());
    let engines: Vec<&dyn Engine> = vec![&full, &edge];
    for report in parallel_map(&engines, |e| e.evaluate(&out.trace)) {
        let (map, mm, dm) = report.breakdown();
        println!(
            "{}: {:.3} ms | {:.2} mJ | DRAM {:.1} KB | breakdown mapping {:.0}% matmul {:.0}% datamove {:.0}%",
            report.engine,
            report.latency_ms(),
            report.energy.to_millijoules(),
            report.dram_bytes as f64 / 1024.0,
            map * 100.0,
            mm * 100.0,
            dm * 100.0,
        );
    }
}
