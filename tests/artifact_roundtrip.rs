//! Persistent trace artifacts: serialize→deserialize bit-exactness on
//! randomized traces and kernel maps, typed rejection of damaged or
//! wrong-version files, and a real-benchmark warm start through the
//! trace cache's disk tier.
//!
//! The artifact codec is the only part of the workspace that parses
//! bytes it did not just produce, so the properties here are its safety
//! contract: every stream [`encode`](artifact::encode) emits decodes to
//! an equal `(key, trace)` pair and re-encodes to the same bytes, while
//! any truncation or bit flip is rejected with an [`ArtifactError`] —
//! never a panic, never a silently wrong trace.

use pointacc_bench::cache::TraceCache;
use pointacc_bench::{benchmark_trace_at, benchmark_trace_key};
use pointacc_geom::{MapEntry, MapTable};
use pointacc_nn::{
    artifact, zoo, Aggregation, ComputeKind, LayerTrace, MappingOp, NetworkTrace, TraceKey,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random CSR kernel map with `n_weights` groups over plausible
/// index ranges — including empty groups and the empty table.
fn random_map_table(rng: &mut StdRng, n_in: usize, n_out: usize) -> MapTable {
    let n_weights = rng.gen_range(1usize..28);
    let n_entries = rng.gen_range(0usize..64);
    let entries = (0..n_entries)
        .map(|_| {
            MapEntry::new(
                rng.gen_range(0u32..n_in as u32),
                rng.gen_range(0u32..n_out as u32),
                rng.gen_range(0u16..n_weights as u16),
            )
        })
        .collect();
    MapTable::from_entries(entries, n_weights)
}

fn random_mapping_op(rng: &mut StdRng) -> MappingOp {
    let n_in = rng.gen_range(1usize..100_000);
    let n_out = rng.gen_range(1usize..100_000);
    match rng.gen_range(0u8..6) {
        0 => MappingOp::Quantize { n_in, n_out },
        1 => MappingOp::KernelMap {
            n_in,
            n_out,
            kernel_volume: rng.gen_range(1usize..28),
            n_maps: rng.gen_range(0usize..1_000_000),
        },
        2 => MappingOp::Fps { n_in, n_out },
        3 => MappingOp::Knn { n_in, n_queries: n_out, k: rng.gen_range(1usize..64) },
        4 => MappingOp::BallQuery { n_in, n_queries: n_out, k: rng.gen_range(1usize..64) },
        _ => MappingOp::KnnFeature {
            n_in,
            n_queries: n_out,
            k: rng.gen_range(1usize..64),
            dim: rng.gen_range(1usize..512),
        },
    }
}

fn random_layer(rng: &mut StdRng, idx: usize) -> LayerTrace {
    const COMPUTES: [ComputeKind; 5] = [
        ComputeKind::SparseConv,
        ComputeKind::Grouped,
        ComputeKind::Dense,
        ComputeKind::Interpolate,
        ComputeKind::Pool,
    ];
    const AGGS: [Aggregation; 3] = [Aggregation::Sum, Aggregation::Max, Aggregation::None];
    let n_in = rng.gen_range(1usize..512);
    let n_out = rng.gen_range(1usize..512);
    let maps = if rng.gen_bool(0.7) { Some(random_map_table(rng, n_in, n_out)) } else { None };
    let n_ops = rng.gen_range(0usize..4);
    LayerTrace {
        name: format!("layer{idx}.op{}", rng.gen_range(0u32..1000)),
        compute: COMPUTES[rng.gen_range(0usize..COMPUTES.len())],
        n_in,
        n_out,
        in_ch: rng.gen_range(1usize..256),
        out_ch: rng.gen_range(1usize..256),
        maps,
        mapping: (0..n_ops).map(|_| random_mapping_op(rng)).collect(),
        aggregation: AGGS[rng.gen_range(0usize..AGGS.len())],
        pool_group: if rng.gen_bool(0.3) { Some(rng.gen_range(1usize..64)) } else { None },
        fusable: rng.gen_bool(0.5),
    }
}

/// A fully random `(key, trace)` pair — the whole structure the codec
/// must carry, including non-ASCII names and the zero-layer trace.
fn random_artifact(seed: u64) -> (TraceKey, NetworkTrace) {
    let mut rng = StdRng::seed_from_u64(seed);
    let names = ["PointNet", "MinkNet(i)", "DGCNN", "Net-π", "a b/c"];
    let network = names[rng.gen_range(0usize..names.len())].to_string();
    let n_layers = rng.gen_range(0usize..6);
    let layers = (0..n_layers).map(|i| random_layer(&mut rng, i)).collect();
    let trace = NetworkTrace {
        network: network.clone(),
        input_desc: format!("synthetic ({} pts)", rng.gen_range(1usize..100_000)),
        layers,
    };
    let key = TraceKey {
        network,
        seed: rng.gen_range(0u64..u64::MAX),
        scale_ppm: rng.gen_range(0u64..10_000_000),
    };
    (key, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_is_bit_exact(seed in 0u64..1_000_000) {
        let (key, trace) = random_artifact(seed);
        let bytes = artifact::encode(&key, &trace);
        let (key2, trace2) = artifact::decode(&bytes).expect("own bytes must decode");
        prop_assert_eq!(&key2, &key);
        prop_assert_eq!(&trace2, &trace);
        prop_assert_eq!(trace2.fingerprint(), trace.fingerprint());
        // Determinism closes the loop: re-encoding the decoded pair
        // reproduces the byte stream exactly.
        prop_assert_eq!(artifact::encode(&key2, &trace2), bytes);
    }

    #[test]
    fn any_truncation_is_rejected(seed in 0u64..1_000_000, cut_sel in 0u64..u64::MAX) {
        let (key, trace) = random_artifact(seed);
        let bytes = artifact::encode(&key, &trace);
        let cut = (cut_sel % bytes.len() as u64) as usize;
        prop_assert!(
            artifact::decode(&bytes[..cut]).is_err(),
            "a {cut}-byte prefix of a {}-byte artifact must be rejected",
            bytes.len()
        );
    }

    #[test]
    fn any_bit_flip_is_rejected(seed in 0u64..1_000_000, flip_sel in 0u64..u64::MAX) {
        let (key, trace) = random_artifact(seed);
        let mut bytes = artifact::encode(&key, &trace);
        let byte = (flip_sel % bytes.len() as u64) as usize;
        let bit = (flip_sel / bytes.len() as u64 % 8) as u32;
        bytes[byte] ^= 1 << bit;
        prop_assert!(
            artifact::decode(&bytes).is_err(),
            "flipping bit {bit} of byte {byte} must be rejected"
        );
    }
}

#[test]
fn wrong_version_files_are_rejected_with_the_version() {
    let (key, trace) = random_artifact(7);
    let mut bytes = artifact::encode(&key, &trace);
    for version in [0u32, artifact::FORMAT_VERSION + 1, u32::MAX] {
        bytes[8..12].copy_from_slice(&version.to_le_bytes());
        assert_eq!(
            artifact::decode(&bytes),
            Err(artifact::ArtifactError::UnsupportedVersion(version)),
            "version {version} must be rejected before any body parsing"
        );
    }
}

#[test]
fn garbage_files_yield_typed_errors_not_panics() {
    assert!(artifact::decode(&[]).is_err());
    assert!(artifact::decode(b"PACCTRC1").is_err());
    assert!(artifact::decode(&[0xFF; 4096]).is_err());
    let mut rng = StdRng::seed_from_u64(99);
    for len in [1usize, 20, 21, 100, 1000] {
        let noise: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
        assert!(artifact::decode(&noise).is_err(), "random {len}-byte noise must be rejected");
    }
}

/// The acceptance criterion end to end on a real benchmark: compile a
/// MinkowskiNet trace (real kernel-map tables) through a disk-tier
/// cache, then warm-start a second cache from the same directory — zero
/// compiles, and the loaded trace is bit-exactly the compiled one.
#[test]
fn real_benchmark_warm_start_is_bit_exact() {
    let bench = zoo::benchmarks()
        .into_iter()
        .find(|b| b.notation == "MinkNet(i)")
        .expect("Table 2 lists MinkNet(i)");
    let scale = 0.02;
    let dir =
        std::env::temp_dir().join(format!("pointacc-artifact-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let key = benchmark_trace_key(&bench, 42, scale);

    let cold = TraceCache::new().with_artifact_dir(&dir);
    let compiled = cold.get_or_build(&key, || benchmark_trace_at(&bench, 42, scale));
    assert!(compiled.layers.iter().any(|l| l.maps.is_some()), "MinkNet traces carry map tables");
    assert_eq!(cold.stats().compiles, 1);

    let warm = TraceCache::new().with_artifact_dir(&dir);
    let loaded = warm.get_or_build(&key, || panic!("warm start must not compile"));
    assert_eq!(warm.stats().compiles, 0, "second run compiles zero traces");
    assert_eq!(warm.stats().disk_hits, 1);
    assert_eq!(warm.compile_count(&key), 0);
    assert_eq!(*loaded, *compiled, "loaded trace equals the freshly compiled one");
    assert_eq!(loaded.fingerprint(), compiled.fingerprint());
    assert_eq!(loaded.total_macs(), compiled.total_macs());
    assert_eq!(loaded.total_maps(), compiled.total_maps());
    let _ = std::fs::remove_dir_all(&dir);
}
