//! Property tests on the streaming merge / sort / top-k machinery
//! (paper Fig. 10): functional correctness and cycle-count sanity for
//! arbitrary lengths and merger widths.

use pointacc::mpu::{RankEngine, StreamMerger};
use pointacc_sim::SortItem;
use proptest::prelude::*;

fn arb_sorted(max_n: usize) -> impl Strategy<Value = Vec<SortItem>> {
    prop::collection::vec(0u64..10_000, 0..max_n).prop_map(|mut v| {
        v.sort_unstable();
        v.into_iter().enumerate().map(|(i, k)| SortItem::new(k as u128, i as u64)).collect()
    })
}

fn arb_width() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![2usize, 4, 8, 16, 32, 64])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stream_merge_equals_std_merge(a in arb_sorted(300), b in arb_sorted(300), w in arb_width()) {
        let merger = StreamMerger::new(w);
        let (out, stats) = merger.merge(&a, &b);
        let mut want: Vec<u128> = a.iter().chain(&b).map(|i| i.key).collect();
        want.sort_unstable();
        let got: Vec<u128> = out.iter().map(|i| i.key).collect();
        prop_assert_eq!(got, want);
        // One window consumed per iteration: iterations bounded by the
        // number of windows plus a final flush.
        let h = merger.window();
        let bound = a.len().div_ceil(h) + b.len().div_ceil(h) + 2;
        prop_assert!(stats.iterations <= bound as u64, "{} > {}", stats.iterations, bound);
    }

    #[test]
    fn sort_equals_std_sort(mut keys in prop::collection::vec(0u64..100_000, 0..500), w in arb_width()) {
        let items: Vec<SortItem> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| SortItem::new(k as u128, i as u64))
            .collect();
        let engine = RankEngine::new(w);
        let (out, _) = engine.sort(&items);
        keys.sort_unstable();
        let got: Vec<u64> = out.iter().map(|i| i.key as u64).collect();
        prop_assert_eq!(got, keys);
    }

    #[test]
    fn topk_equals_sorted_prefix(keys in prop::collection::vec(0u64..100_000, 1..600), k in 1usize..80, w in arb_width()) {
        let items: Vec<SortItem> = keys
            .iter()
            .enumerate()
            .map(|(i, &key)| SortItem::new(key as u128, i as u64))
            .collect();
        let engine = RankEngine::new(w);
        let (out, stats) = engine.topk(&items, k);
        let mut want = keys.clone();
        want.sort_unstable();
        want.truncate(k);
        let got: Vec<u64> = out.iter().map(|i| i.key as u64).collect();
        prop_assert_eq!(got, want);
        // Top-k never costs more than the full sort.
        let (_, sort_stats) = engine.sort(&items);
        prop_assert!(stats.cycles <= sort_stats.cycles + 1);
    }
}
