//! Property tests for the admission-controlled serving front-end.
//!
//! Two invariants that must survive *any* request stream:
//!
//! 1. **Accounting** — every submitted request lands in exactly one
//!    outcome bucket: `completed + unsupported + failed + rejected +
//!    expired == submitted`, whatever the mix of valid, invalid and
//!    deadline-carrying requests, capacities, policies and worker
//!    counts.
//! 2. **Reorder invariance** — admission decisions within one tick
//!    (requests arriving at the same simulated instant, with equal
//!    modeled load and equal budgets) depend only on the backlog, not
//!    on which request carries which seed: permuting the stream leaves
//!    the outcome counts unchanged.
//!
//! Everything runs on a frozen `SimClock` with fixed-latency fake
//! engines, so each generated case is deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pointacc::{Engine, EngineReport, Seconds};
use pointacc_bench::frontend::{AdmissionPolicy, Frontend, FrontendOptions, SimClock};
use pointacc_bench::serve::Request;
use pointacc_nn::zoo::{self, Benchmark};
use pointacc_nn::NetworkTrace;
use pointacc_sim::PicoJoules;

/// Scale at which every benchmark trace is its 64-point floor.
const SCALE: f64 = 0.02;

struct ConstEngine {
    name: &'static str,
    evals: AtomicUsize,
}

impl ConstEngine {
    fn new(name: &'static str) -> Self {
        ConstEngine { name, evals: AtomicUsize::new(0) }
    }
}

impl Engine for ConstEngine {
    fn name(&self) -> String {
        self.name.into()
    }

    fn evaluate(&self, trace: &NetworkTrace) -> EngineReport {
        self.evals.fetch_add(1, Ordering::SeqCst);
        EngineReport {
            engine: self.name(),
            network: trace.network.clone(),
            mapping: Seconds(0.0),
            matmul: Seconds(1e-3),
            datamove: Seconds(0.0),
            total: Seconds(1e-3),
            energy: PicoJoules::new(1.0),
            dram_bytes: 0,
        }
    }
}

/// PointNet and DGCNN: two distinct trace-cache keys with the same
/// 64-point modeled load at [`SCALE`].
fn two_benchmarks() -> Vec<Benchmark> {
    zoo::benchmarks()
        .into_iter()
        .filter(|b| b.notation == "PointNet" || b.notation == "DGCNN")
        .collect()
}

fn run_frozen(
    benchmarks: &[Benchmark],
    capacities: Vec<f64>,
    policy: AdmissionPolicy,
    workers_per_engine: usize,
    queue_capacity: usize,
    requests: Vec<Request>,
) -> pointacc_bench::serve::ServeReport {
    let a = ConstEngine::new("A");
    let b = ConstEngine::new("B");
    let engines = [&a as &dyn Engine, &b as &dyn Engine];
    let frontend = Frontend::new(
        &engines,
        benchmarks,
        FrontendOptions {
            queue_capacity,
            workers_per_engine,
            scale: SCALE,
            policy,
            capacities: Some(capacities),
            // Property runs must not pick up a disk tier from the test
            // runner's environment.
            artifact_dir: None,
            ..FrontendOptions::default()
        },
    );
    let clock = SimClock::new();
    frontend.run_with_clock(&clock, requests)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn accounting_identity_holds_for_any_stream(
        // Benchmark indices 0..2 are valid, 2..4 fail at the worker.
        raw in prop::collection::vec((0usize..4, 0u64..3, 0u64..40), 0..24),
        capacity in 32.0f64..100_000.0,
        max_delay_ms in 0u64..200,
        workers in 0usize..3,
        queue_capacity in 1usize..4,
    ) {
        let benchmarks = two_benchmarks();
        let requests: Vec<Request> = raw
            .iter()
            .map(|&(bench, seed, deadline_ms)| {
                let req = Request::new(bench, seed);
                // 0 means "no deadline"; otherwise a budget that may or
                // may not be feasible for the drawn capacity.
                if deadline_ms == 0 {
                    req
                } else {
                    req.with_deadline(Duration::from_millis(deadline_ms))
                }
            })
            .collect();
        let policy = if max_delay_ms == 0 {
            AdmissionPolicy::admit_all()
        } else {
            AdmissionPolicy::shed_after(Duration::from_millis(max_delay_ms))
        };
        let n = requests.len();
        let report = run_frozen(
            &benchmarks,
            vec![capacity, capacity / 2.0],
            policy,
            workers,
            queue_capacity,
            requests,
        );
        prop_assert_eq!(report.submitted, n);
        prop_assert!(
            report.accounting_balances(),
            "completed {} + unsupported {} + failed {} + rejected {} + expired {} != submitted {}",
            report.completed,
            report.unsupported,
            report.failed,
            report.rejected,
            report.expired,
            report.submitted
        );
        if workers == 0 {
            prop_assert_eq!(report.rejected, n, "a workerless front-end sheds everything");
        }
        if policy.max_queue_delay.is_none() && workers > 0 {
            prop_assert_eq!(report.rejected, 0, "admit-all never sheds");
        }
        // Percentiles stay ordered whatever the stream shape.
        prop_assert!(report.queue_p50 <= report.queue_p99);
    }

    #[test]
    fn admission_is_invariant_under_reordering_within_a_tick(
        seeds in prop::collection::vec((0usize..2, 0u64..5), 2..20),
        capacity in 32.0f64..10_000.0,
        max_delay_ms in 1u64..100,
        deadline_choice in prop::sample::select(vec![0u64, 50, 5_000]),
        shuffle_seed in 0u64..1_000,
    ) {
        // All requests share one tick (frozen clock), one modeled load
        // (64 points each) and one budget, so admission may depend only
        // on *how many* requests preceded each one — never on which.
        let benchmarks = two_benchmarks();
        let make = |&(bench, seed): &(usize, u64)| {
            let req = Request::new(bench, seed);
            if deadline_choice == 0 {
                req
            } else {
                req.with_deadline(Duration::from_millis(deadline_choice))
            }
        };
        let original: Vec<Request> = seeds.iter().map(make).collect();
        let mut permuted = original.clone();
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        // Fisher–Yates with the deterministic in-tree rand shim.
        for i in (1..permuted.len()).rev() {
            let j = rng.gen_range(0..=i);
            permuted.swap(i, j);
        }
        let policy = AdmissionPolicy::shed_after(Duration::from_millis(max_delay_ms));
        let capacities = vec![capacity, capacity / 3.0];
        let a = run_frozen(&benchmarks, capacities.clone(), policy, 1, 4, original);
        let b = run_frozen(&benchmarks, capacities, policy, 1, 4, permuted);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.rejected, b.rejected);
        prop_assert_eq!(a.expired, b.expired);
        prop_assert_eq!(a.failed, b.failed);
        prop_assert_eq!(
            a.per_engine.iter().map(|(_, n)| *n).collect::<Vec<_>>(),
            b.per_engine.iter().map(|(_, n)| *n).collect::<Vec<_>>(),
            "routing counts are positional, not identity-based"
        );
    }
}
