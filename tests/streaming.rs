//! Streaming scenario family: the multi-frame LiDAR pipeline end to
//! end — [`FrameStream`] determinism and overlap, incremental
//! [`GridIndex`] / [`CoordIndex`] deltas property-tested bit-identical
//! to full rebuilds, cross-frame trace reuse pinned to a fresh
//! compile's fingerprint, and the [`serve_stream`] SLO scenario on a
//! simulated clock.

use std::time::Duration;

use pointacc::{Accelerator, PointAccConfig};
use pointacc_bench::frontend::SimClock;
use pointacc_bench::stream::{serve_stream, StreamOptions};
use pointacc_data::lidar::{FrameStream, ScanProfile};
use pointacc_geom::golden;
use pointacc_geom::index::{apply_point_delta, CoordIndex, GridIndex};
use pointacc_geom::{Coord, Point3, PointSet, VoxelCloud};
use pointacc_nn::stream::{ReuseOutcome, StreamingTracer};
use pointacc_nn::{zoo, ExecMode, Executor};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// FrameStream scenarios
// ---------------------------------------------------------------------

#[test]
fn frame_stream_deltas_drive_an_incremental_grid_index() {
    let mut stream = FrameStream::new(11, 3_000, ScanProfile::semantic_kitti());
    let first = stream.next_frame();
    let mut live = GridIndex::build(first.points.points());
    for _ in 0..5 {
        let frame = stream.next_frame();
        live.apply_delta(&frame.removed, &frame.inserted);
        assert_eq!(live.points(), frame.points.points(), "incremental index diverged");
        let rebuilt = GridIndex::build(frame.points.points());
        for qi in (0..frame.points.len()).step_by(97) {
            let q = frame.points.point(qi);
            assert_eq!(live.knn(q, 9), rebuilt.knn(q, 9), "knn diverged at frame {}", frame.index);
            assert_eq!(
                live.ball(q, 4.0, 16),
                rebuilt.ball(q, 4.0, 16),
                "ball diverged at frame {}",
                frame.index
            );
        }
    }
}

#[test]
fn frame_stream_is_reproducible_and_overlapping() {
    let collect = || {
        let mut s = FrameStream::new(77, 2_000, ScanProfile::semantic_kitti());
        (0..4).map(|_| s.next_frame()).collect::<Vec<_>>()
    };
    let a = collect();
    let b = collect();
    for (fa, fb) in a.iter().zip(&b) {
        assert_eq!(fa.points, fb.points, "frame {} not reproducible", fa.index);
        assert_eq!(fa.removed, fb.removed);
        assert_eq!(fa.inserted, fb.inserted);
    }
    for f in &a[1..] {
        assert!(f.overlap() > 0.75, "frame {} overlap {} too low", f.index, f.overlap());
    }
}

// ---------------------------------------------------------------------
// Incremental-index equivalence properties
// ---------------------------------------------------------------------

/// A deterministic pseudo-cloud of `n` points in a ±30 m box.
fn cloud(n: usize, seed: u64) -> Vec<Point3> {
    (0..n)
        .map(|i| {
            let h = (i as u64 + 1).wrapping_mul(seed | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let f = |s: u64| ((h >> s) & 0xFFFF) as f32 / 65535.0 * 60.0 - 30.0;
            Point3::new(f(0), f(16), f(32))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `GridIndex::apply_delta` sequences — including empty deltas and
    /// full turnover — answer knn and ball queries bit-identically to a
    /// freshly rebuilt index over the same (mirrored) point array.
    #[test]
    fn grid_apply_delta_equals_rebuild(
        n0 in 8usize..120,
        seed in 1u64..5_000,
        steps in prop::collection::vec(
            (0usize..40, 0usize..40, prop::sample::select(vec![false, true])),
            1..5,
        ),
    ) {
        let mut mirror = cloud(n0, seed);
        let mut live = GridIndex::build(&mirror);
        for (si, &(n_rm, n_ins, full_turnover)) in steps.iter().enumerate() {
            let n = mirror.len();
            let (removes, inserts) = if full_turnover {
                let removes: Vec<u32> = (0..n as u32).collect();
                (removes, cloud(n.max(1), seed ^ (si as u64 + 99)))
            } else {
                let removes: Vec<u32> =
                    (0..n as u32).filter(|i| (i * 7 + si as u32) % 11 < n_rm as u32 % 11).collect();
                (removes, cloud(n_ins, seed ^ (si as u64 + 7)))
            };
            live.apply_delta(&removes, &inserts);
            apply_point_delta(&mut mirror, &removes, &inserts);
            prop_assert_eq!(live.points(), mirror.as_slice());
            let rebuilt = GridIndex::build(&mirror);
            for qi in 0..mirror.len().min(24) {
                let q = mirror[qi * 113 % mirror.len()];
                prop_assert_eq!(live.knn(q, 5), rebuilt.knn(q, 5));
                prop_assert_eq!(live.ball(q, 16.0, 12), rebuilt.ball(q, 16.0, 12));
            }
        }
    }

    /// `CoordIndex::apply_delta` (removes + upserts, across tombstone
    /// churn and rehashes) probes kernel maps bit-identically to an
    /// index rebuilt from the surviving voxel set — and both match the
    /// golden hash-join. Empty deltas and full turnover included.
    #[test]
    fn coord_apply_delta_equals_rebuild(
        n0 in 4usize..80,
        seed in 1u64..5_000,
        rounds in 1usize..4,
        full_turnover in prop::sample::select(vec![false, true]),
    ) {
        let vox = |k: usize, s: u64| -> Vec<Coord> {
            cloud(k, s).iter().map(|p| p.voxelize(1.0)).collect()
        };
        let base = VoxelCloud::from_unsorted(vox(n0, seed), 1);
        let mut live = CoordIndex::build(&base);
        let mut coords: Vec<Coord> = base.coords().to_vec();
        for r in 0..rounds {
            let removes: Vec<Coord> = if full_turnover {
                coords.clone()
            } else {
                coords.iter().copied().step_by(3).collect()
            };
            coords.retain(|c| !removes.contains(c));
            let fresh = VoxelCloud::from_unsorted(vox(n0 / 2 + 1, seed ^ (r as u64 + 31)), 1);
            let mut merged: Vec<Coord> = coords.clone();
            for &c in fresh.coords() {
                if !merged.contains(&c) {
                    merged.push(c);
                }
            }
            merged.sort();
            let rebuilt_cloud = VoxelCloud::from_sorted(merged.clone(), 1);
            let inserts: Vec<(Coord, u32)> = rebuilt_cloud
                .coords()
                .iter()
                .enumerate()
                .map(|(i, &c)| (c, i as u32))
                .collect();
            // Re-number every surviving coordinate to its slot in the
            // rebuilt cloud (upsert), as a streaming pipeline would.
            live.apply_delta(&removes, &inserts);
            coords = merged;
            let rebuilt = CoordIndex::build(&rebuilt_cloud);
            let (coarse, _) = rebuilt_cloud.downsample(2);
            for ks in [2usize, 3] {
                let got = live.kernel_map_probe(1, &coarse, ks);
                let want = rebuilt.kernel_map_probe(1, &coarse, ks);
                let gold = golden::kernel_map_hash(&rebuilt_cloud, &coarse, ks);
                prop_assert_eq!(got.to_entries(), want.to_entries());
                prop_assert_eq!(rebuilt.kernel_map_probe(1, &coarse, ks).to_entries(),
                                gold.to_entries());
            }
            // An empty delta is the identity.
            live.apply_delta(&[], &[]);
            prop_assert_eq!(live.len(), rebuilt.len());
        }
    }

    /// Satellite (c): far-outside and degenerate (collinear/coincident)
    /// knn queries agree with the golden brute-force ranking.
    #[test]
    fn knn_far_outside_and_degenerate_matches_golden(
        n in 1usize..60,
        seed in 1u64..5_000,
        k in 1usize..12,
        shape in prop::sample::select(vec!["cloud", "collinear", "coincident"]),
        far in prop::sample::select(vec![1.0f32, 50.0, 1_000.0, 100_000.0]),
    ) {
        let pts: Vec<Point3> = match shape {
            "collinear" => (0..n).map(|i| Point3::new(i as f32 * 0.25, 0.0, 0.0)).collect(),
            "coincident" => (0..n).map(|_| Point3::new(1.5, -2.5, 3.5)).collect(),
            _ => cloud(n, seed),
        };
        let idx = GridIndex::build(&pts);
        let set = PointSet::from_points(pts);
        let queries = PointSet::from_points(vec![
            Point3::new(far, far * 0.5, -far),
            Point3::new(-far, 0.0, 0.0),
            Point3::new(0.0, 0.0, far),
            set.point(0),
        ]);
        let want = golden::k_nearest_neighbors(&set, &queries, k);
        for (qi, want_q) in want.iter().enumerate() {
            prop_assert_eq!(
                &idx.knn(queries.point(qi), k), want_q,
                "shape={} far={} q={}", shape, far, qi
            );
        }
    }
}

// ---------------------------------------------------------------------
// Cross-frame trace reuse
// ---------------------------------------------------------------------

#[test]
fn exact_reuse_matches_fresh_compile_fingerprint() {
    let net = zoo::minknet_outdoor();
    let mut stream = FrameStream::new(5, 1_500, ScanProfile::semantic_kitti());
    stream.set_motion(0.0, 0);
    let mut tracer = StreamingTracer::new(ExecMode::TraceOnly, 5);
    let first = stream.next_frame();
    let (cold, outcome) = tracer.run_frame(&net, &first.points).unwrap();
    assert_eq!(outcome, ReuseOutcome::Compiled);
    for _ in 0..3 {
        let frame = stream.next_frame();
        let (out, outcome) = tracer.run_frame(&net, &frame.points).unwrap();
        assert_eq!(outcome, ReuseOutcome::ExactReuse);
        // The reused trace is the compiled trace, byte for byte.
        assert_eq!(out.trace.fingerprint(), cold.trace.fingerprint());
        let fresh = Executor::new(ExecMode::TraceOnly, 5).try_run(&net, &frame.points).unwrap();
        assert_eq!(out.trace.fingerprint(), fresh.trace.fingerprint());
    }
    let stats = tracer.stats();
    assert_eq!(stats.compiles, 1);
    assert_eq!(stats.exact_reuses, 3);
    assert!(stats.accounting().ends_with("compiles=1"), "{}", stats.accounting());
}

#[test]
fn moving_frames_recompile_and_still_match_fresh_compiles() {
    let net = zoo::minknet_outdoor();
    let mut stream = FrameStream::new(6, 1_500, ScanProfile::semantic_kitti());
    let mut tracer = StreamingTracer::new(ExecMode::TraceOnly, 6);
    for _ in 0..4 {
        let frame = stream.next_frame();
        let (out, _) = tracer.run_frame(&net, &frame.points).unwrap();
        let fresh = Executor::new(ExecMode::TraceOnly, 6).try_run(&net, &frame.points).unwrap();
        assert_eq!(
            out.trace.fingerprint(),
            fresh.trace.fingerprint(),
            "frame {} trace drifted from a fresh compile",
            frame.index
        );
    }
}

// ---------------------------------------------------------------------
// Serving scenario on the simulated clock
// ---------------------------------------------------------------------

fn scenario_opts() -> StreamOptions {
    StreamOptions {
        seed: 9,
        frames: 10,
        points_hint: 2_000,
        period: Duration::from_millis(100),
        slo: Duration::from_millis(100),
        dwell_after: Some(5),
        ..StreamOptions::default()
    }
}

#[test]
fn serve_stream_meets_slo_and_compiles_nothing_in_steady_state() {
    let engine = Accelerator::new(PointAccConfig::full());
    let net = zoo::minknet_outdoor();
    let report = serve_stream(&engine, &net, &SimClock::new(), &scenario_opts()).unwrap();
    assert_eq!(report.records.len(), 10);
    assert_eq!(report.slo_attainment(), 1.0, "max latency {:?}", report.max_latency());
    assert!(report.max_latency() <= Duration::from_millis(100));
    let steady = report.stats_from(6);
    assert_eq!(steady.compiles, 0, "steady state compiled: {}", steady.accounting());
    assert!(report.amortized_points_per_s() > report.cold_points_per_s());
}

#[test]
fn serve_stream_is_a_pure_function_of_its_options() {
    let engine = Accelerator::new(PointAccConfig::full());
    let net = zoo::minknet_outdoor();
    let a = serve_stream(&engine, &net, &SimClock::new(), &scenario_opts()).unwrap();
    let b = serve_stream(&engine, &net, &SimClock::new(), &scenario_opts()).unwrap();
    assert_eq!(a.stats, b.stats);
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.outcome, rb.outcome);
        assert_eq!(ra.service, rb.service);
        assert_eq!(ra.latency, rb.latency);
    }
}
