//! Deterministic serving scenarios under a simulated clock.
//!
//! Every test here threads a `SimClock` through the admission-controlled
//! front-end, so scheduling behavior — shedding, deadline expiry,
//! routing, latency percentiles — is a pure function of the request
//! stream: no sleeps, no wall-clock assertions, bit-identical outcomes
//! on any machine. Engines are fixed-latency fakes; where a test needs
//! to control *when* a worker dispatches, it gates the engine on a
//! channel instead of racing the scheduler.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;
use std::time::Duration;

use pointacc::{Engine, EngineReport, Seconds};
use pointacc_bench::frontend::{AdmissionPolicy, Clock, Frontend, FrontendOptions, SimClock};
use pointacc_bench::serve::{serve, Request, ServeOptions};
use pointacc_nn::zoo::{self, Benchmark};
use pointacc_nn::NetworkTrace;
use pointacc_sim::PicoJoules;

/// Scale at which every benchmark trace is its 64-point floor — cheap,
/// and it makes each request's modeled load exactly 64 points.
const SCALE: f64 = 0.02;
const POINTS: f64 = 64.0;

/// A deterministic engine with a fixed simulated latency that counts
/// its evaluations — the probe for "counted, not executed".
struct CountingEngine {
    name: &'static str,
    evals: AtomicUsize,
}

impl CountingEngine {
    fn new(name: &'static str) -> Self {
        CountingEngine { name, evals: AtomicUsize::new(0) }
    }

    fn evals(&self) -> usize {
        self.evals.load(Ordering::SeqCst)
    }

    fn report(&self, trace: &NetworkTrace) -> EngineReport {
        EngineReport {
            engine: self.name.into(),
            network: trace.network.clone(),
            mapping: Seconds(0.0),
            matmul: Seconds(1e-3),
            datamove: Seconds(0.0),
            total: Seconds(1e-3),
            energy: PicoJoules::new(1.0),
            dram_bytes: 0,
        }
    }
}

impl Engine for CountingEngine {
    fn name(&self) -> String {
        self.name.into()
    }

    fn evaluate(&self, trace: &NetworkTrace) -> EngineReport {
        self.evals.fetch_add(1, Ordering::SeqCst);
        self.report(trace)
    }
}

/// A [`CountingEngine`] whose **first** evaluation blocks until the
/// test releases it: the deterministic way to hold a worker busy while
/// the producer admits more requests and advances simulated time.
struct GatedEngine {
    inner: CountingEngine,
    gate: Mutex<Option<Receiver<()>>>,
}

impl GatedEngine {
    fn new(name: &'static str) -> (Self, Sender<()>) {
        let (tx, rx) = channel();
        (GatedEngine { inner: CountingEngine::new(name), gate: Mutex::new(Some(rx)) }, tx)
    }
}

impl Engine for GatedEngine {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn evaluate(&self, trace: &NetworkTrace) -> EngineReport {
        if let Some(rx) = self.gate.lock().expect("gate poisoned").take() {
            rx.recv().expect("test releases the gate");
        }
        self.inner.evals.fetch_add(1, Ordering::SeqCst);
        self.inner.report(trace)
    }
}

fn pointnet_only() -> Vec<Benchmark> {
    zoo::benchmarks().into_iter().filter(|b| b.notation == "PointNet").collect()
}

fn options(capacities: Vec<f64>, policy: AdmissionPolicy) -> FrontendOptions {
    FrontendOptions {
        queue_capacity: 16,
        workers_per_engine: 1,
        scale: SCALE,
        policy,
        capacities: Some(capacities),
        // Scenario determinism: no disk tier regardless of the test
        // runner's environment.
        artifact_dir: None,
        ..FrontendOptions::default()
    }
}

#[test]
fn overload_sheds_exactly_the_modeled_excess() {
    // Capacity 6400 points/s and a 50 ms queue-delay bound admit
    // exactly floor(50ms × 6400 / 64) + 1 = 6 of a 10-request burst:
    // request k arrives with a modeled backlog of 64k points, i.e. a
    // wait of 10k ms, and sheds once that exceeds 50 ms.
    let engine = CountingEngine::new("Const");
    let engines = [&engine as &dyn Engine];
    let benchmarks = pointnet_only();
    let frontend = Frontend::new(
        &engines,
        &benchmarks,
        options(vec![100.0 * POINTS], AdmissionPolicy::shed_after(Duration::from_millis(50))),
    );
    let clock = SimClock::new();
    let report = frontend.run_with_clock(&clock, (0..10).map(|seed| Request::new(0, seed as u64)));
    assert_eq!(report.submitted, 10);
    assert_eq!(report.completed, 6, "modeled bound admits exactly six");
    assert_eq!(report.rejected, 4, "the excess is shed, nothing more");
    assert_eq!(report.expired, 0);
    assert_eq!(report.failed + report.unsupported, 0);
    assert!(report.accounting_balances());
    assert_eq!(engine.evals(), 6, "shed requests are never executed");
}

#[test]
fn shed_load_is_readmitted_once_the_backlog_drains() {
    // Same bound, but the clock advances 100 ms mid-burst: the fluid
    // backlog drains 6400 points and admission opens again.
    let engine = CountingEngine::new("Const");
    let engines = [&engine as &dyn Engine];
    let benchmarks = pointnet_only();
    let frontend = Frontend::new(
        &engines,
        &benchmarks,
        options(vec![100.0 * POINTS], AdmissionPolicy::shed_after(Duration::from_millis(50))),
    );
    let clock = SimClock::new();
    let requests: Vec<Request> = (0..14).map(|seed| Request::new(0, seed as u64)).collect();
    let clock_ref = &clock;
    let stream = requests.into_iter().enumerate().map(move |(i, r)| {
        if i == 10 {
            // 100 ms drains 6400 modeled points — more than the whole
            // admitted backlog.
            clock_ref.advance(Duration::from_millis(100));
        }
        r
    });
    let report = frontend.run_with_clock(&clock, stream);
    // First burst: 6 admitted, 4 shed (as above). After the drain the
    // remaining 4 all fit under the bound again.
    assert_eq!(report.completed, 10);
    assert_eq!(report.rejected, 4);
    assert!(report.accounting_balances());
}

#[test]
fn deadline_expired_requests_are_counted_not_executed() {
    // Capacity 64 points/s: one request is one simulated second of
    // service. The second request's modeled sojourn (1 s wait + 1 s
    // service) exceeds its 500 ms budget at admission; the third's
    // 10 s budget is met.
    let engine = CountingEngine::new("Const");
    let engines = [&engine as &dyn Engine];
    let benchmarks = pointnet_only();
    let frontend =
        Frontend::new(&engines, &benchmarks, options(vec![POINTS], AdmissionPolicy::admit_all()));
    let clock = SimClock::new();
    let requests = [
        Request::new(0, 1),
        Request::new(0, 2).with_deadline(Duration::from_millis(500)),
        Request::new(0, 3).with_deadline(Duration::from_secs(10)),
    ];
    let report = frontend.run_with_clock(&clock, requests);
    assert_eq!(report.submitted, 3);
    assert_eq!(report.completed, 2);
    assert_eq!(report.expired, 1, "infeasible budget expires at admission");
    assert_eq!(report.rejected, 0, "admit-all never sheds for queue depth");
    assert!(report.accounting_balances());
    assert_eq!(engine.evals(), 2, "expired requests are never executed");
}

#[test]
fn deadlines_expire_at_dispatch_when_the_clock_outruns_them() {
    // Queue-time expiry, deterministically: the first request holds the
    // only worker inside a gated engine; the second (1 ms budget) waits
    // in queue while the stream advances simulated time 10 ms past its
    // deadline, then releases the gate. The worker must discard it at
    // dispatch — counted, never executed.
    let (engine, release) = GatedEngine::new("Gated");
    let engines = [&engine as &dyn Engine];
    let benchmarks = pointnet_only();
    // Huge capacity: admission models no queueing, so only the
    // dispatch-time check can expire the request.
    let frontend =
        Frontend::new(&engines, &benchmarks, options(vec![1e9], AdmissionPolicy::admit_all()));
    let clock = SimClock::new();
    let clock_ref = &clock;
    let release_ref = &release;
    let stream = (0..3).filter_map(move |i| match i {
        0 => Some(Request::new(0, 1)),
        1 => Some(Request::new(0, 2).with_deadline(Duration::from_millis(1))),
        _ => {
            // Both requests are admitted and enqueued; now outrun the
            // second one's budget, then let the worker go.
            clock_ref.advance(Duration::from_millis(10));
            release_ref.send(()).expect("worker waits on the gate");
            None
        }
    });
    let report = frontend.run_with_clock(&clock, stream);
    assert_eq!(report.submitted, 2);
    assert_eq!(report.completed, 1);
    assert_eq!(report.expired, 1, "the deadline passed while queued");
    assert!(report.accounting_balances());
    assert_eq!(engine.inner.evals(), 1, "expired requests are never executed");
}

#[test]
fn a_slow_shard_never_starves_the_queue() {
    // A 1000× capacity imbalance under a (generous) shed policy, which
    // engages capacity-aware routing: every request stays on the fast
    // shard (its whole backlog still finishes sooner than one request
    // on the slow shard), the slow shard idles, and the stream drains
    // completely — a slow shard can delay only work explicitly routed
    // to it, never the queue as a whole.
    let fast = CountingEngine::new("Fast");
    let slow = CountingEngine::new("Slow");
    let engines = [&fast as &dyn Engine, &slow as &dyn Engine];
    let benchmarks = pointnet_only();
    let frontend = Frontend::new(
        &engines,
        &benchmarks,
        options(
            vec![1000.0 * POINTS, POINTS],
            AdmissionPolicy::shed_after(Duration::from_secs(3600)),
        ),
    );
    let clock = SimClock::new();
    let report = frontend.run_with_clock(&clock, (0..20).map(|seed| Request::new(0, seed as u64)));
    assert_eq!(report.completed, 20, "nothing starves");
    assert_eq!(report.rejected, 0, "the bound is far beyond this burst");
    assert!(report.accounting_balances());
    assert_eq!(report.per_engine[0], ("Fast".to_string(), 20));
    assert_eq!(report.per_engine[1], ("Slow".to_string(), 0));
}

#[test]
fn equal_shards_split_a_burst_evenly() {
    // With equal capacities the completion-time router alternates: each
    // admission grows one backlog, making the other shard's completion
    // earlier for the next request.
    let a = CountingEngine::new("A");
    let b = CountingEngine::new("B");
    let engines = [&a as &dyn Engine, &b as &dyn Engine];
    let benchmarks = pointnet_only();
    let frontend = Frontend::new(
        &engines,
        &benchmarks,
        options(vec![POINTS, POINTS], AdmissionPolicy::shed_after(Duration::from_secs(3600))),
    );
    let clock = SimClock::new();
    let report = frontend.run_with_clock(&clock, (0..10).map(|seed| Request::new(0, seed as u64)));
    assert_eq!(report.completed, 10);
    assert_eq!(report.per_engine[0].1, 5);
    assert_eq!(report.per_engine[1].1, 5);
}

#[test]
fn an_idle_shard_within_the_bound_absorbs_before_anything_sheds() {
    // 100:1 capacity split, 50 ms bound, same-instant burst. The fast
    // shard fills up after 6 requests (wait 60 ms > bound); request 7
    // must route to the *idle* slow shard (wait 0 meets the bound even
    // though its completion is a full second away) instead of
    // shedding. Only once both shards are beyond the bound does
    // admission shed.
    let fast = CountingEngine::new("Fast");
    let slow = CountingEngine::new("Slow");
    let engines = [&fast as &dyn Engine, &slow as &dyn Engine];
    let benchmarks = pointnet_only();
    let frontend = Frontend::new(
        &engines,
        &benchmarks,
        options(
            vec![100.0 * POINTS, POINTS],
            AdmissionPolicy::shed_after(Duration::from_millis(50)),
        ),
    );
    let clock = SimClock::new();
    let report = frontend.run_with_clock(&clock, (0..10).map(|seed| Request::new(0, seed as u64)));
    assert_eq!(report.completed, 7, "six on the fast shard, one absorbed by the idle slow one");
    assert_eq!(report.rejected, 3, "shedding starts only when no shard meets the bound");
    assert!(report.accounting_balances());
    assert_eq!(report.per_engine[0], ("Fast".to_string(), 6));
    assert_eq!(report.per_engine[1], ("Slow".to_string(), 1));
}

#[test]
fn admit_all_balances_work_instead_of_chasing_modeled_capacity() {
    // Batch mode (admit-all, no deadlines): every request completes
    // regardless of the capacity model, and the engines' wall-clock
    // cost is roughly uniform, so routing must spread work evenly —
    // capacity-proportional routing would idle half the worker pool
    // behind the modeled-fastest shard.
    let fast = CountingEngine::new("Fast");
    let slow = CountingEngine::new("Slow");
    let engines = [&fast as &dyn Engine, &slow as &dyn Engine];
    let benchmarks = pointnet_only();
    let frontend = Frontend::new(
        &engines,
        &benchmarks,
        options(vec![1000.0 * POINTS, POINTS], AdmissionPolicy::admit_all()),
    );
    let clock = SimClock::new();
    let report = frontend.run_with_clock(&clock, (0..20).map(|seed| Request::new(0, seed as u64)));
    assert_eq!(report.completed, 20);
    assert_eq!(report.per_engine[0].1, 10, "even split despite the capacity imbalance");
    assert_eq!(report.per_engine[1].1, 10);
}

#[test]
fn queue_latency_percentiles_come_from_the_injected_clock() {
    // The gated engine holds the worker while four more requests queue
    // and the stream advances simulated time 10 ms; after release they
    // all dispatch at t = 10 ms. Sorted queue latencies are exactly
    // [0, 10, 10, 10, 10] ms — p50 and p99 are simulated values, not
    // wall-clock luck.
    let (engine, release) = GatedEngine::new("Gated");
    let engines = [&engine as &dyn Engine];
    let benchmarks = pointnet_only();
    let frontend =
        Frontend::new(&engines, &benchmarks, options(vec![1e9], AdmissionPolicy::admit_all()));
    let clock = SimClock::new();
    let clock_ref = &clock;
    let release_ref = &release;
    let stream = (0..6).filter_map(move |i| {
        if i < 5 {
            return Some(Request::new(0, i as u64));
        }
        clock_ref.advance(Duration::from_millis(10));
        release_ref.send(()).expect("worker waits on the gate");
        None
    });
    let report = frontend.run_with_clock(&clock, stream);
    assert_eq!(report.completed, 5);
    assert_eq!(report.queue_p50, Duration::from_millis(10));
    assert_eq!(report.queue_p99, Duration::from_millis(10));
    assert!(report.queue_p50 <= report.queue_p99, "structural invariant");
    assert_eq!(report.wall, Duration::from_millis(10), "elapsed time is simulated");
}

#[test]
fn zero_requests_yield_a_clean_empty_report() {
    let engine = CountingEngine::new("Const");
    let engines = [&engine as &dyn Engine];
    let benchmarks = pointnet_only();
    let frontend =
        Frontend::new(&engines, &benchmarks, options(vec![POINTS], AdmissionPolicy::admit_all()));
    let clock = SimClock::new();
    let report = frontend.run_with_clock(&clock, std::iter::empty());
    assert_eq!(report.submitted, 0);
    assert_eq!(
        (report.completed, report.unsupported, report.failed, report.rejected, report.expired),
        (0, 0, 0, 0, 0)
    );
    assert!(report.accounting_balances());
    assert_eq!(report.queue_p50, Duration::ZERO);
    assert_eq!(report.queue_p99, Duration::ZERO);
    assert_eq!(report.cache.hits + report.cache.misses, 0);
    assert_eq!(report.utilization_per_shard, vec![("Const".to_string(), 0.0)]);
    assert_eq!(engine.evals(), 0);

    // The classic entry point agrees (wall-clock, admit-everything).
    let report =
        serve(&engines, &benchmarks, [], ServeOptions { scale: SCALE, ..Default::default() });
    assert_eq!(report.submitted, 0);
    assert!(report.accounting_balances());
}

#[test]
fn zero_workers_shed_instead_of_deadlocking() {
    // Nothing can ever drain a zero-worker front-end: admission must
    // shed every request up front — far more than the queue capacity,
    // which would deadlock if anything were enqueued.
    let engine = CountingEngine::new("Const");
    let engines = [&engine as &dyn Engine];
    let benchmarks = pointnet_only();
    let frontend = Frontend::new(
        &engines,
        &benchmarks,
        FrontendOptions {
            queue_capacity: 2,
            workers_per_engine: 0,
            capacities: Some(vec![POINTS]),
            ..options(vec![POINTS], AdmissionPolicy::admit_all())
        },
    );
    let clock = SimClock::new();
    let report = frontend.run_with_clock(&clock, (0..32).map(|seed| Request::new(0, seed as u64)));
    assert_eq!(report.submitted, 32);
    assert_eq!(report.rejected, 32);
    assert_eq!(report.completed, 0);
    assert!(report.accounting_balances());
    assert_eq!(engine.evals(), 0);
}

#[test]
fn serving_recovers_after_a_transient_build_fault() {
    use pointacc_bench::cache::{FailurePolicy, TraceCache};
    use pointacc_bench::UnknownDataset;
    use pointacc_nn::TraceKey;

    // A transient fault (dataset store briefly unreachable, say) was
    // negatively cached before the request wave arrives. Whether the
    // wave recovers is purely the cache's failure policy.
    let engine = CountingEngine::new("Const");
    let engines = [&engine as &dyn Engine];
    let benchmarks = pointnet_only();
    let frontend =
        Frontend::new(&engines, &benchmarks, options(vec![1e9], AdmissionPolicy::admit_all()));
    let key = TraceKey::new(benchmarks[0].notation, 1, SCALE);
    let poison = |cache: &TraceCache| {
        cache
            .try_get_or_build(&key, || Err(UnknownDataset { name: "transient".into() }.into()))
            .unwrap_err();
    };

    // Under Retain the fault is permanent: every request for the key
    // keeps failing from the cache and nothing ever executes.
    let retained = TraceCache::new().with_failure_policy(FailurePolicy::Retain);
    poison(&retained);
    let clock = SimClock::new();
    let report = frontend.run_on_cache(&clock, &retained, (0..4).map(|_| Request::new(0, 1)));
    assert_eq!(report.completed, 0, "retained failure makes the key unservable");
    assert_eq!(report.failed, 4);
    assert!(report.accounting_balances());
    assert_eq!(engine.evals(), 0);

    // Under RetryOnRequest the first request drops the failed slot and
    // rebuilds for real; the whole wave completes.
    let retrying = TraceCache::new().with_failure_policy(FailurePolicy::RetryOnRequest);
    poison(&retrying);
    let clock = SimClock::new();
    let report = frontend.run_on_cache(&clock, &retrying, (0..4).map(|_| Request::new(0, 1)));
    assert_eq!(report.failed, 0, "the transient fault must not outlive its cause");
    assert_eq!(report.completed, 4);
    assert!(report.accounting_balances());
    assert_eq!(engine.evals(), 4);
    assert!(report.cache.compiles >= 1, "recovery really recompiled the trace");
}

#[test]
fn sim_clock_reads_back_exactly_what_was_advanced() {
    let clock = SimClock::new();
    assert_eq!(clock.now(), Duration::ZERO);
    clock.advance(Duration::from_micros(1));
    clock.advance(Duration::from_secs(2));
    assert_eq!(clock.now(), Duration::from_secs(2) + Duration::from_micros(1));
}
