//! Property-based equivalence: the PointAcc mapping unit must produce
//! bit-identical results to the golden CPU algorithms on arbitrary
//! point clouds (the paper's correctness claim for the ranking-based
//! unification, §4.1).

use pointacc::Mpu;
use pointacc_geom::{golden, Coord, Point3, PointSet, VoxelCloud};
use proptest::prelude::*;

fn arb_points(max_n: usize) -> impl Strategy<Value = PointSet> {
    prop::collection::vec((-50.0f32..50.0, -50.0f32..50.0, -50.0f32..50.0), 1..max_n)
        .prop_map(|v| v.into_iter().map(|(x, y, z)| Point3::new(x, y, z)).collect())
}

fn arb_cloud(max_n: usize) -> impl Strategy<Value = VoxelCloud> {
    prop::collection::vec((-20i32..20, -20i32..20, -20i32..20), 1..max_n).prop_map(|v| {
        VoxelCloud::from_unsorted(v.into_iter().map(|(x, y, z)| Coord::new(x, y, z)).collect(), 1)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fps_matches_golden(pts in arb_points(120), frac in 0.1f64..1.0) {
        let m = ((pts.len() as f64 * frac) as usize).clamp(1, pts.len());
        let mpu = Mpu::new(16);
        let (got, stats) = mpu.farthest_point_sampling(&pts, m);
        prop_assert_eq!(got, golden::farthest_point_sampling(&pts, m));
        prop_assert_eq!(stats.cycles, mpu.fps_cycles_estimate(pts.len(), m));
    }

    #[test]
    fn knn_matches_golden(pts in arb_points(100), q in arb_points(20), k in 1usize..16) {
        let mpu = Mpu::new(8);
        let (got, _) = mpu.k_nearest_neighbors(&pts, &q, k);
        prop_assert_eq!(got, golden::k_nearest_neighbors(&pts, &q, k));
    }

    #[test]
    fn ball_query_matches_golden(
        pts in arb_points(100),
        q in arb_points(15),
        k in 1usize..16,
        r2 in 0.5f32..500.0,
    ) {
        let mpu = Mpu::new(16);
        let (got, _) = mpu.ball_query_padded(&pts, &q, r2, k);
        prop_assert_eq!(got, golden::ball_query_padded(&pts, &q, r2, k));
    }

    #[test]
    fn kernel_map_matches_hash(cloud in arb_cloud(150), ks in 2usize..4) {
        let mpu = Mpu::new(16);
        let (got, _) = mpu.kernel_map(&cloud, &cloud, ks);
        let want = golden::kernel_map_hash(&cloud, &cloud, ks);
        prop_assert_eq!(got.canonicalized(), want.canonicalized());
    }

    #[test]
    fn downsampled_kernel_map_matches_hash(cloud in arb_cloud(120)) {
        let mpu = Mpu::new(8);
        let (out, _) = mpu.quantize(&cloud, 2);
        let (want_out, _) = cloud.downsample(2);
        prop_assert_eq!(&out, &want_out);
        let (got, _) = mpu.kernel_map(&cloud, &out, 2);
        let want = golden::kernel_map_hash(&cloud, &out, 2);
        prop_assert_eq!(got.canonicalized(), want.canonicalized());
    }

    #[test]
    fn quantize_idempotent_at_same_stride(cloud in arb_cloud(100)) {
        let mpu = Mpu::new(8);
        let (once, _) = mpu.quantize(&cloud, 2);
        let (twice, _) = mpu.quantize(&once, 1);
        prop_assert_eq!(once, twice);
    }
}
