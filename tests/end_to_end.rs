//! End-to-end integration: every Table 2 benchmark runs through the
//! executor, the accelerator and every baseline model at reduced scale,
//! and the paper's qualitative results hold (who wins, directionality of
//! the ablations).

use pointacc::{Accelerator, CachePolicy, PointAccConfig, RunOptions};
use pointacc_baselines::{Mesorasi, Platform};
use pointacc_data::Dataset;
use pointacc_nn::{zoo, ComputeKind, ExecMode, Executor, NetworkTrace};

fn small_trace(notation: &str) -> NetworkTrace {
    let b = zoo::benchmarks()
        .into_iter()
        .find(|b| b.notation == notation)
        .unwrap_or_else(|| panic!("unknown benchmark {notation}"));
    let ds = Dataset::ALL.into_iter().find(|d| d.name() == b.dataset).unwrap();
    let n = (b.network.default_points() / 8).max(128);
    let pts = ds.generate(9, n);
    Executor::new(ExecMode::TraceOnly, 9).run(&b.network, &pts).trace
}

#[test]
fn all_eight_benchmarks_run_everywhere() {
    let acc_full = Accelerator::new(PointAccConfig::full());
    let acc_edge = Accelerator::new(PointAccConfig::edge());
    let platforms = [
        Platform::rtx_2080ti(),
        Platform::xeon_6130(),
        Platform::xeon_tpu_v3(),
        Platform::jetson_xavier_nx(),
        Platform::jetson_nano(),
        Platform::raspberry_pi_4b(),
    ];
    for b in zoo::benchmarks() {
        let trace = small_trace(b.notation);
        assert!(trace.total_macs() > 0, "{}", b.notation);
        let full = acc_full.run(&trace);
        let edge = acc_edge.run(&trace);
        assert!(full.latency_ms() > 0.0 && edge.latency_ms() > 0.0);
        assert!(full.latency_ms() <= edge.latency_ms(), "{}", b.notation);
        assert_eq!(full.layers.len(), trace.layers.len());
        for p in &platforms {
            let r = p.run(&trace);
            assert!(r.total.0 > 0.0, "{} on {}", b.notation, p.name);
        }
    }
}

#[test]
fn pointacc_beats_every_platform_on_every_benchmark() {
    // Fig. 13/14 headline: improvements are "consistent on different
    // benchmarks". CPU and TPU lose on every benchmark even at reduced
    // scale; the GPU must lose on geomean (tiny 1/8-scale inputs shrink
    // the dense PointNet workload below launch granularity, where the
    // paper's full-scale claim does not apply per-network).
    let acc = Accelerator::new(PointAccConfig::full());
    let mut gpu_ratios = Vec::new();
    for b in zoo::benchmarks() {
        let trace = small_trace(b.notation);
        let ours = acc.run(&trace).latency_ms();
        for p in [Platform::xeon_6130(), Platform::xeon_tpu_v3()] {
            let theirs = p.run(&trace).total.to_millis();
            assert!(
                theirs > ours,
                "{} on {}: PointAcc {ours} ms should beat {theirs} ms",
                b.notation,
                p.name
            );
        }
        gpu_ratios.push(Platform::rtx_2080ti().run(&trace).total.to_millis() / ours);
    }
    let geomean = (gpu_ratios.iter().map(|r| r.ln()).sum::<f64>() / gpu_ratios.len() as f64).exp();
    assert!(geomean > 1.5, "GPU geomean speedup {geomean} should favor PointAcc");
}

#[test]
fn mesorasi_supports_only_pointnetpp_family() {
    for b in zoo::benchmarks() {
        let trace = small_trace(b.notation);
        let supported = Mesorasi::supports(&trace);
        let is_sparseconv = b.notation.starts_with("MinkNet");
        assert_eq!(supported, !is_sparseconv, "{}", b.notation);
    }
}

#[test]
fn ablations_point_the_right_way() {
    let trace = small_trace("MinkNet(i)");
    let acc = Accelerator::new(PointAccConfig::full());
    let base = acc.run(&trace);
    let no_cache =
        acc.run_with(&trace, RunOptions { cache: CachePolicy::Off, ..Default::default() });
    let gms = acc.run_with(&trace, RunOptions { gather_scatter_flow: true, ..Default::default() });
    assert!(no_cache.dram_bytes() > base.dram_bytes(), "cache must cut DRAM traffic");
    assert!(gms.dram_bytes() > no_cache.dram_bytes(), "G-M-S must cost the most DRAM");
    assert!(gms.latency_ms() >= base.latency_ms());
}

#[test]
fn fusion_helps_pointnet_most() {
    // Fig. 20: PointNet (no downsampling) fuses more than PointNet++.
    // Run at the full canonical point count — at tiny scale the fixed
    // weight traffic dominates and masks the activation savings.
    let acc = Accelerator::new(PointAccConfig::full());
    let mut reductions = Vec::new();
    for name in ["PointNet", "PointNet++(c)"] {
        let b = zoo::benchmarks().into_iter().find(|b| b.notation == name).unwrap();
        let ds = Dataset::ALL.into_iter().find(|d| d.name() == b.dataset).unwrap();
        let pts = ds.generate(9, b.network.default_points());
        let trace = Executor::new(ExecMode::TraceOnly, 9).run(&b.network, &pts).trace;
        let fused = acc.run(&trace).dram_bytes() as f64;
        let unfused = acc
            .run_with(&trace, RunOptions { fusion: false, ..Default::default() })
            .dram_bytes() as f64;
        reductions.push(1.0 - fused / unfused);
    }
    assert!(
        reductions[0] > reductions[1],
        "PointNet reduction {:.2} should exceed PointNet++ {:.2}",
        reductions[0],
        reductions[1]
    );
}

#[test]
fn traces_are_deterministic() {
    let a = small_trace("PointNet++(s)");
    let b = small_trace("PointNet++(s)");
    assert_eq!(a.total_macs(), b.total_macs());
    assert_eq!(a.total_maps(), b.total_maps());
    let acc = Accelerator::new(PointAccConfig::edge());
    assert_eq!(acc.run(&a).total_cycles(), acc.run(&b).total_cycles());
}

#[test]
fn sparse_layers_have_maps_and_dense_layers_do_not() {
    let trace = small_trace("MinkNet(o)");
    for l in &trace.layers {
        match l.compute {
            ComputeKind::SparseConv => assert!(l.maps.is_some(), "{}", l.name),
            ComputeKind::Dense | ComputeKind::Pool => assert!(l.maps.is_none(), "{}", l.name),
            _ => {}
        }
    }
}
