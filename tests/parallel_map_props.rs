//! Property tests for the harness scheduler: for arbitrary input
//! lengths × worker counts, `parallel_map` must behave exactly like a
//! sequential `map` — order preserved, every index produced exactly
//! once — because every grid cell and serving completion is routed
//! through it.

use std::sync::atomic::{AtomicU32, Ordering};

use pointacc_bench::harness::parallel_map_with;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn preserves_order_for_any_length_and_worker_count(
        items in prop::collection::vec(0u64..1_000_000, 0..120),
        workers in 1usize..12,
    ) {
        let out = parallel_map_with(workers, &items, |&x| x.wrapping_mul(3) ^ 0x5A5A);
        let want: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(3) ^ 0x5A5A).collect();
        prop_assert_eq!(out, want);
    }

    #[test]
    fn visits_every_index_exactly_once(
        len in 0usize..150,
        workers in 1usize..12,
    ) {
        let indices: Vec<usize> = (0..len).collect();
        let visits: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
        let out = parallel_map_with(workers, &indices, |&i| {
            visits[i].fetch_add(1, Ordering::SeqCst);
            i
        });
        // The result slot of index i holds i — no index lands in another
        // slot — and the closure ran exactly once per index.
        prop_assert_eq!(out, indices);
        for (i, v) in visits.iter().enumerate() {
            prop_assert_eq!(v.load(Ordering::SeqCst), 1, "index {} visited more than once", i);
        }
    }

    #[test]
    fn worker_counts_beyond_len_are_safe(
        len in 0usize..8,
        workers in 8usize..64,
    ) {
        let items: Vec<u64> = (0..len as u64).collect();
        let out = parallel_map_with(workers, &items, |&x| x + 1);
        prop_assert_eq!(out, items.iter().map(|&x| x + 1).collect::<Vec<_>>());
    }
}
