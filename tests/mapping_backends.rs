//! Property-based equivalence of the mapping backends: the grid-hash
//! `Indexed` backend must produce **bit-identical** results to the
//! brute-force `Golden` oracle on arbitrary point clouds, radii and
//! tensor strides — including empty and degenerate inputs. This is the
//! contract that lets the executor default to `Indexed` without
//! perturbing traces, golden snapshots, or functional outputs.

use pointacc_geom::index::{fps_pruned, fps_stratified, MappingBackend, GOLDEN, INDEXED};
use pointacc_geom::{Coord, Point3, PointSet, VoxelCloud};
use proptest::prelude::*;

/// Coverage radius of a sample: the largest distance from any cloud
/// point to its nearest selected point (the k-center objective FPS
/// greedily minimizes).
fn coverage_radius(pts: &PointSet, sel: &[usize]) -> f64 {
    pts.points()
        .iter()
        .map(|&p| sel.iter().map(|&s| pts.point(s).dist2(p) as f64).fold(f64::INFINITY, f64::min))
        .fold(0.0f64, f64::max)
        .sqrt()
}

fn arb_points(min_n: usize, max_n: usize) -> impl Strategy<Value = PointSet> {
    prop::collection::vec((-50.0f32..50.0, -50.0f32..50.0, -50.0f32..50.0), min_n..max_n)
        .prop_map(|v| v.into_iter().map(|(x, y, z)| Point3::new(x, y, z)).collect())
}

/// Clouds with heavy duplication pressure (small coordinate range) at a
/// random power-of-two tensor stride.
fn arb_cloud(max_n: usize) -> impl Strategy<Value = VoxelCloud> {
    (prop::collection::vec((-24i32..24, -24i32..24, -24i32..24), 1..max_n), 0u32..3).prop_map(
        |(v, stride_log)| {
            let stride = 1i32 << stride_log;
            VoxelCloud::from_unsorted(
                v.into_iter().map(|(x, y, z)| Coord::new(x, y, z).scale(stride)).collect(),
                stride,
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn knn_backends_agree(pts in arb_points(1, 120), q in arb_points(1, 30), k in 0usize..20) {
        prop_assert_eq!(
            INDEXED.k_nearest_neighbors(&pts, &q, k),
            GOLDEN.k_nearest_neighbors(&pts, &q, k)
        );
    }

    #[test]
    fn self_knn_backends_agree(pts in arb_points(1, 150), k in 1usize..12) {
        // Queries == inputs (the DGCNN TraceOnly graph shape): every
        // distance has an exact zero tie broken by index.
        prop_assert_eq!(
            INDEXED.k_nearest_neighbors(&pts, &pts, k),
            GOLDEN.k_nearest_neighbors(&pts, &pts, k)
        );
    }

    #[test]
    fn ball_query_backends_agree(
        pts in arb_points(1, 120),
        q in arb_points(1, 25),
        k in 1usize..16,
        r2 in 0.01f32..3000.0,
    ) {
        prop_assert_eq!(
            INDEXED.ball_query(&pts, &q, r2, k),
            GOLDEN.ball_query(&pts, &q, r2, k)
        );
        prop_assert_eq!(
            INDEXED.ball_query_padded(&pts, &q, r2, k),
            GOLDEN.ball_query_padded(&pts, &q, r2, k)
        );
    }

    #[test]
    fn fps_backends_agree(pts in arb_points(1, 150), frac in 0.0f64..1.0) {
        let m = ((pts.len() as f64 * frac) as usize).min(pts.len());
        prop_assert_eq!(
            INDEXED.farthest_point_sampling(&pts, m),
            GOLDEN.farthest_point_sampling(&pts, m)
        );
    }

    #[test]
    fn fps_approx_equals_exact_below_the_stratification_gate(
        pts in arb_points(1, 150),
        frac in 0.0f64..1.0,
    ) {
        // Small clouds always take the exact fallback, so the opt-in
        // method is bit-identical to exact FPS there — on both backends.
        let m = ((pts.len() as f64 * frac) as usize).min(pts.len());
        prop_assert_eq!(INDEXED.fps_approx(&pts, m), GOLDEN.farthest_point_sampling(&pts, m));
        prop_assert_eq!(GOLDEN.fps_approx(&pts, m), GOLDEN.farthest_point_sampling(&pts, m));
    }

    // The bucket-pruned exact FPS must match the golden serial scan
    // bit-for-bit (selection, not tolerance) on the clouds that stress
    // its tile bound the hardest: tight clusters (tiny gaps vs large
    // in-tile dmin spread), collinear points (degenerate AABBs),
    // duplicates (all-tie selection falls back to index order), and
    // non-finite coordinates (the bound must refuse to skip tiles whose
    // dmin stays +inf).

    #[test]
    fn pruned_fps_matches_golden_on_clustered_clouds(
        centers in arb_points(1, 5),
        jitter in prop::collection::vec((-0.05f32..0.05, -0.05f32..0.05, -0.05f32..0.05), 30..120),
        frac in 0.0f64..1.0,
    ) {
        let pts: PointSet = jitter
            .iter()
            .enumerate()
            .map(|(i, &(dx, dy, dz))| {
                let c = centers.point(i % centers.len());
                Point3::new(c.x + dx, c.y + dy, c.z + dz)
            })
            .collect();
        let m = ((pts.len() as f64 * frac) as usize).min(pts.len());
        prop_assert_eq!(fps_pruned(&pts, m).0, GOLDEN.farthest_point_sampling(&pts, m));
    }

    #[test]
    fn pruned_fps_matches_golden_on_collinear_clouds(
        spacings in prop::collection::vec(0.0f32..4.0, 2..150),
        axis in 0usize..3,
        frac in 0.0f64..1.0,
    ) {
        // Points on one axis, including coincident runs (zero spacing):
        // every tile AABB collapses to a segment.
        let mut t = 0.0f32;
        let pts: PointSet = spacings
            .iter()
            .map(|&s| {
                t += s;
                match axis {
                    0 => Point3::new(t, 0.0, 0.0),
                    1 => Point3::new(0.0, t, 0.0),
                    _ => Point3::new(0.0, 0.0, t),
                }
            })
            .collect();
        let m = ((pts.len() as f64 * frac) as usize).min(pts.len());
        prop_assert_eq!(fps_pruned(&pts, m).0, GOLDEN.farthest_point_sampling(&pts, m));
    }

    #[test]
    fn pruned_fps_matches_golden_on_duplicated_clouds(
        uniques in arb_points(1, 6),
        reps in 2usize..40,
        frac in 0.0f64..1.0,
    ) {
        let pts: PointSet = (0..uniques.len() * reps)
            .map(|i| uniques.point(i % uniques.len()))
            .collect();
        let m = ((pts.len() as f64 * frac) as usize).min(pts.len());
        prop_assert_eq!(fps_pruned(&pts, m).0, GOLDEN.farthest_point_sampling(&pts, m));
    }

    #[test]
    fn pruned_fps_matches_golden_with_infinite_coordinates(
        base in arb_points(4, 100),
        inf_at in prop::collection::vec((0usize..100, 0usize..3), 1..4),
        frac in 0.0f64..1.0,
    ) {
        // Points at +inf keep their running dmin at +inf forever, so the
        // tiles holding them must never be skipped.
        let mut v: Vec<Point3> = base.points().to_vec();
        for &(at, axis) in &inf_at {
            let p = &mut v[at % base.len()];
            match axis {
                0 => p.x = f32::INFINITY,
                1 => p.y = f32::INFINITY,
                _ => p.z = f32::INFINITY,
            }
        }
        let pts = PointSet::from_points(v);
        let m = ((pts.len() as f64 * frac) as usize).min(pts.len());
        prop_assert_eq!(fps_pruned(&pts, m).0, GOLDEN.farthest_point_sampling(&pts, m));
    }

    #[test]
    fn kernel_map_backends_agree(cloud in arb_cloud(150), ks in 2usize..4) {
        let got = INDEXED.kernel_map(&cloud, &cloud, ks);
        let want = GOLDEN.kernel_map(&cloud, &cloud, ks);
        // Not just as sets: identical grouping and within-group order.
        prop_assert_eq!(got.to_entries(), want.to_entries());
        prop_assert_eq!(got.counts(), want.counts());
    }

    #[test]
    fn downsampled_kernel_map_backends_agree(cloud in arb_cloud(120), ks in 2usize..4) {
        let (coarse, _) = cloud.downsample(2);
        let got = INDEXED.kernel_map(&cloud, &coarse, ks);
        let want = GOLDEN.kernel_map(&cloud, &coarse, ks);
        prop_assert_eq!(got.to_entries(), want.to_entries());
    }

    #[test]
    fn clustered_points_backends_agree(
        centers in arb_points(1, 5),
        jitter in prop::collection::vec((-0.05f32..0.05, -0.05f32..0.05, -0.05f32..0.05), 20..80),
        k in 1usize..8,
    ) {
        // Dense clusters stress the grid's bucket occupancy and the
        // shell-walk termination bound.
        let pts: PointSet = jitter
            .iter()
            .enumerate()
            .map(|(i, &(dx, dy, dz))| {
                let c = centers.point(i % centers.len());
                Point3::new(c.x + dx, c.y + dy, c.z + dz)
            })
            .collect();
        prop_assert_eq!(
            INDEXED.k_nearest_neighbors(&pts, &pts, k),
            GOLDEN.k_nearest_neighbors(&pts, &pts, k)
        );
        prop_assert_eq!(
            INDEXED.ball_query_padded(&pts, &pts, 0.01, k),
            GOLDEN.ball_query_padded(&pts, &pts, 0.01, k)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Golden-checked approx-FPS tolerance: the coverage radius of the
    // stratified sample must stay within 2·r_exact + 3·√3·cell of the
    // exact sample's — the analytical bound from (a) every point lying
    // within one cell diagonal of its representative and (b) FPS being
    // a 2-approximation of the optimal k-center cost.
    #[test]
    fn approx_fps_coverage_within_golden_checked_bound(
        seed in 1u64..u64::MAX,
        n in 2048usize..3200,
        frac_m in 0.02f64..0.2,
    ) {
        let mut x = seed | 1;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 4096) as f32 / 64.0 - 32.0
        };
        let pts: PointSet = (0..n).map(|_| Point3::new(step(), step(), step())).collect();
        let m = ((n as f64 * frac_m) as usize).max(8);
        if let Some((sel, cell)) = fps_stratified(&pts, m) {
            prop_assert_eq!(sel.len(), m);
            prop_assert_eq!(sel[0], 0);
            let mut uniq = sel.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), m);
            let r_exact = coverage_radius(&pts, &GOLDEN.farthest_point_sampling(&pts, m));
            let r_approx = coverage_radius(&pts, &sel);
            let bound = 2.0 * r_exact + 3.0 * f64::from(cell) * 3f64.sqrt() + 1e-4;
            prop_assert!(
                r_approx <= bound,
                "coverage {r_approx} exceeds bound {bound} (exact {r_exact}, cell {cell})"
            );
        }
        // None = degenerate stratification; fps_approx falls back to
        // exact, which the small-cloud property already pins down.
    }
}

#[test]
fn empty_and_degenerate_clouds_agree() {
    let empty = PointSet::new();
    let queries: PointSet = (0..4).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
    // Empty input: every query comes back empty from both backends.
    assert_eq!(
        INDEXED.k_nearest_neighbors(&empty, &queries, 3),
        GOLDEN.k_nearest_neighbors(&empty, &queries, 3)
    );
    assert_eq!(
        INDEXED.ball_query(&empty, &queries, 1.0, 3),
        GOLDEN.ball_query(&empty, &queries, 1.0, 3)
    );
    // Empty queries: empty result vectors.
    assert!(INDEXED.k_nearest_neighbors(&queries, &empty, 3).is_empty());
    assert_eq!(
        INDEXED.farthest_point_sampling(&empty, 0),
        GOLDEN.farthest_point_sampling(&empty, 0)
    );
    // Every point identical: all distances tie, index order decides.
    let same: PointSet = (0..30).map(|_| Point3::new(2.0, -1.0, 0.5)).collect();
    assert_eq!(
        INDEXED.k_nearest_neighbors(&same, &same, 5),
        GOLDEN.k_nearest_neighbors(&same, &same, 5)
    );
    assert_eq!(
        INDEXED.farthest_point_sampling(&same, 30),
        GOLDEN.farthest_point_sampling(&same, 30)
    );
    // Coplanar points: zero extent along one axis.
    let plane: PointSet =
        (0..60).map(|i| Point3::new((i % 10) as f32, (i / 10) as f32, 0.0)).collect();
    assert_eq!(
        INDEXED.ball_query_padded(&plane, &plane, 2.0, 6),
        GOLDEN.ball_query_padded(&plane, &plane, 2.0, 6)
    );
    // Empty voxel clouds on either side of a kernel map.
    let vc = VoxelCloud::from_unsorted(vec![Coord::new(0, 0, 0), Coord::new(1, 1, 0)], 1);
    let none = VoxelCloud::from_unsorted(vec![], 1);
    for (a, b) in [(&vc, &none), (&none, &vc), (&none, &none)] {
        let got = INDEXED.kernel_map(a, b, 3);
        let want = GOLDEN.kernel_map(a, b, 3);
        assert_eq!(got.to_entries(), want.to_entries());
        assert_eq!(got.n_weights(), 27);
    }
}

#[test]
fn large_inputs_cross_the_parallel_thresholds_and_agree() {
    // Sizes chosen to exceed QUERY_PAR_WORK / KERNEL_PAR_WORK / the FPS
    // chunk-parallel gate, so this exercises the multi-threaded paths of
    // the indexed backend against the serial oracle.
    let pts: PointSet = (0..6000)
        .map(|i| {
            let t = i as f32;
            Point3::new((t * 0.37).sin() * 30.0, (t * 0.61).cos() * 30.0, (t * 0.13).sin() * 10.0)
        })
        .collect();
    let queries: PointSet = (0..400)
        .map(|i| {
            let t = i as f32 + 0.5;
            Point3::new((t * 0.71).sin() * 30.0, (t * 0.29).cos() * 30.0, (t * 0.41).sin() * 10.0)
        })
        .collect();
    assert_eq!(
        INDEXED.k_nearest_neighbors(&pts, &queries, 16),
        GOLDEN.k_nearest_neighbors(&pts, &queries, 16)
    );
    assert_eq!(
        INDEXED.ball_query_padded(&pts, &queries, 4.0, 32),
        GOLDEN.ball_query_padded(&pts, &queries, 4.0, 32)
    );

    let mut x = 0xDEADBEEFu64;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % 64) as i32 - 32
    };
    let cloud = VoxelCloud::from_unsorted(
        (0..4000).map(|_| Coord::new(step(), step(), step())).collect(),
        1,
    );
    let got = INDEXED.kernel_map(&cloud, &cloud, 3);
    let want = GOLDEN.kernel_map(&cloud, &cloud, 3);
    assert_eq!(got.to_entries(), want.to_entries());
}
