//! Golden regression test: the geometric-mean speedup **and energy
//! ratio** of PointAcc over every baseline engine, locked to snapshot
//! values at two fixed workloads (`scale = 0.05` and `scale = 0.1`,
//! seed 42).
//!
//! The harness, the engines and the trace generator are all
//! deterministic, so these numbers must reproduce bit-for-bit modulo
//! floating-point noise. An engine or compiler refactor that changes the
//! reported results — intentionally or not — fails this test loudly;
//! update the snapshot only when the change is understood and the new
//! numbers are the ones future figures should report. The mapping
//! backends are bit-identical by contract (`tests/mapping_backends.rs`),
//! so backend swaps must *not* move these numbers.

use pointacc::{Accelerator, Engine, PointAccConfig};
use pointacc_baselines::{Mesorasi, MesorasiSw, Platform};
use pointacc_bench::harness::{Grid, GridRun};

/// Workload lock: do not change without regenerating the snapshots.
const GOLDEN_SEED: u64 = 42;

/// `(baseline name, geomean speedup of PointAcc.Full over it)` across
/// every (benchmark, seed) cell the baseline supports, at scale 0.05.
const GOLDEN_GEOMEANS: [(&str, f64); 9] = [
    ("RTX 2080Ti", 4.103448195550159),
    ("Xeon + TPUv3", 49.22709469905911),
    ("Xeon Gold 6130", 79.3468815171243),
    ("Jetson Xavier NX", 16.4903456389767),
    ("Jetson Nano", 40.06575072761132),
    ("Raspberry Pi 4B", 683.301170492624),
    ("Mesorasi", 28.319231858542654),
    ("Mesorasi-SW on Jetson Nano", 27.289168025352986),
    ("Mesorasi-SW on Raspberry Pi 4B", 314.7041152127234),
];

/// `(baseline name, geomean energy ratio rival/PointAcc.Full)` at scale
/// 0.05 — the "energy savings" axis of Fig. 13/14.
const GOLDEN_ENERGY_RATIOS: [(&str, f64); 9] = [
    ("RTX 2080Ti", 27.21304037795327),
    ("Xeon + TPUv3", 365.63717003909835),
    ("Xeon Gold 6130", 263.10431954907136),
    ("Jetson Xavier NX", 6.561590452729668),
    ("Jetson Nano", 10.628240839066493),
    ("Raspberry Pi 4B", 108.75557213418446),
    ("Mesorasi", 1.6924768870519833),
    ("Mesorasi-SW on Jetson Nano", 7.35422971357169),
    ("Mesorasi-SW on Raspberry Pi 4B", 50.8862641674638),
];

/// Geomean speedups at the larger scale 0.1 workload (feasible in a
/// test since trace compilation moved to the indexed mapping backend).
const GOLDEN_GEOMEANS_SCALE_0_1: [(&str, f64); 9] = [
    ("RTX 2080Ti", 4.244190676374155),
    ("Xeon + TPUv3", 50.4200662672314),
    ("Xeon Gold 6130", 83.75119016582455),
    ("Jetson Xavier NX", 17.920007466276274),
    ("Jetson Nano", 44.26857382266308),
    ("Raspberry Pi 4B", 783.0603481533475),
    ("Mesorasi", 35.280599519970096),
    ("Mesorasi-SW on Jetson Nano", 29.75230717675847),
    ("Mesorasi-SW on Raspberry Pi 4B", 371.2077620461859),
];

/// Relative tolerance: generous against FP-order noise, far tighter
/// than any real modeling change.
const REL_TOL: f64 = 1e-6;

/// Runs the full 10-engine grid (PointAcc.Full + 9 baselines) at one
/// scale.
fn golden_grid(scale: f64) -> GridRun {
    let acc = Accelerator::new(PointAccConfig::full());
    let platforms = [
        Platform::rtx_2080ti(),
        Platform::xeon_tpu_v3(),
        Platform::xeon_6130(),
        Platform::jetson_xavier_nx(),
        Platform::jetson_nano(),
        Platform::raspberry_pi_4b(),
    ];
    let mesorasi = Mesorasi::new();
    let sw_nano = MesorasiSw::on(Platform::jetson_nano());
    let sw_rpi = MesorasiSw::on(Platform::raspberry_pi_4b());

    let mut engines: Vec<&dyn Engine> = vec![&acc];
    engines.extend(platforms.iter().map(|p| p as &dyn Engine));
    engines.extend([&mesorasi as &dyn Engine, &sw_nano, &sw_rpi]);

    Grid::new().engines(engines).seeds([GOLDEN_SEED]).scale(scale).run()
}

/// Compares one metric against its snapshot, collecting drift reports.
fn check_snapshot(
    run: &GridRun,
    snapshot: &[(&str, f64)],
    metric: impl Fn(usize) -> f64,
    label: &str,
) {
    let mut failures = Vec::new();
    for (i, &(name, golden)) in snapshot.iter().enumerate() {
        let rival = 1 + i;
        assert_eq!(run.engines[rival], name, "baseline order changed — regenerate the snapshot");
        let got = metric(rival);
        println!("    (\"{name}\", {got}),");
        let rel = ((got - golden) / golden).abs();
        if rel.is_nan() || rel >= REL_TOL {
            failures.push(format!(
                "{name}: {label} {got} drifted from snapshot {golden} (rel {rel:.2e})"
            ));
        }
    }
    assert!(failures.is_empty(), "reported {label}s changed:\n{}", failures.join("\n"));
}

#[test]
fn geomean_speedups_and_energy_match_snapshot() {
    let run = golden_grid(0.05);
    println!("speedups @0.05:");
    check_snapshot(&run, &GOLDEN_GEOMEANS, |r| run.geomean_speedup(0, r), "geomean speedup");
    println!("energy ratios @0.05:");
    check_snapshot(
        &run,
        &GOLDEN_ENERGY_RATIOS,
        |r| run.geomean_energy_ratio(0, r),
        "geomean energy ratio",
    );
}

#[test]
fn geomean_speedups_match_snapshot_at_scale_0_1() {
    let run = golden_grid(0.1);
    println!("speedups @0.1:");
    check_snapshot(
        &run,
        &GOLDEN_GEOMEANS_SCALE_0_1,
        |r| run.geomean_speedup(0, r),
        "geomean speedup",
    );
}
