//! Golden regression test: the geometric-mean speedup **and energy
//! ratio** of PointAcc over every baseline engine, locked to snapshot
//! values at two fixed workloads (`scale = 0.05` and `scale = 0.1`,
//! seed 42).
//!
//! The harness, the engines and the trace generator are all
//! deterministic, so these numbers must reproduce bit-for-bit modulo
//! floating-point noise. An engine or compiler refactor that changes the
//! reported results — intentionally or not — fails this test loudly;
//! update the snapshot only when the change is understood and the new
//! numbers are the ones future figures should report. The mapping
//! backends are bit-identical by contract (`tests/mapping_backends.rs`),
//! so backend swaps must *not* move these numbers.

use pointacc::{Accelerator, Engine, PointAccConfig};
use pointacc_baselines::{Mesorasi, MesorasiSw, Platform};
use pointacc_bench::harness::{Grid, GridRun};

/// Workload lock: do not change without regenerating the snapshots.
///
/// Snapshot history: regenerated when the LiDAR generator's range
/// jitter was clamped to `(MIN_RANGE, max_range]` and along-ray to the
/// ground plane — the fix changes every generated outdoor cloud, so
/// the platform geomeans (which include KITTI/SemanticKITTI cells)
/// moved by ~1 %. Mesorasi rows, whose supported benchmarks run on
/// object/indoor clouds only, did not move — the expected signature of
/// a data-only change.
const GOLDEN_SEED: u64 = 42;

/// `(baseline name, geomean speedup of PointAcc.Full over it)` across
/// every (benchmark, seed) cell the baseline supports, at scale 0.05.
const GOLDEN_GEOMEANS: [(&str, f64); 9] = [
    ("RTX 2080Ti", 4.080054851929079),
    ("Xeon + TPUv3", 49.43726289166521),
    ("Xeon Gold 6130", 77.94400435418369),
    ("Jetson Xavier NX", 16.29305904062138),
    ("Jetson Nano", 39.489281450546),
    ("Raspberry Pi 4B", 670.389106568264),
    ("Mesorasi", 28.319231858542654),
    ("Mesorasi-SW on Jetson Nano", 27.289168025352986),
    ("Mesorasi-SW on Raspberry Pi 4B", 314.7041152127234),
];

/// `(baseline name, geomean energy ratio rival/PointAcc.Full)` at scale
/// 0.05 — the "energy savings" axis of Fig. 13/14.
const GOLDEN_ENERGY_RATIOS: [(&str, f64); 9] = [
    ("RTX 2080Ti", 27.137951279976413),
    ("Xeon + TPUv3", 368.2845476627045),
    ("Xeon Gold 6130", 259.2171759320842),
    ("Jetson Xavier NX", 6.502269089403624),
    ("Jetson Nano", 10.506311654898521),
    ("Raspberry Pi 4B", 107.01613133896795),
    ("Mesorasi", 1.6924768870519833),
    ("Mesorasi-SW on Jetson Nano", 7.35422971357169),
    ("Mesorasi-SW on Raspberry Pi 4B", 50.8862641674638),
];

/// Geomean speedups at the larger scale 0.1 workload (feasible in a
/// test since trace compilation moved to the indexed mapping backend).
const GOLDEN_GEOMEANS_SCALE_0_1: [(&str, f64); 9] = [
    ("RTX 2080Ti", 4.224138584427365),
    ("Xeon + TPUv3", 50.69234232515822),
    ("Xeon Gold 6130", 82.45071791160262),
    ("Jetson Xavier NX", 17.741070959899265),
    ("Jetson Nano", 43.72709828102217),
    ("Raspberry Pi 4B", 770.1969849333992),
    ("Mesorasi", 35.280599519970096),
    ("Mesorasi-SW on Jetson Nano", 29.75230717675847),
    ("Mesorasi-SW on Raspberry Pi 4B", 371.2077620461859),
];

/// Relative tolerance: generous against FP-order noise, far tighter
/// than any real modeling change.
const REL_TOL: f64 = 1e-6;

/// Runs the full 10-engine grid (PointAcc.Full + 9 baselines) at one
/// scale.
fn golden_grid(scale: f64) -> GridRun {
    let acc = Accelerator::new(PointAccConfig::full());
    let platforms = [
        Platform::rtx_2080ti(),
        Platform::xeon_tpu_v3(),
        Platform::xeon_6130(),
        Platform::jetson_xavier_nx(),
        Platform::jetson_nano(),
        Platform::raspberry_pi_4b(),
    ];
    let mesorasi = Mesorasi::new();
    let sw_nano = MesorasiSw::on(Platform::jetson_nano());
    let sw_rpi = MesorasiSw::on(Platform::raspberry_pi_4b());

    let mut engines: Vec<&dyn Engine> = vec![&acc];
    engines.extend(platforms.iter().map(|p| p as &dyn Engine));
    engines.extend([&mesorasi as &dyn Engine, &sw_nano, &sw_rpi]);

    Grid::new().engines(engines).seeds([GOLDEN_SEED]).scale(scale).run()
}

/// Compares one metric against its snapshot, collecting drift reports.
fn check_snapshot(
    run: &GridRun,
    snapshot: &[(&str, f64)],
    metric: impl Fn(usize) -> f64,
    label: &str,
) {
    let mut failures = Vec::new();
    for (i, &(name, golden)) in snapshot.iter().enumerate() {
        let rival = 1 + i;
        assert_eq!(run.engines[rival], name, "baseline order changed — regenerate the snapshot");
        let got = metric(rival);
        println!("    (\"{name}\", {got}),");
        let rel = ((got - golden) / golden).abs();
        if rel.is_nan() || rel >= REL_TOL {
            failures.push(format!(
                "{name}: {label} {got} drifted from snapshot {golden} (rel {rel:.2e})"
            ));
        }
    }
    assert!(failures.is_empty(), "reported {label}s changed:\n{}", failures.join("\n"));
}

#[test]
fn geomean_speedups_and_energy_match_snapshot() {
    let run = golden_grid(0.05);
    println!("speedups @0.05:");
    check_snapshot(&run, &GOLDEN_GEOMEANS, |r| run.geomean_speedup(0, r), "geomean speedup");
    println!("energy ratios @0.05:");
    check_snapshot(
        &run,
        &GOLDEN_ENERGY_RATIOS,
        |r| run.geomean_energy_ratio(0, r),
        "geomean energy ratio",
    );
}

#[test]
fn geomean_speedups_match_snapshot_at_scale_0_1() {
    let run = golden_grid(0.1);
    println!("speedups @0.1:");
    check_snapshot(
        &run,
        &GOLDEN_GEOMEANS_SCALE_0_1,
        |r| run.geomean_speedup(0, r),
        "geomean speedup",
    );
}
