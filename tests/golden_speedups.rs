//! Golden regression test: the geometric-mean speedup of PointAcc over
//! every baseline engine, at a fixed workload (`scale = 0.05`, seed 42),
//! locked to snapshot values.
//!
//! The harness, the engines and the trace generator are all
//! deterministic, so these numbers must reproduce bit-for-bit modulo
//! floating-point noise. An engine or compiler refactor that changes the
//! reported results — intentionally or not — fails this test loudly;
//! update the snapshot only when the change is understood and the new
//! numbers are the ones future figures should report.

use pointacc::{Accelerator, Engine, PointAccConfig};
use pointacc_baselines::{Mesorasi, MesorasiSw, Platform};
use pointacc_bench::harness::Grid;

/// Workload lock: do not change without regenerating the snapshot.
const GOLDEN_SCALE: f64 = 0.05;
const GOLDEN_SEED: u64 = 42;

/// `(baseline name, geomean speedup of PointAcc.Full over it)` across
/// every (benchmark, seed) cell the baseline supports.
const GOLDEN_GEOMEANS: [(&str, f64); 9] = [
    ("RTX 2080Ti", 4.103448195550159),
    ("Xeon + TPUv3", 49.22709469905911),
    ("Xeon Gold 6130", 79.3468815171243),
    ("Jetson Xavier NX", 16.4903456389767),
    ("Jetson Nano", 40.06575072761132),
    ("Raspberry Pi 4B", 683.301170492624),
    ("Mesorasi", 28.319231858542654),
    ("Mesorasi-SW on Jetson Nano", 27.289168025352986),
    ("Mesorasi-SW on Raspberry Pi 4B", 314.7041152127234),
];

/// Relative tolerance: generous against FP-order noise, far tighter
/// than any real modeling change.
const REL_TOL: f64 = 1e-6;

#[test]
fn geomean_speedups_match_snapshot() {
    let acc = Accelerator::new(PointAccConfig::full());
    let platforms = [
        Platform::rtx_2080ti(),
        Platform::xeon_tpu_v3(),
        Platform::xeon_6130(),
        Platform::jetson_xavier_nx(),
        Platform::jetson_nano(),
        Platform::raspberry_pi_4b(),
    ];
    let mesorasi = Mesorasi::new();
    let sw_nano = MesorasiSw::on(Platform::jetson_nano());
    let sw_rpi = MesorasiSw::on(Platform::raspberry_pi_4b());

    let mut engines: Vec<&dyn Engine> = vec![&acc];
    engines.extend(platforms.iter().map(|p| p as &dyn Engine));
    engines.extend([&mesorasi as &dyn Engine, &sw_nano, &sw_rpi]);

    let run = Grid::new().engines(engines).seeds([GOLDEN_SEED]).scale(GOLDEN_SCALE).run();

    let mut failures = Vec::new();
    for (i, &(name, golden)) in GOLDEN_GEOMEANS.iter().enumerate() {
        let rival = 1 + i;
        assert_eq!(run.engines[rival], name, "baseline order changed — regenerate the snapshot");
        let got = run.geomean_speedup(0, rival);
        println!("    (\"{name}\", {got}),");
        let rel = ((got - golden) / golden).abs();
        if rel.is_nan() || rel >= REL_TOL {
            failures.push(format!(
                "{name}: geomean speedup {got} drifted from snapshot {golden} (rel {rel:.2e})"
            ));
        }
    }
    assert!(failures.is_empty(), "reported results changed:\n{}", failures.join("\n"));
}
