//! Smoke test for the unified engine harness: every hardware model —
//! both PointAcc configurations, all six general-purpose platforms,
//! Mesorasi-HW and both Mesorasi-SW variants — produces finite, nonzero
//! latency and energy on every Table 2 benchmark it supports, evaluated
//! as one thread-parallel grid.

use pointacc::{Accelerator, Engine, PointAccConfig, Seconds};
use pointacc_baselines::{Mesorasi, MesorasiSw, Platform};
use pointacc_bench::harness::Grid;
use pointacc_nn::zoo;
use pointacc_sim::PicoJoules;

fn scale_down() {
    // Keep the full 11-engine × 8-benchmark grid cheap in debug CI runs.
    std::env::set_var("POINTACC_SCALE", "0.1");
}

#[test]
fn every_engine_is_physical_on_every_benchmark() {
    scale_down();
    let full = Accelerator::new(PointAccConfig::full());
    let edge = Accelerator::new(PointAccConfig::edge());
    let platforms = [
        Platform::rtx_2080ti(),
        Platform::xeon_6130(),
        Platform::xeon_tpu_v3(),
        Platform::jetson_xavier_nx(),
        Platform::jetson_nano(),
        Platform::raspberry_pi_4b(),
    ];
    let mesorasi = Mesorasi::new();
    let sw_nano = MesorasiSw::on(Platform::jetson_nano());
    let sw_rpi = MesorasiSw::on(Platform::raspberry_pi_4b());

    let mut engines: Vec<&dyn Engine> = vec![&full, &edge];
    engines.extend(platforms.iter().map(|p| p as &dyn Engine));
    engines.extend([&mesorasi as &dyn Engine, &sw_nano, &sw_rpi]);
    let n_engines = engines.len();

    let run = Grid::new().engines(engines).run();
    assert_eq!(run.benchmarks.len(), zoo::benchmarks().len());

    let mut evaluated = 0;
    let mut skipped = 0;
    for e in 0..n_engines {
        for b in 0..run.benchmarks.len() {
            let label = format!("{} on {}", run.engines[e], run.benchmarks[b].notation);
            match run.report(e, b, 0) {
                Some(r) => {
                    evaluated += 1;
                    assert!(r.is_physical(), "{label}: non-physical report {r:?}");
                    assert!(r.latency_ms() > 0.0 && r.latency_ms().is_finite(), "{label}");
                    assert!(r.energy.to_millijoules() > 0.0, "{label}");
                    assert_eq!(r.engine, run.engines[e], "{label}");
                }
                None => {
                    skipped += 1;
                    // Only the Mesorasi family may skip benchmarks, and
                    // only the SparseConv-based MinkNets.
                    assert!(
                        run.engines[e].starts_with("Mesorasi"),
                        "{label} unexpectedly unsupported"
                    );
                    assert!(run.benchmarks[b].notation.starts_with("MinkNet"), "{label}");
                }
            }
        }
    }
    // 11 engines × 8 benchmarks, minus 3 Mesorasi variants × 2 MinkNets.
    assert_eq!(evaluated, n_engines * 8 - 6);
    assert_eq!(skipped, 6);
}

#[test]
fn accelerator_stays_fastest_in_the_unified_grid() {
    scale_down();
    let full = Accelerator::new(PointAccConfig::full());
    let cpu = Platform::xeon_6130();
    let tpu = Platform::xeon_tpu_v3();
    let run = Grid::new().engines([&full as &dyn Engine, &cpu, &tpu]).run();
    for b in 0..run.benchmarks.len() {
        for rival in 1..=2 {
            let speedup = run.speedup(0, rival, b, 0).expect("all supported");
            assert!(
                speedup > 1.0,
                "{} should lose to PointAcc on {} (speedup {speedup})",
                run.engines[rival],
                run.benchmarks[b].notation
            );
        }
    }
}

#[test]
fn multi_seed_grids_index_correctly() {
    scale_down();
    let edge = Accelerator::new(PointAccConfig::edge());
    let benchmarks: Vec<_> = zoo::benchmarks()
        .into_iter()
        .filter(|b| b.notation == "PointNet++(c)" || b.notation == "MinkNet(i)")
        .collect();
    let run = Grid::new().engine(&edge).benchmarks(benchmarks).seeds([1, 2, 3]).run();
    for b in 0..2 {
        for s in 0..3 {
            let r = run.report(0, b, s).expect("accelerator runs everything");
            assert!(r.is_physical());
            assert_eq!(r.network, run.trace(b, s).network);
        }
        // Sparse-conv workloads (kernel maps) depend on voxel occupancy,
        // so different seeds must produce different map counts. Dense and
        // padded-neighborhood networks have structurally fixed sizes.
        if run.benchmarks[b].notation == "MinkNet(i)" {
            assert_ne!(
                run.trace(b, 0).total_maps(),
                run.trace(b, 1).total_maps(),
                "seeds should vary the sparse workload"
            );
        }
    }
}

#[test]
fn unit_conversions_at_the_unified_report_boundary() {
    // Seconds → milliseconds.
    assert_eq!(Seconds(1.0).to_millis(), 1000.0);
    assert_eq!(Seconds(0.0125).to_millis(), 12.5);
    // PicoJoules → millijoules / joules round trips.
    assert!((PicoJoules::new(1e9).to_millijoules() - 1.0).abs() < 1e-12);
    assert!((PicoJoules::from_joules(2.0).to_joules() - 2.0).abs() < 1e-12);
    // A platform report carries joule-scale energy through PicoJoules
    // without precision loss at the boundary.
    scale_down();
    let trace = pointacc_bench::benchmark_trace(&zoo::benchmarks()[0], 42);
    let r = Platform::jetson_nano().evaluate(&trace);
    assert!((r.energy.to_joules() - r.total.0 * 10.0).abs() < 1e-9);
    assert!((r.total.to_millis() - r.latency_ms()).abs() < 1e-12);
}
