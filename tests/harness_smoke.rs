//! Smoke test for the unified engine harness: every hardware model —
//! both PointAcc configurations, all six general-purpose platforms,
//! Mesorasi-HW and both Mesorasi-SW variants — produces finite, nonzero
//! latency and energy on every Table 2 benchmark it supports, evaluated
//! as one thread-parallel grid.

use pointacc::{Accelerator, Engine, PointAccConfig, Seconds};
use pointacc_baselines::{Mesorasi, MesorasiSw, Platform};
use pointacc_bench::harness::Grid;
use pointacc_nn::zoo;
use pointacc_sim::PicoJoules;

/// Keeps the full 11-engine × 8-benchmark grid cheap in debug CI runs.
/// Passed explicitly through [`Grid::scale`] — mutating `POINTACC_SCALE`
/// from tests is racy under the parallel test runner.
const TEST_SCALE: f64 = 0.1;

#[test]
fn every_engine_is_physical_on_every_benchmark() {
    let full = Accelerator::new(PointAccConfig::full());
    let edge = Accelerator::new(PointAccConfig::edge());
    let platforms = [
        Platform::rtx_2080ti(),
        Platform::xeon_6130(),
        Platform::xeon_tpu_v3(),
        Platform::jetson_xavier_nx(),
        Platform::jetson_nano(),
        Platform::raspberry_pi_4b(),
    ];
    let mesorasi = Mesorasi::new();
    let sw_nano = MesorasiSw::on(Platform::jetson_nano());
    let sw_rpi = MesorasiSw::on(Platform::raspberry_pi_4b());

    let mut engines: Vec<&dyn Engine> = vec![&full, &edge];
    engines.extend(platforms.iter().map(|p| p as &dyn Engine));
    engines.extend([&mesorasi as &dyn Engine, &sw_nano, &sw_rpi]);
    let n_engines = engines.len();

    let run = Grid::new().engines(engines).scale(TEST_SCALE).run();
    assert_eq!(run.benchmarks.len(), zoo::benchmarks().len());

    let mut evaluated = 0;
    let mut skipped = 0;
    for e in 0..n_engines {
        for b in 0..run.benchmarks.len() {
            let label = format!("{} on {}", run.engines[e], run.benchmarks[b].notation);
            match run.report(e, b, 0) {
                Some(r) => {
                    evaluated += 1;
                    assert!(r.is_physical(), "{label}: non-physical report {r:?}");
                    assert!(r.latency_ms() > 0.0 && r.latency_ms().is_finite(), "{label}");
                    assert!(r.energy.to_millijoules() > 0.0, "{label}");
                    assert_eq!(r.engine, run.engines[e], "{label}");
                }
                None => {
                    skipped += 1;
                    // Only the Mesorasi family may skip benchmarks, and
                    // only the SparseConv-based MinkNets.
                    assert!(
                        run.engines[e].starts_with("Mesorasi"),
                        "{label} unexpectedly unsupported"
                    );
                    assert!(run.benchmarks[b].notation.starts_with("MinkNet"), "{label}");
                }
            }
        }
    }
    // 11 engines × 8 benchmarks, minus 3 Mesorasi variants × 2 MinkNets.
    assert_eq!(evaluated, n_engines * 8 - 6);
    assert_eq!(skipped, 6);
}

#[test]
fn accelerator_stays_fastest_in_the_unified_grid() {
    let full = Accelerator::new(PointAccConfig::full());
    let cpu = Platform::xeon_6130();
    let tpu = Platform::xeon_tpu_v3();
    let run = Grid::new().engines([&full as &dyn Engine, &cpu, &tpu]).scale(TEST_SCALE).run();
    for b in 0..run.benchmarks.len() {
        for rival in 1..=2 {
            let speedup = run.speedup(0, rival, b, 0).expect("all supported");
            assert!(
                speedup > 1.0,
                "{} should lose to PointAcc on {} (speedup {speedup})",
                run.engines[rival],
                run.benchmarks[b].notation
            );
        }
    }
}

#[test]
fn multi_seed_grids_index_correctly() {
    let edge = Accelerator::new(PointAccConfig::edge());
    let benchmarks: Vec<_> = zoo::benchmarks()
        .into_iter()
        .filter(|b| b.notation == "PointNet++(c)" || b.notation == "MinkNet(i)")
        .collect();
    let run =
        Grid::new().engine(&edge).benchmarks(benchmarks).seeds([1, 2, 3]).scale(TEST_SCALE).run();
    for b in 0..2 {
        for s in 0..3 {
            let r = run.report(0, b, s).expect("accelerator runs everything");
            assert!(r.is_physical());
            assert_eq!(r.network, run.trace(b, s).network);
        }
        // Sparse-conv workloads (kernel maps) depend on voxel occupancy,
        // so different seeds must produce different map counts. Dense and
        // padded-neighborhood networks have structurally fixed sizes.
        if run.benchmarks[b].notation == "MinkNet(i)" {
            assert_ne!(
                run.trace(b, 0).total_maps(),
                run.trace(b, 1).total_maps(),
                "seeds should vary the sparse workload"
            );
        }
    }
}

#[test]
fn grid_layout_matches_hand_computed_indexing() {
    // 2 engines × 3 benchmarks × 2 seeds: every lookup helper must agree
    // with the flat row-major layout (engine, then benchmark, then seed)
    // computed by hand against independent sequential evaluation.
    let edge = Accelerator::new(PointAccConfig::edge());
    let nano = Platform::jetson_nano();
    let engines: [&dyn Engine; 2] = [&edge, &nano];
    let benchmarks: Vec<_> = zoo::benchmarks().into_iter().take(3).collect();
    let seeds = [5u64, 6];
    let run = Grid::new()
        .engines(engines)
        .benchmarks(benchmarks.clone())
        .seeds(seeds)
        .scale(TEST_SCALE)
        .run();

    for (b, bench) in benchmarks.iter().enumerate() {
        for (s, &seed) in seeds.iter().enumerate() {
            let trace = pointacc_bench::benchmark_trace_at(bench, seed, TEST_SCALE);
            assert_eq!(run.trace(b, s).fingerprint(), trace.fingerprint(), "trace({b},{s})");
            for (e, engine) in engines.iter().enumerate() {
                let want = engine.evaluate(&trace);
                assert_eq!(run.report(e, b, s), Some(&want), "report({e},{b},{s})");
            }
            let want_speedup = nano.evaluate(&trace).total.0 / edge.evaluate(&trace).total.0;
            let got = run.speedup(0, 1, b, s).expect("both supported");
            assert!((got - want_speedup).abs() < 1e-12, "speedup({b},{s})");
        }
        // The seed-axis statistics must aggregate exactly the two
        // per-seed samples of this benchmark.
        let samples: Vec<f64> = (0..2).map(|s| run.speedup(0, 1, b, s).unwrap()).collect();
        let want = pointacc::Summary::from_samples(&samples);
        assert_eq!(run.speedup_summary(0, 1, b), Some(want), "summary({b})");
        assert_eq!(run.mean_speedup(0, 1, b), Some(want.mean));
        assert_eq!(run.ci95_speedup(0, 1, b), Some(want.ci95));
    }
}

#[test]
fn repeated_grid_runs_compile_each_trace_exactly_once() {
    // Two identical grids: the process-wide trace cache must compile
    // each (benchmark, seed, scale) trace once and serve the second run
    // entirely from cache. The seed/scale pair is unique to this test so
    // concurrent tests sharing the global cache cannot interfere.
    let seed = 90_042u64;
    let scale = 0.061;
    let edge = Accelerator::new(PointAccConfig::edge());
    let nano = Platform::jetson_nano();
    let benchmarks: Vec<_> = zoo::benchmarks().into_iter().take(4).collect();

    let grid = || {
        Grid::new()
            .engines([&edge as &dyn Engine, &nano])
            .benchmarks(benchmarks.clone())
            .seeds([seed])
            .scale(scale)
            .run()
    };
    let first = grid();
    let second = grid();

    let cache = pointacc_bench::cache::global();
    for (b, bench) in benchmarks.iter().enumerate() {
        let key = pointacc_bench::benchmark_trace_key(bench, seed, scale);
        assert_eq!(
            cache.compile_count(&key),
            1,
            "{} compiled more than once across identical runs",
            bench.notation
        );
        // Both runs share the identical compiled trace and reports.
        assert_eq!(first.trace(b, 0).fingerprint(), second.trace(b, 0).fingerprint());
        assert_eq!(first.report(0, b, 0), second.report(0, b, 0));
        assert_eq!(first.report(1, b, 0), second.report(1, b, 0));
    }
}

#[test]
fn unit_conversions_at_the_unified_report_boundary() {
    // Seconds → milliseconds.
    assert_eq!(Seconds(1.0).to_millis(), 1000.0);
    assert_eq!(Seconds(0.0125).to_millis(), 12.5);
    // PicoJoules → millijoules / joules round trips.
    assert!((PicoJoules::new(1e9).to_millijoules() - 1.0).abs() < 1e-12);
    assert!((PicoJoules::from_joules(2.0).to_joules() - 2.0).abs() < 1e-12);
    // A platform report carries joule-scale energy through PicoJoules
    // without precision loss at the boundary.
    let trace = pointacc_bench::benchmark_trace_at(&zoo::benchmarks()[0], 42, TEST_SCALE);
    let r = Platform::jetson_nano().evaluate(&trace);
    assert!((r.energy.to_joules() - r.total.0 * 10.0).abs() < 1e-9);
    assert!((r.total.to_millis() - r.latency_ms()).abs() < 1e-12);
}
