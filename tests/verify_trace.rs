//! Mutation tests for the static trace verifier on a *real* MinkowskiNet
//! trace: each test clones the compiled trace, corrupts exactly one
//! aspect (CSR offsets, map indices, layer shapes, skip domains,
//! aggregation/pool/fusability metadata), and asserts that
//! [`verify_trace`] rejects it with the precise [`VerifyError`] variant
//! naming the mutated layer — plus a property that every trace served
//! through the cache verifies clean.
//!
//! CSR violations themselves (non-monotone or non-covering offsets) are
//! unrepresentable in a live [`MapTable`]: every constructor validates,
//! so those mutations are asserted at the [`MapTable::try_from_soa`]
//! boundary, which returns the same typed [`MapTableError`]s that
//! [`verify_trace`] surfaces as `MalformedTable` when a deserialized
//! table crosses it.

use std::sync::OnceLock;

use pointacc_bench::cache::TraceCache;
use pointacc_bench::{benchmark_trace_at, benchmark_trace_key};
use pointacc_geom::{MapTable, MapTableError};
use pointacc_nn::{
    artifact, verify_trace, zoo, Aggregation, ComputeKind, MappingOp, NetworkTrace, TraceKey,
    VerifyError,
};
use proptest::prelude::*;

const SCALE: f64 = 0.02;

/// One compiled MinkNet(i) trace shared by every mutation test (the
/// compile is the expensive part; each test clones and corrupts it).
fn minknet() -> &'static (TraceKey, NetworkTrace) {
    static TRACE: OnceLock<(TraceKey, NetworkTrace)> = OnceLock::new();
    TRACE.get_or_init(|| {
        let bench = zoo::benchmarks()
            .into_iter()
            .find(|b| b.notation == "MinkNet(i)")
            .expect("Table 2 lists MinkNet(i)");
        let key = benchmark_trace_key(&bench, 42, SCALE);
        (key, benchmark_trace_at(&bench, 42, SCALE))
    })
}

/// Index of the first layer carrying a non-empty map table.
fn first_mapped_layer(trace: &NetworkTrace) -> usize {
    trace
        .layers
        .iter()
        .position(|l| l.maps.as_ref().is_some_and(|m| !m.is_empty()))
        .expect("MinkNet traces carry map tables")
}

/// Index of the first sparse-conv layer.
fn first_sparse_layer(trace: &NetworkTrace) -> usize {
    trace
        .layers
        .iter()
        .position(|l| l.compute == ComputeKind::SparseConv)
        .expect("MinkNet is built from sparse convs")
}

/// Index of the first transposed conv: a sparse conv whose single
/// mapping op spans two resolutions (the decoder's upsampling path).
fn first_transposed_layer(trace: &NetworkTrace) -> usize {
    trace
        .layers
        .iter()
        .position(|l| {
            l.compute == ComputeKind::SparseConv && l.mapping.len() == 1 && l.n_in != l.n_out
        })
        .expect("MinkUNet decoders hold transposed convs")
}

/// Index of the first strided downsampling conv (Quantize + KernelMap).
fn first_downsample_layer(trace: &NetworkTrace) -> usize {
    trace
        .layers
        .iter()
        .position(|l| l.compute == ComputeKind::SparseConv && l.mapping.len() == 2)
        .expect("MinkUNet encoders hold strided convs")
}

#[test]
fn minknet_trace_verifies_clean() {
    let (key, trace) = minknet();
    let report = verify_trace(key, trace).expect("freshly compiled trace");
    assert_eq!(report.layers, trace.layers.len());
    assert_eq!(report.map_entries, trace.total_maps());
    assert_eq!(report.fingerprint, trace.fingerprint());
    assert!(report.tables >= 4, "MinkNet holds several kernel-map tables");
}

#[test]
fn csr_offset_mutations_cannot_even_construct_a_table() {
    let (_, trace) = minknet();
    let m = trace.layers[first_mapped_layer(trace)].maps.as_ref().unwrap();
    let (inputs, outputs) = (m.inputs().to_vec(), m.outputs().to_vec());

    // Flip the leading offset off zero.
    let mut offs = m.offsets().to_vec();
    offs[0] += 1;
    assert!(matches!(
        MapTable::try_from_soa(inputs.clone(), outputs.clone(), offs),
        Err(MapTableError::OffsetsStartNonzero(1))
    ));

    // Permute an ascending adjacent pair (past the pinned-to-zero
    // leading offset): monotonicity breaks.
    let mut offs = m.offsets().to_vec();
    let j = (1..offs.len() - 1)
        .find(|&j| offs[j] < offs[j + 1])
        .expect("a populated table ascends somewhere past offset 0");
    offs.swap(j, j + 1);
    assert!(matches!(
        MapTable::try_from_soa(inputs.clone(), outputs.clone(), offs),
        Err(MapTableError::OffsetsNotMonotone)
    ));

    // Stretch the final offset past the arrays: coverage breaks.
    let mut offs = m.offsets().to_vec();
    *offs.last_mut().unwrap() += 1;
    assert!(matches!(
        MapTable::try_from_soa(inputs, outputs, offs),
        Err(MapTableError::OffsetsDoNotCover { .. })
    ));
}

#[test]
fn out_of_range_input_index_is_rejected_with_location() {
    let (key, trace) = minknet();
    let mut trace = trace.clone();
    let li = first_mapped_layer(&trace);
    let l = &mut trace.layers[li];
    let bound = l.n_in;
    let m = l.maps.as_mut().unwrap();
    let mut inputs = m.inputs().to_vec();
    inputs[0] = bound as u32;
    *m = MapTable::try_from_soa(inputs, m.outputs().to_vec(), m.offsets().to_vec()).unwrap();
    match verify_trace(key, &trace).unwrap_err() {
        VerifyError::InputIndexOutOfBounds { layer, index, bound: b, .. } => {
            assert_eq!(layer, li);
            assert_eq!(index as usize, bound);
            assert_eq!(b, bound);
        }
        other => panic!("wrong error: {other:?}"),
    }
}

#[test]
fn out_of_range_output_index_is_rejected_with_location() {
    let (key, trace) = minknet();
    let mut trace = trace.clone();
    let li = first_mapped_layer(&trace);
    let l = &mut trace.layers[li];
    let bound = l.n_out;
    let m = l.maps.as_mut().unwrap();
    let mut outputs = m.outputs().to_vec();
    let last = outputs.len() - 1;
    outputs[last] = bound as u32 + 9;
    *m = MapTable::try_from_soa(m.inputs().to_vec(), outputs, m.offsets().to_vec()).unwrap();
    match verify_trace(key, &trace).unwrap_err() {
        VerifyError::OutputIndexOutOfBounds { layer, index, bound: b, .. } => {
            assert_eq!(layer, li);
            assert_eq!(index as usize, bound + 9);
            assert_eq!(b, bound);
        }
        other => panic!("wrong error: {other:?}"),
    }
}

#[test]
fn row_mutation_breaks_the_dataflow_chain() {
    let (key, trace) = minknet();
    let mut trace = trace.clone();
    let li = 1; // any non-first layer: its rows must match upstream
    let expected = trace.layers[li].n_in;
    trace.layers[li].n_in += 1;
    assert_eq!(
        verify_trace(key, &trace).unwrap_err(),
        VerifyError::RowMismatch { layer: li, expected, found: expected + 1 }
    );
}

#[test]
fn channel_mutation_breaks_the_dataflow_chain() {
    let (key, trace) = minknet();
    let mut trace = trace.clone();
    let li = 1;
    let expected = trace.layers[li].in_ch;
    trace.layers[li].in_ch += 1;
    assert_eq!(
        verify_trace(key, &trace).unwrap_err(),
        VerifyError::ChannelMismatch { layer: li, expected, found: expected + 1 }
    );
}

#[test]
fn zeroed_shape_is_rejected_before_anything_else() {
    let (key, trace) = minknet();
    let mut trace = trace.clone();
    trace.layers[0].out_ch = 0;
    assert_eq!(
        verify_trace(key, &trace).unwrap_err(),
        VerifyError::EmptyShape { layer: 0, what: "out_ch" }
    );
}

#[test]
fn quantize_shape_mutation_is_pinned_to_the_op() {
    let (key, trace) = minknet();
    let mut trace = trace.clone();
    let li = first_downsample_layer(&trace);
    match &mut trace.layers[li].mapping[0] {
        MappingOp::Quantize { n_out, .. } => *n_out += 1,
        other => panic!("downsample conv leads with Quantize, got {other:?}"),
    }
    assert!(matches!(
        verify_trace(key, &trace).unwrap_err(),
        VerifyError::MappingShape { layer, op: 0, .. } if layer == li
    ));
}

#[test]
fn kernel_volume_mutation_is_rejected() {
    let (key, trace) = minknet();
    let mut trace = trace.clone();
    let li = first_downsample_layer(&trace);
    let groups = trace.layers[li].maps.as_ref().unwrap().n_weights();
    match &mut trace.layers[li].mapping[1] {
        MappingOp::KernelMap { kernel_volume, .. } => *kernel_volume += 1,
        other => panic!("downsample conv ends with KernelMap, got {other:?}"),
    }
    assert_eq!(
        verify_trace(key, &trace).unwrap_err(),
        VerifyError::KernelVolumeMismatch { layer: li, declared: groups + 1, groups }
    );
}

#[test]
fn map_count_mutation_is_rejected() {
    let (key, trace) = minknet();
    let mut trace = trace.clone();
    let li = first_downsample_layer(&trace);
    let found = trace.layers[li].maps.as_ref().unwrap().len();
    match &mut trace.layers[li].mapping[1] {
        MappingOp::KernelMap { n_maps, .. } => *n_maps += 1,
        other => panic!("downsample conv ends with KernelMap, got {other:?}"),
    }
    assert_eq!(
        verify_trace(key, &trace).unwrap_err(),
        VerifyError::MapCountMismatch { layer: li, declared: found + 1, found }
    );
}

/// Grow a transposed conv's output domain (keeping its mapping op
/// consistent with the new shape, so the shape checks pass): the layer
/// no longer matches the encoder level on the skip stack.
#[test]
fn skip_domain_mutation_is_rejected() {
    let (key, trace) = minknet();
    let mut trace = trace.clone();
    let li = first_transposed_layer(&trace);
    let orig = trace.layers[li].n_out;
    // +1, or +2 if that would collapse the trace back to unit stride.
    let delta = if orig + 1 == trace.layers[li].n_in { 2 } else { 1 };
    trace.layers[li].n_out = orig + delta;
    match &mut trace.layers[li].mapping[0] {
        // The op records the forward fine→coarse construction, so its
        // input side is the layer's (fine) output domain.
        MappingOp::KernelMap { n_in, .. } => *n_in = orig + delta,
        other => panic!("transposed conv maps with KernelMap, got {other:?}"),
    }
    assert_eq!(
        verify_trace(key, &trace).unwrap_err(),
        VerifyError::SkipDomainMismatch { layer: li, skip_rows: orig, n_out: orig + delta }
    );
}

#[test]
fn aggregation_flip_is_rejected() {
    let (key, trace) = minknet();
    let mut trace = trace.clone();
    let li = first_sparse_layer(&trace);
    trace.layers[li].aggregation = Aggregation::Max;
    assert_eq!(
        verify_trace(key, &trace).unwrap_err(),
        VerifyError::AggregationMismatch {
            layer: li,
            expected: Aggregation::Sum,
            found: Aggregation::Max,
        }
    );
}

#[test]
fn pool_group_on_a_conv_is_rejected() {
    let (key, trace) = minknet();
    let mut trace = trace.clone();
    let li = first_sparse_layer(&trace);
    trace.layers[li].pool_group = Some(3);
    assert!(matches!(
        verify_trace(key, &trace).unwrap_err(),
        VerifyError::PoolGroup { layer, .. } if layer == li
    ));
}

#[test]
fn fusability_flip_is_rejected() {
    let (key, trace) = minknet();
    let mut trace = trace.clone();
    let li = first_sparse_layer(&trace);
    trace.layers[li].fusable = true;
    assert_eq!(
        verify_trace(key, &trace).unwrap_err(),
        VerifyError::Fusability { layer: li, expected: false }
    );
}

#[test]
fn dropped_map_table_is_rejected() {
    let (key, trace) = minknet();
    let mut trace = trace.clone();
    let li = first_sparse_layer(&trace);
    trace.layers[li].maps = None;
    assert_eq!(verify_trace(key, &trace).unwrap_err(), VerifyError::MissingMaps { layer: li });
}

/// The acceptance criterion at the artifact boundary: a structurally
/// corrupt trace written through the *honest* encoder (checksum and
/// fingerprint both freshly computed over the corrupt body) must be
/// rejected by the verifier at load — not executed.
#[test]
fn corrupt_but_checksum_valid_artifact_is_rejected_at_load() {
    let (key, trace) = minknet();
    let mut mutated = trace.clone();
    let li = first_sparse_layer(&mutated);
    mutated.layers[li].fusable = true;

    let dir = std::env::temp_dir().join(format!("pointacc-verify-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    artifact::save(&dir, key, &mutated).expect("save does not verify; load does");
    match artifact::load(&dir, key) {
        Err(artifact::ArtifactError::Rejected(VerifyError::Fusability { layer, .. })) => {
            assert_eq!(layer, li);
        }
        other => panic!("checksum-valid corrupt artifact must be Rejected, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every trace served through the cache verifies clean — across the
    /// whole zoo and varying seeds, on both the build and audit paths.
    #[test]
    fn every_cache_served_trace_verifies_clean(which in 0usize..8, seed in 0u64..1000) {
        let benches = zoo::benchmarks();
        let bench = &benches[which % benches.len()];
        let key = benchmark_trace_key(bench, seed, SCALE);
        let cache = TraceCache::new();
        let served = cache.get_or_build(&key, || benchmark_trace_at(bench, seed, SCALE));
        prop_assert!(verify_trace(&key, &served).is_ok(), "{} must verify", bench.notation);
        prop_assert_eq!(cache.verify_all().expect("cached traces re-verify"), 1);
        prop_assert_eq!(cache.stats().verify_rejects, 0);
    }
}
