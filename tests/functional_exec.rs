//! Functional correctness of the reference executor on real synthetic
//! data: exact shapes, value sanity, and agreement between the systolic
//! functional model and plain matmul inside a real network layer.

use pointacc_data::Dataset;
use pointacc_geom::FeatureMatrix;
use pointacc_nn::{zoo, ExecMode, ExecOptions, Executor};
use pointacc_sim::SystolicArray;

#[test]
fn classification_networks_emit_class_logits() {
    let pts = Dataset::ModelNet40.generate(1, 256);
    for (net, classes) in
        [(zoo::pointnet(), 40), (zoo::pointnet_pp_classification(), 40), (zoo::dgcnn(), 40)]
    {
        let out = Executor::new(ExecMode::Full, 5).run(&net, &pts);
        assert_eq!(out.features.rows(), 1, "{}", net.name());
        assert_eq!(out.features.cols(), classes, "{}", net.name());
        assert!(
            out.features.row(0).iter().all(|v| v.is_finite()),
            "{} produced non-finite logits",
            net.name()
        );
    }
}

#[test]
fn segmentation_networks_emit_per_point_logits() {
    let pts = Dataset::S3dis.generate(2, 512);
    let out = Executor::new(ExecMode::Full, 5).run(&zoo::pointnet_pp_segmentation(), &pts);
    assert_eq!(out.features.rows(), 512);
    assert_eq!(out.features.cols(), 13);
}

#[test]
fn voxel_network_preserves_resolution_through_unet() {
    let pts = Dataset::S3dis.generate(3, 2000);
    let out = Executor::new(ExecMode::Full, 5).run(&zoo::mini_minkunet(), &pts);
    let (voxels, _) = pts.voxelize(0.05);
    assert_eq!(out.features.rows(), voxels.len());
    assert_eq!(out.features.cols(), 13);
}

#[test]
fn minkowski_net_full_mode_produces_nonzero_per_voxel_features() {
    let pts = Dataset::S3dis.generate(42, 400);
    let out = Executor::new(ExecMode::Full, 42).run(&zoo::minkowski_net(), &pts);
    let (voxels, _) = pts.voxelize(0.05);
    assert_eq!(out.features.rows(), voxels.len(), "U-Net restores input resolution");
    assert_eq!(out.features.cols(), 20, "MinkowskiNet emits 20 class channels");
    assert!(out.features.data().iter().all(|v| v.is_finite()), "features must be finite");
    let nonzero = out.features.data().iter().filter(|&&v| v != 0.0).count();
    assert!(
        nonzero > 0,
        "ExecMode::Full must compute real sparse-conv features, not the trace-only zeros"
    );
}

#[test]
fn minkowski_net_full_and_trace_only_produce_identical_traces() {
    let pts = Dataset::S3dis.generate(7, 400);
    let net = zoo::minkowski_net();
    let full = Executor::new(ExecMode::Full, 7).run(&net, &pts);
    let fast = Executor::new(ExecMode::TraceOnly, 7).run(&net, &pts);
    assert_eq!(full.trace.layers.len(), fast.trace.layers.len());
    assert_eq!(full.trace.total_macs(), fast.trace.total_macs());
    assert_eq!(full.trace.total_maps(), fast.trace.total_maps());
    assert_eq!(full.trace.total_mapping_ops(), fast.trace.total_mapping_ops());
    for (a, b) in full.trace.layers.iter().zip(&fast.trace.layers) {
        assert_eq!(
            (a.n_in, a.n_out, a.in_ch, a.out_ch),
            (b.n_in, b.n_out, b.in_ch, b.out_ch),
            "{}",
            a.name
        );
        assert_eq!(a.maps, b.maps, "{}: sparse kernel maps must not depend on fidelity", a.name);
    }
    // TraceOnly skips the arithmetic entirely.
    assert!(fast.features.data().iter().all(|&v| v == 0.0));
}

#[test]
fn minkowski_net_features_are_seed_deterministic() {
    let pts = Dataset::S3dis.generate(11, 300);
    let net = zoo::minkowski_net();
    let a = Executor::new(ExecMode::Full, 9).run(&net, &pts);
    let b = Executor::new(ExecMode::Full, 9).run(&net, &pts);
    assert_eq!(a.features, b.features, "same seed must be bit-identical");
    let c = Executor::new(ExecMode::Full, 10).run(&net, &pts);
    assert_ne!(a.features, c.features, "different weight seeds must differ");
}

#[test]
fn parallel_sparse_conv_is_bit_identical_across_worker_counts() {
    // The gather-GEMM-scatter loop computes per-weight partials in
    // parallel but scatters them in one serial pass in ascending weight
    // order, so the float-addition order — and every feature bit — must
    // not depend on the worker count. `conv_workers` overrides the
    // process-wide POINTACC_THREADS count (read once per process), so a
    // single test run covers serial, two-way and wide configurations.
    let pts = Dataset::S3dis.generate(13, 500);
    let net = zoo::minkowski_net();
    let serial = Executor::new(ExecMode::Full, 13)
        .with_options(ExecOptions { conv_workers: Some(1), ..Default::default() })
        .run(&net, &pts);
    for workers in [2usize, 3, 8] {
        let parallel = Executor::new(ExecMode::Full, 13)
            .with_options(ExecOptions { conv_workers: Some(workers), ..Default::default() })
            .run(&net, &pts);
        assert_eq!(
            serial.features, parallel.features,
            "{workers}-worker conv features diverged from serial"
        );
    }
    // The default (auto-threaded) executor matches too.
    let auto = Executor::new(ExecMode::Full, 13).run(&net, &pts);
    assert_eq!(serial.features, auto.features);
}

#[test]
fn approx_fps_option_keeps_shapes_and_determinism() {
    // Opting into approximate FPS may move SetAbstraction centroids
    // (within the documented coverage bound) but never changes tensor
    // shapes, and stays seed-deterministic.
    let pts = Dataset::ModelNet40.generate(21, 512);
    let net = zoo::pointnet_pp_classification();
    let opts = ExecOptions { approx_fps: true, ..Default::default() };
    let a = Executor::new(ExecMode::Full, 3).with_options(opts).run(&net, &pts);
    let b = Executor::new(ExecMode::Full, 3).with_options(opts).run(&net, &pts);
    assert_eq!(a.features, b.features, "approx FPS must be deterministic");
    let exact = Executor::new(ExecMode::Full, 3).run(&net, &pts);
    assert_eq!(a.features.rows(), exact.features.rows());
    assert_eq!(a.features.cols(), exact.features.cols());
    assert_eq!(a.trace.layers.len(), exact.trace.layers.len());
}

#[test]
fn systolic_functional_model_matches_reference_matmul() {
    // Shapes taken from a real SA layer of PointNet++(c).
    let a =
        FeatureMatrix::from_fn(512 * 32, 67, |r, c| ((r * 31 + c * 17) % 101) as f32 * 0.01 - 0.5);
    let b = FeatureMatrix::from_fn(67, 64, |r, c| ((r * 13 + c * 7) % 89) as f32 * 0.01 - 0.4);
    for (rows, cols) in [(16, 16), (64, 64)] {
        let arr = SystolicArray::new(rows, cols);
        let got = arr.matmul_functional(&a, &b);
        let want = a.matmul(&b);
        let diff = got.max_abs_diff(&want).expect("same shape");
        assert!(diff < 1e-2, "{rows}x{cols}: max diff {diff}");
    }
}

#[test]
fn full_and_trace_only_agree_on_all_costs() {
    let pts = Dataset::ShapeNet.generate(4, 300);
    let net = zoo::pointnet_pp_part_seg();
    let full = Executor::new(ExecMode::Full, 8).run(&net, &pts).trace;
    let fast = Executor::new(ExecMode::TraceOnly, 8).run(&net, &pts).trace;
    assert_eq!(full.total_macs(), fast.total_macs());
    assert_eq!(full.total_maps(), fast.total_maps());
    assert_eq!(full.total_mapping_ops(), fast.total_mapping_ops());
}
