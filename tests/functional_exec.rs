//! Functional correctness of the reference executor on real synthetic
//! data: exact shapes, value sanity, and agreement between the systolic
//! functional model and plain matmul inside a real network layer.

use pointacc_data::Dataset;
use pointacc_geom::FeatureMatrix;
use pointacc_nn::{zoo, ExecMode, Executor};
use pointacc_sim::SystolicArray;

#[test]
fn classification_networks_emit_class_logits() {
    let pts = Dataset::ModelNet40.generate(1, 256);
    for (net, classes) in
        [(zoo::pointnet(), 40), (zoo::pointnet_pp_classification(), 40), (zoo::dgcnn(), 40)]
    {
        let out = Executor::new(ExecMode::Full, 5).run(&net, &pts);
        assert_eq!(out.features.rows(), 1, "{}", net.name());
        assert_eq!(out.features.cols(), classes, "{}", net.name());
        assert!(
            out.features.row(0).iter().all(|v| v.is_finite()),
            "{} produced non-finite logits",
            net.name()
        );
    }
}

#[test]
fn segmentation_networks_emit_per_point_logits() {
    let pts = Dataset::S3dis.generate(2, 512);
    let out = Executor::new(ExecMode::Full, 5).run(&zoo::pointnet_pp_segmentation(), &pts);
    assert_eq!(out.features.rows(), 512);
    assert_eq!(out.features.cols(), 13);
}

#[test]
fn voxel_network_preserves_resolution_through_unet() {
    let pts = Dataset::S3dis.generate(3, 2000);
    let out = Executor::new(ExecMode::Full, 5).run(&zoo::mini_minkunet(), &pts);
    let (voxels, _) = pts.voxelize(0.05);
    assert_eq!(out.features.rows(), voxels.len());
    assert_eq!(out.features.cols(), 13);
}

#[test]
fn systolic_functional_model_matches_reference_matmul() {
    // Shapes taken from a real SA layer of PointNet++(c).
    let a =
        FeatureMatrix::from_fn(512 * 32, 67, |r, c| ((r * 31 + c * 17) % 101) as f32 * 0.01 - 0.5);
    let b = FeatureMatrix::from_fn(67, 64, |r, c| ((r * 13 + c * 7) % 89) as f32 * 0.01 - 0.4);
    for (rows, cols) in [(16, 16), (64, 64)] {
        let arr = SystolicArray::new(rows, cols);
        let got = arr.matmul_functional(&a, &b);
        let want = a.matmul(&b);
        let diff = got.max_abs_diff(&want).expect("same shape");
        assert!(diff < 1e-2, "{rows}x{cols}: max diff {diff}");
    }
}

#[test]
fn full_and_trace_only_agree_on_all_costs() {
    let pts = Dataset::ShapeNet.generate(4, 300);
    let net = zoo::pointnet_pp_part_seg();
    let full = Executor::new(ExecMode::Full, 8).run(&net, &pts).trace;
    let fast = Executor::new(ExecMode::TraceOnly, 8).run(&net, &pts).trace;
    assert_eq!(full.total_macs(), fast.total_macs());
    assert_eq!(full.total_maps(), fast.total_maps());
    assert_eq!(full.total_mapping_ops(), fast.total_mapping_ops());
}
