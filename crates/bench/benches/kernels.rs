//! Criterion micro-benchmarks of the PointAcc compute kernels: streaming
//! merge, top-k, FPS, kernel mapping (merge-sort vs hash), cache
//! simulation and the systolic functional model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pointacc::mmu::{simulate_sparse_accesses, CacheConfig, SparseAccessPlan};
use pointacc::mpu::{Mpu, RankEngine, StreamMerger};
use pointacc_geom::{golden, Coord, FeatureMatrix, Point3, PointSet, VoxelCloud};
use pointacc_sim::{SortItem, SystolicArray};

fn items(n: usize, seed: u64) -> Vec<SortItem> {
    let mut x = seed | 1;
    let mut v: Vec<SortItem> = (0..n)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            SortItem::new((x % 1_000_000) as u128, i as u64)
        })
        .collect();
    v.sort_by_key(|i| i.key);
    v
}

fn points(n: usize) -> PointSet {
    (0..n)
        .map(|i| {
            let t = i as f32;
            Point3::new((t * 0.37).sin() * 10.0, (t * 0.61).cos() * 10.0, (t * 0.13).sin())
        })
        .collect()
}

fn cloud(n: usize) -> VoxelCloud {
    let mut x = 7u64;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % 64) as i32 - 32
    };
    VoxelCloud::from_unsorted((0..n).map(|_| Coord::new(step(), step(), step())).collect(), 1)
}

fn bench_stream_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream_merge");
    g.sample_size(20);
    for n in [1024usize, 8192] {
        let a = items(n, 1);
        let b = items(n, 2);
        let merger = StreamMerger::new(64);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| merger.merge(&a, &b));
        });
    }
    g.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut g = c.benchmark_group("topk");
    g.sample_size(20);
    let engine = RankEngine::new(64);
    for (n, k) in [(4096usize, 32usize), (8192, 64)] {
        let input = items(n, 3);
        g.bench_with_input(BenchmarkId::new("rank", format!("n{n}_k{k}")), &n, |bench, _| {
            bench.iter(|| engine.topk(&input, k));
        });
    }
    g.finish();
}

fn bench_fps(c: &mut Criterion) {
    let mut g = c.benchmark_group("fps");
    g.sample_size(10);
    let pts = points(2048);
    let mpu = Mpu::new(64);
    g.bench_function("mpu_2048_to_512", |b| b.iter(|| mpu.farthest_point_sampling(&pts, 512)));
    g.bench_function("golden_2048_to_512", |b| {
        b.iter(|| golden::farthest_point_sampling(&pts, 512))
    });
    g.finish();
}

fn bench_kernel_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_map");
    g.sample_size(10);
    let vc = cloud(5000);
    let mpu = Mpu::new(64);
    g.bench_function("mergesort_mpu", |b| b.iter(|| mpu.kernel_map(&vc, &vc, 3)));
    g.bench_function("hash_golden", |b| b.iter(|| golden::kernel_map_hash(&vc, &vc, 3)));
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_sim");
    g.sample_size(10);
    let vc = cloud(8000);
    let maps = golden::kernel_map_hash(&vc, &vc, 3);
    let plan = SparseAccessPlan { ic_tiles: 1, oc_tiles: 1, out_tile_points: 1024 };
    for bp in [8usize, 64] {
        let cfg = CacheConfig { capacity_bytes: 256 * 1024, block_points: bp, row_bytes: 128 };
        g.bench_with_input(BenchmarkId::from_parameter(bp), &bp, |b, _| {
            b.iter(|| simulate_sparse_accesses(cfg, &maps, plan, None));
        });
    }
    g.finish();
}

fn bench_systolic(c: &mut Criterion) {
    let mut g = c.benchmark_group("systolic_functional");
    g.sample_size(10);
    let arr = SystolicArray::new(16, 16);
    let a = FeatureMatrix::from_fn(512, 64, |r, k| ((r * k) % 17) as f32 * 0.1);
    let b = FeatureMatrix::from_fn(64, 64, |r, k| ((r + k) % 13) as f32 * 0.1);
    g.bench_function("512x64x64", |bench| bench.iter(|| arr.matmul_functional(&a, &b)));
    g.finish();
}

criterion_group!(
    benches,
    bench_stream_merge,
    bench_topk,
    bench_fps,
    bench_kernel_map,
    bench_cache,
    bench_systolic
);
criterion_main!(benches);
