//! Serving-layer benchmarks with a stable, non-wall-clock metric.
//!
//! Two kinds of rows:
//!
//! - `modeled_throughput/*` — each engine's **simulated** points/s on
//!   each benchmark, straight from `EngineReport::points_per_s`. These
//!   numbers depend only on the hardware model and the trace, never on
//!   the host machine: a perf PR that changes them changed the model,
//!   a perf PR that doesn't can't hide a modeling regression behind a
//!   faster laptop.
//! - `admission/*` — wall-clock timings of the front-end's hot
//!   admission path (capacity modeling + routing for a full burst),
//!   with wall-clock requests/s via `Throughput::Elements`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pointacc::{Accelerator, Engine, PointAccConfig};
use pointacc_baselines::Platform;
use pointacc_bench::frontend::{AdmissionPolicy, Frontend, FrontendOptions, SimClock};
use pointacc_bench::serve::Request;
use pointacc_nn::zoo;

/// Keeps trace generation cheap; the modeled metric is scale-dependent
/// but host-independent at any fixed scale.
const SCALE: f64 = 0.05;

fn bench_modeled_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("modeled_throughput");
    let full = Accelerator::new(PointAccConfig::full());
    let edge = Accelerator::new(PointAccConfig::edge());
    let gpu = Platform::rtx_2080ti();
    let engines: [&dyn Engine; 3] = [&full, &edge, &gpu];
    for bench in zoo::benchmarks().iter().take(4) {
        let trace = pointacc_bench::cached_benchmark_trace(bench, 42, SCALE);
        for engine in engines {
            let report = engine.evaluate(&trace);
            g.report_metric(
                BenchmarkId::new(engine.name(), bench.notation),
                report.points_per_s(trace.input_points()),
                "points/s",
            );
        }
    }
    g.finish();
}

fn bench_admission_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("admission");
    g.sample_size(10);
    let full = Accelerator::new(PointAccConfig::full());
    let edge = Accelerator::new(PointAccConfig::edge());
    let engines: [&dyn Engine; 2] = [&full, &edge];
    let benchmarks = zoo::benchmarks();
    let frontend = Frontend::new(
        &engines,
        &benchmarks,
        FrontendOptions {
            queue_capacity: 64,
            workers_per_engine: 1,
            scale: SCALE,
            policy: AdmissionPolicy::shed_after(Duration::from_millis(10)),
            capacities: Some(vec![1e6, 5e5]),
            ..FrontendOptions::default()
        },
    );
    let n = 256u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("burst_256", |b| {
        b.iter(|| {
            let clock = SimClock::new();
            // A 1 ns budget can never cover a request's own modeled
            // service time, so every request runs the whole admission
            // pipeline — backlog drain, completion-time routing, shed
            // bound, deadline check — and is then refused before any
            // engine executes: the loop times the capacity bookkeeping
            // and nothing else.
            let requests = (0..n).map(|i| {
                Request::new(i as usize % benchmarks.len(), i % 3)
                    .with_deadline(Duration::from_nanos(1))
            });
            frontend.run_with_clock(&clock, requests)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_modeled_throughput, bench_admission_path);
criterion_main!(benches);
