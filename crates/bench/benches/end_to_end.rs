//! Criterion end-to-end benchmarks: full trace generation + accelerator
//! replay + baseline platform models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pointacc::{Accelerator, Engine, PointAccConfig};
use pointacc_baselines::Platform;
use pointacc_data::Dataset;
use pointacc_nn::{zoo, ExecMode, Executor};

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation");
    g.sample_size(10);
    let pts = Dataset::ModelNet40.generate(1, 1024);
    let net = zoo::pointnet_pp_classification();
    g.bench_function("pointnet_pp_1024", |b| {
        b.iter(|| Executor::new(ExecMode::TraceOnly, 1).run(&net, &pts));
    });
    g.finish();
}

fn bench_accelerator_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("accelerator_replay");
    g.sample_size(10);
    let pts = Dataset::S3dis.generate(1, 8000);
    let trace = Executor::new(ExecMode::TraceOnly, 1).run(&zoo::mini_minkunet(), &pts).trace;
    let full = Accelerator::new(PointAccConfig::full());
    let edge = Accelerator::new(PointAccConfig::edge());
    // Wall-clock replay rate (host-dependent)…
    g.throughput(Throughput::Elements(trace.input_points() as u64));
    g.bench_function("mini_minkunet_full", |b| b.iter(|| full.run(&trace)));
    g.bench_function("mini_minkunet_edge", |b| b.iter(|| edge.run(&trace)));
    // …next to the simulated throughput the replay models
    // (host-independent: the stable metric for perf PRs).
    for engine in [&full as &dyn Engine, &edge] {
        let report = engine.evaluate(&trace);
        g.report_metric(
            BenchmarkId::new("modeled", engine.name()),
            report.points_per_s(trace.input_points()),
            "points/s",
        );
    }
    g.finish();
}

fn bench_baseline_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseline_models");
    g.sample_size(20);
    let pts = Dataset::ModelNet40.generate(1, 1024);
    let trace =
        Executor::new(ExecMode::TraceOnly, 1).run(&zoo::pointnet_pp_classification(), &pts).trace;
    let gpu = Platform::rtx_2080ti();
    g.bench_function("gpu_model_pointnet_pp", |b| b.iter(|| gpu.run(&trace)));
    g.finish();
}

criterion_group!(benches, bench_trace_generation, bench_accelerator_replay, bench_baseline_models);
criterion_main!(benches);
