//! Mapping-backend benchmark: wall-clock of the grid-hash `Indexed`
//! backend vs the brute-force `Golden` oracle on every mapping
//! operation, plus the modeled (host-independent) points/s of the
//! accelerator configs on the same workload.
//!
//! Besides the printed rows, the run writes `BENCH_mapping.json`
//! (override the path with `BENCH_MAPPING_OUT`) so CI records the perf
//! trajectory: indexed-vs-golden speedup per operation and modeled
//! points/s. The acceptance bars for the backend are a ≥ 3× speedup on
//! kNN / ball-query / fused kernel-map construction / bucket-pruned
//! exact FPS and ≥ 2× for the opt-in approximate FPS against the exact
//! golden sweep.
//!
//! Workload size follows `POINTACC_SCALE` (clamped so the golden O(n²)
//! side stays benchmarkable at scale 1.0).

use std::hint::black_box;
use std::time::Instant;

use criterion::{BenchmarkId, Criterion};
use pointacc::{Accelerator, Engine, PointAccConfig};
use pointacc_data::Dataset;
use pointacc_geom::index::{MappingBackend, GOLDEN, INDEXED};
use pointacc_geom::PointSet;
use pointacc_nn::zoo;

/// Median wall-clock seconds of `reps` runs of `f`.
fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut ts = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        ts.push(t.elapsed().as_secs_f64());
    }
    ts.sort_by(f64::total_cmp);
    ts[reps / 2]
}

/// One op timed on both backends; returns `(golden_s, indexed_s)`.
fn compare<R>(reps: usize, op: impl Fn(&'static dyn MappingBackend) -> R) -> (f64, f64) {
    let golden = time_median(reps, || op(&GOLDEN));
    let indexed = time_median(reps, || op(&INDEXED));
    (golden, indexed)
}

fn main() {
    let scale = pointacc_bench::scale();
    // The golden side is O(n²) per op; clamp so scale 1.0 stays feasible
    // while the floor keeps the comparison meaningful at smoke scales.
    let n = ((40_000.0 * scale) as usize).clamp(4_000, 12_000);
    let n_queries = n / 4;
    let k = 16;
    let m = n / 4;
    let reps = 5;

    let pts = Dataset::S3dis.generate(42, n);
    let queries = PointSet::from_points(pts.points()[..n_queries].to_vec());
    let (min, max) = pts.bounds().expect("non-empty dataset");
    let diag = max.sub(min).norm();
    let radius = diag * 0.05;
    let (cloud, _) = pts.voxelize((diag / 64.0).max(1e-3));

    let mut c = Criterion::default();
    let mut g = c.benchmark_group("mapping");
    g.sample_size(reps);

    let (knn_g, knn_i) =
        compare(reps, |b| black_box(b.k_nearest_neighbors(&pts, &queries, k)).len());
    let (ball_g, ball_i) =
        compare(reps, |b| black_box(b.ball_query_padded(&pts, &queries, radius * radius, k)).len());
    let (km_g, km_i) = compare(reps, |b| black_box(b.kernel_map(&cloud, &cloud, 3)).len());
    let (fps_g, fps_i) = compare(reps, |b| black_box(b.farthest_point_sampling(&pts, m)).len());
    // Approximate FPS is opt-in and not bit-identical, so its baseline is
    // the *exact* golden sweep: the speedup a caller buys by flipping the
    // `ExecOptions::approx_fps` knob.
    let fpsx_g = time_median(reps, || black_box(GOLDEN.farthest_point_sampling(&pts, m)).len());
    let fpsx_i = time_median(reps, || black_box(INDEXED.fps_approx(&pts, m)).len());

    let rows = [
        ("knn", knn_g, knn_i),
        ("ball_query", ball_g, ball_i),
        ("kernel_map", km_g, km_i),
        ("fps", fps_g, fps_i),
        ("fps_approx", fpsx_g, fpsx_i),
    ];
    println!("mapping workload: {n} points, {n_queries} queries, k={k}, {} voxels", cloud.len());
    for (name, golden_s, indexed_s) in rows {
        println!(
            "mapping/{name:<12} golden {:>9.3} ms | indexed {:>9.3} ms",
            golden_s * 1e3,
            indexed_s * 1e3
        );
        g.report_metric(
            BenchmarkId::new(name, "indexed_speedup"),
            golden_s / indexed_s.max(1e-12),
            "x",
        );
    }

    // Modeled (simulated, host-independent) throughput on the same
    // workload family: the capacity signal the serving front-end prices
    // requests with.
    let full = Accelerator::new(PointAccConfig::full());
    let edge = Accelerator::new(PointAccConfig::edge());
    let bench = &zoo::benchmarks()[0];
    let trace = pointacc_bench::cached_benchmark_trace(bench, 42, scale);
    let mut modeled = Vec::new();
    for engine in [&full as &dyn Engine, &edge] {
        let pps = engine.evaluate(&trace).points_per_s(trace.input_points());
        g.report_metric(BenchmarkId::new(engine.name(), bench.notation), pps, "points/s");
        modeled.push((engine.name().to_string(), pps));
    }
    g.finish();

    // Machine-readable trajectory record.
    let json = format!(
        concat!(
            "{{\n",
            "  \"scale\": {},\n",
            "  \"points\": {},\n",
            "  \"queries\": {},\n",
            "  \"k\": {},\n",
            "  \"wall_clock_speedup_indexed_over_golden\": {{\n",
            "    \"knn\": {:.3},\n",
            "    \"ball_query\": {:.3},\n",
            "    \"kernel_map\": {:.3},\n",
            "    \"fps\": {:.3},\n",
            "    \"fps_approx\": {:.3}\n",
            "  }},\n",
            "  \"modeled_points_per_s\": {{\n",
            "    \"{}\": {:.1},\n",
            "    \"{}\": {:.1}\n",
            "  }}\n",
            "}}\n"
        ),
        scale,
        n,
        n_queries,
        k,
        knn_g / knn_i.max(1e-12),
        ball_g / ball_i.max(1e-12),
        km_g / km_i.max(1e-12),
        fps_g / fps_i.max(1e-12),
        fpsx_g / fpsx_i.max(1e-12),
        modeled[0].0,
        modeled[0].1,
        modeled[1].0,
        modeled[1].1,
    );
    // Default to the workspace root, regardless of `cargo bench` cwd.
    let out = std::env::var("BENCH_MAPPING_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mapping.json").into()
    });
    std::fs::write(&out, &json).expect("write BENCH_mapping.json");
    println!("wrote {out}");

    // Enforce the documented per-op bars: kNN, ball-query, the fused
    // kernel map and bucket-pruned exact FPS must beat golden ≥ 3×, and
    // opt-in approximate FPS must beat the exact golden sweep ≥ 2×
    // (exact FPS is bit-identical by property test, so its bar is pure
    // wall-clock). A regression fails the
    // bench-smoke CI job, not just a number in the JSON. Clamped smoke
    // workloads (n below the default 12k) run ops in the low
    // milliseconds where fixed costs — index build, buffer setup, the
    // golden hash table turning cache-resident — compress the ratios,
    // so the bars derate to 60% there; that still fails hard on a real
    // regression (the pre-merge-join kernel map measured 1.1×).
    // `BENCH_MAPPING_MIN_SPEEDUP` overrides every bar (0 = record-only).
    let override_floor: Option<f64> =
        std::env::var("BENCH_MAPPING_MIN_SPEEDUP").ok().and_then(|s| s.parse().ok());
    let derate = if n < 12_000 { 0.6 } else { 1.0 };
    let bars = [
        ("knn", knn_g, knn_i, 3.0),
        ("ball_query", ball_g, ball_i, 3.0),
        ("kernel_map", km_g, km_i, 3.0),
        ("fps", fps_g, fps_i, 3.0),
        ("fps_approx", fpsx_g, fpsx_i, 2.0),
    ];
    for (name, golden_s, indexed_s, default_floor) in bars {
        let floor = override_floor.unwrap_or(default_floor * derate);
        let ratio = golden_s / indexed_s.max(1e-12);
        assert!(
            ratio >= floor,
            "{name}: indexed backend is only {ratio:.2}x over golden (bar: {floor}x)"
        );
    }
}
