//! Batched, thread-parallel run driver over the unified
//! [`Engine`] surface.
//!
//! Every figure of the evaluation is some slice of the same cube: a set
//! of engines (PointAcc configurations, general-purpose platforms,
//! Mesorasi variants) × a set of Table 2 benchmarks × trace seeds. The
//! [`Grid`] builder evaluates that cube concurrently — trace generation
//! parallelized over (benchmark × seed), model evaluation over
//! (engine × benchmark × seed) — and the result exposes uniform lookup,
//! speedup and table helpers so the per-figure binaries stay tiny.
//!
//! # Example
//!
//! ```
//! use pointacc::{Accelerator, PointAccConfig};
//! use pointacc_baselines::Platform;
//! use pointacc_bench::harness::Grid;
//!
//! let acc = Accelerator::new(PointAccConfig::full());
//! let gpu = Platform::rtx_2080ti();
//! let run = Grid::new()
//!     .engine(&acc)
//!     .engine(&gpu)
//!     .benchmarks(pointacc_nn::zoo::benchmarks().into_iter().take(2))
//!     .scale(0.05)
//!     .run();
//! let ours = run.report(0, 0, 0).expect("supported");
//! assert!(ours.is_physical());
//! ```

use std::sync::Arc;

use pointacc::{Engine, EngineReport, Summary};
use pointacc_nn::zoo::{self, Benchmark};
use pointacc_nn::NetworkTrace;

use crate::{cached_benchmark_trace, geomean};

// The scheduler itself lives in `pointacc_geom::par` so the mapping
// backends can parallelize per-query/per-offset work with the same
// work-stealing map the grid uses for (engine × benchmark × seed)
// cells; re-exported here unchanged for all existing callers.
pub use pointacc_geom::par::{parallel_map, parallel_map_with, worker_threads};

/// Builds (or fetches from the process-wide trace cache) the traces of
/// several benchmarks concurrently, in order, at the process-wide
/// [`scale`](crate::scale).
pub fn parallel_traces(benchmarks: &[Benchmark], seed: u64) -> Vec<Arc<NetworkTrace>> {
    let scale = crate::scale();
    parallel_map(benchmarks, |b| cached_benchmark_trace(b, seed, scale))
}

/// Builder for one (engine × benchmark × seed) evaluation grid.
#[derive(Default)]
pub struct Grid<'a> {
    engines: Vec<&'a dyn Engine>,
    benchmarks: Option<Vec<Benchmark>>,
    seeds: Option<Vec<u64>>,
    scale: Option<f64>,
}

impl<'a> Grid<'a> {
    /// An empty grid: add engines, then benchmarks/seeds, then [`run`].
    ///
    /// [`run`]: Grid::run
    pub fn new() -> Self {
        Grid { engines: Vec::new(), benchmarks: None, seeds: None, scale: None }
    }

    /// Adds one engine (row of the grid).
    #[must_use]
    pub fn engine(mut self, engine: &'a dyn Engine) -> Self {
        self.engines.push(engine);
        self
    }

    /// Adds several engines.
    #[must_use]
    pub fn engines(mut self, engines: impl IntoIterator<Item = &'a dyn Engine>) -> Self {
        self.engines.extend(engines);
        self
    }

    /// Adds benchmarks (columns of the grid).
    #[must_use]
    pub fn benchmarks(mut self, benchmarks: impl IntoIterator<Item = Benchmark>) -> Self {
        self.benchmarks.get_or_insert_with(Vec::new).extend(benchmarks);
        self
    }

    /// Adds trace seeds (depth of the grid).
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.get_or_insert_with(Vec::new).extend(seeds);
        self
    }

    /// Sets the point-count scale factor explicitly (default: the
    /// process-wide [`scale`](crate::scale) read once from
    /// `POINTACC_SCALE`). Tests should use this instead of mutating the
    /// environment, which is racy under the parallel test runner.
    #[must_use]
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = Some(scale);
        self
    }

    /// Evaluates the full grid concurrently.
    ///
    /// Defaults when never set: all eight Table 2 benchmarks, seed 42.
    /// Unsupported (engine, trace) combinations — e.g. Mesorasi on a
    /// SparseConv network — yield `None` instead of running.
    ///
    /// # Panics
    ///
    /// Panics if no engines were added, or if [`Grid::benchmarks`] /
    /// [`Grid::seeds`] was called but contributed nothing (a filter
    /// that matches no benchmark is a bug in the caller, not a request
    /// for the default grid).
    pub fn run(self) -> GridRun {
        assert!(!self.engines.is_empty(), "grid needs at least one engine");
        let benchmarks = self.benchmarks.unwrap_or_else(zoo::benchmarks);
        assert!(!benchmarks.is_empty(), "grid benchmark filter matched nothing");
        let seeds = self.seeds.unwrap_or_else(|| vec![42]);
        assert!(!seeds.is_empty(), "grid seed list is empty");
        let scale = self.scale.unwrap_or_else(crate::scale);

        let jobs: Vec<(usize, u64)> = benchmarks
            .iter()
            .enumerate()
            .flat_map(|(b, _)| seeds.iter().map(move |&s| (b, s)))
            .collect();
        let traces =
            parallel_map(&jobs, |&(b, seed)| cached_benchmark_trace(&benchmarks[b], seed, scale));

        let cells: Vec<(usize, usize)> =
            (0..self.engines.len()).flat_map(|e| (0..traces.len()).map(move |t| (e, t))).collect();
        let engines = &self.engines;
        let traces_ref = &traces;
        let reports = parallel_map(&cells, |&(e, t)| {
            let engine = engines[e];
            let trace: &NetworkTrace = &traces_ref[t];
            engine.supports(trace).then(|| engine.evaluate(trace))
        });

        GridRun {
            engines: self.engines.iter().map(|e| e.name()).collect(),
            benchmarks,
            seeds,
            scale,
            traces,
            reports,
        }
    }
}

/// The evaluated grid: reports indexed by (engine, benchmark, seed).
pub struct GridRun {
    /// Engine names, in insertion order.
    pub engines: Vec<String>,
    /// Benchmarks, in insertion order.
    pub benchmarks: Vec<Benchmark>,
    /// Seeds, in insertion order.
    pub seeds: Vec<u64>,
    /// Point-count scale factor the traces were built at.
    pub scale: f64,
    traces: Vec<Arc<NetworkTrace>>,
    reports: Vec<Option<EngineReport>>,
}

impl GridRun {
    /// The trace of `(benchmark, seed)`.
    pub fn trace(&self, benchmark: usize, seed: usize) -> &NetworkTrace {
        &self.traces[benchmark * self.seeds.len() + seed]
    }

    /// The report of `(engine, benchmark, seed)`; `None` when the engine
    /// does not support that benchmark.
    pub fn report(&self, engine: usize, benchmark: usize, seed: usize) -> Option<&EngineReport> {
        self.reports[engine * self.traces.len() + benchmark * self.seeds.len() + seed].as_ref()
    }

    /// Latency ratio `rival / base` on `(benchmark, seed)` — the paper's
    /// "speedup of base over rival". `None` if either side is missing.
    pub fn speedup(&self, base: usize, rival: usize, benchmark: usize, seed: usize) -> Option<f64> {
        let b = self.report(base, benchmark, seed)?;
        let r = self.report(rival, benchmark, seed)?;
        Some(r.total.0 / b.total.0)
    }

    /// Energy ratio `rival / base` on `(benchmark, seed)`.
    pub fn energy_ratio(
        &self,
        base: usize,
        rival: usize,
        benchmark: usize,
        seed: usize,
    ) -> Option<f64> {
        let b = self.report(base, benchmark, seed)?;
        let r = self.report(rival, benchmark, seed)?;
        Some(r.energy.get() / b.energy.get())
    }

    /// Geometric-mean speedup of `base` over `rival` across every
    /// supported (benchmark, seed) pair; `NaN` when the pair shares no
    /// supported cell (matching the `None` contract of [`GridRun::speedup`]).
    pub fn geomean_speedup(&self, base: usize, rival: usize) -> f64 {
        self.geomean_over(|b, s| self.speedup(base, rival, b, s))
    }

    /// Geometric-mean energy ratio of `rival` over `base`; `NaN` when
    /// the pair shares no supported cell.
    pub fn geomean_energy_ratio(&self, base: usize, rival: usize) -> f64 {
        self.geomean_over(|b, s| self.energy_ratio(base, rival, b, s))
    }

    /// Mean ± 95 % CI of the speedup of `base` over `rival` on one
    /// benchmark, aggregated over the seed axis. `None` when no seed has
    /// both sides supported.
    pub fn speedup_summary(&self, base: usize, rival: usize, benchmark: usize) -> Option<Summary> {
        self.summary_over_seeds(|s| self.speedup(base, rival, benchmark, s))
    }

    /// Mean speedup of `base` over `rival` on one benchmark across
    /// seeds; `None` when no seed has both sides supported.
    pub fn mean_speedup(&self, base: usize, rival: usize, benchmark: usize) -> Option<f64> {
        self.speedup_summary(base, rival, benchmark).map(|s| s.mean)
    }

    /// 95 % CI half-width of the per-seed speedups of `base` over
    /// `rival` on one benchmark; `None` when no seed has both sides
    /// supported.
    pub fn ci95_speedup(&self, base: usize, rival: usize, benchmark: usize) -> Option<f64> {
        self.speedup_summary(base, rival, benchmark).map(|s| s.ci95)
    }

    /// Mean ± 95 % CI of `engine`'s end-to-end latency (ms) on one
    /// benchmark across seeds; `None` when unsupported on every seed.
    pub fn latency_summary(&self, engine: usize, benchmark: usize) -> Option<Summary> {
        self.summary_over_seeds(|s| self.report(engine, benchmark, s).map(|r| r.latency_ms()))
    }

    /// Mean ± 95 % CI over seeds of the per-seed geometric-mean speedup
    /// of `base` over `rival` across benchmarks — the headline
    /// "GeoMean" number of Fig. 13/14/15 with honest error bars. `None`
    /// when no seed has any supported (base, rival) pair.
    pub fn geomean_speedup_summary(&self, base: usize, rival: usize) -> Option<Summary> {
        self.summary_over_seeds(|s| {
            let per_seed: Vec<f64> = (0..self.benchmarks.len())
                .filter_map(|b| self.speedup(base, rival, b, s))
                .collect();
            (!per_seed.is_empty()).then(|| geomean(&per_seed))
        })
    }

    fn summary_over_seeds(&self, get: impl Fn(usize) -> Option<f64>) -> Option<Summary> {
        let samples: Vec<f64> = (0..self.seeds.len()).filter_map(get).collect();
        (!samples.is_empty()).then(|| Summary::from_samples(&samples))
    }

    fn geomean_over(&self, get: impl Fn(usize, usize) -> Option<f64>) -> f64 {
        let values: Vec<f64> = (0..self.benchmarks.len())
            .flat_map(|b| (0..self.seeds.len()).map(move |s| (b, s)))
            .filter_map(|(b, s)| get(b, s))
            .collect();
        if values.is_empty() {
            f64::NAN
        } else {
            geomean(&values)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pointacc::{Accelerator, PointAccConfig};
    use pointacc_baselines::{Mesorasi, Platform};

    #[test]
    fn parallel_map_preserves_order_across_workers() {
        // Force several workers so the concurrent path runs even on
        // single-core CI machines.
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map_with(4, &items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_tiny_inputs() {
        assert_eq!(parallel_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(parallel_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn grid_matches_sequential_evaluation() {
        let acc = Accelerator::new(PointAccConfig::edge());
        let gpu = Platform::jetson_nano();
        let benchmarks: Vec<_> = zoo::benchmarks().into_iter().take(3).collect();
        let run = Grid::new()
            .engines([&acc as &dyn Engine, &gpu])
            .benchmarks(benchmarks.clone())
            .seeds([1, 2])
            .scale(0.05)
            .run();
        assert_eq!(run.engines, vec!["PointAcc.Edge", "Jetson Nano"]);
        assert_eq!(run.scale, 0.05);
        for (b, bench) in benchmarks.iter().enumerate() {
            for s in 0..2 {
                let trace = crate::benchmark_trace_at(bench, [1, 2][s], 0.05);
                assert_eq!(run.trace(b, s).network, trace.network);
                assert_eq!(run.trace(b, s).fingerprint(), trace.fingerprint());
                let want = gpu.run(&trace);
                assert_eq!(run.report(1, b, s), Some(&want));
                assert!(run.speedup(0, 1, b, s).unwrap() > 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "matched nothing")]
    fn empty_benchmark_filter_panics_instead_of_defaulting() {
        let edge = Accelerator::new(PointAccConfig::edge());
        let none = zoo::benchmarks().into_iter().filter(|b| b.notation == "renamed-away");
        let _ = Grid::new().engine(&edge).benchmarks(none).run();
    }

    #[test]
    fn unsupported_cells_are_none_not_panics() {
        let mesorasi = Mesorasi::new();
        let minknet = zoo::benchmarks()
            .into_iter()
            .find(|b| b.notation == "MinkNet(i)")
            .expect("MinkNet(i) exists");
        let run = Grid::new().engine(&mesorasi).benchmarks([minknet]).scale(0.05).run();
        assert_eq!(run.report(0, 0, 0), None);
        assert_eq!(run.speedup(0, 0, 0, 0), None);
        assert!(run.geomean_speedup(0, 0).is_nan());
    }
}
