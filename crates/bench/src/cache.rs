//! Process-wide trace cache: compile each `(benchmark, seed, scale)`
//! trace once, share it across every harness grid and figure binary.
//!
//! Trace compilation (the functional executor replaying the network on
//! the synthetic dataset) dominates harness cost for the MinkowskiNet
//! benchmarks, and every figure binary re-derives the same traces. The
//! [`TraceCache`] amortizes that: lookups are keyed by
//! [`TraceKey`]`(network, seed, scale)`, concurrent requests for the
//! same key block on one in-flight build (each trace compiles exactly
//! once), and hits return a shared [`Arc`] without copying layer data.
//!
//! [`global`] is the cache the [`Grid`](crate::harness::Grid) uses;
//! independent subsystems can own a private [`TraceCache`] when they
//! need isolated hit-rate accounting — [`serve`](crate::serve::serve)
//! does exactly that, so its reported hit rate reflects one request
//! stream and is **not** warmed by earlier grid runs.
//!
//! The cache never evicts on its own: every build outcome — a compiled
//! trace, or the [`TraceBuildError`] of a key that cannot compile
//! (negative caching, via [`TraceCache::try_get_or_build`]) — is
//! retained for the life of the process (or cache). Long-lived drivers
//! sweeping many seeds/scales should call [`TraceCache::clear`] between
//! sweeps.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::TraceBuildError;
use pointacc_nn::{NetworkTrace, TraceKey};

/// Hit/miss counters of one cache (a consistent snapshot).
///
/// "Hit" means the lookup skipped a build — including lookups served
/// from a *negatively cached* failure ([`TraceCache::try_get_or_build`]).
/// The counters measure build amortization, not serving health; a
/// failure-heavy request stream shows a high hit rate while completing
/// nothing, so read them alongside
/// [`ServeReport::failed`](crate::serve::ServeReport::failed).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from an already-cached outcome (compiled trace
    /// **or** cached build failure).
    pub hits: u64,
    /// Lookups that had to run (or wait on a concurrent run of) the
    /// builder for a new key.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache; 0 when nothing was looked
    /// up yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cache slot: a once-cell so concurrent misses on the same key
/// serialize behind a single build. Failed builds are cached too
/// (negative caching): a key that cannot compile keeps returning its
/// [`TraceBuildError`] without re-running the executor.
type Slot = Arc<OnceLock<Result<Arc<NetworkTrace>, TraceBuildError>>>;

/// A concurrent, compile-once cache of network traces keyed by
/// [`TraceKey`].
#[derive(Default)]
pub struct TraceCache {
    slots: Mutex<HashMap<TraceKey, Slot>>,
    stats: Mutex<CacheStats>,
    compiles: Mutex<HashMap<TraceKey, u64>>,
}

impl TraceCache {
    /// An empty cache.
    pub fn new() -> Self {
        TraceCache::default()
    }

    /// Returns the trace of `key`, building it with `build` on the first
    /// request. Concurrent requests for the same key run `build` exactly
    /// once; the rest block until it finishes and share the result.
    ///
    /// # Panics
    ///
    /// Panics if the key is negatively cached — an earlier
    /// [`TraceCache::try_get_or_build`] for the same key failed. Fallible
    /// callers (the serving layer) should use `try_get_or_build`.
    pub fn get_or_build(
        &self,
        key: &TraceKey,
        build: impl FnOnce() -> NetworkTrace,
    ) -> Arc<NetworkTrace> {
        self.try_get_or_build(key, || Ok(build())).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`TraceCache::get_or_build`] with a fallible builder: the first
    /// request for `key` runs `build` exactly once and the outcome —
    /// success **or** [`TraceBuildError`] — is cached, so a key that
    /// cannot compile keeps failing cheaply instead of re-running the
    /// executor per request.
    pub fn try_get_or_build(
        &self,
        key: &TraceKey,
        build: impl FnOnce() -> Result<NetworkTrace, TraceBuildError>,
    ) -> Result<Arc<NetworkTrace>, TraceBuildError> {
        let (slot, fresh_slot) = {
            let mut slots = self.slots.lock().expect("trace cache poisoned");
            match slots.get(key) {
                Some(slot) => (slot.clone(), false),
                None => {
                    let slot: Slot = Arc::new(OnceLock::new());
                    slots.insert(key.clone(), slot.clone());
                    (slot, true)
                }
            }
        };
        // A slot that exists but is still initializing counts as a miss
        // for the thread that inserted it and a hit for everyone who
        // found it present — "present" means the compile is already paid
        // for, which is what hit rate should measure.
        {
            let mut stats = self.stats.lock().expect("trace cache poisoned");
            if fresh_slot {
                stats.misses += 1;
            } else {
                stats.hits += 1;
            }
        }
        slot.get_or_init(|| {
            let result = build().map(Arc::new);
            *self.compiles.lock().expect("trace cache poisoned").entry(key.clone()).or_insert(0) +=
                1;
            result
        })
        .clone()
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock().expect("trace cache poisoned")
    }

    /// How many times `key`'s build ran, successful or failed (the cache
    /// invariant is ≤ 1 for every key over the cache's lifetime).
    pub fn compile_count(&self, key: &TraceKey) -> u64 {
        self.compiles.lock().expect("trace cache poisoned").get(key).copied().unwrap_or(0)
    }

    /// Evicts every cached trace, releasing the memory (traces still
    /// borrowed by live grids stay alive through their `Arc`s until
    /// those drop). Hit/miss counters and per-key compile counts are
    /// kept: `clear` trades memory for recompilation, it does not
    /// rewrite history — after a clear, a re-requested key compiles
    /// again and its [`TraceCache::compile_count`] exceeds 1.
    ///
    /// Long-lived drivers sweeping many seeds or scales should call
    /// this between sweeps; the cache itself never evicts.
    pub fn clear(&self) {
        self.slots.lock().expect("trace cache poisoned").clear();
    }

    /// Number of cached build outcomes (compiled traces plus negatively
    /// cached failures).
    pub fn len(&self) -> usize {
        self.slots.lock().expect("trace cache poisoned").len()
    }

    /// Whether the cache holds no build outcomes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide cache shared by [`Grid`](crate::harness::Grid) runs
/// and figure binaries.
pub fn global() -> &'static TraceCache {
    static GLOBAL: OnceLock<TraceCache> = OnceLock::new();
    GLOBAL.get_or_init(TraceCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tiny_trace(name: &str) -> NetworkTrace {
        NetworkTrace { network: name.into(), input_desc: "test".into(), layers: vec![] }
    }

    #[test]
    fn second_lookup_hits_without_rebuilding() {
        let cache = TraceCache::new();
        let key = TraceKey::new("net", 1, 0.5);
        let builds = AtomicU64::new(0);
        let a = cache.get_or_build(&key, || {
            builds.fetch_add(1, Ordering::SeqCst);
            tiny_trace("net")
        });
        let b = cache.get_or_build(&key, || {
            builds.fetch_add(1, Ordering::SeqCst);
            tiny_trace("other")
        });
        assert!(Arc::ptr_eq(&a, &b), "hit must share the compiled trace");
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        assert_eq!(cache.compile_count(&key), 1);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = TraceCache::new();
        let a = cache.get_or_build(&TraceKey::new("net", 1, 0.5), || tiny_trace("a"));
        let b = cache.get_or_build(&TraceKey::new("net", 2, 0.5), || tiny_trace("b"));
        let c = cache.get_or_build(&TraceKey::new("net", 1, 0.25), || tiny_trace("c"));
        assert_eq!((a.network.as_str(), b.network.as_str(), c.network.as_str()), ("a", "b", "c"));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 3 });
    }

    #[test]
    fn concurrent_misses_compile_exactly_once() {
        let cache = TraceCache::new();
        let key = TraceKey::new("contended", 7, 1.0);
        let builds = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache.get_or_build(&key, || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so laggards really do
                        // observe an in-flight build.
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        tiny_trace("contended")
                    })
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "exactly one compile under contention");
        assert_eq!(cache.compile_count(&key), 1);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn clear_releases_entries_but_keeps_history() {
        let cache = TraceCache::new();
        let key = TraceKey::new("net", 1, 0.5);
        let first = cache.get_or_build(&key, || tiny_trace("net"));
        cache.clear();
        assert!(cache.is_empty());
        // The evicted trace stays alive through its Arc.
        assert_eq!(first.network, "net");
        // A re-request compiles again — visible in the compile count.
        let second = cache.get_or_build(&key, || tiny_trace("net"));
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(cache.compile_count(&key), 2);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
    }

    #[test]
    fn failed_builds_are_negatively_cached() {
        use crate::UnknownDataset;
        let cache = TraceCache::new();
        let key = TraceKey::new("broken", 1, 0.5);
        let builds = AtomicU64::new(0);
        let build = || {
            builds.fetch_add(1, Ordering::SeqCst);
            Err(UnknownDataset { name: "NuScenes".into() }.into())
        };
        let first = cache.try_get_or_build(&key, build).unwrap_err();
        let second = cache.try_get_or_build(&key, build).unwrap_err();
        assert_eq!(first, second, "both lookups return the cached error");
        assert_eq!(builds.load(Ordering::SeqCst), 1, "failed build runs once");
        assert_eq!(cache.compile_count(&key), 1);
        // A different key still compiles normally.
        let ok = cache.try_get_or_build(&TraceKey::new("fine", 1, 0.5), || Ok(tiny_trace("fine")));
        assert_eq!(ok.unwrap().network, "fine");
    }

    #[test]
    fn empty_cache_reports_zero_rate() {
        let cache = TraceCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hit_rate(), 0.0);
        assert_eq!(cache.compile_count(&TraceKey::new("none", 0, 1.0)), 0);
    }
}
