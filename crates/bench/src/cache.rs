//! Process-wide trace cache: compile each `(benchmark, seed, scale)`
//! trace once, share it across every harness grid and figure binary.
//!
//! Trace compilation (the functional executor replaying the network on
//! the synthetic dataset) dominates harness cost for the MinkowskiNet
//! benchmarks, and every figure binary re-derives the same traces. The
//! [`TraceCache`] amortizes that: lookups are keyed by
//! [`TraceKey`]`(network, seed, scale)`, concurrent requests for the
//! same key block on one in-flight build (each trace compiles exactly
//! once), and hits return a shared [`Arc`] without copying layer data.
//!
//! # Tiers
//!
//! The in-memory tier is unbounded by default; [`TraceCache::bounded`]
//! caps it, evicting the least-recently-used *completed* outcome when a
//! new key would exceed the capacity (in-flight builds are never
//! evicted — if every slot is mid-build the cache overflows temporarily
//! rather than tearing a build out from under its waiters).
//!
//! [`TraceCache::with_artifact_dir`] adds an opt-in disk tier backed by
//! [`pointacc_nn::artifact`]: a miss first tries to load a persisted
//! artifact (a *disk hit* — no compile), and every fresh compile is
//! persisted back with an atomic write-rename, so concurrent processes
//! can share one artifact directory safely. A corrupt or wrong-version
//! artifact is simply recompiled (and rewritten); it never fails the
//! lookup.
//!
//! # Failure caching
//!
//! [`TraceCache::try_get_or_build`] caches build failures (negative
//! caching) so a key that cannot compile keeps failing cheaply. What
//! happens on the *next* request for a failed key is policy-driven
//! ([`FailurePolicy`]): [`FailurePolicy::Retain`] (the default) keeps
//! returning the cached error — right for deterministic failures like
//! an unknown dataset — while [`FailurePolicy::RetryOnRequest`] drops
//! the failed slot and rebuilds, so a *transient* fault does not make
//! the key permanently unservable. [`TraceCache::invalidate`] gives
//! callers per-key recovery under either policy.
//!
//! [`global`] is the cache the [`Grid`](crate::harness::Grid) uses; it
//! picks up its disk tier from `POINTACC_ARTIFACT_DIR` (see
//! [`crate::artifact_dir`]). Independent subsystems can own a private
//! [`TraceCache`] when they need isolated hit-rate accounting —
//! [`serve`](crate::serve::serve) does exactly that, so its reported
//! hit rate reflects one request stream and is **not** warmed by
//! earlier grid runs.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

use crate::sync::lock;
use crate::TraceBuildError;
use pointacc_nn::{artifact, verify_trace, NetworkTrace, TraceKey, VerifyError};

/// What a [`TraceCache`] does with a key whose cached outcome is a
/// [`TraceBuildError`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Keep returning the cached error without re-running the builder.
    /// Right for deterministic failures (an unknown dataset will not
    /// start existing), and what exact hit/miss accounting expects.
    #[default]
    Retain,
    /// Drop the failed slot when the key is requested again and rebuild
    /// from scratch (counted as a miss). Right for serving layers where
    /// a build failure may be transient and availability beats
    /// amortization.
    RetryOnRequest,
}

/// Counters of one cache (a consistent snapshot).
///
/// "Hit" means the memory tier skipped a build — including lookups
/// served from a *negatively cached* failure
/// ([`TraceCache::try_get_or_build`]). A miss is settled by either a
/// disk-tier load (`disk_hits`) or a builder run (`compiles`), so
/// `misses == disk_hits + compiles` whenever no builder panicked
/// mid-build. The counters measure build amortization, not serving
/// health; a failure-heavy request stream shows a high hit rate while
/// completing nothing, so read them alongside
/// [`ServeReport::failed`](crate::serve::ServeReport::failed).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from an already-cached outcome (compiled trace
    /// **or** cached build failure).
    pub hits: u64,
    /// Lookups that had to settle a fresh slot — by loading an
    /// artifact or running (or waiting on a concurrent run of) the
    /// builder.
    pub misses: u64,
    /// Misses settled by loading a persisted artifact instead of
    /// compiling (always 0 without [`TraceCache::with_artifact_dir`]).
    pub disk_hits: u64,
    /// Builder runs, successful or failed. Zero across a whole run
    /// means every trace came from memory or disk — a warm start.
    pub compiles: u64,
    /// Traces refused by the static verifier
    /// ([`pointacc_nn::verify_trace`]) at a cache insertion boundary:
    /// disk-tier artifacts whose integrity metadata checked out but
    /// whose trace was semantically malformed (recompiled, never
    /// served), plus builder outputs rejected before caching. Zero in
    /// any healthy run.
    pub verify_rejects: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the memory tier; 0 when nothing
    /// was looked up yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// One-line accounting summary, stable enough to grep in CI
    /// (`compiles=0 verify_rejects=0` is the warm-start criterion).
    pub fn accounting(&self) -> String {
        format!(
            "hits={} misses={} disk_hits={} compiles={} verify_rejects={}",
            self.hits, self.misses, self.disk_hits, self.compiles, self.verify_rejects
        )
    }
}

/// One cache slot: a once-cell so concurrent misses on the same key
/// serialize behind a single build. Failed builds are cached too
/// (negative caching); see [`FailurePolicy`] for what happens when a
/// failed key is requested again.
type Slot = Arc<OnceLock<Result<Arc<NetworkTrace>, TraceBuildError>>>;

/// A slot plus its recency stamp for LRU eviction.
struct SlotEntry {
    slot: Slot,
    last_used: u64,
}

/// The memory tier: slots plus a logical clock advanced per lookup.
#[derive(Default)]
struct SlotMap {
    map: HashMap<TraceKey, SlotEntry>,
    tick: u64,
}

impl SlotMap {
    /// Evicts least-recently-used *completed* entries until the map
    /// fits `capacity`. In-flight builds are never evicted; if only
    /// in-flight entries remain the map overflows temporarily.
    fn evict_to(&mut self, capacity: usize) {
        while self.map.len() > capacity {
            let victim = self
                .map
                .iter()
                .filter(|(_, e)| e.slot.get().is_some())
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    self.map.remove(&k);
                }
                None => break,
            }
        }
    }
}

/// A concurrent, compile-once cache of network traces keyed by
/// [`TraceKey`], with optional bounded LRU eviction and an optional
/// persistent artifact tier (see the module docs).
#[derive(Default)]
pub struct TraceCache {
    slots: Mutex<SlotMap>,
    stats: Mutex<CacheStats>,
    compiles: Mutex<HashMap<TraceKey, u64>>,
    capacity: Option<usize>,
    artifact_dir: Option<PathBuf>,
    failure_policy: FailurePolicy,
}

impl TraceCache {
    /// An empty cache: unbounded memory tier, no disk tier, failures
    /// retained ([`FailurePolicy::Retain`]).
    pub fn new() -> Self {
        TraceCache::default()
    }

    /// Caps the memory tier at `capacity` cached outcomes, evicting the
    /// least-recently-used completed entry when a new key would exceed
    /// it. An evicted trace reloads from the artifact tier (when
    /// configured) instead of recompiling.
    pub fn bounded(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Adds the persistent artifact tier rooted at `dir` (created on
    /// first save): misses try [`artifact::load`] before compiling, and
    /// fresh compiles are persisted via [`artifact::save`]'s atomic
    /// write-rename, so the directory can be shared across processes.
    pub fn with_artifact_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.artifact_dir = Some(dir.into());
        self
    }

    /// Sets what happens when a negatively cached key is requested
    /// again (default [`FailurePolicy::Retain`]).
    pub fn with_failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.failure_policy = policy;
        self
    }

    /// Returns the trace of `key`, building it with `build` on the first
    /// request. Concurrent requests for the same key run `build` exactly
    /// once; the rest block until it finishes and share the result.
    ///
    /// # Panics
    ///
    /// Panics if the key is negatively cached under
    /// [`FailurePolicy::Retain`] — an earlier
    /// [`TraceCache::try_get_or_build`] for the same key failed.
    /// Fallible callers (the serving layer) should use
    /// `try_get_or_build`.
    pub fn get_or_build(
        &self,
        key: &TraceKey,
        build: impl FnOnce() -> NetworkTrace,
    ) -> Arc<NetworkTrace> {
        // lint: allow(panic): documented panicking facade over try_get_or_build.
        self.try_get_or_build(key, || Ok(build())).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`TraceCache::get_or_build`] with a fallible builder: the first
    /// request for `key` runs `build` exactly once and the outcome —
    /// success **or** [`TraceBuildError`] — is cached. A cached failure
    /// is either returned or retried per the cache's [`FailurePolicy`].
    pub fn try_get_or_build(
        &self,
        key: &TraceKey,
        build: impl FnOnce() -> Result<NetworkTrace, TraceBuildError>,
    ) -> Result<Arc<NetworkTrace>, TraceBuildError> {
        let (slot, fresh_slot) = {
            let mut slots = lock(&self.slots);
            slots.tick += 1;
            let tick = slots.tick;
            let retry_failures = self.failure_policy == FailurePolicy::RetryOnRequest;
            match slots.map.get_mut(key) {
                Some(entry) if retry_failures && matches!(entry.slot.get(), Some(Err(_))) => {
                    // Transient-fault recovery: drop the failed outcome
                    // and rebuild from scratch (a fresh miss).
                    let slot: Slot = Arc::new(OnceLock::new());
                    entry.slot = slot.clone();
                    entry.last_used = tick;
                    (slot, true)
                }
                Some(entry) => {
                    entry.last_used = tick;
                    (entry.slot.clone(), false)
                }
                None => {
                    let slot: Slot = Arc::new(OnceLock::new());
                    slots
                        .map
                        .insert(key.clone(), SlotEntry { slot: slot.clone(), last_used: tick });
                    if let Some(capacity) = self.capacity {
                        slots.evict_to(capacity);
                    }
                    (slot, true)
                }
            }
        };
        // A slot that exists but is still initializing counts as a miss
        // for the thread that inserted it and a hit for everyone who
        // found it present — "present" means the compile is already paid
        // for, which is what hit rate should measure.
        {
            let mut stats = lock(&self.stats);
            if fresh_slot {
                stats.misses += 1;
            } else {
                stats.hits += 1;
            }
        }
        slot.get_or_init(|| self.settle_miss(key, build)).clone()
    }

    /// Settles a fresh slot: disk tier first (a validated artifact is a
    /// disk hit, no compile), then the builder, persisting its success
    /// back to the artifact tier. Runs outside the slots lock, so slow
    /// builds never block unrelated lookups.
    fn settle_miss(
        &self,
        key: &TraceKey,
        build: impl FnOnce() -> Result<NetworkTrace, TraceBuildError>,
    ) -> Result<Arc<NetworkTrace>, TraceBuildError> {
        if let Some(dir) = &self.artifact_dir {
            match artifact::load(dir, key) {
                // `load` already ran the static verifier, so a loaded
                // trace enters the memory tier pre-validated.
                Ok(Some(trace)) => {
                    lock(&self.stats).disk_hits += 1;
                    return Ok(Arc::new(trace));
                }
                // The dangerous case: checksum and fingerprint checked
                // out but the trace is semantically malformed. Count
                // it, then recompile (the save below atomically
                // replaces the rejected file).
                Err(artifact::ArtifactError::Rejected(_)) => {
                    lock(&self.stats).verify_rejects += 1;
                }
                // A missing, corrupt, truncated, or wrong-version
                // artifact is not a lookup failure — fall through and
                // recompile.
                _ => {}
            }
        }
        let result = build().map(Arc::new).and_then(|trace| {
            // The builder's output crosses the same trust boundary as a
            // disk artifact: a semantically malformed trace is refused
            // (and negatively cached) instead of being handed to
            // engines that would index feature rows with it.
            match verify_trace(key, &trace) {
                Ok(_) => Ok(trace),
                Err(e) => {
                    lock(&self.stats).verify_rejects += 1;
                    Err(TraceBuildError::Invalid(e))
                }
            }
        });
        lock(&self.stats).compiles += 1;
        *lock(&self.compiles).entry(key.clone()).or_insert(0) += 1;
        if let (Some(dir), Ok(trace)) = (&self.artifact_dir, &result) {
            // Persistence is best-effort: a full disk must not fail a
            // lookup that already holds a perfectly good trace.
            let _ = artifact::save(dir, key, trace);
        }
        result
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        *lock(&self.stats)
    }

    /// Zeroes the counters and per-key compile counts. Figure binaries
    /// sweeping seeds or scales call this at sweep boundaries so each
    /// epoch's reported hit rate reflects that epoch alone instead of
    /// mixing history.
    pub fn reset_stats(&self) {
        *lock(&self.stats) = CacheStats::default();
        lock(&self.compiles).clear();
    }

    /// How many times `key`'s build ran since the last
    /// [`TraceCache::reset_stats`], successful or failed (≤ 1 unless
    /// the key was cleared, evicted, invalidated, or retried under
    /// [`FailurePolicy::RetryOnRequest`]).
    pub fn compile_count(&self, key: &TraceKey) -> u64 {
        lock(&self.compiles).get(key).copied().unwrap_or(0)
    }

    /// Drops the cached outcome of one `key` (success or failure); the
    /// next request rebuilds it. An in-flight build is detached, not
    /// cancelled: its waiters still receive its result, but the map
    /// forgets it. Per-key recovery for callers that know a specific
    /// cached failure was transient.
    pub fn invalidate(&self, key: &TraceKey) {
        lock(&self.slots).map.remove(key);
    }

    /// Evicts every cached trace, releasing the memory (traces still
    /// borrowed by live grids stay alive through their `Arc`s until
    /// those drop). Counters and per-key compile counts are kept:
    /// `clear` trades memory for recompilation, it does not rewrite
    /// history — after a clear, a re-requested key compiles again and
    /// its [`TraceCache::compile_count`] exceeds 1. Pair with
    /// [`TraceCache::reset_stats`] to also start a fresh accounting
    /// epoch.
    pub fn clear(&self) {
        lock(&self.slots).map.clear();
    }

    /// Statically re-verifies every *successfully* cached trace
    /// (negatively cached failures and in-flight builds are skipped),
    /// returning how many were checked or the first failing key with
    /// its [`VerifyError`]. Every insertion path already verifies, so a
    /// failure here means the cached data was mutated after the fact —
    /// this is the audit behind the figure binaries' `--verify` flag.
    pub fn verify_all(&self) -> Result<usize, (TraceKey, VerifyError)> {
        let cached: Vec<(TraceKey, Arc<NetworkTrace>)> = {
            let slots = lock(&self.slots);
            slots
                .map
                .iter()
                .filter_map(|(key, entry)| {
                    let trace = entry.slot.get()?.as_ref().ok()?;
                    Some((key.clone(), trace.clone()))
                })
                .collect()
        };
        let checked = cached.len();
        for (key, trace) in cached {
            verify_trace(&key, &trace).map_err(|e| (key, e))?;
        }
        Ok(checked)
    }

    /// Number of cached build outcomes (compiled traces plus negatively
    /// cached failures).
    pub fn len(&self) -> usize {
        lock(&self.slots).map.len()
    }

    /// Whether the cache holds no build outcomes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide cache shared by [`Grid`](crate::harness::Grid) runs
/// and figure binaries. Gains the persistent artifact tier when
/// `POINTACC_ARTIFACT_DIR` is set (read once; see
/// [`crate::artifact_dir`]).
pub fn global() -> &'static TraceCache {
    static GLOBAL: OnceLock<TraceCache> = OnceLock::new();
    GLOBAL.get_or_init(|| match crate::artifact_dir() {
        Some(dir) => TraceCache::new().with_artifact_dir(dir),
        None => TraceCache::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tiny_trace(name: &str) -> NetworkTrace {
        NetworkTrace { network: name.into(), input_desc: "test".into(), layers: vec![] }
    }

    fn temp_dir(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pointacc-cache-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn second_lookup_hits_without_rebuilding() {
        let cache = TraceCache::new();
        let key = TraceKey::new("net", 1, 0.5);
        let builds = AtomicU64::new(0);
        let a = cache.get_or_build(&key, || {
            builds.fetch_add(1, Ordering::SeqCst);
            tiny_trace("net")
        });
        let b = cache.get_or_build(&key, || {
            builds.fetch_add(1, Ordering::SeqCst);
            tiny_trace("other")
        });
        assert!(Arc::ptr_eq(&a, &b), "hit must share the compiled trace");
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        assert_eq!(cache.compile_count(&key), 1);
        assert_eq!(
            cache.stats(),
            CacheStats { hits: 1, misses: 1, disk_hits: 0, compiles: 1, verify_rejects: 0 }
        );
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = TraceCache::new();
        let a = cache.get_or_build(&TraceKey::new("net", 1, 0.5), || tiny_trace("a"));
        let b = cache.get_or_build(&TraceKey::new("net", 2, 0.5), || tiny_trace("b"));
        let c = cache.get_or_build(&TraceKey::new("net", 1, 0.25), || tiny_trace("c"));
        assert_eq!((a.network.as_str(), b.network.as_str(), c.network.as_str()), ("a", "b", "c"));
        assert_eq!(cache.len(), 3);
        assert_eq!(
            cache.stats(),
            CacheStats { hits: 0, misses: 3, disk_hits: 0, compiles: 3, verify_rejects: 0 }
        );
    }

    #[test]
    fn concurrent_misses_compile_exactly_once() {
        let cache = TraceCache::new();
        let key = TraceKey::new("contended", 7, 1.0);
        let builds = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache.get_or_build(&key, || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so laggards really do
                        // observe an in-flight build.
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        tiny_trace("contended")
                    })
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "exactly one compile under contention");
        assert_eq!(cache.compile_count(&key), 1);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.compiles, 1);
    }

    #[test]
    fn clear_releases_entries_but_keeps_history() {
        let cache = TraceCache::new();
        let key = TraceKey::new("net", 1, 0.5);
        let first = cache.get_or_build(&key, || tiny_trace("net"));
        cache.clear();
        assert!(cache.is_empty());
        // The evicted trace stays alive through its Arc.
        assert_eq!(first.network, "net");
        // A re-request compiles again — visible in the compile count.
        let second = cache.get_or_build(&key, || tiny_trace("net"));
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(cache.compile_count(&key), 2);
        assert_eq!(
            cache.stats(),
            CacheStats { hits: 0, misses: 2, disk_hits: 0, compiles: 2, verify_rejects: 0 }
        );
    }

    #[test]
    fn reset_stats_starts_a_fresh_accounting_epoch() {
        let cache = TraceCache::new();
        let key = TraceKey::new("net", 1, 0.5);
        cache.get_or_build(&key, || tiny_trace("net"));
        cache.get_or_build(&key, || tiny_trace("net"));
        assert_eq!(cache.stats().hits, 1);
        cache.reset_stats();
        assert_eq!(cache.stats(), CacheStats::default());
        assert_eq!(cache.compile_count(&key), 0);
        // The cached trace itself survives: the next lookup is a pure
        // hit in the new epoch.
        cache.get_or_build(&key, || tiny_trace("net"));
        assert_eq!(
            cache.stats(),
            CacheStats { hits: 1, misses: 0, disk_hits: 0, compiles: 0, verify_rejects: 0 }
        );
    }

    #[test]
    fn failed_builds_are_negatively_cached() {
        use crate::UnknownDataset;
        let cache = TraceCache::new();
        let key = TraceKey::new("broken", 1, 0.5);
        let builds = AtomicU64::new(0);
        let build = || {
            builds.fetch_add(1, Ordering::SeqCst);
            Err(UnknownDataset { name: "NuScenes".into() }.into())
        };
        let first = cache.try_get_or_build(&key, build).unwrap_err();
        let second = cache.try_get_or_build(&key, build).unwrap_err();
        assert_eq!(first, second, "both lookups return the cached error");
        assert_eq!(builds.load(Ordering::SeqCst), 1, "failed build runs once under Retain");
        assert_eq!(cache.compile_count(&key), 1);
        // A different key still compiles normally.
        let ok = cache.try_get_or_build(&TraceKey::new("fine", 1, 0.5), || Ok(tiny_trace("fine")));
        assert_eq!(ok.unwrap().network, "fine");
    }

    #[test]
    fn retry_policy_recovers_from_a_transient_failure() {
        use crate::UnknownDataset;
        let cache = TraceCache::new().with_failure_policy(FailurePolicy::RetryOnRequest);
        let key = TraceKey::new("flaky", 1, 0.5);
        let builds = AtomicU64::new(0);
        let build = || {
            if builds.fetch_add(1, Ordering::SeqCst) == 0 {
                Err(UnknownDataset { name: "transient".into() }.into())
            } else {
                Ok(tiny_trace("flaky"))
            }
        };
        assert!(cache.try_get_or_build(&key, build).is_err());
        // The re-request drops the failed slot and rebuilds.
        let recovered = cache.try_get_or_build(&key, build).unwrap();
        assert_eq!(recovered.network, "flaky");
        assert_eq!(builds.load(Ordering::SeqCst), 2);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.compiles), (0, 2, 2));
        // The recovered success is now cached like any other.
        cache.try_get_or_build(&key, build).unwrap();
        assert_eq!(builds.load(Ordering::SeqCst), 2);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn invalidate_drops_one_key_only() {
        use crate::UnknownDataset;
        let cache = TraceCache::new();
        let bad = TraceKey::new("bad", 1, 0.5);
        let good = TraceKey::new("good", 1, 0.5);
        cache
            .try_get_or_build(&bad, || Err(UnknownDataset { name: "blip".into() }.into()))
            .unwrap_err();
        cache.get_or_build(&good, || tiny_trace("good"));
        cache.invalidate(&bad);
        // The invalidated failure rebuilds even under Retain…
        let ok = cache.try_get_or_build(&bad, || Ok(tiny_trace("bad"))).unwrap();
        assert_eq!(ok.network, "bad");
        // …while the untouched key is still a hit.
        let builds = AtomicU64::new(0);
        cache.get_or_build(&good, || {
            builds.fetch_add(1, Ordering::SeqCst);
            tiny_trace("good")
        });
        assert_eq!(builds.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used_completed_entry() {
        let cache = TraceCache::new().bounded(2);
        let k1 = TraceKey::new("net", 1, 0.5);
        let k2 = TraceKey::new("net", 2, 0.5);
        let k3 = TraceKey::new("net", 3, 0.5);
        cache.get_or_build(&k1, || tiny_trace("1"));
        cache.get_or_build(&k2, || tiny_trace("2"));
        // Touch k1 so k2 is the LRU entry when k3 overflows the cache.
        cache.get_or_build(&k1, || tiny_trace("1"));
        cache.get_or_build(&k3, || tiny_trace("3"));
        assert_eq!(cache.len(), 2);
        let builds = AtomicU64::new(0);
        cache.get_or_build(&k1, || {
            builds.fetch_add(1, Ordering::SeqCst);
            tiny_trace("1")
        });
        assert_eq!(builds.load(Ordering::SeqCst), 0, "k1 survived the eviction");
        cache.get_or_build(&k2, || {
            builds.fetch_add(1, Ordering::SeqCst);
            tiny_trace("2")
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "k2 was evicted and recompiled");
        assert_eq!(cache.compile_count(&k2), 2);
    }

    #[test]
    fn eviction_never_removes_in_flight_builds() {
        use std::sync::mpsc;
        let cache = TraceCache::new().bounded(1);
        let slow = TraceKey::new("slow", 1, 0.5);
        let fast = TraceKey::new("fast", 1, 0.5);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        std::thread::scope(|scope| {
            let (cache, slow) = (&cache, &slow);
            scope.spawn(move || {
                cache.get_or_build(slow, || {
                    started_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    tiny_trace("slow")
                });
            });
            started_rx.recv().unwrap();
            // `fast` overflows the capacity-1 cache while `slow` is
            // mid-build; the only eviction candidate is `fast` itself
            // once complete — `slow` must never be torn out.
            cache.get_or_build(&fast, || tiny_trace("fast"));
            release_tx.send(()).unwrap();
        });
        let builds = AtomicU64::new(0);
        cache.get_or_build(&slow, || {
            builds.fetch_add(1, Ordering::SeqCst);
            tiny_trace("slow")
        });
        assert_eq!(builds.load(Ordering::SeqCst), 0, "in-flight build was preserved");
    }

    #[test]
    fn artifact_dir_warm_starts_a_second_cache() {
        let dir = temp_dir("warm-start");
        let _ = std::fs::remove_dir_all(&dir);
        let key = TraceKey::new("net", 1, 0.5);

        let cold = TraceCache::new().with_artifact_dir(&dir);
        let compiled = cold.get_or_build(&key, || tiny_trace("net"));
        assert_eq!(
            cold.stats(),
            CacheStats { hits: 0, misses: 1, disk_hits: 0, compiles: 1, verify_rejects: 0 }
        );

        // A fresh cache (fresh process, conceptually) loads the
        // artifact instead of compiling: zero builder runs.
        let warm = TraceCache::new().with_artifact_dir(&dir);
        let builds = AtomicU64::new(0);
        let loaded = warm.get_or_build(&key, || {
            builds.fetch_add(1, Ordering::SeqCst);
            tiny_trace("net")
        });
        assert_eq!(builds.load(Ordering::SeqCst), 0, "warm start must not compile");
        assert_eq!(*loaded, *compiled, "loaded trace is structurally identical");
        assert_eq!(loaded.fingerprint(), compiled.fingerprint());
        assert_eq!(
            warm.stats(),
            CacheStats { hits: 0, misses: 1, disk_hits: 1, compiles: 0, verify_rejects: 0 }
        );
        assert_eq!(warm.compile_count(&key), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_is_recompiled_and_replaced() {
        let dir = temp_dir("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let key = TraceKey::new("net", 1, 0.5);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(artifact::file_name(&key)), b"not an artifact").unwrap();

        let cache = TraceCache::new().with_artifact_dir(&dir);
        let trace = cache.get_or_build(&key, || tiny_trace("net"));
        assert_eq!(
            cache.stats(),
            CacheStats { hits: 0, misses: 1, disk_hits: 0, compiles: 1, verify_rejects: 0 },
            "a corrupt artifact is a compile, not a disk hit or a failure"
        );
        // The compile atomically replaced the corrupt file: a fresh
        // cache now disk-hits.
        let fresh = TraceCache::new().with_artifact_dir(&dir);
        let reloaded = fresh.get_or_build(&key, || panic!("must load from disk"));
        assert_eq!(*reloaded, *trace);
        assert_eq!(fresh.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evicted_entries_reload_from_the_artifact_tier() {
        let dir = temp_dir("evict-reload");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = TraceCache::new().bounded(1).with_artifact_dir(&dir);
        let k1 = TraceKey::new("net", 1, 0.5);
        let k2 = TraceKey::new("net", 2, 0.5);
        cache.get_or_build(&k1, || tiny_trace("1"));
        cache.get_or_build(&k2, || tiny_trace("2")); // evicts k1
        assert_eq!(cache.len(), 1);
        // The evicted key comes back from disk, not the builder.
        let back = cache.get_or_build(&k1, || panic!("must reload from disk"));
        assert_eq!(back.network, "1");
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.disk_hits, stats.compiles), (3, 1, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panicked_build_does_not_take_the_cache_down() {
        let cache = TraceCache::new();
        let key = TraceKey::new("panicky", 1, 0.5);
        let panicked = std::thread::scope(|scope| {
            scope.spawn(|| cache.get_or_build(&key, || panic!("builder exploded"))).join().is_err()
        });
        assert!(panicked, "the builder's panic reaches its own caller");
        // The cache survives: same key rebuilds, other keys work, and
        // stats are still readable.
        let ok = cache.get_or_build(&key, || tiny_trace("recovered"));
        assert_eq!(ok.network, "recovered");
        let other = cache.get_or_build(&TraceKey::new("other", 1, 0.5), || tiny_trace("other"));
        assert_eq!(other.network, "other");
        assert!(cache.stats().compiles >= 1);
    }

    #[test]
    fn poisoned_internal_locks_recover() {
        let cache = TraceCache::new();
        cache.get_or_build(&TraceKey::new("pre", 1, 0.5), || tiny_trace("pre"));
        // Poison every internal mutex by panicking while holding it.
        for _ in 0..1 {
            let _ = std::thread::scope(|scope| {
                scope
                    .spawn(|| {
                        let _slots = lock(&cache.slots);
                        panic!("poison slots");
                    })
                    .join()
            });
            let _ = std::thread::scope(|scope| {
                scope
                    .spawn(|| {
                        let _stats = lock(&cache.stats);
                        panic!("poison stats");
                    })
                    .join()
            });
        }
        // Lookups and accounting still work on the recovered state.
        let trace = cache.get_or_build(&TraceKey::new("post", 1, 0.5), || tiny_trace("post"));
        assert_eq!(trace.network, "post");
        assert!(cache.stats().misses >= 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn empty_cache_reports_zero_rate() {
        let cache = TraceCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hit_rate(), 0.0);
        assert_eq!(cache.compile_count(&TraceKey::new("none", 0, 1.0)), 0);
        assert_eq!(
            cache.stats().accounting(),
            "hits=0 misses=0 disk_hits=0 compiles=0 verify_rejects=0"
        );
    }

    /// A structurally malformed trace: dense layers are point-wise, so
    /// `n_in != n_out` fails [`verify_trace`] while still encoding (and
    /// checksumming) cleanly through the artifact codec.
    fn invalid_trace(name: &str) -> NetworkTrace {
        use pointacc_nn::{Aggregation, ComputeKind, LayerTrace};
        NetworkTrace {
            network: name.into(),
            input_desc: "test".into(),
            layers: vec![LayerTrace {
                name: "dense".into(),
                compute: ComputeKind::Dense,
                n_in: 4,
                n_out: 8,
                in_ch: 3,
                out_ch: 3,
                maps: None,
                mapping: vec![],
                aggregation: Aggregation::None,
                pool_group: None,
                fusable: true,
            }],
        }
    }

    #[test]
    fn builder_output_failing_verification_is_rejected_and_counted() {
        let cache = TraceCache::new();
        let key = TraceKey::new("bogus", 1, 0.5);
        let err = cache.try_get_or_build(&key, || Ok(invalid_trace("bogus"))).unwrap_err();
        assert!(matches!(err, TraceBuildError::Invalid(_)), "{err:?}");
        assert!(err.to_string().contains("failed static verification"), "{err}");
        let stats = cache.stats();
        assert_eq!((stats.compiles, stats.verify_rejects), (1, 1));
        // The rejection is negatively cached like any build failure: a
        // re-request under Retain returns the error without rebuilding.
        let again = cache.try_get_or_build(&key, || panic!("must not rebuild")).unwrap_err();
        assert_eq!(err, again);
        assert_eq!(cache.stats().verify_rejects, 1);
    }

    #[test]
    fn verify_rejected_artifact_recompiles_and_is_replaced() {
        let dir = temp_dir("verify-reject");
        let _ = std::fs::remove_dir_all(&dir);
        let key = TraceKey::new("net", 1, 0.5);
        // An honestly encoded artifact — checksum and fingerprint are
        // self-consistent, so only the semantic verifier can refuse it.
        artifact::save(&dir, &key, &invalid_trace("net")).unwrap();

        let cache = TraceCache::new().with_artifact_dir(&dir);
        let trace = cache.get_or_build(&key, || tiny_trace("net"));
        assert!(trace.layers.is_empty(), "the recompiled trace is served, not the artifact");
        let stats = cache.stats();
        assert_eq!((stats.disk_hits, stats.compiles, stats.verify_rejects), (0, 1, 1));
        // The compile atomically replaced the rejected artifact: a
        // fresh cache disk-hits with no rejection.
        let fresh = TraceCache::new().with_artifact_dir(&dir);
        let reloaded = fresh.get_or_build(&key, || panic!("must load from disk"));
        assert_eq!(*reloaded, *trace);
        assert_eq!((fresh.stats().disk_hits, fresh.stats().verify_rejects), (1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_all_audits_cached_successes_and_skips_failures() {
        use crate::UnknownDataset;
        let cache = TraceCache::new();
        cache.get_or_build(&TraceKey::new("a", 1, 0.5), || tiny_trace("a"));
        cache.get_or_build(&TraceKey::new("b", 1, 0.5), || tiny_trace("b"));
        let _ = cache.try_get_or_build(&TraceKey::new("bad", 1, 0.5), || {
            Err(UnknownDataset { name: "nope".into() }.into())
        });
        assert_eq!(cache.verify_all(), Ok(2), "two successes audited, the failure skipped");
        assert_eq!(TraceCache::new().verify_all(), Ok(0));
    }
}
