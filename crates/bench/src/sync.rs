//! Poison-recovering synchronization helpers shared by the trace cache
//! and the serving layer.
//!
//! Every mutex in this crate guards plain data — maps, counters, queue
//! state — mutated only under short critical sections, so a thread that
//! panicked while holding the lock cannot have left the data torn.
//! Propagating the poison would turn one panicking builder or worker
//! into a process-wide outage for every later lookup; these helpers
//! recover the guard with [`PoisonError::into_inner`] instead. The repo
//! linter (`cargo run -p pointacc-lint`) bans bare `.lock().unwrap()` /
//! `.lock().expect(..)` outside tests to keep every call site on this
//! path.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard from a poisoned mutex.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `cv`, releasing `guard` until notified; the reacquired
/// guard is recovered from a poisoned mutex just like [`lock`].
pub fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn lock_recovers_a_poisoned_mutex() {
        let m = Mutex::new(7u32);
        let _ = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = lock(&m);
                    panic!("poison while holding");
                })
                .join()
        });
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 7, "the recovered guard still reads the data");
        *lock(&m) = 8;
        assert_eq!(*lock(&m), 8);
    }

    #[test]
    fn wait_participates_in_a_normal_handoff() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                *lock(&m) = true;
                cv.notify_one();
            });
            let mut ready = lock(&m);
            while !*ready {
                ready = wait(&cv, ready);
            }
            assert!(*ready);
        });
    }
}
