//! Fig. 19: distribution of per-layer DRAM access size for MinkowskiUNet
//! on S3DIS and SemanticKITTI, with and without the configurable cache.
//! The four (trace × flow) accelerator replays run concurrently through
//! the harness.

use pointacc::{Accelerator, CachePolicy, PointAccConfig, RunOptions, RunReport};
use pointacc_bench::harness::{parallel_map, parallel_traces};
use pointacc_bench::{paper, print_table};
use pointacc_nn::zoo;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn layer_sizes_mb(report: &RunReport) -> Vec<f64> {
    let mut sizes: Vec<f64> = report
        .layers
        .iter()
        .filter(|l| l.dram_bytes > 0)
        .map(|l| l.dram_bytes as f64 / 1e6)
        .collect();
    sizes.sort_by(|a, b| a.partial_cmp(b).unwrap());
    sizes
}

fn main() {
    let acc = Accelerator::new(PointAccConfig::full());
    println!("== Fig. 19: per-layer DRAM access size (MB), MinkowskiUNet ==\n");
    let benchmarks: Vec<_> = zoo::benchmarks()
        .into_iter()
        .filter(|b| b.notation == "MinkNet(i)" || b.notation == "MinkNet(o)")
        .collect();
    let traces = parallel_traces(&benchmarks, 42);

    let gather_opts =
        RunOptions { cache: CachePolicy::Off, gather_scatter_flow: true, fusion: true };
    let jobs: Vec<(usize, RunOptions)> =
        (0..traces.len()).flat_map(|t| [(t, gather_opts), (t, RunOptions::default())]).collect();
    let reports = parallel_map(&jobs, |&(t, opts)| acc.run_with(&traces[t], opts));

    let mut rows = Vec::new();
    for (bi, b) in benchmarks.iter().enumerate() {
        let gather = &reports[bi * 2];
        let cached = &reports[bi * 2 + 1];
        for (name, report) in [("Gather&Scatter", gather), ("Fetch-on-Demand", cached)] {
            let sizes = layer_sizes_mb(report);
            let mean = sizes.iter().sum::<f64>() / sizes.len().max(1) as f64;
            rows.push(vec![
                format!("{} / {}", b.notation, name),
                format!("{:.3}", percentile(&sizes, 0.0)),
                format!("{:.3}", percentile(&sizes, 0.25)),
                format!("{:.3}", percentile(&sizes, 0.5)),
                format!("{:.3}", percentile(&sizes, 0.75)),
                format!("{:.3}", percentile(&sizes, 1.0)),
                format!("{:.3}", mean),
            ]);
        }
        let reduction = gather.dram_bytes() as f64 / cached.dram_bytes().max(1) as f64;
        let pidx = if b.notation == "MinkNet(i)" { 0 } else { 1 };
        println!(
            "{}: average reduction {:.1}x (paper {:.1}x)\n",
            b.notation,
            reduction,
            paper::FIG19_REDUCTION[pidx]
        );
    }
    print_table(&["Config", "min", "p25", "median", "p75", "max", "mean"], &rows);
    println!("\npaper: caching reduces per-layer DRAM access 3.5x (SemanticKITTI) to 6.3x (S3DIS); distribution shape preserved");
}
