//! Table 2: the evaluation benchmarks, with measured workload statistics
//! (traces built concurrently through the harness).

use pointacc_bench::harness::parallel_traces;
use pointacc_bench::print_table;
use pointacc_nn::{stats, zoo};

fn main() {
    println!("== Table 2: Evaluation Benchmarks ==\n");
    let benchmarks = zoo::benchmarks();
    let traces = parallel_traces(&benchmarks, 42);
    let mut rows = Vec::new();
    for (b, trace) in benchmarks.iter().zip(&traces) {
        let s = stats::network_stats(trace);
        rows.push(vec![
            b.notation.to_string(),
            b.application.to_string(),
            b.dataset.to_string(),
            format!("{}", trace.input_points()),
            format!("{:.2}", s.macs as f64 / 1e9),
            format!("{:.2}", s.params as f64 / 1e6),
            format!("{}", s.maps),
        ]);
    }
    print_table(
        &["Model", "Application", "Dataset", "#Points", "GMACs", "MParams", "#Maps"],
        &rows,
    );
}
