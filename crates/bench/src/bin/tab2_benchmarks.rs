//! Table 2: the evaluation benchmarks, with measured workload statistics.

use pointacc_bench::{benchmark_trace, print_table};
use pointacc_nn::{stats, zoo};

fn main() {
    println!("== Table 2: Evaluation Benchmarks ==\n");
    let mut rows = Vec::new();
    for b in zoo::benchmarks() {
        let trace = benchmark_trace(&b, 42);
        let s = stats::network_stats(&trace);
        rows.push(vec![
            b.notation.to_string(),
            b.application.to_string(),
            b.dataset.to_string(),
            format!("{}", trace.input_points()),
            format!("{:.2}", s.macs as f64 / 1e9),
            format!("{:.2}", s.params as f64 / 1e6),
            format!("{}", s.maps),
        ]);
    }
    print_table(
        &["Model", "Application", "Dataset", "#Points", "GMACs", "MParams", "#Maps"],
        &rows,
    );
}
