//! Fig. 16: network/accelerator co-design — Mesorasi running
//! PointNet++SSG vs PointAcc.Edge running Mini-MinkowskiUNet, same S3DIS
//! segmentation task. Accuracy (mIoU) is quoted from the paper (no
//! training in this reproduction); latency is measured on our models
//! through the unified engine surface.

use pointacc::{Accelerator, Engine, PointAccConfig};
use pointacc_baselines::{Mesorasi, MesorasiSw, Platform};
use pointacc_bench::{benchmark_trace, dataset_or_exit, paper, print_table, scale};
use pointacc_nn::{zoo, ExecMode, Executor};

fn main() {
    // PointNet++SSG on S3DIS for Mesorasi.
    let pp = zoo::benchmarks()
        .into_iter()
        .find(|b| b.notation == "PointNet++(s)")
        .expect("PointNet++(s) benchmark exists");
    let pp_trace = benchmark_trace(&pp, 42);
    let sw = MesorasiSw::on(Platform::jetson_nano());
    let hw = Mesorasi::new();
    assert!(sw.supports(&pp_trace) && hw.supports(&pp_trace));
    let sw_ms = sw.evaluate(&pp_trace).latency_ms();
    let hw_ms = hw.evaluate(&pp_trace).latency_ms();

    // Mini-MinkowskiUNet on the same room for PointAcc.Edge.
    let mini = zoo::mini_minkunet();
    let ds = dataset_or_exit("S3DIS");
    let n = ((mini.default_points() as f64 * scale()) as usize).max(64);
    let pts = ds.generate(42, n);
    let mini_trace = Executor::new(ExecMode::TraceOnly, 42).run(&mini, &pts).trace;
    assert!(!hw.supports(&mini_trace), "SparseConv must be unsupported on Mesorasi");
    let mini_ms = Accelerator::new(PointAccConfig::edge()).evaluate(&mini_trace).latency_ms();

    println!("== Fig. 16: Co-design on S3DIS segmentation ==\n");
    print_table(
        &["System", "Network", "Latency(ms)", "mIoU (quoted)"],
        &[
            vec![
                "Mesorasi-SW (Nano)".into(),
                "PointNet++SSG".into(),
                format!("{sw_ms:.1}"),
                format!("{:.1}%", paper::FIG16_MIOU_POINTNETPP),
            ],
            vec![
                "Mesorasi-HW".into(),
                "PointNet++SSG".into(),
                format!("{hw_ms:.1}"),
                format!("{:.1}%", paper::FIG16_MIOU_POINTNETPP),
            ],
            vec![
                "PointAcc.Edge".into(),
                "Mini-MinkowskiUNet".into(),
                format!("{mini_ms:.2}"),
                format!("{:.1}%", paper::FIG16_MIOU_MINI_MINK),
            ],
        ],
    );
    println!(
        "\nSpeedup over Mesorasi-SW: {:.0}x (paper: >100x); mIoU +{:.1}% (paper: +9.1%)",
        sw_ms / mini_ms,
        paper::FIG16_MIOU_MINI_MINK - paper::FIG16_MIOU_POINTNETPP
    );
    println!(
        "note: Mesorasi cannot run Mini-MinkowskiUNet at all (independent per-offset weights)."
    );
}
