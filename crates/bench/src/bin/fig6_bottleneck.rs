//! Fig. 6: latency breakdown of point cloud networks on general-purpose
//! platforms — PointNet++(s) on S3DIS (left), MinkowskiUNet on
//! SemanticKITTI (right) — evaluated as one concurrent 4-engine ×
//! 2-benchmark harness grid.

use pointacc::Engine;
use pointacc_baselines::Platform;
use pointacc_bench::harness::Grid;
use pointacc_bench::print_table;
use pointacc_nn::zoo;

fn main() {
    let platforms = [
        Platform::xeon_6130(),
        Platform::rtx_2080ti(),
        Platform::jetson_xavier_nx(), // the paper's "mGPU"
        Platform::xeon_tpu_v3(),
    ];
    let run = Grid::new()
        .engines(platforms.iter().map(|p| p as &dyn Engine))
        .benchmarks(
            zoo::benchmarks()
                .into_iter()
                .filter(|b| b.notation == "PointNet++(s)" || b.notation == "MinkNet(o)"),
        )
        .run();

    for (bi, bench) in run.benchmarks.iter().enumerate() {
        println!("\n== Fig. 6: {} on {} ==\n", bench.notation, bench.dataset);
        let mut rows = Vec::new();
        for ei in 0..platforms.len() {
            let r = run.report(ei, bi, 0).expect("platforms run everything");
            let (m, x, d) = r.breakdown();
            rows.push(vec![
                r.engine.clone(),
                format!("{:.1}", r.total.to_millis()),
                format!("{:.0}%", d * 100.0),
                format!("{:.0}%", m * 100.0),
                format!("{:.0}%", x * 100.0),
            ]);
        }
        print_table(&["Platform", "Latency(ms)", "DataMove", "Mapping", "MatMul"], &rows);
    }
    println!("\npaper: PointNet++-based nets spend >50% on mapping ops; MinkowskiUNet >50% on data movement (CPU/GPU); CPU+TPU 60-90% data movement");
}
