//! Fig. 6: latency breakdown of point cloud networks on general-purpose
//! platforms — PointNet++(s) on S3DIS (left), MinkowskiUNet on
//! SemanticKITTI (right).

use pointacc_bench::{benchmark_trace, print_table};
use pointacc_baselines::Platform;
use pointacc_nn::zoo;

fn main() {
    let platforms = [
        Platform::xeon_6130(),
        Platform::rtx_2080ti(),
        Platform::jetson_xavier_nx(), // the paper's "mGPU"
        Platform::xeon_tpu_v3(),
    ];
    for bench in zoo::benchmarks() {
        if bench.notation != "PointNet++(s)" && bench.notation != "MinkNet(o)" {
            continue;
        }
        println!("\n== Fig. 6: {} on {} ==\n", bench.notation, bench.dataset);
        let trace = benchmark_trace(&bench, 42);
        let mut rows = Vec::new();
        for p in &platforms {
            let r = p.run(&trace);
            let (m, x, d) = r.breakdown();
            rows.push(vec![
                r.platform.clone(),
                format!("{:.1}", r.total.to_millis()),
                format!("{:.0}%", d * 100.0),
                format!("{:.0}%", m * 100.0),
                format!("{:.0}%", x * 100.0),
            ]);
        }
        print_table(&["Platform", "Latency(ms)", "DataMove", "Mapping", "MatMul"], &rows);
    }
    println!("\npaper: PointNet++-based nets spend >50% on mapping ops; MinkowskiUNet >50% on data movement (CPU/GPU); CPU+TPU 60-90% data movement");
}
