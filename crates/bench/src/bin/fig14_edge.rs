//! Fig. 14: PointAcc.Edge speedup and energy savings over edge devices
//! (Jetson Xavier NX, Jetson Nano, Raspberry Pi 4B).
//!
//! The 4 engines × 8 benchmarks × 3 seeds evaluate concurrently through
//! the parallel harness grid (engine 0 is PointAcc.Edge, the speedup
//! base); every number is reported as mean ± 95 % CI over the seed axis.

use pointacc::{Accelerator, Engine, PointAccConfig};
use pointacc_baselines::Platform;
use pointacc_bench::harness::Grid;
use pointacc_bench::{paper, print_table, SEEDS};

fn main() {
    let acc = Accelerator::new(PointAccConfig::edge());
    let platforms =
        [Platform::jetson_xavier_nx(), Platform::jetson_nano(), Platform::raspberry_pi_4b()];
    let paper_speedups =
        [paper::FIG14_SPEEDUP_NX, paper::FIG14_SPEEDUP_NANO, paper::FIG14_SPEEDUP_RPI];

    let run = Grid::new()
        .engine(&acc)
        .engines(platforms.iter().map(|p| p as &dyn Engine))
        .seeds(SEEDS)
        .run();

    let mut rows = Vec::new();
    for (bi, b) in run.benchmarks.iter().enumerate() {
        let ours = run.latency_summary(0, bi).expect("PointAcc.Edge runs everything");
        let mut row = vec![b.notation.to_string(), format!("{ours:.2}")];
        for (pi, speedups) in paper_speedups.iter().enumerate() {
            let speed = run.speedup_summary(0, 1 + pi, bi).expect("platforms run everything");
            row.push(format!("{speed:.1}x (paper {:.1}x)", speedups[bi]));
        }
        rows.push(row);
    }
    println!(
        "== Fig. 14: Speedup over edge devices (PointAcc.Edge, mean±95% CI, {} seeds) ==\n",
        SEEDS.len()
    );
    print_table(&["Network", "Edge(ms)", "vs Jetson NX", "vs Jetson Nano", "vs RPi 4B"], &rows);
    let [nx, nano, rpi] =
        [1, 2, 3].map(|r| run.geomean_speedup_summary(0, r).expect("all supported"));
    println!(
        "\nGeoMean speedup: NX {nx:.1}x (paper 2.5x) | Nano {nano:.1}x (paper 9.8x) | RPi {rpi:.0}x (paper 141x)"
    );
    println!(
        "GeoMean energy savings: NX {:.1}x (paper 7.8x) | Nano {:.1}x (paper 16x) | RPi {:.0}x (paper 127x)",
        run.geomean_energy_ratio(0, 1),
        run.geomean_energy_ratio(0, 2),
        run.geomean_energy_ratio(0, 3)
    );
    println!("trace cache: {}", pointacc_bench::cache::global().stats().accounting());
    // `--verify`: statically re-verify every cached trace, exiting
    // nonzero (with the offending key) on any rejection.
    if pointacc_bench::verify_flag() {
        pointacc_bench::verify_global_cache_or_exit();
    }
}
