//! Fig. 14: PointAcc.Edge speedup and energy savings over edge devices
//! (Jetson Xavier NX, Jetson Nano, Raspberry Pi 4B).
//!
//! The 4 engines × 8 benchmarks evaluate concurrently through the
//! parallel harness grid (engine 0 is PointAcc.Edge, the speedup base).

use pointacc::{Accelerator, Engine, PointAccConfig};
use pointacc_baselines::Platform;
use pointacc_bench::harness::Grid;
use pointacc_bench::{paper, print_table};

fn main() {
    let acc = Accelerator::new(PointAccConfig::edge());
    let platforms =
        [Platform::jetson_xavier_nx(), Platform::jetson_nano(), Platform::raspberry_pi_4b()];
    let paper_speedups =
        [paper::FIG14_SPEEDUP_NX, paper::FIG14_SPEEDUP_NANO, paper::FIG14_SPEEDUP_RPI];

    let run = Grid::new().engine(&acc).engines(platforms.iter().map(|p| p as &dyn Engine)).run();

    let mut rows = Vec::new();
    for (bi, b) in run.benchmarks.iter().enumerate() {
        let ours = run.report(0, bi, 0).expect("PointAcc.Edge runs everything");
        let mut row = vec![b.notation.to_string(), format!("{:.2}", ours.latency_ms())];
        for (pi, speedups) in paper_speedups.iter().enumerate() {
            let speed = run.speedup(0, 1 + pi, bi, 0).expect("platforms run everything");
            row.push(format!("{:.1}x (paper {:.1}x)", speed, speedups[bi]));
        }
        rows.push(row);
    }
    println!("== Fig. 14: Speedup over edge devices (PointAcc.Edge) ==\n");
    print_table(&["Network", "Edge(ms)", "vs Jetson NX", "vs Jetson Nano", "vs RPi 4B"], &rows);
    println!(
        "\nGeoMean speedup: NX {:.1}x (paper 2.5x) | Nano {:.1}x (paper 9.8x) | RPi {:.0}x (paper 141x)",
        run.geomean_speedup(0, 1),
        run.geomean_speedup(0, 2),
        run.geomean_speedup(0, 3)
    );
    println!(
        "GeoMean energy savings: NX {:.1}x (paper 7.8x) | Nano {:.1}x (paper 16x) | RPi {:.0}x (paper 127x)",
        run.geomean_energy_ratio(0, 1),
        run.geomean_energy_ratio(0, 2),
        run.geomean_energy_ratio(0, 3)
    );
}
