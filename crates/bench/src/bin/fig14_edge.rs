//! Fig. 14: PointAcc.Edge speedup and energy savings over edge devices
//! (Jetson Xavier NX, Jetson Nano, Raspberry Pi 4B).

use pointacc::{Accelerator, PointAccConfig};
use pointacc_bench::{benchmark_trace, geomean, paper, print_table};
use pointacc_baselines::Platform;
use pointacc_nn::zoo;

fn main() {
    let acc = Accelerator::new(PointAccConfig::edge());
    let platforms =
        [Platform::jetson_xavier_nx(), Platform::jetson_nano(), Platform::raspberry_pi_4b()];
    let paper_speedups =
        [paper::FIG14_SPEEDUP_NX, paper::FIG14_SPEEDUP_NANO, paper::FIG14_SPEEDUP_RPI];

    let mut rows = Vec::new();
    let mut speeds: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut energies: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for (bi, b) in zoo::benchmarks().iter().enumerate() {
        let trace = benchmark_trace(b, 42);
        let report = acc.run(&trace);
        let acc_ms = report.latency_ms();
        let acc_j = report.energy().to_joules();
        let mut row = vec![b.notation.to_string(), format!("{:.2}", acc_ms)];
        for (pi, p) in platforms.iter().enumerate() {
            let r = p.run(&trace);
            let speed = r.total.to_millis() / acc_ms;
            speeds[pi].push(speed);
            energies[pi].push(r.energy_j / acc_j);
            row.push(format!("{:.1}x (paper {:.1}x)", speed, paper_speedups[pi][bi]));
        }
        rows.push(row);
    }
    println!("== Fig. 14: Speedup over edge devices (PointAcc.Edge) ==\n");
    print_table(&["Network", "Edge(ms)", "vs Jetson NX", "vs Jetson Nano", "vs RPi 4B"], &rows);
    println!(
        "\nGeoMean speedup: NX {:.1}x (paper 2.5x) | Nano {:.1}x (paper 9.8x) | RPi {:.0}x (paper 141x)",
        geomean(&speeds[0]),
        geomean(&speeds[1]),
        geomean(&speeds[2])
    );
    println!(
        "GeoMean energy savings: NX {:.1}x (paper 7.8x) | Nano {:.1}x (paper 16x) | RPi {:.0}x (paper 127x)",
        geomean(&energies[0]),
        geomean(&energies[1]),
        geomean(&energies[2])
    );
}
