//! Fig. 21: latency and energy breakdown of PointAcc on MinkNet(o),
//! compared with GPU and CPU+TPU — the platforms evaluate through a
//! concurrent harness grid; the accelerator replays once, natively, and
//! converts to the unified report for the shared table.

use pointacc::{Accelerator, Engine, PointAccConfig};
use pointacc_baselines::Platform;
use pointacc_bench::harness::Grid;
use pointacc_bench::{paper, print_table};
use pointacc_nn::zoo;

fn main() {
    let tpu = Platform::xeon_tpu_v3();
    let gpu = Platform::rtx_2080ti();
    let run = Grid::new()
        .engines([&tpu as &dyn Engine, &gpu])
        .benchmarks(zoo::benchmarks().into_iter().filter(|b| b.notation == "MinkNet(o)"))
        .run();
    let acc_report = Accelerator::new(PointAccConfig::full()).run(run.trace(0, 0));

    println!("== Fig. 21a: latency breakdown on MinkNet(o) ==\n");
    let mut rows = Vec::new();
    let unified: Vec<_> = (0..run.engines.len())
        .map(|ei| run.report(ei, 0, 0).expect("platforms run MinkNet(o)").clone())
        .chain([acc_report.to_engine_report()])
        .collect();
    for r in &unified {
        let (m, x, d) = r.breakdown();
        rows.push(vec![
            r.engine.clone(),
            format!("{:.2}", r.total.to_millis()),
            format!("{:.0}%", d * 100.0),
            format!("{:.0}%", x * 100.0),
            format!("{:.0}%", m * 100.0),
        ]);
    }
    print_table(&["Platform", "Latency(ms)", "DataMove", "MatMul", "Mapping"], &rows);

    println!("\n== Fig. 21b: PointAcc energy breakdown ==\n");
    let (c, s, dr) = acc_report.energy_breakdown();
    print_table(
        &["Component", "Ours", "Paper"],
        &[
            vec![
                "Compute".into(),
                format!("{:.0}%", c * 100.0),
                format!("{:.0}%", paper::FIG21_ENERGY[0] * 100.0),
            ],
            vec![
                "SRAM".into(),
                format!("{:.0}%", s * 100.0),
                format!("{:.0}%", paper::FIG21_ENERGY[1] * 100.0),
            ],
            vec![
                "DRAM".into(),
                format!("{:.0}%", dr * 100.0),
                format!("{:.0}%", paper::FIG21_ENERGY[2] * 100.0),
            ],
        ],
    );
    println!(
        "\ntotal energy {:.2} mJ; MatMul dominates latency on PointAcc (paper: mapping+datamove largely overlapped)",
        acc_report.energy().to_millijoules()
    );
}
