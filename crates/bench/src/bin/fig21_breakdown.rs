//! Fig. 21: latency and energy breakdown of PointAcc on MinkNet(o),
//! compared with GPU and CPU+TPU.

use pointacc::{Accelerator, PointAccConfig};
use pointacc_bench::{benchmark_trace, paper, print_table};
use pointacc_baselines::Platform;
use pointacc_nn::zoo;

fn main() {
    let b = zoo::benchmarks()
        .into_iter()
        .find(|b| b.notation == "MinkNet(o)")
        .expect("MinkNet(o) exists");
    let trace = benchmark_trace(&b, 42);

    println!("== Fig. 21a: latency breakdown on MinkNet(o) ==\n");
    let mut rows = Vec::new();
    for p in [Platform::xeon_tpu_v3(), Platform::rtx_2080ti()] {
        let r = p.run(&trace);
        let (m, x, d) = r.breakdown();
        rows.push(vec![
            r.platform.clone(),
            format!("{:.1}", r.total.to_millis()),
            format!("{:.0}%", d * 100.0),
            format!("{:.0}%", x * 100.0),
            format!("{:.0}%", m * 100.0),
        ]);
    }
    let acc = Accelerator::new(PointAccConfig::full());
    let report = acc.run(&trace);
    let (m, x, d) = report.latency_breakdown();
    rows.push(vec![
        "PointAcc".into(),
        format!("{:.2}", report.latency_ms()),
        format!("{:.0}%", d * 100.0),
        format!("{:.0}%", x * 100.0),
        format!("{:.0}%", m * 100.0),
    ]);
    print_table(&["Platform", "Latency(ms)", "DataMove", "MatMul", "Mapping"], &rows);

    println!("\n== Fig. 21b: PointAcc energy breakdown ==\n");
    let (c, s, dr) = report.energy_breakdown();
    print_table(
        &["Component", "Ours", "Paper"],
        &[
            vec!["Compute".into(), format!("{:.0}%", c * 100.0), format!("{:.0}%", paper::FIG21_ENERGY[0] * 100.0)],
            vec!["SRAM".into(), format!("{:.0}%", s * 100.0), format!("{:.0}%", paper::FIG21_ENERGY[1] * 100.0)],
            vec!["DRAM".into(), format!("{:.0}%", dr * 100.0), format!("{:.0}%", paper::FIG21_ENERGY[2] * 100.0)],
        ],
    );
    println!(
        "\ntotal energy {:.2} mJ; MatMul dominates latency on PointAcc (paper: mapping+datamove largely overlapped)",
        report.energy().to_millijoules()
    );
}
