//! Fig. 20: DRAM access reduction from temporal layer fusion on the
//! PointNet family. The (benchmark × fusion-option) replays run
//! concurrently through the harness.

use pointacc::{Accelerator, PointAccConfig, RunOptions};
use pointacc_bench::harness::{parallel_map, parallel_traces};
use pointacc_bench::{paper, print_table};
use pointacc_nn::zoo;

fn main() {
    let acc = Accelerator::new(PointAccConfig::full());
    let benchmarks: Vec<_> = zoo::benchmarks()
        .into_iter()
        .filter(|b| paper::FIG20_NETWORKS.contains(&b.notation))
        .collect();
    let traces = parallel_traces(&benchmarks, 42);
    let jobs: Vec<(usize, bool)> =
        (0..traces.len()).flat_map(|t| [(t, true), (t, false)]).collect();
    let reports = parallel_map(&jobs, |&(t, fusion)| {
        acc.run_with(&traces[t], RunOptions { fusion, ..Default::default() })
    });

    let mut rows = Vec::new();
    for (bi, b) in benchmarks.iter().enumerate() {
        let pi = paper::FIG20_NETWORKS
            .iter()
            .position(|n| *n == b.notation)
            .expect("only Fig. 20 networks are in the grid");
        let fused = &reports[bi * 2];
        let unfused = &reports[bi * 2 + 1];
        let reduction = 100.0 * (1.0 - fused.dram_bytes() as f64 / unfused.dram_bytes() as f64);
        let fused_layers = fused.layers.iter().filter(|l| l.fused).count();
        rows.push(vec![
            b.notation.to_string(),
            format!("{}", unfused.dram_bytes() / 1024),
            format!("{}", fused.dram_bytes() / 1024),
            format!("{fused_layers}"),
            format!("{:.0}% (paper {:.0}%)", reduction, paper::FIG20_REDUCTION_PCT[pi]),
        ]);
    }
    println!("== Fig. 20: DRAM reduction from temporal layer fusion ==\n");
    print_table(&["Network", "Unfused(KB)", "Fused(KB)", "#FusedLayers", "Reduction"], &rows);
    println!("\npaper: fusion cuts DRAM access 33-64%; PointNet fuses the most (no downsampling)");
}
