//! Fig. 20: DRAM access reduction from temporal layer fusion on the
//! PointNet family.

use pointacc::{Accelerator, PointAccConfig, RunOptions};
use pointacc_bench::{benchmark_trace, paper, print_table};
use pointacc_nn::zoo;

fn main() {
    let acc = Accelerator::new(PointAccConfig::full());
    let mut rows = Vec::new();
    for b in zoo::benchmarks() {
        let Some(pi) = paper::FIG20_NETWORKS.iter().position(|n| *n == b.notation) else {
            continue;
        };
        let trace = benchmark_trace(&b, 42);
        let fused = acc.run(&trace);
        let unfused = acc.run_with(&trace, RunOptions { fusion: false, ..Default::default() });
        let reduction = 100.0 * (1.0 - fused.dram_bytes() as f64 / unfused.dram_bytes() as f64);
        let fused_layers = fused.layers.iter().filter(|l| l.fused).count();
        rows.push(vec![
            b.notation.to_string(),
            format!("{}", unfused.dram_bytes() / 1024),
            format!("{}", fused.dram_bytes() / 1024),
            format!("{fused_layers}"),
            format!("{:.0}% (paper {:.0}%)", reduction, paper::FIG20_REDUCTION_PCT[pi]),
        ]);
    }
    println!("== Fig. 20: DRAM reduction from temporal layer fusion ==\n");
    print_table(&["Network", "Unfused(KB)", "Fused(KB)", "#FusedLayers", "Reduction"], &rows);
    println!("\npaper: fusion cuts DRAM access 33-64%; PointNet fuses the most (no downsampling)");
}
