//! §4.1.4 claim: the MPU's ranking-based top-k is ~1.18x faster than the
//! quick-selection engine of SpAtten at the same parallelism.

use pointacc::mpu::RankEngine;
use pointacc_baselines::QuickSelectTopK;
use pointacc_bench::{geomean, print_table};
use pointacc_sim::SortItem;

fn main() {
    let engine = RankEngine::new(64);
    let qs = QuickSelectTopK { lanes: 64 };
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for (n, k) in [(1024usize, 16usize), (2048, 32), (4096, 32), (8192, 64), (8192, 16)] {
        let items: Vec<SortItem> = (0..n)
            .map(|i| SortItem::new(((i * 2_654_435_761) % 1_000_003) as u128, i as u64))
            .collect();
        let (_, stats) = engine.topk(&items, k);
        let q = qs.cycles(n, k);
        let ratio = q as f64 / stats.cycles as f64;
        ratios.push(ratio);
        rows.push(vec![
            format!("n={n}, k={k}"),
            format!("{}", stats.cycles),
            format!("{q}"),
            format!("{ratio:.2}x"),
        ]);
    }
    println!("== §4.1.4: ranking top-k vs quick-select (SpAtten) ==\n");
    print_table(&["Workload", "Ranking(cyc)", "QuickSelect(cyc)", "Speedup"], &rows);
    println!("\ngeomean speedup {:.2}x (paper 1.18x)", geomean(&ratios));
}
