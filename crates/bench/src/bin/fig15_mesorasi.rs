//! Fig. 15: PointAcc.Edge vs Mesorasi (HW and SW variants) on the
//! PointNet++-based benchmarks.

use pointacc::{Accelerator, PointAccConfig};
use pointacc_bench::{benchmark_trace, geomean, paper, print_table};
use pointacc_baselines::{Mesorasi, Platform};
use pointacc_nn::zoo;

fn main() {
    let acc = Accelerator::new(PointAccConfig::edge());
    let mesorasi = Mesorasi::new();
    let mut rows = Vec::new();
    let mut sp_hw = Vec::new();
    let mut sp_nano = Vec::new();
    let mut sp_rpi = Vec::new();
    for b in zoo::benchmarks() {
        let Some(pi) = paper::FIG15_NETWORKS.iter().position(|n| *n == b.notation) else {
            continue;
        };
        let trace = benchmark_trace(&b, 42);
        assert!(Mesorasi::supports(&trace), "{} must be PointNet++-based", b.notation);
        let acc_ms = acc.run(&trace).latency_ms();
        let hw = mesorasi.run(&trace).total.to_millis() / acc_ms;
        let nano =
            Mesorasi::run_software(&Platform::jetson_nano(), &trace).total.to_millis() / acc_ms;
        let rpi =
            Mesorasi::run_software(&Platform::raspberry_pi_4b(), &trace).total.to_millis() / acc_ms;
        sp_hw.push(hw);
        sp_nano.push(nano);
        sp_rpi.push(rpi);
        rows.push(vec![
            b.notation.to_string(),
            format!("{:.1}x (paper {:.1}x)", hw, paper::FIG15_SPEEDUP_HW[pi]),
            format!("{:.1}x (paper {:.0}x)", nano, paper::FIG15_SPEEDUP_SW_NANO[pi]),
            format!("{:.0}x (paper {:.0}x)", rpi, paper::FIG15_SPEEDUP_SW_RPI[pi]),
        ]);
    }
    println!("== Fig. 15: PointAcc.Edge speedup over Mesorasi ==\n");
    print_table(&["Network", "vs Mesorasi-HW", "vs SW(Nano)", "vs SW(RPi4)"], &rows);
    println!(
        "\nGeoMean: HW {:.1}x (paper 4.3x) | SW-Nano {:.1}x (paper 14x) | SW-RPi {:.0}x (paper 128x)",
        geomean(&sp_hw),
        geomean(&sp_nano),
        geomean(&sp_rpi)
    );
}
