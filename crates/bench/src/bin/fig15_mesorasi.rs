//! Fig. 15: PointAcc.Edge vs Mesorasi (HW and SW variants) on the
//! PointNet++-based benchmarks, evaluated as one concurrent harness grid
//! (engine 0 is PointAcc.Edge, the speedup base); every number is
//! reported as mean ± 95 % CI over the seed axis.

use pointacc::{Accelerator, Engine, PointAccConfig};
use pointacc_baselines::{Mesorasi, MesorasiSw, Platform};
use pointacc_bench::harness::Grid;
use pointacc_bench::{paper, print_table, SEEDS};
use pointacc_nn::zoo;

fn main() {
    let acc = Accelerator::new(PointAccConfig::edge());
    let mesorasi = Mesorasi::new();
    let sw_nano = MesorasiSw::on(Platform::jetson_nano());
    let sw_rpi = MesorasiSw::on(Platform::raspberry_pi_4b());

    let run = Grid::new()
        .engines([&acc as &dyn Engine, &mesorasi, &sw_nano, &sw_rpi])
        .benchmarks(
            zoo::benchmarks().into_iter().filter(|b| paper::FIG15_NETWORKS.contains(&b.notation)),
        )
        .seeds(SEEDS)
        .run();

    let mut rows = Vec::new();
    for (bi, b) in run.benchmarks.iter().enumerate() {
        let pi = paper::FIG15_NETWORKS
            .iter()
            .position(|n| *n == b.notation)
            .expect("grid holds only Fig. 15 networks");
        let hw = run.speedup_summary(0, 1, bi).expect("PointNet++-based nets run on Mesorasi");
        let nano = run.speedup_summary(0, 2, bi).expect("supported");
        let rpi = run.speedup_summary(0, 3, bi).expect("supported");
        rows.push(vec![
            b.notation.to_string(),
            format!("{hw:.1}x (paper {:.1}x)", paper::FIG15_SPEEDUP_HW[pi]),
            format!("{nano:.1}x (paper {:.0}x)", paper::FIG15_SPEEDUP_SW_NANO[pi]),
            format!("{rpi:.0}x (paper {:.0}x)", paper::FIG15_SPEEDUP_SW_RPI[pi]),
        ]);
    }
    println!(
        "== Fig. 15: PointAcc.Edge speedup over Mesorasi (mean±95% CI, {} seeds) ==\n",
        SEEDS.len()
    );
    print_table(&["Network", "vs Mesorasi-HW", "vs SW(Nano)", "vs SW(RPi4)"], &rows);
    let [hw, nano, rpi] =
        [1, 2, 3].map(|r| run.geomean_speedup_summary(0, r).expect("all supported"));
    println!(
        "\nGeoMean: HW {hw:.1}x (paper 4.3x) | SW-Nano {nano:.1}x (paper 14x) | SW-RPi {rpi:.0}x (paper 128x)"
    );
}
