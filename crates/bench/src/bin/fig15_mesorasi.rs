//! Fig. 15: PointAcc.Edge vs Mesorasi (HW and SW variants) on the
//! PointNet++-based benchmarks, evaluated as one concurrent harness grid
//! (engine 0 is PointAcc.Edge, the speedup base).

use pointacc::{Accelerator, Engine, PointAccConfig};
use pointacc_baselines::{Mesorasi, MesorasiSw, Platform};
use pointacc_bench::harness::Grid;
use pointacc_bench::{paper, print_table};
use pointacc_nn::zoo;

fn main() {
    let acc = Accelerator::new(PointAccConfig::edge());
    let mesorasi = Mesorasi::new();
    let sw_nano = MesorasiSw::on(Platform::jetson_nano());
    let sw_rpi = MesorasiSw::on(Platform::raspberry_pi_4b());

    let run = Grid::new()
        .engines([&acc as &dyn Engine, &mesorasi, &sw_nano, &sw_rpi])
        .benchmarks(
            zoo::benchmarks().into_iter().filter(|b| paper::FIG15_NETWORKS.contains(&b.notation)),
        )
        .run();

    let mut rows = Vec::new();
    for (bi, b) in run.benchmarks.iter().enumerate() {
        let pi = paper::FIG15_NETWORKS
            .iter()
            .position(|n| *n == b.notation)
            .expect("grid holds only Fig. 15 networks");
        let hw = run.speedup(0, 1, bi, 0).expect("PointNet++-based nets run on Mesorasi");
        let nano = run.speedup(0, 2, bi, 0).expect("supported");
        let rpi = run.speedup(0, 3, bi, 0).expect("supported");
        rows.push(vec![
            b.notation.to_string(),
            format!("{:.1}x (paper {:.1}x)", hw, paper::FIG15_SPEEDUP_HW[pi]),
            format!("{:.1}x (paper {:.0}x)", nano, paper::FIG15_SPEEDUP_SW_NANO[pi]),
            format!("{:.0}x (paper {:.0}x)", rpi, paper::FIG15_SPEEDUP_SW_RPI[pi]),
        ]);
    }
    println!("== Fig. 15: PointAcc.Edge speedup over Mesorasi ==\n");
    print_table(&["Network", "vs Mesorasi-HW", "vs SW(Nano)", "vs SW(RPi4)"], &rows);
    println!(
        "\nGeoMean: HW {:.1}x (paper 4.3x) | SW-Nano {:.1}x (paper 14x) | SW-RPi {:.0}x (paper 128x)",
        run.geomean_speedup(0, 1),
        run.geomean_speedup(0, 2),
        run.geomean_speedup(0, 3)
    );
}
