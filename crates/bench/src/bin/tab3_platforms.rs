//! Table 3: evaluated ASIC platforms.

use pointacc::PointAccConfig;
use pointacc_bench::print_table;

fn main() {
    println!("== Table 3: Evaluated ASIC Platforms ==\n");
    let full = PointAccConfig::full();
    let edge = PointAccConfig::edge();
    let rows = vec![
        vec![
            "Mesorasi".into(),
            "16x16=256".into(),
            "1624".into(),
            "n/a (16nm)".into(),
            "1 GHz".into(),
            "LPDDR3-1600".into(),
            "12.8 GB/s".into(),
            "512 GOPS".into(),
        ],
        vec![
            full.name.clone(),
            format!("{}x{}={}", full.pe_rows, full.pe_cols, full.pe_rows * full.pe_cols),
            format!("{}", full.total_sram_bytes() / 1024),
            format!("{:.1} mm2", full.area_mm2()),
            "1 GHz".into(),
            "HBM2".into(),
            "256 GB/s".into(),
            format!("{:.1} TOPS", full.peak_ops() / 1e12),
        ],
        vec![
            edge.name.clone(),
            format!("{}x{}={}", edge.pe_rows, edge.pe_cols, edge.pe_rows * edge.pe_cols),
            format!("{}", edge.total_sram_bytes() / 1024),
            format!("{:.1} mm2", edge.area_mm2()),
            "1 GHz".into(),
            "DDR4-2133".into(),
            "17 GB/s".into(),
            format!("{:.0} GOPS", edge.peak_ops() / 1e9),
        ],
    ];
    print_table(&["Chip", "Cores", "SRAM(KB)", "Area", "Freq", "DRAM", "Bandwidth", "Peak"], &rows);
    println!("\npaper: PointAcc 15.7 mm2 / 8 TOPS; PointAcc.Edge 3.9 mm2 / 512 GOPS (TSMC 40nm)");
}
