//! Fig. 2: accuracy vs #MACs vs GPU latency — 2-D projection CNNs vs
//! point cloud networks on SemanticKITTI. Accuracy and reference MACs are
//! quoted; GPU latency of our MinkowskiUNet is measured on the GPU model.

use pointacc::Engine;
use pointacc_baselines::Platform;
use pointacc_bench::{benchmark_trace, print_table};
use pointacc_nn::{stats, zoo};

fn main() {
    println!("== Fig. 2: point cloud networks vs 2D CNNs (SemanticKITTI) ==\n");
    let mut rows = Vec::new();
    for m in stats::FIG2_MODELS {
        rows.push(vec![
            m.name.to_string(),
            format!("{:.1}", m.gmacs),
            format!("{:.1}% {}", m.accuracy, m.metric),
            if m.is_point_based { "3D points" } else { "2D projection" }.into(),
            "quoted".into(),
        ]);
    }
    let b = zoo::benchmarks().into_iter().find(|b| b.notation == "MinkNet(o)").unwrap();
    let trace = benchmark_trace(&b, 42);
    let s = stats::network_stats(&trace);
    let gpu = Platform::rtx_2080ti().evaluate(&trace);
    rows.push(vec![
        "MinkowskiUNet (ours)".into(),
        format!("{:.1}", s.macs as f64 / 1e9),
        "63.1% mIoU (quoted)".into(),
        "3D points".into(),
        format!("GPU {:.0} ms", gpu.total.to_millis()),
    ]);
    print_table(&["Model", "GMACs", "Accuracy", "Input", "Latency"], &rows);
    println!("\npaper: point-based nets reach ~5% higher mIoU with up to 7x fewer MACs, yet run slower on GPU");
}
