//! Fig. 13: PointAcc speedup and energy savings over server platforms
//! (RTX 2080Ti, Xeon + TPUv3, Xeon Gold 6130) on the 8 benchmarks.

use pointacc::{Accelerator, PointAccConfig};
use pointacc_bench::{benchmark_trace, geomean, paper, print_table};
use pointacc_baselines::Platform;
use pointacc_nn::zoo;

fn main() {
    let acc = Accelerator::new(PointAccConfig::full());
    let platforms =
        [Platform::rtx_2080ti(), Platform::xeon_tpu_v3(), Platform::xeon_6130()];
    let paper_speedups =
        [paper::FIG13_SPEEDUP_GPU, paper::FIG13_SPEEDUP_TPU, paper::FIG13_SPEEDUP_CPU];

    let mut rows = Vec::new();
    let mut speeds: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut energies: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for (bi, b) in zoo::benchmarks().iter().enumerate() {
        let trace = benchmark_trace(b, 42);
        let report = acc.run(&trace);
        let acc_ms = report.latency_ms();
        let acc_j = report.energy().to_joules();
        let mut row = vec![b.notation.to_string(), format!("{:.2}", acc_ms)];
        for (pi, p) in platforms.iter().enumerate() {
            let r = p.run(&trace);
            let speed = r.total.to_millis() / acc_ms;
            let energy = r.energy_j / acc_j;
            speeds[pi].push(speed);
            energies[pi].push(energy);
            row.push(format!("{:.1}x (paper {:.1}x)", speed, paper_speedups[pi][bi]));
        }
        rows.push(row);
    }
    println!("== Fig. 13: Speedup over server platforms ==\n");
    print_table(
        &["Network", "PointAcc(ms)", "vs RTX 2080Ti", "vs Xeon+TPUv3", "vs Xeon 6130"],
        &rows,
    );
    println!(
        "\nGeoMean speedup: GPU {:.1}x (paper 3.7x) | TPU {:.1}x (paper 53x) | CPU {:.1}x (paper 90x)",
        geomean(&speeds[0]),
        geomean(&speeds[1]),
        geomean(&speeds[2])
    );
    println!(
        "GeoMean energy savings: GPU {:.0}x (paper 22x) | TPU {:.0}x (paper 210x) | CPU {:.0}x (paper 176x)",
        geomean(&energies[0]),
        geomean(&energies[1]),
        geomean(&energies[2])
    );
}
