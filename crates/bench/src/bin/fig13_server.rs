//! Fig. 13: PointAcc speedup and energy savings over server platforms
//! (RTX 2080Ti, Xeon + TPUv3, Xeon Gold 6130) on the 8 benchmarks.
//!
//! The 4 engines × 8 benchmarks evaluate concurrently through the
//! parallel harness grid (engine 0 is PointAcc, the speedup base).

use pointacc::{Accelerator, Engine, PointAccConfig};
use pointacc_baselines::Platform;
use pointacc_bench::harness::Grid;
use pointacc_bench::{paper, print_table};

fn main() {
    let acc = Accelerator::new(PointAccConfig::full());
    let platforms = [Platform::rtx_2080ti(), Platform::xeon_tpu_v3(), Platform::xeon_6130()];
    let paper_speedups =
        [paper::FIG13_SPEEDUP_GPU, paper::FIG13_SPEEDUP_TPU, paper::FIG13_SPEEDUP_CPU];

    let run = Grid::new().engine(&acc).engines(platforms.iter().map(|p| p as &dyn Engine)).run();

    let mut rows = Vec::new();
    for (bi, b) in run.benchmarks.iter().enumerate() {
        let ours = run.report(0, bi, 0).expect("PointAcc runs everything");
        let mut row = vec![b.notation.to_string(), format!("{:.2}", ours.latency_ms())];
        for (pi, speedups) in paper_speedups.iter().enumerate() {
            let speed = run.speedup(0, 1 + pi, bi, 0).expect("platforms run everything");
            row.push(format!("{:.1}x (paper {:.1}x)", speed, speedups[bi]));
        }
        rows.push(row);
    }
    println!("== Fig. 13: Speedup over server platforms ==\n");
    print_table(
        &["Network", "PointAcc(ms)", "vs RTX 2080Ti", "vs Xeon+TPUv3", "vs Xeon 6130"],
        &rows,
    );
    println!(
        "\nGeoMean speedup: GPU {:.1}x (paper 3.7x) | TPU {:.1}x (paper 53x) | CPU {:.1}x (paper 90x)",
        run.geomean_speedup(0, 1),
        run.geomean_speedup(0, 2),
        run.geomean_speedup(0, 3)
    );
    println!(
        "GeoMean energy savings: GPU {:.0}x (paper 22x) | TPU {:.0}x (paper 210x) | CPU {:.0}x (paper 176x)",
        run.geomean_energy_ratio(0, 1),
        run.geomean_energy_ratio(0, 2),
        run.geomean_energy_ratio(0, 3)
    );
}
