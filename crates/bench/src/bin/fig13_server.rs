//! Fig. 13: PointAcc speedup and energy savings over server platforms
//! (RTX 2080Ti, Xeon + TPUv3, Xeon Gold 6130) on the 8 benchmarks.
//!
//! The 4 engines × 8 benchmarks × 3 seeds evaluate concurrently through
//! the parallel harness grid (engine 0 is PointAcc, the speedup base);
//! every number is reported as mean ± 95 % CI over the seed axis rather
//! than a single arbitrary seed.

use pointacc::{Accelerator, Engine, PointAccConfig};
use pointacc_baselines::Platform;
use pointacc_bench::harness::Grid;
use pointacc_bench::{paper, print_table, SEEDS};

fn main() {
    let acc = Accelerator::new(PointAccConfig::full());
    let platforms = [Platform::rtx_2080ti(), Platform::xeon_tpu_v3(), Platform::xeon_6130()];
    let paper_speedups =
        [paper::FIG13_SPEEDUP_GPU, paper::FIG13_SPEEDUP_TPU, paper::FIG13_SPEEDUP_CPU];

    let run = Grid::new()
        .engine(&acc)
        .engines(platforms.iter().map(|p| p as &dyn Engine))
        .seeds(SEEDS)
        .run();

    let mut rows = Vec::new();
    for (bi, b) in run.benchmarks.iter().enumerate() {
        let ours = run.latency_summary(0, bi).expect("PointAcc runs everything");
        let mut row = vec![b.notation.to_string(), format!("{ours:.2}")];
        for (pi, speedups) in paper_speedups.iter().enumerate() {
            let speed = run.speedup_summary(0, 1 + pi, bi).expect("platforms run everything");
            row.push(format!("{speed:.1}x (paper {:.1}x)", speedups[bi]));
        }
        rows.push(row);
    }
    println!("== Fig. 13: Speedup over server platforms (mean±95% CI, {} seeds) ==\n", SEEDS.len());
    print_table(
        &["Network", "PointAcc(ms)", "vs RTX 2080Ti", "vs Xeon+TPUv3", "vs Xeon 6130"],
        &rows,
    );
    let [gpu, tpu, cpu] =
        [1, 2, 3].map(|r| run.geomean_speedup_summary(0, r).expect("all supported"));
    println!(
        "\nGeoMean speedup: GPU {gpu:.1}x (paper 3.7x) | TPU {tpu:.1}x (paper 53x) | CPU {cpu:.1}x (paper 90x)"
    );
    println!(
        "GeoMean energy savings: GPU {:.0}x (paper 22x) | TPU {:.0}x (paper 210x) | CPU {:.0}x (paper 176x)",
        run.geomean_energy_ratio(0, 1),
        run.geomean_energy_ratio(0, 2),
        run.geomean_energy_ratio(0, 3)
    );
    // `compiles=0` here means every trace came from memory or the
    // persistent artifact tier (POINTACC_ARTIFACT_DIR) — the warm-start
    // criterion CI greps for.
    println!("trace cache: {}", pointacc_bench::cache::global().stats().accounting());
    // `--verify`: statically re-verify every cached trace, exiting
    // nonzero (with the offending key) on any rejection.
    if pointacc_bench::verify_flag() {
        pointacc_bench::verify_global_cache_or_exit();
    }
}
