//! Fig. 5: dataset density (left), MACs per point (middle) and feature
//! bytes per point (right) — point cloud networks vs 2-D CNNs (network
//! traces built concurrently through the harness).

use pointacc_bench::harness::parallel_traces;
use pointacc_bench::print_table;
use pointacc_data::{stats as dstats, Dataset};
use pointacc_nn::{stats, zoo};

fn main() {
    println!("== Fig. 5 (left): Dataset density ==\n");
    let mut rows = vec![vec!["ImageNet".to_string(), "-".into(), "-".into(), "100%".into()]];
    for ds in Dataset::ALL {
        let n = ds.default_points().min(40_000);
        let sample = ds.generate(7, n);
        let p = dstats::profile(ds, &sample);
        rows.push(vec![
            p.name,
            format!("{}", p.n_points),
            format!("{}", p.n_voxels),
            format!("{:.4}%", p.density * 100.0),
        ]);
    }
    print_table(&["Dataset", "#Points", "#Voxels", "Density"], &rows);

    println!("\n== Fig. 5 (middle/right): #MACs and feature bytes per point ==\n");
    let mut rows = Vec::new();
    for m in stats::CNN_MODELS {
        rows.push(vec![
            m.name.to_string(),
            format!("{}", stats::cnn_macs_per_pixel(&m)),
            "~64".into(),
            "2D CNN".into(),
        ]);
    }
    let benchmarks = zoo::benchmarks();
    let traces = parallel_traces(&benchmarks, 42);
    for (b, trace) in benchmarks.iter().zip(&traces) {
        let s = stats::network_stats(trace);
        rows.push(vec![
            b.notation.to_string(),
            format!("{}", s.macs_per_point),
            format!("{}", s.feature_bytes_per_point),
            "point cloud".into(),
        ]);
    }
    print_table(&["Model", "MACs/point", "FeatBytes/point", "Family"], &rows);
    println!(
        "\npaper: point cloud networks reach up to 100x the MACs/point and feature size of CNNs"
    );
}
