//! §4.1.1 claim: the merge-sort kernel-mapping engine is ~1.4x faster and
//! ~14x smaller than a hash-table engine of the same parallelism.

use pointacc::Mpu;
use pointacc_baselines::HashKernelMapEngine;
use pointacc_bench::{dataset_or_exit, print_table, scale};
use pointacc_sim::area;

fn main() {
    let ds = dataset_or_exit("SemanticKITTI");
    let n = ((60_000.0 * scale()) as usize).max(1024);
    let pts = ds.generate(42, n);
    let (cloud, _) = pts.voxelize(0.1);
    let n_pts = cloud.len();

    let mpu = Mpu::new(64);
    let hash = HashKernelMapEngine { lanes: 64 };
    let mut rows = Vec::new();
    for kv in [8usize, 27] {
        let merge = mpu.kernel_map_cycles_estimate(n_pts, n_pts, kv);
        let h = hash.cycles(n_pts, n_pts, kv);
        rows.push(vec![
            format!("kernel volume {kv}"),
            format!("{merge}"),
            format!("{h}"),
            format!("{:.2}x (paper 1.4x)", h as f64 / merge as f64),
        ]);
    }
    println!("== §4.1.1: mergesort vs hash-table kernel mapping ({n_pts} points) ==\n");
    print_table(&["Workload", "Mergesort(cyc)", "Hash(cyc)", "Speedup"], &rows);

    let merge_area = area::mergesort_engine_area_mm2(64);
    let hash_area = hash.area_mm2(n_pts);
    println!(
        "\narea: mergesort engine {:.2} mm2 vs hash engine {:.2} mm2 -> {:.1}x smaller (paper 14x)",
        merge_area,
        hash_area,
        hash_area / merge_area
    );
}
