//! Fig. 18: cache miss rate vs block size for SparseConv layers with
//! kernel size k in {2, 3} and channel count c in {64, 128}.

use pointacc::mmu::{simulate_sparse_accesses, CacheConfig, SparseAccessPlan};
use pointacc_bench::{dataset_or_exit, print_table, scale};
use pointacc_geom::golden;

fn main() {
    let ds = dataset_or_exit("SemanticKITTI");
    let n = ((20_000.0 * scale()) as usize).max(512);
    let pts = ds.generate(42, n);
    let (cloud, _) = pts.voxelize(0.1);
    println!("== Fig. 18: cache miss rate ({} voxels) ==\n", cloud.len());

    let blocks = [1usize, 2, 4, 8, 16, 32, 64, 128];
    let mut rows = Vec::new();
    for &k in &[2usize, 3] {
        let output = if k == 2 { cloud.downsample(2).0 } else { cloud.clone() };
        let maps = golden::kernel_map_hash(&cloud, &output, k);
        for &c in &[64usize, 128] {
            let ic_tiles = c / 64;
            let plan = SparseAccessPlan {
                ic_tiles: ic_tiles.max(1),
                oc_tiles: ic_tiles.max(1),
                out_tile_points: (256 * 1024) / (c * 2),
            };
            let mut row = vec![format!("k={k}, c={c}")];
            for &bp in &blocks {
                let cfg = CacheConfig {
                    capacity_bytes: 320 * 1024,
                    block_points: bp,
                    row_bytes: c.min(64) * 2,
                };
                let s = simulate_sparse_accesses(cfg, &maps, plan, None);
                row.push(format!("{:.1}%", s.miss_rate() * 100.0));
            }
            rows.push(row);
        }
    }
    let headers: Vec<String> = std::iter::once("config".to_string())
        .chain(blocks.iter().map(|b| format!("bs={b}")))
        .collect();
    let href: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&href, &rows);
    println!("\npaper: miss rate decreases with block size, kernel size and #channels; saturates at larger blocks");
}
