//! Streaming serving demo: a seeded multi-frame LiDAR stream served
//! through the cross-frame reuse path ([`pointacc_bench::stream`]).
//!
//! The scenario has two phases: a *motion* phase (ego advances, ~10 % of
//! azimuth columns churn per frame — every frame compiles) and a *dwell*
//! phase (ego stops, frames repeat bit-identically — every frame reuses
//! the cached trace and skips the mapping phase). The demo prints the
//! per-frame timeline, the reuse accounting (overall and steady-state —
//! CI greps the steady-state line for `compiles=0`), and writes
//! `BENCH_streaming.json` with amortized-vs-cold throughput.
//!
//! Scale the workload with `POINTACC_SCALE` (e.g. 0.02 for CI smoke).
//! Override the output path with `BENCH_STREAMING_OUT` and the
//! throughput bar with `BENCH_STREAMING_MIN_GAIN` (0 = record-only).

use std::fmt::Write as _;
use std::time::Duration;

use pointacc::{Accelerator, PointAccConfig};
use pointacc_bench::frontend::{Clock, SimClock, WallClock};
use pointacc_bench::stream::{serve_stream, StreamOptions, StreamReport};
use pointacc_nn::stream::ReuseOutcome;
use pointacc_nn::zoo;

const MOTION_FRAMES: usize = 6;
const DWELL_FRAMES: usize = 6;

fn outcome_tag(outcome: ReuseOutcome) -> &'static str {
    match outcome {
        ReuseOutcome::Compiled => "compiled",
        ReuseOutcome::ExactReuse => "exact-reuse",
        ReuseOutcome::VoxelReuse => "voxel-reuse",
    }
}

fn json_record(report: &StreamReport, opts: &StreamOptions, wall: Duration) -> String {
    let mut frames = String::new();
    for (i, r) in report.records.iter().enumerate() {
        if i > 0 {
            frames.push_str(",\n");
        }
        let _ = write!(
            frames,
            concat!(
                "    {{\"frame\": {}, \"points\": {}, \"outcome\": \"{}\", ",
                "\"service_ms\": {:.6}, \"full_service_ms\": {:.6}, ",
                "\"latency_ms\": {:.6}, \"met_slo\": {}}}"
            ),
            r.index,
            r.points,
            outcome_tag(r.outcome),
            r.service.as_secs_f64() * 1e3,
            r.full_service.as_secs_f64() * 1e3,
            r.latency.as_secs_f64() * 1e3,
            r.met_slo,
        );
    }
    let steady = report.stats_from(opts.dwell_after.unwrap_or(opts.frames) + 1);
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"streaming\",\n",
            "  \"scale\": {},\n",
            "  \"network\": \"MinkowskiNet-outdoor\",\n",
            "  \"frames\": {},\n",
            "  \"points_hint\": {},\n",
            "  \"dwell_after\": {},\n",
            "  \"period_ms\": {:.3},\n",
            "  \"slo_ms\": {:.3},\n",
            "  \"amortized_points_per_s\": {:.3},\n",
            "  \"cold_points_per_s\": {:.3},\n",
            "  \"gain\": {:.6},\n",
            "  \"slo_attainment\": {:.6},\n",
            "  \"max_latency_ms\": {:.6},\n",
            "  \"accounting\": \"{}\",\n",
            "  \"steady_accounting\": \"{}\",\n",
            "  \"wall_s\": {:.6},\n",
            "  \"frame_records\": [\n{}\n  ]\n",
            "}}\n"
        ),
        pointacc_bench::scale(),
        opts.frames,
        opts.points_hint,
        opts.dwell_after.unwrap_or(opts.frames),
        opts.period.as_secs_f64() * 1e3,
        opts.slo.as_secs_f64() * 1e3,
        report.amortized_points_per_s(),
        report.cold_points_per_s(),
        report.amortized_points_per_s() / report.cold_points_per_s(),
        report.slo_attainment(),
        report.max_latency().as_secs_f64() * 1e3,
        report.stats.accounting(),
        steady.accounting(),
        wall.as_secs_f64(),
        frames,
    )
}

fn main() {
    let scale = pointacc_bench::scale();
    let points_hint = ((20_000.0 * scale) as usize).max(1_200);
    let opts = StreamOptions {
        seed: 42,
        frames: MOTION_FRAMES + DWELL_FRAMES,
        points_hint,
        period: Duration::from_millis(100),
        slo: Duration::from_millis(100),
        ego_step: 0.5,
        churn_cols: None,
        dwell_after: Some(MOTION_FRAMES),
    };
    println!(
        "== Streaming demo: {} frames ({} motion + {} dwell), ~{} points/frame, scale {} ==\n",
        opts.frames, MOTION_FRAMES, DWELL_FRAMES, points_hint, scale
    );

    let engine = Accelerator::new(PointAccConfig::full());
    let net = zoo::minknet_outdoor();
    let wall = WallClock::new();
    let report = serve_stream(&engine, &net, &SimClock::new(), &opts)
        .expect("stream frames are never empty; serving must succeed");
    let elapsed = wall.now();

    println!("frame  points  outcome       service    cold-service  latency    slo");
    for r in &report.records {
        println!(
            "{:>5}  {:>6}  {:<12}  {:>7.3} ms  {:>9.3} ms  {:>7.3} ms  {}",
            r.index,
            r.points,
            outcome_tag(r.outcome),
            r.service.as_secs_f64() * 1e3,
            r.full_service.as_secs_f64() * 1e3,
            r.latency.as_secs_f64() * 1e3,
            if r.met_slo { "met" } else { "MISS" },
        );
    }
    let steady = report.stats_from(MOTION_FRAMES + 1);
    println!("\noverall accounting: {}", report.stats.accounting());
    println!("steady-state accounting: {}", steady.accounting());
    println!(
        "amortized {:.1} points/s vs cold {:.1} points/s ({:.2}x), SLO attainment {:.0}%, wall {:.3} s",
        report.amortized_points_per_s(),
        report.cold_points_per_s(),
        report.amortized_points_per_s() / report.cold_points_per_s(),
        report.slo_attainment() * 100.0,
        elapsed.as_secs_f64(),
    );

    let out = pointacc_bench::streaming_out();
    std::fs::write(&out, json_record(&report, &opts, elapsed))
        .unwrap_or_else(|e| panic!("writing {}: {e}", out.display())); // lint: allow(panic): bin top-level IO failure is fatal by design.
    println!("wrote {}", out.display());

    assert_eq!(
        steady.compiles,
        0,
        "steady-state dwell frames must compile nothing: {}",
        steady.accounting()
    );
    assert!(
        steady.frames >= (DWELL_FRAMES - 1) as u64,
        "dwell phase too short: {}",
        steady.accounting()
    );
    // The gain ceiling is the mapping phase's share of total modeled
    // time — small on the full accelerator precisely because PointAcc
    // accelerates mapping. The bar only asserts reuse strictly beats
    // cold; the JSON records the exact margin.
    let min_gain = pointacc_bench::streaming_min_gain().unwrap_or(1.005);
    let gain = report.amortized_points_per_s() / report.cold_points_per_s();
    assert!(
        gain >= min_gain,
        "amortized throughput gain {gain:.3}x below bar {min_gain:.3}x \
         (override with BENCH_STREAMING_MIN_GAIN; 0 disables)"
    );
}
