//! Fig. 17: operation-level ablations on the 1st downsampling block of
//! MinkowskiUNet / SemanticKITTI.
//!
//! Left: kernel mapping — merge-sort vs hash-table algorithm on
//! CPU/GPU and on the specialized engines.
//! Right: convolution — Gather-MatMul-Scatter vs Fetch-on-Demand flow on
//! GPU and on PointAcc.

use pointacc::{Accelerator, CachePolicy, Engine, Mpu, PointAccConfig, RunOptions};
use pointacc_baselines::{HashKernelMapEngine, Platform};
use pointacc_bench::{dataset_or_exit, print_table, scale};
use pointacc_nn::{zoo, ComputeKind, ExecMode, Executor, NetworkTrace};

fn first_downsample(trace: &NetworkTrace) -> NetworkTrace {
    let layer = trace
        .layers
        .iter()
        .find(|l| l.compute == ComputeKind::SparseConv && l.n_out < l.n_in)
        .expect("MinkowskiUNet has a downsampling conv")
        .clone();
    NetworkTrace {
        network: trace.network.clone(),
        input_desc: trace.input_desc.clone(),
        layers: vec![layer],
    }
}

fn main() {
    let net = zoo::minknet_outdoor();
    let ds = dataset_or_exit("SemanticKITTI");
    let n = ((net.default_points() as f64 * scale()) as usize).max(256);
    let pts = ds.generate(42, n);
    let full = Executor::new(ExecMode::TraceOnly, 42).run(&net, &pts).trace;
    let block = first_downsample(&full);
    let layer = &block.layers[0];
    let (n_in, n_out) = (layer.n_in, layer.n_out);
    let kv = 8; // kernel 2, stride 2

    println!("== Fig. 17 (left): kernel mapping, {n_in} -> {n_out} points ==\n");
    // CPU/GPU: hash is the state-of-the-art; mergesort does MORE work
    // there (doubled intersection-scan length), modeled as 2x scalar ops.
    let hash_ops = (n_out * kv + n_in) as f64;
    let merge_ops = 2.5 * (n_in + n_out) as f64 * (kv as f64);
    let cpu = Platform::xeon_6130();
    let gpu = Platform::rtx_2080ti();
    let mpu = Mpu::new(64);
    let merge_cycles = mpu.kernel_map_cycles_estimate(n_in, n_out, kv);
    let hash_engine = HashKernelMapEngine { lanes: 64 };
    let hash_cycles = hash_engine.cycles(n_in, n_out, kv);
    let rows = vec![
        vec!["CPU (hash)".into(), format!("{:.3}", hash_ops / (cpu.mapping_gops * 1e6))],
        vec!["CPU (mergesort)".into(), format!("{:.3}", merge_ops / (cpu.mapping_gops * 1e6))],
        vec!["GPU (hash)".into(), format!("{:.3}", hash_ops / (gpu.mapping_gops * 1e6))],
        vec!["GPU (mergesort)".into(), format!("{:.3}", merge_ops / (gpu.mapping_gops * 1e6))],
        vec!["ASIC hash engine".into(), format!("{:.3}", hash_cycles as f64 / 1e6)],
        vec!["PointAcc MPU (mergesort)".into(), format!("{:.3}", merge_cycles as f64 / 1e6)],
    ];
    print_table(&["Implementation", "Latency(ms @1GHz-equiv)"], &rows);
    println!(
        "\nspecialized mergesort vs hash: {:.2}x faster (paper 1.4x), mergesort slower on CPU/GPU as in paper",
        hash_cycles as f64 / merge_cycles as f64
    );

    println!("\n== Fig. 17 (right): convolution flow on the same block ==\n");
    let acc = Accelerator::new(PointAccConfig::full());
    let fod = acc.run(&block);
    let gms = acc.run_with(&block, RunOptions { gather_scatter_flow: true, ..Default::default() });
    let nocache =
        acc.run_with(&block, RunOptions { cache: CachePolicy::Off, ..Default::default() });
    let gpu_gms = gpu.evaluate(&block);
    let rows = vec![
        vec![
            "GPU Gather-MatMul-Scatter".into(),
            format!("{:.3}", gpu_gms.total.to_millis()),
            format!("{}", gpu_gms.datamove.to_millis() as u64),
        ],
        vec![
            "PointAcc G-S flow".into(),
            format!("{:.3}", gms.latency_ms()),
            format!("{}", gms.dram_bytes() / 1024),
        ],
        vec![
            "PointAcc F-D (no cache)".into(),
            format!("{:.3}", nocache.latency_ms()),
            format!("{}", nocache.dram_bytes() / 1024),
        ],
        vec![
            "PointAcc F-D (cached)".into(),
            format!("{:.3}", fod.latency_ms()),
            format!("{}", fod.dram_bytes() / 1024),
        ],
    ];
    print_table(&["Flow", "Latency(ms)", "DRAM(KB|ms)"], &rows);
    println!("\npaper: F-D saves 3x memory footprint; overhead removed by the systolic array on PointAcc");
}
