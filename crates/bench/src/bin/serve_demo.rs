//! Serving-harness demo: drains a batched request stream (all eight
//! Table 2 benchmarks × several seeds × repeated rounds — repeats are
//! where the trace cache earns its keep) through a bounded queue fanned
//! out over three engine shards, then prints the throughput, queue
//! latency and cache statistics a capacity planner needs.
//!
//! Scale the workload with `POINTACC_SCALE` (e.g. 0.02 for CI smoke).

use pointacc::{Accelerator, Engine, PointAccConfig};
use pointacc_baselines::Platform;
use pointacc_bench::serve::{serve, Request, ServeOptions};
use pointacc_nn::zoo;

fn main() {
    let full = Accelerator::new(PointAccConfig::full());
    let edge = Accelerator::new(PointAccConfig::edge());
    let gpu = Platform::rtx_2080ti();
    let engines: Vec<&dyn Engine> = vec![&full, &edge, &gpu];
    let benchmarks = zoo::benchmarks();

    // 5 rounds × 8 benchmarks × 3 seeds = 120 requests over 24 unique
    // traces: rounds 2..5 are pure cache hits.
    let seeds = [42u64, 43, 44];
    let rounds = 5;
    let requests: Vec<Request> = (0..rounds)
        .flat_map(|_| {
            (0..benchmarks.len())
                .flat_map(|b| seeds.map(|seed| Request { benchmark: b, seed }))
                .collect::<Vec<_>>()
        })
        .collect();
    let n_requests = requests.len();

    let options =
        ServeOptions { queue_capacity: 16, workers_per_engine: 2, scale: pointacc_bench::scale() };
    println!(
        "== Serving demo: {n_requests} requests over {} engine shards (queue cap {}, {} workers, scale {}) ==\n",
        engines.len(),
        options.queue_capacity,
        engines.len() * options.workers_per_engine,
        options.scale,
    );
    let report = serve(&engines, &benchmarks, requests, options);

    println!(
        "drained     {} requests ({} unsupported, {} failed) in {:.3} s",
        report.completed + report.unsupported + report.failed,
        report.unsupported,
        report.failed,
        report.wall.as_secs_f64()
    );
    for msg in &report.failures {
        println!("  failure: {msg}");
    }
    println!(
        "throughput  {:.1} requests/s | {:.3} Mpoints/s",
        report.requests_per_s(),
        report.points_per_s() / 1e6
    );
    println!(
        "queue wait  p50 {:.3} ms | p99 {:.3} ms",
        report.queue_p50.as_secs_f64() * 1e3,
        report.queue_p99.as_secs_f64() * 1e3
    );
    println!(
        "trace cache {} hits / {} misses ({:.0}% hit rate)",
        report.cache.hits,
        report.cache.misses,
        report.cache.hit_rate() * 100.0
    );
    println!("\nPer-shard completions:");
    for (name, n) in &report.per_engine {
        println!("  {name:<16} {n}");
    }
    assert!(report.completed >= 100, "demo must drain at least 100 requests");
    assert!(report.cache.hit_rate() > 0.0, "repeated rounds must hit the cache");
}
