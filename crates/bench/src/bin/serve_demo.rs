//! Serving-harness demo: drains a batched request stream (all eight
//! Table 2 benchmarks × several seeds × repeated rounds — repeats are
//! where the trace cache earns its keep) through per-shard bounded
//! queues over three engine shards, then prints the throughput, queue
//! latency, utilization and cache statistics a capacity planner needs.
//!
//! This is the admit-everything configuration of the serving front-end
//! (`pointacc_bench::frontend`): nothing is shed, nothing expires. Run
//! `frontend_demo` for the admission-controlled counterpart.
//!
//! Scale the workload with `POINTACC_SCALE` (e.g. 0.02 for CI smoke).

use pointacc::{Accelerator, Engine, PointAccConfig};
use pointacc_baselines::Platform;
use pointacc_bench::serve::{serve, Request, ServeOptions};
use pointacc_nn::zoo;

fn main() {
    let full = Accelerator::new(PointAccConfig::full());
    let edge = Accelerator::new(PointAccConfig::edge());
    let gpu = Platform::rtx_2080ti();
    let engines: Vec<&dyn Engine> = vec![&full, &edge, &gpu];
    let benchmarks = zoo::benchmarks();

    // 5 rounds × 8 benchmarks × 3 seeds = 120 requests over 24 unique
    // traces: rounds 2..5 are pure cache hits.
    let seeds = [42u64, 43, 44];
    let rounds = 5;
    let requests: Vec<Request> = (0..rounds)
        .flat_map(|_| {
            (0..benchmarks.len())
                .flat_map(|b| seeds.map(|seed| Request::new(b, seed)))
                .collect::<Vec<_>>()
        })
        .collect();
    let n_requests = requests.len();

    let options =
        ServeOptions { queue_capacity: 16, workers_per_engine: 2, scale: pointacc_bench::scale() };
    println!(
        "== Serving demo: {n_requests} requests over {} engine shards (queue cap {}, {} workers, scale {}) ==\n",
        engines.len(),
        options.queue_capacity,
        engines.len() * options.workers_per_engine,
        options.scale,
    );
    let report = serve(&engines, &benchmarks, requests, options);

    println!(
        "drained     {} requests ({} unsupported, {} failed, {} rejected, {} expired) in {:.3} s",
        report.submitted,
        report.unsupported,
        report.failed,
        report.rejected,
        report.expired,
        report.wall.as_secs_f64()
    );
    for msg in &report.failures {
        println!("  failure: {msg}");
    }
    println!(
        "throughput  {:.1} requests/s | {:.3} Mpoints/s",
        report.requests_per_s(),
        report.points_per_s() / 1e6
    );
    println!(
        "queue wait  p50 {:.3} ms | p99 {:.3} ms",
        report.queue_p50.as_secs_f64() * 1e3,
        report.queue_p99.as_secs_f64() * 1e3
    );
    println!(
        "trace cache {} ({:.0}% hit rate)",
        report.cache.accounting(),
        report.cache.hit_rate() * 100.0
    );
    println!("\nPer-shard completions (modeled utilization):");
    for ((name, n), (_, util)) in report.per_engine.iter().zip(&report.utilization_per_shard) {
        println!("  {name:<16} {n:>4}  ({:.2}x capacity)", util);
    }
    assert!(report.accounting_balances(), "every submitted request must be accounted for");
    assert_eq!(report.rejected, 0, "serve admits everything");
    assert!(report.completed >= 100, "demo must drain at least 100 requests");
    assert!(report.cache.hit_rate() > 0.0, "repeated rounds must hit the cache");
}
