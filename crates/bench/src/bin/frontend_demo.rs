//! Admission-control demo: sweeps offered load against the modeled
//! aggregate capacity of the engine shards and reports the shed rate,
//! expiry rate and per-shard utilization at each point.
//!
//! Arrivals are paced on a deterministic `SimClock` — request *k*
//! arrives at simulated time `k × interarrival` — so the admission
//! decisions printed here are exactly reproducible: no sleeps, no
//! wall-clock luck, only the fluid capacity model reacting to the
//! arrival process. Execution still runs for real on the worker
//! threads; only *time* is simulated.
//!
//! The shed bound and latency budgets scale with the modeled mean
//! service time, so the sweep behaves the same at every
//! `POINTACC_SCALE` (e.g. 0.02 for CI smoke).

use std::time::Duration;

use pointacc::{Accelerator, Engine, PointAccConfig};
use pointacc_bench::frontend::{paced, AdmissionPolicy, Frontend, FrontendOptions, SimClock};
use pointacc_bench::serve::Request;
use pointacc_nn::zoo;

fn main() {
    let full = Accelerator::new(PointAccConfig::full());
    let edge = Accelerator::new(PointAccConfig::edge());
    let engines: Vec<&dyn Engine> = vec![&full, &edge];
    let benchmarks = zoo::benchmarks();
    let scale = pointacc_bench::scale();

    // Capacity calibration needs the engines but not the policy; build
    // a probe front-end first to size the shed bound in units of the
    // modeled mean service time.
    let probe =
        Frontend::new(&engines, &benchmarks, FrontendOptions { scale, ..Default::default() });
    let aggregate: f64 = probe.capacities().iter().sum();
    let mean_points =
        benchmarks.iter().map(|b| pointacc_bench::modeled_points(b, scale) as f64).sum::<f64>()
            / benchmarks.len() as f64;
    let mean_service = mean_points / aggregate;
    let shed_bound = Duration::from_secs_f64(4.0 * mean_service);
    let deadline = Duration::from_secs_f64(2.0 * mean_service);

    let options = FrontendOptions {
        queue_capacity: 32,
        workers_per_engine: 2,
        scale,
        // Arrivals are simulated but execution is real, so queue-time
        // expiry would compare the two clocks: decide expiry purely in
        // the admission model to keep the sweep deterministic.
        policy: AdmissionPolicy {
            expire_in_queue: false,
            ..AdmissionPolicy::shed_after(shed_bound)
        },
        capacities: Some(probe.capacities().to_vec()),
        ..Default::default()
    };
    let frontend = Frontend::new(&engines, &benchmarks, options);

    // One cache across the whole sweep (a long-lived server's shape):
    // later load levels reuse earlier compiles, and `reset_stats` at
    // each level boundary keeps the per-level accounting honest.
    let mut cache = pointacc_bench::cache::TraceCache::new();
    if let Some(dir) = pointacc_bench::artifact_dir() {
        cache = cache.with_artifact_dir(dir);
    }

    println!("== Admission-control demo: shed rate vs offered load (scale {scale}) ==\n");
    for (engine, capacity) in engines.iter().zip(frontend.capacities()) {
        println!("shard {:<16} capacity {:>12.0} points/s (modeled)", engine.name(), capacity);
    }
    println!(
        "aggregate capacity {aggregate:.0} points/s | mean request {mean_points:.0} points | \
         shed bound {:.3} ms | deadline {:.3} ms (every 4th request)\n",
        shed_bound.as_secs_f64() * 1e3,
        deadline.as_secs_f64() * 1e3,
    );

    let n_requests = 64usize;
    let seeds = [42u64, 43, 44];
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>8} {:>12} {:>9}",
        "load",
        "submitted",
        "completed",
        "rejected",
        "expired",
        "shed %",
        "utilization",
        "compiles"
    );
    let mut shed_rates = Vec::new();
    for load in [0.5, 1.0, 2.0, 4.0] {
        // Offered load in points/s, turned into a deterministic arrival
        // spacing; every 4th request carries the latency budget.
        let interarrival = Duration::from_secs_f64(mean_points / (aggregate * load));
        let clock = SimClock::new();
        let requests = (0..n_requests).map(|i| {
            let req = Request::new(i % benchmarks.len(), seeds[i % seeds.len()]);
            if i % 4 == 3 {
                req.with_deadline(deadline)
            } else {
                req
            }
        });
        cache.reset_stats();
        let report = frontend.run_on_cache(&clock, &cache, paced(requests, &clock, interarrival));
        assert!(report.accounting_balances(), "every submitted request must be accounted for");
        let shed = report.rejected as f64 / report.submitted as f64;
        shed_rates.push(shed);
        let mean_util = report.utilization_per_shard.iter().map(|(_, u)| u).sum::<f64>()
            / report.utilization_per_shard.len() as f64;
        println!(
            "{:>7.1}x {:>10} {:>10} {:>10} {:>10} {:>7.1}% {:>11.2}x {:>9}",
            load,
            report.submitted,
            report.completed,
            report.rejected,
            report.expired,
            shed * 100.0,
            mean_util,
            report.cache.compiles,
        );
    }
    println!();
    println!("trace cache (last load level): {}", cache.stats().accounting());
    assert!(
        shed_rates.first() <= shed_rates.last(),
        "shed rate must not shrink as offered load grows: {shed_rates:?}"
    );
    assert!(
        shed_rates[0] < 0.5,
        "at half the modeled capacity most requests must be admitted: {shed_rates:?}"
    );
    assert!(
        *shed_rates.last().expect("sweep ran") > 0.0,
        "at 4x the modeled capacity some load must shed: {shed_rates:?}"
    );
}
