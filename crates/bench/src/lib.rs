//! Shared harness utilities for the per-figure benchmark binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper; this library holds the common plumbing: the thread-parallel
//! [`harness`] evaluating (engine × benchmark × seed) grids over the
//! unified [`pointacc::Engine`] surface, trace building for the Table 2
//! benchmarks on the synthetic datasets, aligned table printing,
//! geometric means, and the paper's reported numbers for side-by-side
//! comparison.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod frontend;
pub mod harness;
pub mod serve;
pub mod stream;
pub mod sync;

use pointacc_data::Dataset;
use pointacc_nn::{zoo::Benchmark, ExecError, ExecMode, Executor, NetworkTrace, TraceKey};

/// Default seed list of the statistical figure binaries: every reported
/// number aggregates these dataset seeds into mean ± 95 % CI (seed 42
/// first, so single-seed runs stay comparable with older output).
pub const SEEDS: [u64; 3] = [42, 43, 44];

/// A dataset name that matches none of the Table 2 generators. The
/// `Display` message lists every available dataset, so figure binaries
/// can print it verbatim as usage help.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownDataset {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let available: Vec<&str> = Dataset::ALL.into_iter().map(|d| d.name()).collect();
        write!(f, "unknown dataset `{}` (available: {})", self.name, available.join(", "))
    }
}

impl std::error::Error for UnknownDataset {}

/// Why a benchmark trace could not be built: the benchmark names a
/// dataset no generator covers, the executor rejected the network/input
/// combination, or the compiled trace failed static verification
/// ([`pointacc_nn::verify_trace`]) before being cached.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceBuildError {
    /// The benchmark's dataset name resolved to no generator.
    UnknownDataset(UnknownDataset),
    /// The executor rejected the network (see [`ExecError`]).
    Exec(ExecError),
    /// The executor produced a trace, but the static verifier rejected
    /// it — the trace never reaches the cache or an engine.
    Invalid(pointacc_nn::VerifyError),
}

impl std::fmt::Display for TraceBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceBuildError::UnknownDataset(e) => e.fmt(f),
            TraceBuildError::Exec(e) => e.fmt(f),
            TraceBuildError::Invalid(e) => {
                write!(f, "compiled trace failed static verification: {e}")
            }
        }
    }
}

impl std::error::Error for TraceBuildError {}

impl From<pointacc_nn::VerifyError> for TraceBuildError {
    fn from(e: pointacc_nn::VerifyError) -> Self {
        TraceBuildError::Invalid(e)
    }
}

impl From<UnknownDataset> for TraceBuildError {
    fn from(e: UnknownDataset) -> Self {
        TraceBuildError::UnknownDataset(e)
    }
}

impl From<ExecError> for TraceBuildError {
    fn from(e: ExecError) -> Self {
        TraceBuildError::Exec(e)
    }
}

/// Resolves a Table 2 dataset name to the generator enum, or an
/// [`UnknownDataset`] whose message lists the available names.
pub fn dataset_by_name(name: &str) -> Result<Dataset, UnknownDataset> {
    Dataset::ALL
        .into_iter()
        .find(|d| d.name() == name)
        .ok_or_else(|| UnknownDataset { name: name.to_string() })
}

/// [`dataset_by_name`] for figure binaries: prints the error (which
/// lists the available datasets) and exits with status 2 on an unknown
/// name.
pub fn dataset_or_exit(name: &str) -> Dataset {
    dataset_by_name(name).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

/// Point-count scale factor from `POINTACC_SCALE` (default 1.0). Set
/// e.g. `POINTACC_SCALE=0.25` for quick smoke runs.
///
/// The environment is read **once** per process; later mutations of the
/// variable are ignored. Code that needs a specific scale (tests, the
/// serving layer) should pass it explicitly — [`benchmark_trace_at`],
/// [`harness::Grid::scale`] — instead of mutating the process
/// environment, which is racy under the parallel test runner.
pub fn scale() -> f64 {
    static SCALE: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *SCALE.get_or_init(|| {
        std::env::var("POINTACC_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
    })
}

/// Persistent trace-artifact directory from `POINTACC_ARTIFACT_DIR`
/// (default: none — the disk tier stays off). Point several processes
/// at one directory to share compiled traces across them: writes are
/// atomic rename-into-place, so readers never see a torn artifact.
///
/// Like [`scale`], the environment is read **once** per process; code
/// that needs a specific directory (tests, embedding harnesses) should
/// pass it explicitly via
/// [`cache::TraceCache::with_artifact_dir`] or
/// [`frontend::FrontendOptions`] instead of mutating the process
/// environment.
pub fn artifact_dir() -> Option<std::path::PathBuf> {
    static DIR: std::sync::OnceLock<Option<std::path::PathBuf>> = std::sync::OnceLock::new();
    DIR.get_or_init(|| {
        std::env::var_os("POINTACC_ARTIFACT_DIR")
            .filter(|s| !s.is_empty())
            .map(std::path::PathBuf::from)
    })
    .clone()
}

/// Output path for the streaming benchmark record from
/// `BENCH_STREAMING_OUT` (default: `BENCH_streaming.json` at the
/// workspace root, regardless of invocation cwd). Read **once** per
/// process, like [`scale`].
pub fn streaming_out() -> std::path::PathBuf {
    static OUT: std::sync::OnceLock<std::path::PathBuf> = std::sync::OnceLock::new();
    OUT.get_or_init(|| {
        std::env::var_os("BENCH_STREAMING_OUT")
            .filter(|s| !s.is_empty())
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| {
                std::path::PathBuf::from(concat!(
                    env!("CARGO_MANIFEST_DIR"),
                    "/../../BENCH_streaming.json"
                ))
            })
    })
    .clone()
}

/// Override for the streaming demo's amortized-vs-cold throughput bar
/// from `BENCH_STREAMING_MIN_GAIN` (`0` = record-only). Read **once**
/// per process, like [`scale`]; `None` keeps the bin's default bar.
pub fn streaming_min_gain() -> Option<f64> {
    static GAIN: std::sync::OnceLock<Option<f64>> = std::sync::OnceLock::new();
    *GAIN
        .get_or_init(|| std::env::var("BENCH_STREAMING_MIN_GAIN").ok().and_then(|s| s.parse().ok()))
}

/// Builds the execution trace of one benchmark on its synthetic dataset
/// (trace-only fidelity — identical costs, no feature arithmetic) at the
/// process-wide [`scale`].
pub fn benchmark_trace(bench: &Benchmark, seed: u64) -> NetworkTrace {
    benchmark_trace_at(bench, seed, scale())
}

/// [`benchmark_trace`] with an explicit point-count scale factor.
///
/// # Panics
///
/// Panics with the [`TraceBuildError`] message on a malformed benchmark;
/// serving paths should call [`try_benchmark_trace_at`] instead.
pub fn benchmark_trace_at(bench: &Benchmark, seed: u64, scale: f64) -> NetworkTrace {
    // lint: allow(panic): documented panicking facade over try_benchmark_trace_at.
    try_benchmark_trace_at(bench, seed, scale).unwrap_or_else(|e| panic!("{e}"))
}

/// [`benchmark_trace_at`] with the failure modes surfaced as a typed
/// [`TraceBuildError`] instead of a panic — the entry point the serving
/// layer uses so a malformed request cannot poison a worker thread.
pub fn try_benchmark_trace_at(
    bench: &Benchmark,
    seed: u64,
    scale: f64,
) -> Result<NetworkTrace, TraceBuildError> {
    let ds = dataset_by_name(bench.dataset)?;
    let n = modeled_points(bench, scale);
    let pts = ds.generate(seed, n);
    let mut trace = Executor::new(ExecMode::TraceOnly, seed).try_run(&bench.network, &pts)?;
    trace.trace.network = bench.notation.to_string();
    trace.trace.input_desc = format!("{} ({n} pts)", bench.dataset);
    Ok(trace.trace)
}

/// Input point count of `bench` at `scale` — the number
/// [`try_benchmark_trace_at`] generates and the load unit the serving
/// front-end's capacity model charges per request. Kept as one function
/// so admission control can price a request **without** compiling its
/// trace and still agree exactly with the executed workload.
pub fn modeled_points(bench: &Benchmark, scale: f64) -> usize {
    ((bench.network.default_points() as f64 * scale) as usize).max(64)
}

/// The cache key of one benchmark trace at `seed` and `scale`.
pub fn benchmark_trace_key(bench: &Benchmark, seed: u64, scale: f64) -> TraceKey {
    TraceKey::new(bench.notation, seed, scale)
}

/// Builds (or fetches) the benchmark trace through the process-wide
/// [`cache::global`] trace cache, sharing compilation work across grids
/// and figure binaries ([`serve::serve`] deliberately uses a
/// run-private cache instead, so its hit rate reflects one request
/// stream). Cached traces are retained until [`cache::TraceCache::clear`].
pub fn cached_benchmark_trace(
    bench: &Benchmark,
    seed: u64,
    scale: f64,
) -> std::sync::Arc<NetworkTrace> {
    cache::global().get_or_build(&benchmark_trace_key(bench, seed, scale), || {
        benchmark_trace_at(bench, seed, scale)
    })
}

/// Whether the process was invoked with the `--verify` flag. Figure
/// and demo binaries that honor it re-run the static trace verifier
/// ([`pointacc_nn::verify_trace`]) over every cached trace after their
/// workload, via [`verify_global_cache_or_exit`].
pub fn verify_flag() -> bool {
    std::env::args().any(|a| a == "--verify")
}

/// Statically re-verifies every successfully cached trace in the
/// process-wide [`cache::global`] cache, printing a one-line summary.
/// Exits with status 1 naming the offending key and error when any
/// cached trace fails verification — the teeth behind `--verify`.
pub fn verify_global_cache_or_exit() {
    match cache::global().verify_all() {
        Ok(n) => println!("verify: {n} cached trace(s) passed static verification"),
        Err((key, e)) => {
            eprintln!("verify: cached trace {key:?} failed static verification: {e}");
            std::process::exit(1);
        }
    }
}

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Prints an aligned table: header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i == 0 {
                s.push_str(&format!("{:<width$}", c, width = widths[i] + 2));
            } else {
                s.push_str(&format!("{:>width$}", c, width = widths[i] + 2));
            }
        }
        println!("{s}");
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(widths.iter().map(|w| w + 2).sum()));
    for row in rows {
        line(row);
    }
}

/// Paper-reported reference numbers, printed alongside measurements so
/// every figure shows "paper vs ours".
pub mod paper {
    /// Benchmark order of Fig. 13/14 (matches `zoo::benchmarks()`).
    pub const NETWORKS: [&str; 8] = [
        "PointNet",
        "PointNet++(c)",
        "PointNet++(ps)",
        "DGCNN",
        "F-PointNet++",
        "PointNet++(s)",
        "MinkNet(i)",
        "MinkNet(o)",
    ];
    /// Fig. 13: PointAcc speedup over RTX 2080Ti.
    pub const FIG13_SPEEDUP_GPU: [f64; 8] = [3.7, 2.8, 2.8, 3.7, 3.7, 4.7, 8.3, 2.4];
    /// Fig. 13: PointAcc speedup over Xeon + TPUv3.
    pub const FIG13_SPEEDUP_TPU: [f64; 8] = [27.0, 113.0, 37.0, 3.4, 269.0, 88.0, 102.0, 71.0];
    /// Fig. 13: PointAcc speedup over Xeon Gold 6130.
    pub const FIG13_SPEEDUP_CPU: [f64; 8] = [127.0, 97.0, 82.0, 65.0, 131.0, 106.0, 94.0, 51.0];
    /// Fig. 13: energy savings vs RTX 2080Ti.
    pub const FIG13_ENERGY_GPU: [f64; 8] = [18.0, 14.0, 25.0, 27.0, 16.0, 45.0, 36.0, 13.0];
    /// Fig. 14: PointAcc.Edge speedup over Jetson Xavier NX.
    pub const FIG14_SPEEDUP_NX: [f64; 8] = [2.2, 2.3, 2.7, 3.4, 2.8, 4.6, 2.1, 1.3];
    /// Fig. 14: PointAcc.Edge speedup over Jetson Nano.
    pub const FIG14_SPEEDUP_NANO: [f64; 8] = [6.7, 7.8, 10.0, 14.0, 11.0, 23.0, 8.3, 5.4];
    /// Fig. 14: PointAcc.Edge speedup over Raspberry Pi 4B.
    pub const FIG14_SPEEDUP_RPI: [f64; 8] = [148.0, 159.0, 156.0, 131.0, 262.0, 181.0, 107.0, 63.0];
    /// Fig. 15 benchmark subset (PointNet++-based).
    pub const FIG15_NETWORKS: [&str; 4] =
        ["PointNet++(c)", "PointNet++(ps)", "F-PointNet++", "PointNet++(s)"];
    /// Fig. 15: PointAcc.Edge speedup over Mesorasi-HW.
    pub const FIG15_SPEEDUP_HW: [f64; 4] = [2.5, 3.1, 6.2, 7.1];
    /// Fig. 15: speedup over Mesorasi-SW on Jetson Nano.
    pub const FIG15_SPEEDUP_SW_NANO: [f64; 4] = [10.0, 9.3, 19.0, 21.0];
    /// Fig. 15: speedup over Mesorasi-SW on Raspberry Pi 4B.
    pub const FIG15_SPEEDUP_SW_RPI: [f64; 4] = [109.0, 87.0, 209.0, 134.0];
    /// Fig. 16: mIoU of PointNet++SSG on S3DIS (quoted).
    pub const FIG16_MIOU_POINTNETPP: f64 = 53.5;
    /// Fig. 16: mIoU of Mini-MinkowskiUNet on S3DIS (quoted; +9.1 %).
    pub const FIG16_MIOU_MINI_MINK: f64 = 62.6;
    /// Fig. 19: DRAM reduction from caching, S3DIS / SemanticKITTI.
    pub const FIG19_REDUCTION: [f64; 2] = [6.3, 3.5];
    /// Fig. 20: DRAM reduction from fusion per network.
    pub const FIG20_NETWORKS: [&str; 4] =
        ["PointNet", "PointNet++(c)", "PointNet++(ps)", "PointNet++(s)"];
    /// Fig. 20 reduction percentages.
    pub const FIG20_REDUCTION_PCT: [f64; 4] = [64.0, 41.0, 33.0, 39.0];
    /// Fig. 21: energy breakdown (compute, SRAM, DRAM).
    pub const FIG21_ENERGY: [f64; 3] = [0.74, 0.06, 0.20];
    /// §4.1.1: mergesort vs hash-table speed and area factors.
    pub const MERGESORT_VS_HASH: (f64, f64) = (1.4, 14.0);
    /// §4.1.4: top-k speedup over quick-select.
    pub const TOPK_VS_QUICKSELECT: f64 = 1.18;
    /// Fig. 13/14 geomeans: (GPU, TPU, CPU, NX, Nano, RPi) speedups.
    pub const GEOMEAN_SPEEDUPS: [f64; 6] = [3.7, 53.0, 90.0, 2.5, 9.8, 141.0];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_values() {
        assert!((geomean(&[4.0, 4.0, 4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dataset_lookup_by_table2_names() {
        for b in pointacc_nn::zoo::benchmarks() {
            dataset_by_name(b.dataset).unwrap();
        }
    }

    #[test]
    fn unknown_dataset_lists_available_names() {
        let err = dataset_by_name("NuScenes").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown dataset `NuScenes`"), "{msg}");
        for d in pointacc_data::Dataset::ALL {
            assert!(msg.contains(d.name()), "{msg} missing {}", d.name());
        }
    }

    #[test]
    fn malformed_benchmark_surfaces_exec_error() {
        use pointacc_nn::{Domain, Network, Op};
        let bench = Benchmark {
            notation: "Broken",
            application: "Segmentation",
            dataset: "S3DIS",
            network: Network::new("broken", Domain::VoxelBased, 4)
                .with_voxel_size(0.1)
                .push(Op::SparseConvTr { out_ch: 8, kernel_size: 2 }),
        };
        let err = try_benchmark_trace_at(&bench, 42, 0.05).unwrap_err();
        assert!(matches!(err, TraceBuildError::Exec(_)), "{err:?}");
        assert!(err.to_string().contains("skip stack is empty"), "{err}");
    }
}
