//! Streaming frame serving: a LiDAR [`FrameStream`] driven through the
//! cross-frame reuse path against a per-frame latency SLO.
//!
//! The scenario is a single-server queue on a [`Clock`]: frame *k*
//! arrives at `k × period`, is traced through a
//! [`StreamingTracer`] (exact / voxel reuse before compilation), and
//! its modeled service time comes from the engine's evaluation of the
//! trace — the full `total` for a compiled frame, `total − mapping` for
//! a reused one (the serving system skips the mapping phase when it
//! already holds the previous frame's kernel maps, which is precisely
//! the phase the paper's accelerator exists to accelerate). Everything
//! is simulated-time arithmetic on [`Duration`]s, so a scenario run is
//! a pure function of its options: SLO attainment, queue latencies and
//! reuse counts are exactly reproducible and scenario-testable in
//! `tests/streaming.rs`.

use std::time::Duration;

use pointacc::{Engine, EngineReport};
use pointacc_data::lidar::{FrameStream, ScanProfile};
use pointacc_nn::stream::{ReuseOutcome, StreamStats, StreamingTracer};
use pointacc_nn::{ExecError, ExecMode, Executor, Network};

use crate::frontend::{Clock, SimClock};

/// Scenario knobs for [`serve_stream`].
#[derive(Clone, Debug)]
pub struct StreamOptions {
    /// Stream seed (scene, jitter, churn schedule).
    pub seed: u64,
    /// Frames to serve.
    pub frames: usize,
    /// Target points per frame (the stream sizes its sweep for this).
    pub points_hint: usize,
    /// Frame interarrival period (10 Hz LiDAR ⇒ 100 ms).
    pub period: Duration,
    /// Per-frame latency SLO (arrival → finish).
    pub slo: Duration,
    /// Ego motion per frame, meters.
    pub ego_step: f32,
    /// Azimuth columns re-raycast per frame (`None` = stream default,
    /// ~10 % of the sweep).
    pub churn_cols: Option<usize>,
    /// After this many frames the ego stops (zero motion, zero churn):
    /// the steady-state dwell whose frames repeat bit-identically.
    pub dwell_after: Option<usize>,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            seed: 42,
            frames: 12,
            points_hint: 20_000,
            period: Duration::from_millis(100),
            slo: Duration::from_millis(100),
            ego_step: 0.5,
            churn_cols: None,
            dwell_after: None,
        }
    }
}

/// One served frame's timeline and accounting.
#[derive(Clone, Debug)]
pub struct FrameRecord {
    /// Frame number.
    pub index: usize,
    /// Points in the frame's cloud.
    pub points: usize,
    /// How the trace was produced (reused or compiled).
    pub outcome: ReuseOutcome,
    /// Simulated arrival time (`index × period`).
    pub arrival: Duration,
    /// Modeled service time actually spent (mapping skipped on reuse).
    pub service: Duration,
    /// Modeled service time a cold compile would have spent.
    pub full_service: Duration,
    /// Simulated completion time (queueing included).
    pub finish: Duration,
    /// `finish − arrival`.
    pub latency: Duration,
    /// Whether `latency ≤ slo`.
    pub met_slo: bool,
}

/// Result of a [`serve_stream`] run.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Per-frame records, in arrival order.
    pub records: Vec<FrameRecord>,
    /// The tracer's reuse accounting.
    pub stats: StreamStats,
}

impl StreamReport {
    /// Fraction of frames that met the SLO.
    pub fn slo_attainment(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.records.iter().filter(|r| r.met_slo).count() as f64 / self.records.len() as f64
    }

    /// Amortized modeled throughput with reuse: total points served per
    /// second of modeled service time.
    pub fn amortized_points_per_s(&self) -> f64 {
        let points: usize = self.records.iter().map(|r| r.points).sum();
        let busy: f64 = self.records.iter().map(|r| r.service.as_secs_f64()).sum();
        points as f64 / busy.max(f64::MIN_POSITIVE)
    }

    /// Modeled throughput if every frame compiled cold (no reuse).
    pub fn cold_points_per_s(&self) -> f64 {
        let points: usize = self.records.iter().map(|r| r.points).sum();
        let busy: f64 = self.records.iter().map(|r| r.full_service.as_secs_f64()).sum();
        points as f64 / busy.max(f64::MIN_POSITIVE)
    }

    /// Worst frame latency.
    pub fn max_latency(&self) -> Duration {
        self.records.iter().map(|r| r.latency).max().unwrap_or(Duration::ZERO)
    }

    /// Accounting over the steady-state suffix (frames from `from` on):
    /// what the CI zero-compile check inspects.
    pub fn stats_from(&self, from: usize) -> StreamStats {
        let mut stats = StreamStats::default();
        for r in self.records.iter().filter(|r| r.index >= from) {
            stats.frames += 1;
            match r.outcome {
                ReuseOutcome::ExactReuse => stats.exact_reuses += 1,
                ReuseOutcome::VoxelReuse => stats.voxel_reuses += 1,
                ReuseOutcome::Compiled => stats.compiles += 1,
            }
        }
        stats
    }
}

/// Serves `opts.frames` LiDAR sweeps from a seeded [`FrameStream`]
/// through `net` on `engine`, pacing arrivals on `clock` (advanced by
/// one period per frame). Traces run in [`ExecMode::TraceOnly`] — bit-
/// identical mapping traces at a fraction of the cost, the same fidelity
/// the figure binaries profile with.
///
/// Returns the per-frame records plus reuse accounting, or the first
/// executor error (a stream frame is never empty, so errors indicate a
/// malformed network).
pub fn serve_stream(
    engine: &dyn Engine,
    net: &Network,
    clock: &SimClock,
    opts: &StreamOptions,
) -> Result<StreamReport, ExecError> {
    let mut stream = FrameStream::new(opts.seed, opts.points_hint, ScanProfile::semantic_kitti());
    if let Some(cols) = opts.churn_cols {
        stream.set_motion(opts.ego_step, cols);
    } else {
        let default_cols = (stream.azimuth_steps() / 10).max(1);
        stream.set_motion(opts.ego_step, default_cols);
    }
    let mut tracer = StreamingTracer::over(Executor::new(ExecMode::TraceOnly, opts.seed));
    let mut records = Vec::with_capacity(opts.frames);
    let mut busy_until = Duration::ZERO;
    let mut last_eval: Option<EngineReport> = None;
    for k in 0..opts.frames {
        if opts.dwell_after == Some(k) {
            stream.set_motion(0.0, 0);
        }
        if k > 0 {
            clock.advance(opts.period);
        }
        let arrival = clock.now();
        let frame = stream.next_frame();
        let (output, outcome) = tracer.run_frame(net, &frame.points)?;
        // Engine evaluation is a pure function of the trace; a reused
        // trace reuses the previous report rather than re-walking it.
        let report = match (&last_eval, outcome) {
            (Some(r), ReuseOutcome::ExactReuse | ReuseOutcome::VoxelReuse) => r.clone(),
            _ => engine.evaluate(&output.trace),
        };
        let full_service = Duration::from_secs_f64(report.total.0.max(0.0));
        let service = match outcome {
            ReuseOutcome::Compiled => full_service,
            ReuseOutcome::ExactReuse | ReuseOutcome::VoxelReuse => {
                Duration::from_secs_f64((report.total.0 - report.mapping.0).max(0.0))
            }
        };
        last_eval = Some(report);
        let start = busy_until.max(arrival);
        let finish = start + service;
        busy_until = finish;
        let latency = finish.saturating_sub(arrival);
        records.push(FrameRecord {
            index: frame.index,
            points: frame.points.len(),
            outcome,
            arrival,
            service,
            full_service,
            finish,
            latency,
            met_slo: latency <= opts.slo,
        });
    }
    Ok(StreamReport { records, stats: tracer.stats() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pointacc::{Accelerator, PointAccConfig};

    fn small_opts() -> StreamOptions {
        StreamOptions {
            frames: 8,
            points_hint: 2_000,
            dwell_after: Some(4),
            ..StreamOptions::default()
        }
    }

    #[test]
    fn stream_scenario_is_deterministic() {
        let engine = Accelerator::new(PointAccConfig::full());
        let net = pointacc_nn::zoo::minknet_outdoor();
        let a = serve_stream(&engine, &net, &SimClock::new(), &small_opts()).unwrap();
        let b = serve_stream(&engine, &net, &SimClock::new(), &small_opts()).unwrap();
        assert_eq!(a.stats, b.stats);
        let lat_a: Vec<Duration> = a.records.iter().map(|r| r.latency).collect();
        let lat_b: Vec<Duration> = b.records.iter().map(|r| r.latency).collect();
        assert_eq!(lat_a, lat_b);
    }

    #[test]
    fn dwell_frames_reuse_and_speed_up() {
        let engine = Accelerator::new(PointAccConfig::full());
        let net = pointacc_nn::zoo::minknet_outdoor();
        let report = serve_stream(&engine, &net, &SimClock::new(), &small_opts()).unwrap();
        assert_eq!(report.records.len(), 8);
        assert_eq!(report.records[0].outcome, ReuseOutcome::Compiled);
        // Dwell starts at frame 4: frame 5 on is bit-identical geometry.
        let steady = report.stats_from(5);
        assert_eq!(
            steady.compiles,
            0,
            "steady state must compile nothing: {}",
            steady.accounting()
        );
        assert!(steady.exact_reuses >= 3);
        // Reuse strictly shortens the modeled service time.
        for r in &report.records {
            match r.outcome {
                ReuseOutcome::Compiled => assert_eq!(r.service, r.full_service),
                _ => assert!(r.service < r.full_service, "frame {} did not speed up", r.index),
            }
        }
        assert!(report.amortized_points_per_s() > report.cold_points_per_s());
    }

    #[test]
    fn arrivals_pace_on_the_sim_clock() {
        let engine = Accelerator::new(PointAccConfig::full());
        let net = pointacc_nn::zoo::minknet_outdoor();
        let clock = SimClock::new();
        let opts = small_opts();
        let report = serve_stream(&engine, &net, &clock, &opts).unwrap();
        for (k, r) in report.records.iter().enumerate() {
            assert_eq!(r.arrival, opts.period * k as u32);
            assert_eq!(r.latency, r.finish - r.arrival);
        }
        assert_eq!(clock.now(), opts.period * (opts.frames - 1) as u32);
    }
}
