//! Batched request serving over a set of [`Engine`]s.
//!
//! The paper evaluates single-inference latency; serving heavy traffic
//! needs the opposite shape: a bounded queue of inference requests
//! drained by sharded worker threads, with trace compilation amortized
//! through a [`TraceCache`](crate::cache::TraceCache) and throughput —
//! not just latency — reported. This module provides the serving
//! primitives and the classic drain-everything entry point:
//!
//! - [`BoundedQueue`], a bounded MPSC channel usable from both worlds:
//!   blocking `push`/`pop` for worker threads, waker-registering
//!   [`BoundedQueue::push_async`] / [`BoundedQueue::pop_async`] for the
//!   async front-end;
//! - [`Request`], one inference request, optionally carrying a relative
//!   latency [`Request::deadline`];
//! - [`ServeReport`], the aggregate: requests/s, points/s, queue-latency
//!   percentiles, the trace-cache hit rate, admission-control counters
//!   ([`ServeReport::rejected`] / [`ServeReport::expired`]) and modeled
//!   per-shard utilization;
//! - [`serve`], the admit-everything configuration of the
//!   [`frontend`](crate::frontend): every request is accepted and
//!   drained, exactly as a batch harness wants.
//!
//! Admission control, per-shard capacity modeling, and the [`Clock`]
//! abstraction that makes all of this testable without sleeping live in
//! [`crate::frontend`].
//!
//! [`Clock`]: crate::frontend::Clock
//!
//! ```
//! use pointacc::{Accelerator, Engine, PointAccConfig};
//! use pointacc_bench::serve::{serve, Request, ServeOptions};
//! use pointacc_nn::zoo;
//!
//! let full = Accelerator::new(PointAccConfig::full());
//! let edge = Accelerator::new(PointAccConfig::edge());
//! let benchmarks: Vec<_> = zoo::benchmarks().into_iter().take(2).collect();
//! let requests: Vec<Request> = (0..8).map(|i| Request::new(i % 2, 42)).collect();
//! let report = serve(
//!     &[&full as &dyn Engine, &edge],
//!     &benchmarks,
//!     requests,
//!     ServeOptions { scale: 0.02, ..ServeOptions::default() },
//! );
//! assert_eq!(report.completed, 8);
//! assert!(report.accounting_balances());
//! assert!(report.cache.hit_rate() > 0.0);
//! ```

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Condvar, Mutex};

use crate::sync::{lock, wait};
use std::task::{Context, Poll, Waker};
use std::time::Duration;

use pointacc::Engine;
use pointacc_nn::zoo::Benchmark;

use crate::cache::CacheStats;
use crate::frontend::{AdmissionPolicy, Frontend, FrontendOptions};

/// One inference request: a benchmark (index into the server's
/// benchmark list), the dataset seed identifying the input cloud, and
/// an optional latency budget.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Index into the benchmark list the server was started with.
    pub benchmark: usize,
    /// Dataset seed of the input point cloud.
    pub seed: u64,
    /// Latency budget relative to arrival. The front-end expires the
    /// request — counted, never executed — when its modeled (or actual)
    /// sojourn time exceeds the budget; `None` means the request waits
    /// forever.
    pub deadline: Option<Duration>,
}

impl Request {
    /// A request without a deadline.
    pub fn new(benchmark: usize, seed: u64) -> Self {
        Request { benchmark, seed, deadline: None }
    }

    /// The same request with a latency budget relative to its arrival.
    pub fn with_deadline(self, deadline: Duration) -> Self {
        Request { deadline: Some(deadline), ..self }
    }
}

/// Tuning knobs of one [`serve`] run.
#[derive(Copy, Clone, Debug)]
pub struct ServeOptions {
    /// Maximum queued (not yet claimed) requests per engine shard; the
    /// producer blocks (or, on the async path, suspends) when a shard's
    /// queue is full.
    pub queue_capacity: usize,
    /// Worker threads per engine shard.
    pub workers_per_engine: usize,
    /// Point-count scale factor of the input clouds.
    pub scale: f64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { queue_capacity: 16, workers_per_engine: 1, scale: 1.0 }
    }
}

/// A bounded MPSC queue usable from threads and futures alike: the
/// blocking `push`/`pop` pair parks on a condvar, the `*_async` pair
/// registers the task's waker instead. Mixed use is the intended mode —
/// the async producer of the serving front-end pushes while blocking
/// worker threads pop — and each pop wakes both kinds of waiters.
/// `close` drains remaining items then ends the stream.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Tasks suspended in [`BoundedQueue::push_async`] against a full
    /// queue, woken by `pop` / `close`.
    push_wakers: Vec<Waker>,
    /// Tasks suspended in [`BoundedQueue::pop_async`] against an empty
    /// queue, woken by `push` / `close`.
    pop_wakers: Vec<Waker>,
}

impl<T> QueueState<T> {
    fn wake_pushers(&mut self) {
        for w in self.push_wakers.drain(..) {
            w.wake();
        }
    }

    fn wake_poppers(&mut self) {
        for w in self.pop_wakers.drain(..) {
            w.wake();
        }
    }
}

impl<T> BoundedQueue<T> {
    /// An open queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is 0 (every push would deadlock).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                push_wakers: Vec::new(),
                pop_wakers: Vec::new(),
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues `item`, blocking while the queue is at capacity.
    /// Returns `false` (dropping the item) if the queue was closed.
    pub fn push(&self, item: T) -> bool {
        let mut state = lock(&self.state);
        while state.items.len() >= self.capacity && !state.closed {
            state = wait(&self.not_full, state);
        }
        if state.closed {
            return false;
        }
        state.items.push_back(item);
        self.not_empty.notify_one();
        state.wake_poppers();
        true
    }

    /// [`BoundedQueue::push`] as a future: suspends (registering the
    /// task's waker) instead of blocking the thread while the queue is
    /// full. Resolves to `false`, dropping the item, if the queue was
    /// closed.
    pub fn push_async(&self, item: T) -> PushFuture<'_, T> {
        PushFuture { queue: self, item: Some(item) }
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = lock(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                state.wake_pushers();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = wait(&self.not_empty, state);
        }
    }

    /// [`BoundedQueue::pop`] as a future: suspends instead of blocking
    /// while the queue is empty. Resolves to `None` once the queue is
    /// closed and drained.
    pub fn pop_async(&self) -> PopFuture<'_, T> {
        PopFuture { queue: self }
    }

    /// Closes the queue: queued items still drain, further pushes fail,
    /// and poppers return `None` once empty.
    pub fn close(&self) {
        let mut state = lock(&self.state);
        state.closed = true;
        state.wake_pushers();
        state.wake_poppers();
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued (racy; for monitoring only).
    pub fn len(&self) -> usize {
        lock(&self.state).items.len()
    }

    /// Whether the queue is currently empty (racy; for monitoring only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`BoundedQueue::push_async`].
pub struct PushFuture<'q, T> {
    queue: &'q BoundedQueue<T>,
    item: Option<T>,
}

impl<T> Unpin for PushFuture<'_, T> {}

impl<T> Future for PushFuture<'_, T> {
    type Output = bool;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<bool> {
        let this = self.get_mut();
        let mut state = lock(&this.queue.state);
        if state.closed {
            this.item = None;
            return Poll::Ready(false);
        }
        if state.items.len() < this.queue.capacity {
            let item = this.item.take().expect("push future polled after completion");
            state.items.push_back(item);
            this.queue.not_empty.notify_one();
            state.wake_poppers();
            return Poll::Ready(true);
        }
        state.push_wakers.push(cx.waker().clone());
        Poll::Pending
    }
}

/// Future returned by [`BoundedQueue::pop_async`].
pub struct PopFuture<'q, T> {
    queue: &'q BoundedQueue<T>,
}

impl<T> Unpin for PopFuture<'_, T> {}

impl<T> Future for PopFuture<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut state = lock(&self.queue.state);
        if let Some(item) = state.items.pop_front() {
            self.queue.not_full.notify_one();
            state.wake_pushers();
            return Poll::Ready(Some(item));
        }
        if state.closed {
            return Poll::Ready(None);
        }
        state.pop_wakers.push(cx.waker().clone());
        Poll::Pending
    }
}

/// Aggregate statistics of one serving run ([`serve`] or
/// [`Frontend::run`](crate::frontend::Frontend::run)).
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Requests pulled from the request stream, whatever their fate.
    /// Every submitted request lands in exactly one bucket:
    /// `completed + unsupported + failed + rejected + expired`
    /// ([`ServeReport::accounting_balances`]).
    pub submitted: usize,
    /// Requests evaluated to completion.
    pub completed: usize,
    /// Requests skipped because the assigned engine shard does not
    /// support the benchmark.
    pub unsupported: usize,
    /// Requests rejected as invalid (out-of-range benchmark index, or a
    /// benchmark whose trace cannot be built). Each failure is counted
    /// here and sampled in [`ServeReport::failures`]; the worker that
    /// hit it keeps serving.
    pub failed: usize,
    /// Requests shed by admission control
    /// ([`Rejected::Overloaded`](crate::frontend::Rejected::Overloaded)):
    /// the modeled queueing delay exceeded the policy's bound, so the
    /// request was never enqueued. Always 0 under [`serve`], which
    /// admits everything.
    pub rejected: usize,
    /// Requests whose deadline could not be met — either the modeled
    /// sojourn time already exceeded the budget at admission, or the
    /// deadline had passed by the time a worker claimed the request.
    /// Expired requests are counted, never executed.
    pub expired: usize,
    /// Error messages of the first [`MAX_FAILURE_SAMPLES`] failed
    /// requests (in completion order), for diagnostics.
    pub failures: Vec<String>,
    /// Input points across completed requests.
    pub points: u64,
    /// Serving time from start to last completion, measured on the
    /// run's [`Clock`](crate::frontend::Clock) — wall time under
    /// [`WallClock`](crate::frontend::WallClock), simulated time under
    /// [`SimClock`](crate::frontend::SimClock).
    pub wall: Duration,
    /// Median time requests spent queued before a worker claimed them
    /// (on the run's clock).
    pub queue_p50: Duration,
    /// 99th-percentile queue time.
    pub queue_p99: Duration,
    /// Trace-cache counters of the run (private cache, so the hit rate
    /// reflects this request stream only).
    pub cache: CacheStats,
    /// `(engine name, completed requests)` per shard, in engine order.
    pub per_engine: Vec<(String, usize)>,
    /// `(engine name, modeled utilization)` per shard: executed points
    /// divided by the shard's capacity budget over the run's elapsed
    /// clock time. 0 when the shard's capacity is unknown (zero) or no
    /// clock time elapsed.
    pub utilization_per_shard: Vec<(String, f64)>,
}

impl ServeReport {
    /// Completed requests per second of elapsed clock time; 0 when no
    /// clock time elapsed (e.g. under a never-advanced
    /// [`SimClock`](crate::frontend::SimClock)).
    pub fn requests_per_s(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.completed as f64 / self.wall.as_secs_f64()
    }

    /// Input points evaluated per second of elapsed clock time; 0 when
    /// no clock time elapsed.
    pub fn points_per_s(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.points as f64 / self.wall.as_secs_f64()
    }

    /// Whether every submitted request is accounted for in exactly one
    /// outcome bucket — the invariant every serving run must uphold.
    pub fn accounting_balances(&self) -> bool {
        self.completed + self.unsupported + self.failed + self.rejected + self.expired
            == self.submitted
    }
}

/// How many failed-request messages [`ServeReport::failures`] retains.
pub const MAX_FAILURE_SAMPLES: usize = 16;

/// Drains `requests` through per-shard bounded queues fanned out to
/// `options.workers_per_engine` workers per engine shard, amortizing
/// trace compilation through a run-private
/// [`TraceCache`](crate::cache::TraceCache).
///
/// This is the admit-everything configuration of the
/// [`Frontend`](crate::frontend::Frontend): no request is ever shed
/// ([`ServeReport::rejected`] is always 0) and requests without
/// deadlines never expire. Invalid requests — an out-of-range benchmark
/// index, or a benchmark whose trace cannot be built
/// ([`crate::TraceBuildError`]) — are counted into
/// [`ServeReport::failed`] with the message sampled in
/// [`ServeReport::failures`]; the worker keeps draining the queue.
/// Unsupported (engine, benchmark) combinations are counted, not
/// evaluated.
///
/// # Panics
///
/// Panics when `engines` or `benchmarks` is empty.
pub fn serve(
    engines: &[&dyn Engine],
    benchmarks: &[Benchmark],
    requests: impl IntoIterator<Item = Request>,
    options: ServeOptions,
) -> ServeReport {
    let options = FrontendOptions {
        queue_capacity: options.queue_capacity,
        // `serve` predates zero-worker semantics: it always drains.
        workers_per_engine: options.workers_per_engine.max(1),
        scale: options.scale,
        policy: AdmissionPolicy::admit_all(),
        capacities: None,
        artifact_dir: crate::artifact_dir(),
        // Retain cached failures: `serve` is a batch harness whose
        // hit/miss accounting treats a deterministic failure as paid
        // for once; serving layers that need transient-fault recovery
        // use the `Frontend` directly (it defaults to retry).
        failure_policy: crate::cache::FailurePolicy::Retain,
    };
    Frontend::new(engines, benchmarks, options).run(requests)
}

/// Nearest-rank percentile of sorted durations; zero for an empty set.
pub(crate) fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pointacc::{Accelerator, PointAccConfig};
    use pointacc_baselines::Mesorasi;
    use pointacc_nn::zoo;

    #[test]
    fn bounded_queue_applies_backpressure_and_drains_in_order() {
        let queue: BoundedQueue<u32> = BoundedQueue::new(2);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..64 {
                    assert!(queue.push(i));
                }
                queue.close();
            });
            let consumer = scope.spawn(|| {
                let mut got = Vec::new();
                while let Some(i) = queue.pop() {
                    // A capacity-2 queue can never be more than 2 deep.
                    assert!(queue.len() <= 2);
                    got.push(i);
                }
                got
            });
            assert_eq!(consumer.join().unwrap(), (0..64).collect::<Vec<_>>());
        });
        assert!(!queue.push(99), "closed queue rejects pushes");
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn async_pushes_suspend_until_threaded_pops_make_room() {
        // The serving front-end's exact mix: an async producer pushing
        // through a full queue drained by a blocking consumer thread.
        let queue: BoundedQueue<u32> = BoundedQueue::new(2);
        std::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                let mut got = Vec::new();
                while let Some(i) = queue.pop() {
                    got.push(i);
                }
                got
            });
            futures::executor::block_on(async {
                for i in 0..64 {
                    assert!(queue.push_async(i).await);
                }
            });
            queue.close();
            assert_eq!(consumer.join().unwrap(), (0..64).collect::<Vec<_>>());
        });
        // Closed queue: the future resolves to false without suspending.
        assert!(!futures::executor::block_on(queue.push_async(99)));
    }

    #[test]
    fn async_pops_drain_and_observe_close() {
        let queue: BoundedQueue<u32> = BoundedQueue::new(4);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..16 {
                    assert!(queue.push(i));
                }
                queue.close();
            });
            let got = futures::executor::block_on(async {
                let mut got = Vec::new();
                while let Some(i) = queue.pop_async().await {
                    got.push(i);
                }
                got
            });
            assert_eq!(got, (0..16).collect::<Vec<_>>());
        });
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 50.0), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 99.0), Duration::from_millis(99));
        assert_eq!(percentile(&ms[..1], 99.0), Duration::from_millis(1));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
    }

    #[test]
    fn serve_drains_every_request_across_shards() {
        let full = Accelerator::new(PointAccConfig::full());
        let edge = Accelerator::new(PointAccConfig::edge());
        let benchmarks: Vec<_> = zoo::benchmarks()
            .into_iter()
            .filter(|b| b.notation == "PointNet" || b.notation == "DGCNN")
            .collect();
        // 3 rounds × 2 benchmarks × 2 seeds = 12 unique keys hit 3×.
        let requests: Vec<Request> = (0..3)
            .flat_map(|_| (0..2).flat_map(|b| [1, 2].map(|seed| Request::new(b, seed))))
            .collect();
        let n = requests.len();
        let report = serve(
            &[&full as &dyn Engine, &edge],
            &benchmarks,
            requests,
            ServeOptions { queue_capacity: 4, workers_per_engine: 2, scale: 0.05 },
        );
        assert_eq!(report.submitted, n);
        assert_eq!(report.completed, n);
        assert_eq!(report.unsupported, 0);
        assert_eq!(report.failed, 0);
        assert_eq!(report.rejected, 0, "serve admits everything");
        assert_eq!(report.expired, 0, "no request carried a deadline");
        assert!(report.accounting_balances());
        assert!(report.failures.is_empty());
        assert!(report.points > 0);
        assert!(report.requests_per_s() > 0.0);
        assert!(report.points_per_s() > 0.0);
        // Structural invariant — never an absolute wall-clock bound.
        assert!(report.queue_p50 <= report.queue_p99);
        // 12 requests over 4 unique (benchmark, seed) keys: 4 compiles,
        // 8 cache hits.
        assert_eq!(report.cache.misses, 4);
        assert_eq!(report.cache.hits, 8);
        assert_eq!(report.per_engine.len(), 2);
        assert_eq!(report.per_engine.iter().map(|(_, n)| n).sum::<usize>(), n);
        assert_eq!(report.utilization_per_shard.len(), 2);
        for (name, u) in &report.utilization_per_shard {
            assert!(u.is_finite() && *u >= 0.0, "{name}: utilization {u}");
        }
    }

    #[test]
    // The scope join rethrows with its own message (the worker's
    // "engine exploded" payload is still printed by the panic hook).
    #[should_panic(expected = "a scoped thread panicked")]
    fn worker_panics_propagate_instead_of_hanging() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Survives the front-end's one calibration evaluation on the
        // main thread, then explodes inside the worker.
        struct Exploding(AtomicUsize);
        impl Engine for Exploding {
            fn name(&self) -> String {
                "Exploding".into()
            }
            fn evaluate(&self, trace: &pointacc_nn::NetworkTrace) -> pointacc::EngineReport {
                if self.0.fetch_add(1, Ordering::SeqCst) > 0 {
                    panic!("engine exploded");
                }
                pointacc::EngineReport {
                    engine: self.name(),
                    network: trace.network.clone(),
                    mapping: pointacc::Seconds(0.0),
                    matmul: pointacc::Seconds(1e-3),
                    datamove: pointacc::Seconds(0.0),
                    total: pointacc::Seconds(1e-3),
                    energy: pointacc_sim::PicoJoules::new(1.0),
                    dram_bytes: 0,
                }
            }
        }
        let engine = Exploding(AtomicUsize::new(0));
        let benchmarks: Vec<_> =
            zoo::benchmarks().into_iter().filter(|b| b.notation == "PointNet").collect();
        // More requests than queue capacity: without close-on-panic the
        // producer would suspend forever against a full queue no worker
        // drains; with it, the scope join rethrows the worker's panic.
        let requests = (0..32).map(|_| Request::new(0, 42));
        let _ = serve(
            &[&engine as &dyn Engine],
            &benchmarks,
            requests,
            ServeOptions { queue_capacity: 2, scale: 0.05, ..ServeOptions::default() },
        );
    }

    #[test]
    fn invalid_requests_fail_without_hanging_the_queue() {
        use pointacc_nn::zoo::Benchmark;
        use pointacc_nn::{Domain, Network, Op};
        let full = Accelerator::new(PointAccConfig::full());
        let mut benchmarks: Vec<_> =
            zoo::benchmarks().into_iter().filter(|b| b.notation == "PointNet").collect();
        // A benchmark whose network pops an empty skip stack: its trace
        // can never be built.
        benchmarks.push(Benchmark {
            notation: "Broken",
            application: "Segmentation",
            dataset: "S3DIS",
            network: Network::new("broken", Domain::VoxelBased, 4)
                .with_voxel_size(0.1)
                .push(Op::SparseConvTr { out_ch: 8, kernel_size: 2 }),
        });
        // Interleave valid requests, out-of-range indices, and the
        // unbuildable benchmark — far more than the queue capacity, so a
        // dead worker would deadlock the producer.
        let requests: Vec<Request> = (0..8)
            .flat_map(|i| [Request::new(0, 42), Request::new(99, i), Request::new(1, 42)])
            .collect();
        let report = serve(
            &[&full as &dyn Engine],
            &benchmarks,
            requests,
            ServeOptions { queue_capacity: 2, scale: 0.05, ..ServeOptions::default() },
        );
        assert_eq!(report.submitted, 24);
        assert_eq!(report.completed, 8, "valid requests still complete");
        assert_eq!(report.failed, 16, "both failure kinds are counted");
        assert!(report.accounting_balances());
        assert!(!report.failures.is_empty());
        assert!(report.failures.len() <= MAX_FAILURE_SAMPLES);
        assert!(
            report.failures.iter().any(|m| m.contains("unknown benchmark index 99")),
            "{:?}",
            report.failures
        );
        assert!(
            report.failures.iter().any(|m| m.contains("skip stack is empty")),
            "{:?}",
            report.failures
        );
        // One miss for PointNet@42, one for the unbuildable trace (which
        // then keeps failing from the negative cache); out-of-range
        // indices never reach the cache.
        assert_eq!(report.cache.misses, 2);
    }

    #[test]
    fn unsupported_shards_count_instead_of_evaluating() {
        let mesorasi = Mesorasi::new();
        let minknet: Vec<_> =
            zoo::benchmarks().into_iter().filter(|b| b.notation == "MinkNet(i)").collect();
        let requests = (0..4).map(|_| Request::new(0, 42));
        let report = serve(
            &[&mesorasi as &dyn Engine],
            &minknet,
            requests,
            ServeOptions { scale: 0.05, ..ServeOptions::default() },
        );
        assert_eq!(report.completed, 0);
        assert_eq!(report.unsupported, 4);
        assert_eq!(report.points, 0);
        assert!(report.accounting_balances());
    }
}
