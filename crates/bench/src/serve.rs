//! Batched request serving over a set of [`Engine`]s.
//!
//! The paper evaluates single-inference latency; serving heavy traffic
//! needs the opposite shape: a bounded queue of inference requests
//! drained by sharded worker threads, with trace compilation amortized
//! through a [`TraceCache`] and throughput — not just latency —
//! reported. This module provides that serving loop:
//!
//! - [`BoundedQueue`], a blocking MPSC channel with backpressure (the
//!   producer blocks while the queue is at capacity);
//! - [`serve`], which fans a request stream out to
//!   `workers_per_engine × engines` workers, each worker pinned to one
//!   engine shard, pulling whichever request is next (work-stealing by
//!   construction — a shared queue balances skewed benchmarks);
//! - [`ServeReport`], the aggregate: requests/s, points/s, queue-latency
//!   percentiles, the trace-cache hit rate, and the count (plus sampled
//!   messages) of failed requests — a malformed request is counted and
//!   reported, never allowed to take down a worker thread.
//!
//! ```
//! use pointacc::{Accelerator, Engine, PointAccConfig};
//! use pointacc_bench::serve::{serve, Request, ServeOptions};
//! use pointacc_nn::zoo;
//!
//! let full = Accelerator::new(PointAccConfig::full());
//! let edge = Accelerator::new(PointAccConfig::edge());
//! let benchmarks: Vec<_> = zoo::benchmarks().into_iter().take(2).collect();
//! let requests: Vec<Request> =
//!     (0..8).map(|i| Request { benchmark: i % 2, seed: 42 }).collect();
//! let report = serve(
//!     &[&full as &dyn Engine, &edge],
//!     &benchmarks,
//!     requests,
//!     ServeOptions { scale: 0.02, ..ServeOptions::default() },
//! );
//! assert_eq!(report.completed, 8);
//! assert!(report.cache.hit_rate() > 0.0);
//! ```

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use pointacc::Engine;
use pointacc_nn::zoo::Benchmark;

use crate::cache::{CacheStats, TraceCache};
use crate::try_benchmark_trace_at;
use pointacc_nn::TraceKey;

/// One inference request: a benchmark (index into the server's
/// benchmark list) and the dataset seed identifying the input cloud.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Index into the benchmark list the server was started with.
    pub benchmark: usize,
    /// Dataset seed of the input point cloud.
    pub seed: u64,
}

/// Tuning knobs of one [`serve`] run.
#[derive(Copy, Clone, Debug)]
pub struct ServeOptions {
    /// Maximum queued (not yet claimed) requests; the producer blocks
    /// when the queue is full.
    pub queue_capacity: usize,
    /// Worker threads per engine shard.
    pub workers_per_engine: usize,
    /// Point-count scale factor of the input clouds.
    pub scale: f64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { queue_capacity: 16, workers_per_engine: 1, scale: 1.0 }
    }
}

/// A blocking bounded MPSC queue: `push` blocks while full, `pop`
/// blocks while empty, `close` drains remaining items then ends the
/// stream.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// An open queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is 0 (every push would deadlock).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues `item`, blocking while the queue is at capacity.
    /// Returns `false` (dropping the item) if the queue was closed.
    pub fn push(&self, item: T) -> bool {
        let mut state = self.state.lock().expect("queue poisoned");
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).expect("queue poisoned");
        }
        if state.closed {
            return false;
        }
        state.items.push_back(item);
        self.not_empty.notify_one();
        true
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: queued items still drain, further pushes fail,
    /// and poppers return `None` once empty.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued (racy; for monitoring only).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty (racy; for monitoring only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Aggregate statistics of one [`serve`] run.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Requests evaluated to completion.
    pub completed: usize,
    /// Requests skipped because the assigned engine shard does not
    /// support the benchmark.
    pub unsupported: usize,
    /// Requests rejected as invalid (out-of-range benchmark index, or a
    /// benchmark whose trace cannot be built). Each failure is counted
    /// here and sampled in [`ServeReport::failures`]; the worker that
    /// hit it keeps serving.
    pub failed: usize,
    /// Error messages of the first [`MAX_FAILURE_SAMPLES`] failed
    /// requests (in completion order), for diagnostics.
    pub failures: Vec<String>,
    /// Input points across completed requests.
    pub points: u64,
    /// Wall-clock time from first enqueue to last completion.
    pub wall: Duration,
    /// Median time requests spent queued before a worker claimed them.
    pub queue_p50: Duration,
    /// 99th-percentile queue time.
    pub queue_p99: Duration,
    /// Trace-cache counters of the run (private cache, so the hit rate
    /// reflects this request stream only).
    pub cache: CacheStats,
    /// `(engine name, completed requests)` per shard, in engine order.
    pub per_engine: Vec<(String, usize)>,
}

impl ServeReport {
    /// Completed requests per second of wall-clock time.
    pub fn requests_per_s(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Input points evaluated per second of wall-clock time.
    pub fn points_per_s(&self) -> f64 {
        self.points as f64 / self.wall.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// How many failed-request messages [`ServeReport::failures`] retains.
pub const MAX_FAILURE_SAMPLES: usize = 16;

/// How one request ended, as recorded by a worker.
enum Outcome {
    Done,
    Unsupported,
    Failed(String),
}

/// One finished request as recorded by a worker.
struct Completion {
    engine: usize,
    queue_latency: Duration,
    points: u64,
    outcome: Outcome,
}

/// Drains `requests` through a bounded queue fanned out to
/// `options.workers_per_engine` workers per engine shard, amortizing
/// trace compilation through a run-private [`TraceCache`].
///
/// Invalid requests — an out-of-range benchmark index, or a benchmark
/// whose trace cannot be built ([`crate::TraceBuildError`]) — are
/// counted into [`ServeReport::failed`] with the message sampled in
/// [`ServeReport::failures`]; the worker keeps draining the queue.
/// Unsupported (engine, benchmark) combinations are counted, not
/// evaluated.
///
/// # Panics
///
/// Panics when `engines` or `benchmarks` is empty.
pub fn serve(
    engines: &[&dyn Engine],
    benchmarks: &[Benchmark],
    requests: impl IntoIterator<Item = Request>,
    options: ServeOptions,
) -> ServeReport {
    assert!(!engines.is_empty(), "serving needs at least one engine");
    assert!(!benchmarks.is_empty(), "serving needs at least one benchmark");
    let workers = engines.len() * options.workers_per_engine.max(1);
    let queue: BoundedQueue<(Request, Instant)> = BoundedQueue::new(options.queue_capacity);
    let cache = TraceCache::new();
    let start = Instant::now();

    // Closes the queue when a worker exits for any reason — crucially
    // including a panic unwinding through `engine.evaluate`. Without it
    // the producer could block forever in `push` against a full queue
    // that no surviving worker will drain; closing unblocks the
    // producer, lets the scope join, and the scope then rethrows the
    // worker's panic. Normal worker exit only happens once the queue is
    // already closed, so the eager close is harmless there.
    struct CloseOnExit<'a, T>(&'a BoundedQueue<T>);
    impl<T> Drop for CloseOnExit<'_, T> {
        fn drop(&mut self) {
            self.0.close();
        }
    }

    let completions: Vec<Completion> = std::thread::scope(|scope| {
        let (tx, rx) = std::sync::mpsc::channel::<Completion>();
        for w in 0..workers {
            let engine = engines[w % engines.len()];
            let engine_idx = w % engines.len();
            let queue = &queue;
            let cache = &cache;
            let tx = tx.clone();
            scope.spawn(move || {
                let _close_on_exit = CloseOnExit(queue);
                while let Some((req, enqueued)) = queue.pop() {
                    let queue_latency = enqueued.elapsed();
                    let built = match benchmarks.get(req.benchmark) {
                        None => Err(format!(
                            "request names unknown benchmark index {} ({} benchmarks served)",
                            req.benchmark,
                            benchmarks.len()
                        )),
                        Some(bench) => {
                            let key = TraceKey::new(bench.notation, req.seed, options.scale);
                            cache
                                .try_get_or_build(&key, || {
                                    try_benchmark_trace_at(bench, req.seed, options.scale)
                                })
                                .map_err(|e| e.to_string())
                        }
                    };
                    let (points, outcome) = match built {
                        Err(msg) => (0, Outcome::Failed(msg)),
                        Ok(trace) if engine.supports(&trace) => {
                            let report = engine.evaluate(&trace);
                            debug_assert!(report.is_physical());
                            (trace.input_points() as u64, Outcome::Done)
                        }
                        Ok(_) => (0, Outcome::Unsupported),
                    };
                    if tx
                        .send(Completion { engine: engine_idx, queue_latency, points, outcome })
                        .is_err()
                    {
                        break;
                    }
                }
            });
        }
        drop(tx);

        // This thread is the producer: enqueue with backpressure, then
        // close so workers drain and exit. A failed push means a worker
        // died and closed the queue — stop producing so its panic can
        // surface through the scope join.
        for req in requests {
            if !queue.push((req, Instant::now())) {
                break;
            }
        }
        queue.close();
        rx.into_iter().collect()
    });

    let wall = start.elapsed();
    let mut latencies: Vec<Duration> = completions.iter().map(|c| c.queue_latency).collect();
    latencies.sort_unstable();
    let mut per_engine: Vec<(String, usize)> = engines.iter().map(|e| (e.name(), 0)).collect();
    let mut completed = 0;
    let mut unsupported = 0;
    let mut failed = 0;
    let mut failures = Vec::new();
    let mut points = 0;
    for c in completions {
        match c.outcome {
            Outcome::Done => {
                completed += 1;
                points += c.points;
                per_engine[c.engine].1 += 1;
            }
            Outcome::Unsupported => unsupported += 1,
            Outcome::Failed(msg) => {
                failed += 1;
                if failures.len() < MAX_FAILURE_SAMPLES {
                    failures.push(msg);
                }
            }
        }
    }
    ServeReport {
        completed,
        unsupported,
        failed,
        failures,
        points,
        wall,
        queue_p50: percentile(&latencies, 50.0),
        queue_p99: percentile(&latencies, 99.0),
        cache: cache.stats(),
        per_engine,
    }
}

/// Nearest-rank percentile of sorted durations; zero for an empty set.
fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pointacc::{Accelerator, PointAccConfig};
    use pointacc_baselines::Mesorasi;
    use pointacc_nn::zoo;

    #[test]
    fn bounded_queue_applies_backpressure_and_drains_in_order() {
        let queue: BoundedQueue<u32> = BoundedQueue::new(2);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..64 {
                    assert!(queue.push(i));
                }
                queue.close();
            });
            let consumer = scope.spawn(|| {
                let mut got = Vec::new();
                while let Some(i) = queue.pop() {
                    // A capacity-2 queue can never be more than 2 deep.
                    assert!(queue.len() <= 2);
                    got.push(i);
                }
                got
            });
            assert_eq!(consumer.join().unwrap(), (0..64).collect::<Vec<_>>());
        });
        assert!(!queue.push(99), "closed queue rejects pushes");
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 50.0), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 99.0), Duration::from_millis(99));
        assert_eq!(percentile(&ms[..1], 99.0), Duration::from_millis(1));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
    }

    #[test]
    fn serve_drains_every_request_across_shards() {
        let full = Accelerator::new(PointAccConfig::full());
        let edge = Accelerator::new(PointAccConfig::edge());
        let benchmarks: Vec<_> = zoo::benchmarks()
            .into_iter()
            .filter(|b| b.notation == "PointNet" || b.notation == "DGCNN")
            .collect();
        // 3 rounds × 2 benchmarks × 2 seeds = 12 unique keys hit 3×.
        let requests: Vec<Request> = (0..3)
            .flat_map(|_| (0..2).flat_map(|b| [1, 2].map(|seed| Request { benchmark: b, seed })))
            .collect();
        let n = requests.len();
        let report = serve(
            &[&full as &dyn Engine, &edge],
            &benchmarks,
            requests,
            ServeOptions { queue_capacity: 4, workers_per_engine: 2, scale: 0.05 },
        );
        assert_eq!(report.completed, n);
        assert_eq!(report.unsupported, 0);
        assert_eq!(report.failed, 0);
        assert!(report.failures.is_empty());
        assert!(report.points > 0);
        assert!(report.requests_per_s() > 0.0);
        assert!(report.points_per_s() > 0.0);
        assert!(report.queue_p50 <= report.queue_p99);
        // 12 requests over 4 unique (benchmark, seed) keys: 4 compiles,
        // 8 cache hits.
        assert_eq!(report.cache.misses, 4);
        assert_eq!(report.cache.hits, 8);
        assert_eq!(report.per_engine.len(), 2);
        assert_eq!(report.per_engine.iter().map(|(_, n)| n).sum::<usize>(), n);
    }

    #[test]
    // The scope join rethrows with its own message (the worker's
    // "engine exploded" payload is still printed by the panic hook).
    #[should_panic(expected = "a scoped thread panicked")]
    fn worker_panics_propagate_instead_of_hanging() {
        struct Exploding;
        impl Engine for Exploding {
            fn name(&self) -> String {
                "Exploding".into()
            }
            fn evaluate(&self, _: &pointacc_nn::NetworkTrace) -> pointacc::EngineReport {
                panic!("engine exploded")
            }
        }
        let engine = Exploding;
        let benchmarks: Vec<_> =
            zoo::benchmarks().into_iter().filter(|b| b.notation == "PointNet").collect();
        // More requests than queue capacity: without close-on-panic the
        // producer would block forever against a full queue no worker
        // drains; with it, the scope join rethrows the worker's panic.
        let requests = (0..32).map(|_| Request { benchmark: 0, seed: 42 });
        let _ = serve(
            &[&engine as &dyn Engine],
            &benchmarks,
            requests,
            ServeOptions { queue_capacity: 2, scale: 0.05, ..ServeOptions::default() },
        );
    }

    #[test]
    fn invalid_requests_fail_without_hanging_the_queue() {
        use pointacc_nn::zoo::Benchmark;
        use pointacc_nn::{Domain, Network, Op};
        let full = Accelerator::new(PointAccConfig::full());
        let mut benchmarks: Vec<_> =
            zoo::benchmarks().into_iter().filter(|b| b.notation == "PointNet").collect();
        // A benchmark whose network pops an empty skip stack: its trace
        // can never be built.
        benchmarks.push(Benchmark {
            notation: "Broken",
            application: "Segmentation",
            dataset: "S3DIS",
            network: Network::new("broken", Domain::VoxelBased, 4)
                .with_voxel_size(0.1)
                .push(Op::SparseConvTr { out_ch: 8, kernel_size: 2 }),
        });
        // Interleave valid requests, out-of-range indices, and the
        // unbuildable benchmark — far more than the queue capacity, so a
        // dead worker would deadlock the producer.
        let requests: Vec<Request> = (0..8)
            .flat_map(|i| {
                [
                    Request { benchmark: 0, seed: 42 },
                    Request { benchmark: 99, seed: i },
                    Request { benchmark: 1, seed: 42 },
                ]
            })
            .collect();
        let report = serve(
            &[&full as &dyn Engine],
            &benchmarks,
            requests,
            ServeOptions { queue_capacity: 2, scale: 0.05, ..ServeOptions::default() },
        );
        assert_eq!(report.completed, 8, "valid requests still complete");
        assert_eq!(report.failed, 16, "both failure kinds are counted");
        assert!(!report.failures.is_empty());
        assert!(report.failures.len() <= MAX_FAILURE_SAMPLES);
        assert!(
            report.failures.iter().any(|m| m.contains("unknown benchmark index 99")),
            "{:?}",
            report.failures
        );
        assert!(
            report.failures.iter().any(|m| m.contains("skip stack is empty")),
            "{:?}",
            report.failures
        );
        // One miss for PointNet@42, one for the unbuildable trace (which
        // then keeps failing from the negative cache); out-of-range
        // indices never reach the cache.
        assert_eq!(report.cache.misses, 2);
    }

    #[test]
    fn unsupported_shards_count_instead_of_evaluating() {
        let mesorasi = Mesorasi::new();
        let minknet: Vec<_> =
            zoo::benchmarks().into_iter().filter(|b| b.notation == "MinkNet(i)").collect();
        let requests = (0..4).map(|_| Request { benchmark: 0, seed: 42 });
        let report = serve(
            &[&mesorasi as &dyn Engine],
            &minknet,
            requests,
            ServeOptions { scale: 0.05, ..ServeOptions::default() },
        );
        assert_eq!(report.completed, 0);
        assert_eq!(report.unsupported, 4);
        assert_eq!(report.points, 0);
    }
}
