//! Admission-controlled async serving front-end with per-shard
//! capacity modeling.
//!
//! [`serve`](crate::serve::serve) drains everything it is handed — the
//! right shape for a batch harness, the wrong one for a service: under
//! overload an admit-everything queue grows without bound and every
//! request eventually misses its latency target. This module adds the
//! serving-system discipline on top of the same worker machinery:
//!
//! - **Capacity modeling** — each engine shard advertises a points/s
//!   budget derived from its simulated cycle costs
//!   ([`Engine::capacity_points_per_s`]), either calibrated on the
//!   first supported benchmark or supplied explicitly
//!   ([`FrontendOptions::capacities`]). Admitted work accumulates in a
//!   per-shard fluid backlog that drains at the budget rate as clock
//!   time passes — deliberately *modeled*, never measured, so admission
//!   decisions are a pure function of arrival times and are exactly
//!   reproducible.
//! - **Admission control** — each arriving request is routed to the
//!   shard with the earliest modeled completion among those whose
//!   queueing delay meets the [`AdmissionPolicy`] bound, shed
//!   ([`Rejected::Overloaded`]) when no shard qualifies, or expired
//!   ([`Rejected::DeadlineExceeded`]) when its latency budget cannot be
//!   met. Shed and expired requests are counted, never executed.
//! - **A [`Clock`] abstraction** — [`WallClock`] for production,
//!   [`SimClock`] for tests: every timestamp in the serving path
//!   (arrival, dispatch, latency percentiles, utilization) reads the
//!   injected clock, so scheduling behavior is testable without
//!   sleeping. [`paced`] builds deterministic arrival processes by
//!   advancing a `SimClock` as the request stream is consumed.
//! - **An async producer** — admission and enqueueing run as a future
//!   (executed by the in-tree `futures` shim) that suspends on
//!   [`BoundedQueue::push_async`] backpressure instead of blocking,
//!   while worker threads drain the per-shard queues exactly as in the
//!   batch path.
//!
//! One code path serves both worlds: `serve` is simply
//! [`AdmissionPolicy::admit_all`] on this front-end.

use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pointacc::Engine;
use pointacc_nn::zoo::Benchmark;
use pointacc_nn::TraceKey;

use crate::cache::{FailurePolicy, TraceCache};
use crate::serve::{percentile, BoundedQueue, Request, ServeReport, MAX_FAILURE_SAMPLES};
use crate::sync::lock;
use crate::{modeled_points, try_benchmark_trace_at};

/// A monotonic time source for the serving path: everything the
/// front-end stamps — arrivals, dispatches, queue-latency percentiles,
/// utilization windows — is a [`Duration`] since the clock's epoch.
///
/// Implementations must be cheap and callable from many threads.
pub trait Clock: Sync {
    /// Time elapsed since the clock's epoch.
    fn now(&self) -> Duration;
}

/// The production clock: real elapsed time since construction.
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is now.
    pub fn new() -> Self {
        // lint: allow(wall-clock): WallClock is the designated production Clock impl.
        WallClock { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A deterministic test clock: time advances only when the test says
/// so. Threading a `SimClock` through a serving run makes every
/// scheduling decision — admission, expiry, latency percentiles — a
/// pure function of the request stream, with no sleeps and no
/// wall-clock luck.
#[derive(Default)]
pub struct SimClock {
    now: Mutex<Duration>,
}

impl SimClock {
    /// A simulated clock at epoch zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Advances simulated time by `dt`.
    pub fn advance(&self, dt: Duration) {
        let mut now = lock(&self.now);
        *now = now.saturating_add(dt);
    }
}

impl Clock for SimClock {
    fn now(&self) -> Duration {
        *lock(&self.now)
    }
}

/// Iterator adapter building a deterministic arrival process: advances
/// `clock` by `interarrival` before yielding each request after the
/// first, so request *k* arrives at simulated time `k × interarrival`.
/// Because the front-end's producer pulls requests lazily, the clock
/// advances exactly when the corresponding arrival is admitted.
pub fn paced<'c, I: IntoIterator<Item = Request>>(
    requests: I,
    clock: &'c SimClock,
    interarrival: Duration,
) -> Paced<'c, I::IntoIter> {
    Paced { inner: requests.into_iter(), clock, interarrival, started: false }
}

/// Iterator returned by [`paced`].
pub struct Paced<'c, I> {
    inner: I,
    clock: &'c SimClock,
    interarrival: Duration,
    started: bool,
}

impl<I: Iterator<Item = Request>> Iterator for Paced<'_, I> {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        // Pull first: an exhausted stream must not advance the clock,
        // or every paced run would end one interarrival late and
        // understate utilization and requests/s.
        let request = self.inner.next()?;
        if self.started {
            self.clock.advance(self.interarrival);
        }
        self.started = true;
        Some(request)
    }
}

/// Why admission control turned a request away.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// No shard's modeled queueing delay meets the
    /// [`AdmissionPolicy::max_queue_delay`] bound: admitting the
    /// request anywhere would only grow a queue that is already beyond
    /// its latency target. `predicted_wait` is [`Duration::MAX`] when
    /// the least-loaded shard has no capacity at all.
    Overloaded {
        /// The least-loaded shard — the best the request could have
        /// gotten.
        shard: usize,
        /// That shard's modeled time until a worker would have claimed
        /// the request.
        predicted_wait: Duration,
    },
    /// The request's latency budget cannot be met: its modeled sojourn
    /// time (queueing plus service) already exceeds the deadline at
    /// admission, or the deadline passed while it was queued.
    DeadlineExceeded {
        /// Modeled queueing + service time at the admission decision,
        /// or the actual queue time when expiry was detected at
        /// dispatch.
        predicted_sojourn: Duration,
        /// The request's latency budget relative to its arrival.
        deadline: Duration,
    },
}

/// When to shed load instead of queueing it.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Shed a request ([`Rejected::Overloaded`]) when the modeled
    /// queueing delay on its best shard exceeds this bound. `None`
    /// admits everything — the [`serve`](crate::serve::serve)
    /// configuration.
    pub max_queue_delay: Option<Duration>,
    /// Also expire admitted requests whose absolute deadline has
    /// already passed when a worker claims them (on the run's clock).
    /// This is the right guard under a [`WallClock`] — the admission
    /// model may underestimate real queueing. Turn it **off** when
    /// pacing arrivals on a [`SimClock`] while executing for real:
    /// there the producer advances simulated time at arrival speed
    /// while workers dispatch at host speed, so a queue-time comparison
    /// of the two clocks is an artifact, not a scheduling decision.
    /// With it off, expiry is decided purely by the admission model.
    pub expire_in_queue: bool,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy::admit_all()
    }
}

impl AdmissionPolicy {
    /// Admit every request, whatever the backlog (batch-harness mode).
    pub fn admit_all() -> Self {
        AdmissionPolicy { max_queue_delay: None, expire_in_queue: true }
    }

    /// Shed requests whose modeled queueing delay exceeds `bound`.
    pub fn shed_after(bound: Duration) -> Self {
        AdmissionPolicy { max_queue_delay: Some(bound), expire_in_queue: true }
    }
}

/// Tuning knobs of one [`Frontend`].
#[derive(Clone, Debug)]
pub struct FrontendOptions {
    /// Maximum queued (not yet claimed) requests per engine shard; the
    /// async producer suspends while the assigned shard's queue is
    /// full.
    pub queue_capacity: usize,
    /// Worker threads per engine shard. With 0 workers nothing can ever
    /// drain, so admission sheds every request ([`Rejected::Overloaded`])
    /// instead of deadlocking against a queue nobody serves.
    pub workers_per_engine: usize,
    /// Point-count scale factor of the input clouds.
    pub scale: f64,
    /// When to shed load.
    pub policy: AdmissionPolicy,
    /// Per-shard capacity budgets in points/s, in engine order. `None`
    /// calibrates each shard at construction: the engine's
    /// [`Engine::capacity_points_per_s`] on the first benchmark it
    /// supports (compiled through the process-wide trace cache, so the
    /// run's private cache statistics stay untouched). A shard
    /// supporting none of the benchmarks gets capacity 0.
    pub capacities: Option<Vec<f64>>,
    /// Persistent trace-artifact directory of the run's private cache
    /// (see [`pointacc_nn::artifact`]). Defaults to the process-wide
    /// [`crate::artifact_dir`] (`POINTACC_ARTIFACT_DIR`), so a serving
    /// process restarted against a warm artifact directory compiles
    /// zero traces. `None` disables the disk tier.
    pub artifact_dir: Option<PathBuf>,
    /// What the run's cache does when a request hits a negatively
    /// cached build failure. A serving front-end defaults to
    /// [`FailurePolicy::RetryOnRequest`] — a transient build fault must
    /// not make a key permanently unservable — while the batch
    /// [`serve`](crate::serve::serve) path keeps
    /// [`FailurePolicy::Retain`] for exact amortization accounting.
    pub failure_policy: FailurePolicy,
}

impl Default for FrontendOptions {
    fn default() -> Self {
        FrontendOptions {
            queue_capacity: 16,
            workers_per_engine: 1,
            scale: 1.0,
            policy: AdmissionPolicy::admit_all(),
            capacities: None,
            artifact_dir: crate::artifact_dir(),
            failure_policy: FailurePolicy::RetryOnRequest,
        }
    }
}

/// Seed of the calibration traces (kept equal to the first statistical
/// seed so calibration shares compiles with the figure binaries).
const CALIBRATION_SEED: u64 = crate::SEEDS[0];

/// The fluid capacity model of one engine shard: admitted points
/// accumulate in `backlog` and drain at `capacity` points/s as clock
/// time passes. Purely modeled — actual completions never feed back —
/// so the admission sequence is a deterministic function of arrivals.
struct ShardModel {
    capacity: f64,
    backlog: f64,
    as_of: Duration,
}

impl ShardModel {
    fn drain_to(&mut self, now: Duration) {
        let dt = now.saturating_sub(self.as_of).as_secs_f64();
        self.backlog = (self.backlog - dt * self.capacity).max(0.0);
        self.as_of = now;
    }

    /// Modeled seconds until a newly admitted request would be claimed.
    fn wait_s(&self) -> f64 {
        if self.capacity > 0.0 {
            self.backlog / self.capacity
        } else {
            f64::INFINITY
        }
    }

    /// Modeled seconds until a newly admitted request of `points` would
    /// complete (routing score).
    fn completion_s(&self, points: f64) -> f64 {
        if self.capacity > 0.0 {
            (self.backlog + points) / self.capacity
        } else {
            f64::INFINITY
        }
    }
}

fn secs_to_duration(s: f64) -> Duration {
    if s.is_finite() {
        Duration::try_from_secs_f64(s.max(0.0)).unwrap_or(Duration::MAX)
    } else {
        Duration::MAX
    }
}

/// One admitted request in flight to a worker.
struct Admitted {
    request: Request,
    enqueued: Duration,
    /// Absolute deadline on the run's clock (arrival + budget).
    deadline: Option<Duration>,
}

/// How one request ended, as recorded by a worker or by admission.
enum Outcome {
    Done,
    Unsupported,
    Failed(String),
    Shed,
    Expired,
}

/// One finished request as recorded by a worker or by admission.
struct Completion {
    engine: usize,
    queue_latency: Duration,
    points: u64,
    outcome: Outcome,
}

/// The admission-controlled serving front-end: engines with calibrated
/// capacity budgets, per-shard bounded queues, and an async producer
/// applying the [`AdmissionPolicy`].
pub struct Frontend<'a> {
    engines: &'a [&'a dyn Engine],
    benchmarks: &'a [Benchmark],
    options: FrontendOptions,
    capacities: Vec<f64>,
    /// Modeled input points per benchmark index at the serving scale.
    points: Vec<f64>,
}

impl<'a> Frontend<'a> {
    /// Builds a front-end over `engines` serving `benchmarks`,
    /// calibrating per-shard capacities unless
    /// [`FrontendOptions::capacities`] supplies them.
    ///
    /// # Panics
    ///
    /// Panics when `engines` or `benchmarks` is empty, or when explicit
    /// capacities disagree with the engine count.
    pub fn new(
        engines: &'a [&'a dyn Engine],
        benchmarks: &'a [Benchmark],
        options: FrontendOptions,
    ) -> Self {
        assert!(!engines.is_empty(), "serving needs at least one engine");
        assert!(!benchmarks.is_empty(), "serving needs at least one benchmark");
        let capacities = match &options.capacities {
            Some(c) => {
                assert_eq!(
                    c.len(),
                    engines.len(),
                    "explicit capacities must match the engine count"
                );
                c.clone()
            }
            None => engines.iter().map(|e| calibrate(*e, benchmarks, options.scale)).collect(),
        };
        let points = benchmarks.iter().map(|b| modeled_points(b, options.scale) as f64).collect();
        Frontend { engines, benchmarks, options, capacities, points }
    }

    /// The points/s budget of every shard, in engine order.
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Serves `requests` on a fresh [`WallClock`].
    pub fn run(&self, requests: impl IntoIterator<Item = Request>) -> ServeReport {
        self.run_with_clock(&WallClock::new(), requests)
    }

    /// Serves `requests`, reading every timestamp from `clock`.
    ///
    /// The producer runs as a future on the calling thread (admission,
    /// routing, async backpressure); `workers_per_engine` threads per
    /// shard drain the queues. The returned report accounts for every
    /// request: [`ServeReport::accounting_balances`] always holds.
    pub fn run_with_clock(
        &self,
        clock: &dyn Clock,
        requests: impl IntoIterator<Item = Request>,
    ) -> ServeReport {
        let mut cache = TraceCache::new().with_failure_policy(self.options.failure_policy);
        if let Some(dir) = &self.options.artifact_dir {
            cache = cache.with_artifact_dir(dir);
        }
        self.run_on_cache(clock, &cache, requests)
    }

    /// [`Frontend::run_with_clock`] against a caller-owned
    /// [`TraceCache`] instead of a run-private one. This is how a
    /// long-lived server keeps its compiled traces warm across request
    /// waves — and how a driver recovers a cache that negatively cached
    /// a transient fault: serve again on the same cache under
    /// [`FailurePolicy::RetryOnRequest`] (or after
    /// [`TraceCache::invalidate`]) and the failed keys rebuild. The
    /// report's [`ServeReport::cache`] snapshots the cache *after* this
    /// run; pair with [`TraceCache::reset_stats`] at wave boundaries
    /// for per-wave accounting.
    pub fn run_on_cache(
        &self,
        clock: &dyn Clock,
        cache: &TraceCache,
        requests: impl IntoIterator<Item = Request>,
    ) -> ServeReport {
        let workers_per_engine = self.options.workers_per_engine;
        let start = clock.now();
        let queues: Vec<BoundedQueue<Admitted>> =
            self.engines.iter().map(|_| BoundedQueue::new(self.options.queue_capacity)).collect();

        // Closes every queue when a worker exits for any reason —
        // crucially including a panic unwinding through
        // `engine.evaluate`. Without it the producer could suspend
        // forever against a full queue that no surviving worker will
        // drain; closing resolves the pending push, lets the scope
        // join, and the scope then rethrows the worker's panic. Normal
        // worker exit only happens once the queues are already closed,
        // so the eager close is harmless there.
        struct CloseOnExit<'q>(&'q [BoundedQueue<Admitted>]);
        impl Drop for CloseOnExit<'_> {
            fn drop(&mut self) {
                for q in self.0 {
                    q.close();
                }
            }
        }

        // These per-engine workers are blocking queue consumers that suspend
        // on `queue.pop()` for the whole run — not map-shaped work, so routing
        // them through the pointacc_geom::par pool would wedge its workers
        // behind queues the pool itself is expected to feed.
        // lint: allow(thread-spawn): blocking per-engine queue consumers, not map-shaped.
        let (submitted, completions): (usize, Vec<Completion>) = std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<Completion>();
            for (engine_idx, engine) in self.engines.iter().enumerate() {
                for _ in 0..workers_per_engine {
                    let engine: &dyn Engine = *engine;
                    let queues = &queues;
                    let queue = &queues[engine_idx];
                    let cache: &TraceCache = cache;
                    let tx = tx.clone();
                    let benchmarks = self.benchmarks;
                    let scale = self.options.scale;
                    let expire_in_queue = self.options.policy.expire_in_queue;
                    scope.spawn(move || {
                        let _close_on_exit = CloseOnExit(queues);
                        while let Some(adm) = queue.pop() {
                            let now = clock.now();
                            let queue_latency = now.saturating_sub(adm.enqueued);
                            let completion = match adm.deadline {
                                // The budget ran out while the request
                                // was queued: count it, don't run it.
                                Some(dl) if expire_in_queue && now > dl => Completion {
                                    engine: engine_idx,
                                    queue_latency,
                                    points: 0,
                                    outcome: Outcome::Expired,
                                },
                                _ => execute(
                                    engine,
                                    engine_idx,
                                    benchmarks,
                                    cache,
                                    scale,
                                    &adm.request,
                                    queue_latency,
                                ),
                            };
                            if tx.send(completion).is_err() {
                                break;
                            }
                        }
                    });
                }
            }

            // This thread is the producer: admit, route, enqueue with
            // async backpressure, then close so workers drain and exit.
            // A failed push means a worker died and closed the queues —
            // stop producing so its panic can surface through the scope
            // join.
            let submitted = futures::executor::block_on(async {
                let mut shards: Vec<ShardModel> = self
                    .capacities
                    .iter()
                    .map(|&capacity| ShardModel { capacity, backlog: 0.0, as_of: start })
                    .collect();
                let mut submitted = 0usize;
                for request in requests {
                    submitted += 1;
                    let now = clock.now();
                    match self.admit(&mut shards, &request, now) {
                        Ok(shard) => {
                            let deadline = request
                                .deadline
                                .map(|d| now.checked_add(d).unwrap_or(Duration::MAX));
                            let admitted = Admitted { request, enqueued: now, deadline };
                            if !queues[shard].push_async(admitted).await {
                                break;
                            }
                        }
                        Err(rejection) => {
                            let outcome = match rejection {
                                Rejected::Overloaded { .. } => Outcome::Shed,
                                Rejected::DeadlineExceeded { .. } => Outcome::Expired,
                            };
                            let shard = match rejection {
                                Rejected::Overloaded { shard, .. } => shard,
                                Rejected::DeadlineExceeded { .. } => 0,
                            };
                            if tx
                                .send(Completion {
                                    engine: shard,
                                    queue_latency: Duration::ZERO,
                                    points: 0,
                                    outcome,
                                })
                                .is_err()
                            {
                                break;
                            }
                        }
                    }
                }
                submitted
            });
            for q in &queues {
                q.close();
            }
            drop(tx);
            (submitted, rx.into_iter().collect())
        });

        self.aggregate(submitted, completions, cache, start, clock.now())
    }

    /// The admission decision for one arriving request: route it, then
    /// apply the shed bound and the request's deadline against the
    /// fluid backlog model. On admission the routed shard's backlog
    /// grows by the request's modeled points.
    ///
    /// Under a shed bound, routing picks the modeled-earliest
    /// completion among the shards whose queueing delay meets the
    /// bound, and sheds only when no shard qualifies. A deadline-only
    /// request routes to the earliest completion outright; a pure
    /// admit-all request balances outstanding modeled work instead
    /// (see the inline comments for why each regime differs).
    fn admit(
        &self,
        shards: &mut [ShardModel],
        request: &Request,
        now: Duration,
    ) -> Result<usize, Rejected> {
        if self.options.workers_per_engine == 0 {
            // Nothing can drain: admitting would deadlock, so shed.
            return Err(Rejected::Overloaded { shard: 0, predicted_wait: Duration::MAX });
        }
        for shard in shards.iter_mut() {
            shard.drain_to(now);
        }
        // Modeled load of the request; an invalid benchmark index costs
        // no capacity (the worker will count it as failed).
        let points = self.points.get(request.benchmark).copied().unwrap_or(0.0);
        // Earliest modeled completion, falling back to least backlog
        // when neither shard has calibratable capacity.
        let by_completion = |&a: &usize, &b: &usize| {
            let (ca, cb) = (shards[a].completion_s(points), shards[b].completion_s(points));
            if ca.is_finite() || cb.is_finite() {
                ca.total_cmp(&cb)
            } else {
                shards[a].backlog.total_cmp(&shards[b].backlog)
            }
        };
        let shard = if let Some(bound) = self.options.policy.max_queue_delay {
            // Route among the shards whose modeled queueing delay meets
            // the bound; shed only when none does — an idle slow shard
            // within the bound beats shedding behind a fast busy one.
            match (0..shards.len())
                .filter(|&s| shards[s].wait_s() <= bound.as_secs_f64())
                .min_by(by_completion)
            {
                Some(shard) => shard,
                None => {
                    let least_loaded = (0..shards.len())
                        .min_by(|&a, &b| shards[a].wait_s().total_cmp(&shards[b].wait_s()))
                        .expect("at least one engine");
                    return Err(Rejected::Overloaded {
                        shard: least_loaded,
                        predicted_wait: secs_to_duration(shards[least_loaded].wait_s()),
                    });
                }
            }
        } else if request.deadline.is_some() {
            // The capacity model gates this request: minimize its
            // modeled completion so a meetable deadline is met.
            (0..shards.len()).min_by(by_completion).expect("at least one engine")
        } else {
            // Pure admit-all: every request completes regardless, and
            // the engines' *wall-clock* cost per request is roughly
            // uniform (they are all simulators), so balance outstanding
            // modeled work to keep the whole worker pool busy —
            // capacity-proportional routing would idle most of it
            // behind the modeled-fastest shard.
            (0..shards.len())
                .min_by(|&a, &b| shards[a].backlog.total_cmp(&shards[b].backlog))
                .expect("at least one engine")
        };
        if let Some(deadline) = request.deadline {
            let sojourn_s = shards[shard].completion_s(points);
            if sojourn_s > deadline.as_secs_f64() {
                return Err(Rejected::DeadlineExceeded {
                    predicted_sojourn: secs_to_duration(sojourn_s),
                    deadline,
                });
            }
        }
        shards[shard].backlog += points;
        Ok(shard)
    }

    fn aggregate(
        &self,
        submitted: usize,
        completions: Vec<Completion>,
        cache: &TraceCache,
        start: Duration,
        end: Duration,
    ) -> ServeReport {
        let wall = end.saturating_sub(start);
        let mut latencies: Vec<Duration> = Vec::new();
        let mut per_engine: Vec<(String, usize)> =
            self.engines.iter().map(|e| (e.name(), 0)).collect();
        let mut executed_points = vec![0u64; self.engines.len()];
        let mut completed = 0;
        let mut unsupported = 0;
        let mut failed = 0;
        let mut rejected = 0;
        let mut expired = 0;
        let mut failures = Vec::new();
        let mut points = 0;
        for c in completions {
            match c.outcome {
                Outcome::Done => {
                    completed += 1;
                    points += c.points;
                    per_engine[c.engine].1 += 1;
                    executed_points[c.engine] += c.points;
                    latencies.push(c.queue_latency);
                }
                Outcome::Unsupported => {
                    unsupported += 1;
                    latencies.push(c.queue_latency);
                }
                Outcome::Failed(msg) => {
                    failed += 1;
                    latencies.push(c.queue_latency);
                    if failures.len() < MAX_FAILURE_SAMPLES {
                        failures.push(msg);
                    }
                }
                Outcome::Shed => rejected += 1,
                Outcome::Expired => expired += 1,
            }
        }
        latencies.sort_unstable();
        let elapsed_s = wall.as_secs_f64();
        let utilization_per_shard = self
            .engines
            .iter()
            .zip(&self.capacities)
            .zip(&executed_points)
            .map(|((engine, &capacity), &pts)| {
                let utilization = if capacity > 0.0 && elapsed_s > 0.0 {
                    pts as f64 / capacity / elapsed_s
                } else {
                    0.0
                };
                (engine.name(), utilization)
            })
            .collect();
        ServeReport {
            submitted,
            completed,
            unsupported,
            failed,
            rejected,
            expired,
            failures,
            points,
            wall,
            queue_p50: percentile(&latencies, 50.0),
            queue_p99: percentile(&latencies, 99.0),
            cache: cache.stats(),
            per_engine,
            utilization_per_shard,
        }
    }
}

/// Calibrates one shard: the engine's modeled points/s budget on the
/// first benchmark whose trace it supports. Calibration traces compile
/// through the **process-wide** cache so a run-private cache's hit-rate
/// accounting never sees them.
fn calibrate(engine: &dyn Engine, benchmarks: &[Benchmark], scale: f64) -> f64 {
    for bench in benchmarks {
        let key = TraceKey::new(bench.notation, CALIBRATION_SEED, scale);
        let trace = match crate::cache::global()
            .try_get_or_build(&key, || try_benchmark_trace_at(bench, CALIBRATION_SEED, scale))
        {
            Ok(trace) => trace,
            Err(_) => continue,
        };
        if engine.supports(&trace) {
            return engine.capacity_points_per_s(&trace);
        }
    }
    0.0
}

/// Runs one admitted request on its shard's engine (the worker half of
/// the pipeline, unchanged from the batch path): build or fetch the
/// trace through the run-private cache, skip unsupported combinations,
/// evaluate the rest.
fn execute(
    engine: &dyn Engine,
    engine_idx: usize,
    benchmarks: &[Benchmark],
    cache: &TraceCache,
    scale: f64,
    request: &Request,
    queue_latency: Duration,
) -> Completion {
    let built = match benchmarks.get(request.benchmark) {
        None => Err(format!(
            "request names unknown benchmark index {} ({} benchmarks served)",
            request.benchmark,
            benchmarks.len()
        )),
        Some(bench) => {
            let key = TraceKey::new(bench.notation, request.seed, scale);
            cache
                .try_get_or_build(&key, || try_benchmark_trace_at(bench, request.seed, scale))
                .map_err(|e| e.to_string())
        }
    };
    let (points, outcome) = match built {
        Err(msg) => (0, Outcome::Failed(msg)),
        Ok(trace) if engine.supports(&trace) => {
            let report = engine.evaluate(&trace);
            debug_assert!(report.is_physical());
            (trace.input_points() as u64, Outcome::Done)
        }
        Ok(_) => (0, Outcome::Unsupported),
    };
    Completion { engine: engine_idx, queue_latency, points, outcome }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pointacc::EngineReport;
    use pointacc_nn::{zoo, NetworkTrace};
    use pointacc_sim::PicoJoules;

    /// A deterministic engine with a fixed simulated latency — cheap
    /// enough for admission-logic tests that don't care about the
    /// hardware model.
    struct ConstEngine {
        name: &'static str,
        total_s: f64,
    }

    impl Engine for ConstEngine {
        fn name(&self) -> String {
            self.name.into()
        }
        fn evaluate(&self, trace: &NetworkTrace) -> EngineReport {
            EngineReport {
                engine: self.name(),
                network: trace.network.clone(),
                mapping: pointacc::Seconds(0.0),
                matmul: pointacc::Seconds(self.total_s),
                datamove: pointacc::Seconds(0.0),
                total: pointacc::Seconds(self.total_s),
                energy: PicoJoules::new(1.0),
                dram_bytes: 0,
            }
        }
    }

    fn pointnet_only() -> Vec<Benchmark> {
        zoo::benchmarks().into_iter().filter(|b| b.notation == "PointNet").collect()
    }

    #[test]
    fn sim_clock_advances_only_on_demand() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(Duration::from_millis(250));
        clock.advance(Duration::from_millis(250));
        assert_eq!(clock.now(), Duration::from_millis(500));
    }

    #[test]
    fn paced_iterator_spaces_arrivals() {
        let clock = SimClock::new();
        let step = Duration::from_millis(10);
        let reqs: Vec<(Request, Duration)> =
            paced((0..4).map(|i| Request::new(0, i)), &clock, step)
                .map(|r| (r, clock.now()))
                .collect();
        let arrivals: Vec<Duration> = reqs.iter().map(|(_, t)| *t).collect();
        assert_eq!(arrivals, (0..4).map(|k| step * k).collect::<Vec<_>>());
        // Exhausting the stream (collect polls one extra `next`) must
        // not advance the clock past the last arrival: a paced run's
        // elapsed time is (n-1) interarrivals, not n.
        assert_eq!(clock.now(), step * 3);
    }

    #[test]
    fn calibration_derives_capacity_from_simulated_throughput() {
        let engine = ConstEngine { name: "Const", total_s: 0.5 };
        let benchmarks = pointnet_only();
        let engines = [&engine as &dyn Engine];
        let frontend = Frontend::new(
            &engines,
            &benchmarks,
            FrontendOptions { scale: 0.02, ..FrontendOptions::default() },
        );
        // 64 modeled points per 0.5 simulated seconds.
        let points = modeled_points(&benchmarks[0], 0.02) as f64;
        assert!((frontend.capacities()[0] - points / 0.5).abs() < 1e-9);
    }

    #[test]
    fn fluid_backlog_drains_with_clock_time() {
        let mut shard = ShardModel { capacity: 100.0, backlog: 50.0, as_of: Duration::ZERO };
        shard.drain_to(Duration::from_millis(200));
        assert!((shard.backlog - 30.0).abs() < 1e-9, "50 - 0.2×100 = 30");
        shard.drain_to(Duration::from_secs(10));
        assert_eq!(shard.backlog, 0.0, "backlog never goes negative");
        assert_eq!(shard.wait_s(), 0.0);
    }

    #[test]
    fn zero_capacity_shards_report_infinite_wait() {
        let shard = ShardModel { capacity: 0.0, backlog: 0.0, as_of: Duration::ZERO };
        assert!(shard.wait_s().is_infinite());
        assert!(shard.completion_s(64.0).is_infinite());
        assert_eq!(secs_to_duration(f64::INFINITY), Duration::MAX);
        assert_eq!(secs_to_duration(1.5), Duration::from_millis(1500));
    }
}
