//! Cycle and time accounting newtypes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// A count of clock cycles.
///
/// Newtype so that cycle counts cannot be silently mixed with byte counts
/// or nanoseconds (C-NEWTYPE).
///
/// # Examples
///
/// ```
/// use pointacc_sim::Cycles;
/// let total: Cycles = [Cycles::new(3), Cycles::new(4)].into_iter().sum();
/// assert_eq!(total.get(), 7);
/// assert!((total.to_seconds(1.0e9) - 7.0e-9).abs() < 1e-18);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Wraps a raw count.
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// The raw count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Converts to wall-clock seconds at `freq_hz`.
    pub fn to_seconds(self, freq_hz: f64) -> f64 {
        self.0 as f64 / freq_hz
    }

    /// Converts to milliseconds at `freq_hz`.
    pub fn to_millis(self, freq_hz: f64) -> f64 {
        self.to_seconds(freq_hz) * 1e3
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two counts (for overlap models where units run
    /// concurrently).
    #[must_use]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// Energy in picojoules.
///
/// # Examples
///
/// ```
/// use pointacc_sim::PicoJoules;
/// let e = PicoJoules::new(2.5e6);
/// assert!((e.to_millijoules() - 2.5e-3).abs() < 1e-12);
/// ```
#[derive(Copy, Clone, PartialEq, PartialOrd, Debug, Default)]
pub struct PicoJoules(f64);

impl PicoJoules {
    /// Zero energy.
    pub const ZERO: PicoJoules = PicoJoules(0.0);

    /// Wraps a raw pJ value.
    pub const fn new(pj: f64) -> Self {
        PicoJoules(pj)
    }

    /// Converts from joules.
    pub fn from_joules(j: f64) -> Self {
        PicoJoules(j * 1e12)
    }

    /// The raw pJ value.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Converts to millijoules.
    pub fn to_millijoules(self) -> f64 {
        self.0 * 1e-9
    }

    /// Converts to joules.
    pub fn to_joules(self) -> f64 {
        self.0 * 1e-12
    }
}

impl Add for PicoJoules {
    type Output = PicoJoules;
    fn add(self, rhs: PicoJoules) -> PicoJoules {
        PicoJoules(self.0 + rhs.0)
    }
}

impl AddAssign for PicoJoules {
    fn add_assign(&mut self, rhs: PicoJoules) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for PicoJoules {
    type Output = PicoJoules;
    fn mul(self, rhs: f64) -> PicoJoules {
        PicoJoules(self.0 * rhs)
    }
}

impl Sum for PicoJoules {
    fn sum<I: Iterator<Item = PicoJoules>>(iter: I) -> PicoJoules {
        iter.fold(PicoJoules::ZERO, Add::add)
    }
}

impl fmt::Display for PicoJoules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} pJ", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(10);
        let b = Cycles::new(3);
        assert_eq!((a + b).get(), 13);
        assert_eq!(a.max(b), a);
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        assert_eq!((b * 4).get(), 12);
    }

    #[test]
    fn cycles_to_time() {
        let c = Cycles::new(1_000_000);
        assert!((c.to_millis(1e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_arithmetic() {
        let mut e = PicoJoules::new(1.0);
        e += PicoJoules::new(2.0);
        assert!((e.get() - 3.0).abs() < 1e-12);
        assert!(((e * 2.0).get() - 6.0).abs() < 1e-12);
    }
}
