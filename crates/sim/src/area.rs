//! 40 nm silicon-area model.
//!
//! Used for Table 3 (PointAcc 15.7 mm², PointAcc.Edge 3.9 mm²) and the
//! §4.1.1 claim that the merge-sort kernel-mapping engine is ~14× smaller
//! than a hash-table engine of the same parallelism (whose crossbar grows
//! O(N²)).

use crate::{BitonicMerger, BitonicSorter, SramSpec};

/// Area of one 16-bit MAC processing element with local registers, mm².
pub const PE_AREA_MM2: f64 = 0.0029;

/// Area of one 96-bit compare-exchange element, mm².
pub const COMPARATOR_AREA_MM2: f64 = 0.0010;

/// Area of one crossbar crosspoint (mux + wiring share) in a parallel
/// hash-table engine, mm². The engine needs an N×N crossbar for parallel
/// random SRAM reads (paper §4.1.1), so its area grows quadratically.
pub const CROSSPOINT_AREA_MM2: f64 = 0.00022;

/// Fixed overhead (control, NoC, I/O ring) as a fraction of logic+SRAM.
pub const OVERHEAD_FRACTION: f64 = 0.12;

/// Area of a systolic array of `rows × cols` PEs.
pub fn systolic_area_mm2(rows: usize, cols: usize) -> f64 {
    (rows * cols) as f64 * PE_AREA_MM2
}

/// Area of the MPU's ranking datapath at merger width `n`: two N/2
/// bitonic sorters plus an N merger plus the intersection detector
/// (log N comparator stages over N lanes).
pub fn mpu_area_mm2(n: usize) -> f64 {
    let merger = BitonicMerger::new(n).comparators();
    let sorters = 2 * BitonicSorter::new((n / 2).max(2)).comparators();
    let detector = n * n.trailing_zeros() as usize; // shift/zero-count lanes
    (merger + sorters + detector) as f64 * COMPARATOR_AREA_MM2
}

/// Area of just the merge-sort kernel-mapping engine: the N merger plus
/// the intersection detector (the sorters are shared MPU infrastructure
/// that both designs would keep for FPS/top-k). This is the "mergesort-
/// based solution" side of the paper's §4.1.1 area comparison.
pub fn mergesort_engine_area_mm2(n: usize) -> f64 {
    let merger = BitonicMerger::new(n).comparators();
    let detector = n * n.trailing_zeros() as usize;
    (merger + detector) as f64 * COMPARATOR_AREA_MM2
}

/// Area of a parallel hash-table kernel-mapping engine with `n` query
/// lanes: n hash/compare lanes, the on-chip table SRAM (built on the fly,
/// sized for the working set — megabytes for 10⁵-point clouds at load
/// factor 2, paper §4.1.1), and the N×N crossbar needed for parallel
/// random reads, which grows O(N²).
pub fn hash_engine_area_mm2(n: usize, table_bytes: usize) -> f64 {
    let lanes = n as f64 * COMPARATOR_AREA_MM2 * 2.0;
    let crossbar = (n * n) as f64 * CROSSPOINT_AREA_MM2;
    let sram = SramSpec::new(table_bytes, 16).area_mm2();
    lanes + crossbar + sram
}

/// Hash-table bytes needed for `n_points` at load factor 2 with 32-byte
/// entries (12 B coordinate key padded for banked access, 4 B index,
/// occupancy/chaining metadata).
pub fn hash_table_bytes(n_points: usize) -> usize {
    n_points * 2 * 32
}

/// Total accelerator area: systolic array + SRAM buffers + MPU datapath,
/// plus the fixed overhead fraction.
pub fn accelerator_area_mm2(
    pe_rows: usize,
    pe_cols: usize,
    sram_bytes: usize,
    merger_width: usize,
) -> f64 {
    let logic = systolic_area_mm2(pe_rows, pe_cols) + mpu_area_mm2(merger_width);
    let sram = SramSpec::new(sram_bytes, 16).area_mm2()
        * (sram_bytes as f64 / 16_384.0).max(1.0).ln().max(1.0);
    (logic + sram) * (1.0 + OVERHEAD_FRACTION)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pointacc_area_near_paper() {
        // Paper Table 3: 15.7 mm² for 64×64 PEs + 776 KB SRAM @ 40 nm.
        let a = accelerator_area_mm2(64, 64, 776 * 1024, 64);
        assert!(a > 10.0 && a < 22.0, "full area {a} should be near 15.7 mm²");
    }

    #[test]
    fn edge_pointacc_area_near_paper() {
        // Paper Table 3: 3.9 mm² for 16×16 PEs + 274 KB SRAM.
        let a = accelerator_area_mm2(16, 16, 274 * 1024, 16);
        assert!(a > 1.0 && a < 6.0, "edge area {a} should be near 3.9 mm²");
    }

    #[test]
    fn hash_engine_dwarfs_mergesort_engine() {
        // §4.1.1: "saving up to 14× area compared to the hash-table-based
        // design with the same parallelism". Working set: a 10⁵-point
        // outdoor scan.
        let merge = mergesort_engine_area_mm2(64);
        let hash = hash_engine_area_mm2(64, hash_table_bytes(100_000));
        let ratio = hash / merge;
        assert!(
            ratio > 8.0 && ratio < 30.0,
            "hash/mergesort area ratio should be near 14×, got {ratio}"
        );
    }

    #[test]
    fn crossbar_grows_quadratically() {
        let a16 = hash_engine_area_mm2(16, 64 * 1024);
        let a64 = hash_engine_area_mm2(64, 64 * 1024);
        assert!(a64 / a16 > 5.0);
    }
}
