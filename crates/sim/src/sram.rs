//! On-chip SRAM energy and area model (CACTI substitute).
//!
//! The paper obtains SRAM energy with CACTI [25] at the 40 nm node. This
//! module reproduces CACTI's role: given a buffer's capacity and word
//! width, produce per-access read/write energy and macro area. Constants
//! follow published 40 nm SRAM survey data (read energy grows roughly with
//! the square root of capacity for a fixed word width).

use crate::PicoJoules;

/// Specification of one on-chip SRAM buffer.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct SramSpec {
    /// Capacity in bytes.
    pub bytes: usize,
    /// Word (port) width in bytes per access.
    pub word_bytes: usize,
}

impl SramSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if capacity or word width is zero.
    pub fn new(bytes: usize, word_bytes: usize) -> Self {
        assert!(bytes > 0 && word_bytes > 0, "SRAM spec must be nonzero");
        SramSpec { bytes, word_bytes }
    }

    /// Energy of one read access.
    ///
    /// 40 nm fit: `E_read ≈ (0.08 · sqrt(KB) + 0.10) pJ/byte` of word
    /// width. An 8 KB buffer reads at ≈ 0.33 pJ/B; a 256 KB buffer at
    /// ≈ 1.4 pJ/B.
    pub fn read_energy(self) -> PicoJoules {
        let kb = self.bytes as f64 / 1024.0;
        let pj_per_byte = 0.08 * kb.sqrt() + 0.10;
        PicoJoules::new(pj_per_byte * self.word_bytes as f64)
    }

    /// Energy of one write access (≈ 1.2× read at this node).
    pub fn write_energy(self) -> PicoJoules {
        self.read_energy() * 1.2
    }

    /// Macro area in mm², 40 nm: ≈ 0.015 mm² per 8 KB plus periphery.
    pub fn area_mm2(self) -> f64 {
        let kb = self.bytes as f64 / 1024.0;
        0.015 * (kb / 8.0) + 0.002
    }
}

/// An accounting SRAM: counts accesses against a spec.
///
/// # Examples
///
/// ```
/// use pointacc_sim::{SramCounter, SramSpec};
/// let mut s = SramCounter::new(SramSpec::new(64 * 1024, 16));
/// s.record_reads(100);
/// assert!(s.energy().get() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct SramCounter {
    spec: SramSpec,
    reads: u64,
    writes: u64,
}

impl SramCounter {
    /// New counter over a spec.
    pub fn new(spec: SramSpec) -> Self {
        SramCounter { spec, reads: 0, writes: 0 }
    }

    /// The underlying spec.
    pub fn spec(&self) -> SramSpec {
        self.spec
    }

    /// Records `n` word reads.
    pub fn record_reads(&mut self, n: u64) {
        self.reads += n;
    }

    /// Records `n` word writes.
    pub fn record_writes(&mut self, n: u64) {
        self.writes += n;
    }

    /// Read count.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Write count.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total access energy.
    pub fn energy(&self) -> PicoJoules {
        self.spec.read_energy() * self.reads as f64 + self.spec.write_energy() * self.writes as f64
    }

    /// Clears the counters.
    pub fn reset(&mut self) {
        self.reads = 0;
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_sram_costs_more_per_access() {
        let small = SramSpec::new(8 * 1024, 16);
        let big = SramSpec::new(256 * 1024, 16);
        assert!(big.read_energy().get() > small.read_energy().get());
        assert!(big.area_mm2() > small.area_mm2());
    }

    #[test]
    fn write_costs_more_than_read() {
        let s = SramSpec::new(32 * 1024, 8);
        assert!(s.write_energy().get() > s.read_energy().get());
    }

    #[test]
    fn counter_accumulates() {
        let mut c = SramCounter::new(SramSpec::new(8 * 1024, 4));
        c.record_reads(10);
        c.record_writes(5);
        let e = c.energy().get();
        assert!(e > 0.0);
        c.reset();
        assert_eq!(c.energy().get(), 0.0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_spec_rejected() {
        let _ = SramSpec::new(0, 4);
    }
}
