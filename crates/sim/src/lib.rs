//! Hardware-modeling substrates for the PointAcc reproduction.
//!
//! The paper's evaluation stack is: a cycle-accurate simulator verified
//! against the Verilog RTL, Ramulator for DRAM, CACTI for SRAM energy,
//! and Cadence Genus synthesis at TSMC 40 nm for area/power. This crate
//! rebuilds that stack's *modeling layer*:
//!
//! - [`Cycles`] / [`PicoJoules`] — accounting newtypes.
//! - [`DramChannel`] / [`DramKind`] — bandwidth/latency/energy DRAM model
//!   (Ramulator substitute).
//! - [`SramSpec`] / [`SramCounter`] — capacity-scaled SRAM energy/area
//!   (CACTI substitute).
//! - [`EnergyTable`] — 40 nm per-operation logic energies.
//! - [`SystolicArray`] — weight-stationary systolic timing + functional
//!   model (the Matrix Unit's core).
//! - [`BitonicSorter`] / [`BitonicMerger`] / [`SortItem`] — sorting-network
//!   primitives the Mapping Unit is built from.
//! - [`area`] — 40 nm silicon area model, including the hash-table-engine
//!   comparison of paper §4.1.1.
//!
//! # Example
//!
//! ```
//! use pointacc_sim::{DramChannel, DramKind, SystolicArray};
//!
//! let arr = SystolicArray::new(64, 64);
//! let cycles = arr.matmul_cycles(100_000, 64, 64);
//!
//! let mut dram = DramChannel::new(DramKind::Hbm2);
//! dram.read(100_000 * 64 * 2); // fp16 activations
//! let overlapped = cycles.max(dram.transfer_cycles(1.0e9));
//! assert!(overlapped >= cycles);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod area;
mod cycles;
mod dram;
mod energy;
mod sorter;
mod sram;
mod systolic;

pub use cycles::{Cycles, PicoJoules};
pub use dram::{DramChannel, DramKind};
pub use energy::EnergyTable;
pub use sorter::{BitonicMerger, BitonicSorter, SortItem};
pub use sram::{SramCounter, SramSpec};
pub use systolic::SystolicArray;
