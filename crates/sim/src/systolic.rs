//! Weight-stationary systolic array model (the Matrix Unit's core).
//!
//! PointAcc's MXU parallelizes input channels across PE rows and output
//! channels across PE columns (paper §4.3), so one output point's features
//! are produced per cycle and no on-chip scatter crossbar is needed. This
//! module provides both a functional systolic simulation (used by tests to
//! show the dataflow computes exact matrix products) and closed-form cycle
//! counts (used by the accelerator model).

use crate::Cycles;
use pointacc_geom::FeatureMatrix;

/// A `rows × cols` weight-stationary systolic array.
///
/// `rows` spans the input-channel (reduction) dimension, `cols` the
/// output-channel dimension.
///
/// # Examples
///
/// ```
/// use pointacc_sim::SystolicArray;
/// let arr = SystolicArray::new(16, 16);
/// let c = arr.matmul_cycles(1000, 64, 64);
/// assert!(c.get() > 1000 * (64 / 16) * (64 / 16));
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SystolicArray {
    rows: usize,
    cols: usize,
}

impl SystolicArray {
    /// Creates an array.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be nonzero");
        SystolicArray { rows, cols }
    }

    /// PE rows (input-channel parallelism).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// PE columns (output-channel parallelism).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total processing elements.
    pub fn pes(&self) -> usize {
        self.rows * self.cols
    }

    /// Peak throughput in MACs per cycle.
    pub fn peak_macs_per_cycle(&self) -> u64 {
        (self.rows * self.cols) as u64
    }

    /// Cycle count for an `m × k` by `k × n` matrix multiply in
    /// weight-stationary mode: the weight tile (`rows × cols` slice of the
    /// `k × n` weight matrix) is pinned while all `m` activations stream
    /// through, then the next tile loads. Per tile: `m` streaming cycles
    /// plus `rows + cols` fill/drain plus `rows` weight-load cycles
    /// (double-buffered weights would hide the load; we charge it to stay
    /// conservative).
    pub fn matmul_cycles(&self, m: usize, k: usize, n: usize) -> Cycles {
        if m == 0 || k == 0 || n == 0 {
            return Cycles::ZERO;
        }
        let tiles_k = k.div_ceil(self.rows) as u64;
        let tiles_n = n.div_ceil(self.cols) as u64;
        let per_tile = m as u64 + (self.rows + self.cols) as u64 + self.rows as u64;
        Cycles::new(tiles_k * tiles_n * per_tile)
    }

    /// Actual MAC count of an `m × k × n` matmul (utilization numerator).
    pub fn matmul_macs(&self, m: usize, k: usize, n: usize) -> u64 {
        (m as u64) * (k as u64) * (n as u64)
    }

    /// Utilization of a matmul: useful MACs over peak MACs for the cycles
    /// taken.
    pub fn utilization(&self, m: usize, k: usize, n: usize) -> f64 {
        let cyc = self.matmul_cycles(m, k, n).get();
        if cyc == 0 {
            return 0.0;
        }
        self.matmul_macs(m, k, n) as f64 / (cyc * self.peak_macs_per_cycle()) as f64
    }

    /// Functional weight-stationary systolic execution: computes
    /// `a (m×k) * b (k×n)` by explicitly iterating weight tiles and
    /// streaming rows, accumulating partial sums across k-tiles — the
    /// exact dataflow of the hardware. Produces the same result as a
    /// naive matmul (verified by tests), just slower; use it for
    /// correctness checks, not throughput.
    pub fn matmul_functional(&self, a: &FeatureMatrix, b: &FeatureMatrix) -> FeatureMatrix {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let m = a.rows();
        let k = a.cols();
        let n = b.cols();
        let mut out = FeatureMatrix::zeros(m, n);
        // Output-stationary across tiles: psums stay in `out` while the
        // weight tile (kt, nt) changes in the inner loops.
        for kt in (0..k).step_by(self.rows) {
            let k_hi = (kt + self.rows).min(k);
            for nt in (0..n).step_by(self.cols) {
                let n_hi = (nt + self.cols).min(n);
                // Weight tile pinned; stream every activation row.
                for r in 0..m {
                    let arow = a.row(r);
                    for j in nt..n_hi {
                        let mut acc = 0.0f32;
                        for (i, &av) in arow.iter().enumerate().take(k_hi).skip(kt) {
                            acc += av * b.row(i)[j];
                        }
                        out.row_mut(r)[j] += acc;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_matches_naive() {
        let a = FeatureMatrix::from_fn(7, 9, |r, c| (r as f32 - 2.0) * 0.3 + c as f32 * 0.1);
        let b = FeatureMatrix::from_fn(9, 5, |r, c| (r as f32 * 0.2) - (c as f32 * 0.05));
        let arr = SystolicArray::new(4, 4);
        let got = arr.matmul_functional(&a, &b);
        let want = a.matmul(&b);
        assert!(got.max_abs_diff(&want).unwrap() < 1e-4);
    }

    #[test]
    fn cycles_scale_with_tiles() {
        let arr = SystolicArray::new(16, 16);
        let one_tile = arr.matmul_cycles(100, 16, 16);
        let four_tiles = arr.matmul_cycles(100, 32, 32);
        assert_eq!(four_tiles.get(), 4 * one_tile.get());
    }

    #[test]
    fn utilization_improves_with_m() {
        let arr = SystolicArray::new(16, 16);
        assert!(arr.utilization(1000, 16, 16) > arr.utilization(10, 16, 16));
        assert!(arr.utilization(100_000, 16, 16) > 0.95);
    }

    #[test]
    fn empty_matmul_is_free() {
        let arr = SystolicArray::new(8, 8);
        assert_eq!(arr.matmul_cycles(0, 64, 64), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dims_rejected() {
        let _ = SystolicArray::new(0, 4);
    }
}
