//! Bitonic sorting-network primitives for the Mapping Unit.
//!
//! The MPU is built from two N/2-input bitonic sorters (stage ST) feeding
//! an N-input bitonic merger (stage MS), paper Fig. 7. This module models
//! one *combinational pass* of those networks: functional output,
//! comparator-evaluation counts (for energy) and comparator totals (for
//! area). The streaming machinery that handles arbitrary-length inputs
//! (forwarding loops, sliding windows) lives in `pointacc::mpu`, built on
//! these primitives.

/// One element flowing through a sorting network: a 96-bit-class
/// comparator key plus an opaque payload (the paper's
/// `ComparatorStruct`).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SortItem {
    /// Comparator key (packed coordinates or distance).
    pub key: u128,
    /// Payload carried alongside (point index, source tag, …).
    pub payload: u64,
}

impl SortItem {
    /// Creates an item.
    pub const fn new(key: u128, payload: u64) -> Self {
        SortItem { key, payload }
    }
}

/// An N-input bitonic merger: merges two sorted N/2-element runs per pass.
///
/// # Examples
///
/// ```
/// use pointacc_sim::{BitonicMerger, SortItem};
/// let m = BitonicMerger::new(8);
/// let a: Vec<_> = [1u128, 3, 5, 7].iter().map(|&k| SortItem::new(k, 0)).collect();
/// let b: Vec<_> = [2u128, 4, 6, 8].iter().map(|&k| SortItem::new(k, 1)).collect();
/// let merged = m.merge(&a, &b);
/// assert!(merged.windows(2).all(|w| w[0].key <= w[1].key));
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BitonicMerger {
    n: usize,
}

impl BitonicMerger {
    /// Creates an N-input merger.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two and at least 2.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2 && n.is_power_of_two(), "merger width must be a power of two ≥ 2");
        BitonicMerger { n }
    }

    /// Merger width N.
    pub fn width(&self) -> usize {
        self.n
    }

    /// Pipeline depth (comparator stages): `log2(N)`.
    pub fn stages(&self) -> u32 {
        self.n.trailing_zeros()
    }

    /// Comparators in the network: `N/2 · log2(N)`.
    pub fn comparators(&self) -> usize {
        self.n / 2 * self.stages() as usize
    }

    /// Comparator evaluations per pass (equals [`Self::comparators`]; the
    /// network is fully exercised each cycle).
    pub fn evals_per_pass(&self) -> u64 {
        self.comparators() as u64
    }

    /// Functionally merges two sorted runs of exactly N/2 items into one
    /// sorted run of N. This models one combinational pass of the
    /// hardware merger.
    ///
    /// # Panics
    ///
    /// Panics if either input is not exactly N/2 long, or (debug builds)
    /// not sorted.
    pub fn merge(&self, a: &[SortItem], b: &[SortItem]) -> Vec<SortItem> {
        let h = self.n / 2;
        assert_eq!(a.len(), h, "first run must be N/2 items");
        assert_eq!(b.len(), h, "second run must be N/2 items");
        debug_assert!(a.windows(2).all(|w| w[0].key <= w[1].key), "run A not sorted");
        debug_assert!(b.windows(2).all(|w| w[0].key <= w[1].key), "run B not sorted");
        // Ascending ++ descending forms a bitonic sequence.
        let mut v: Vec<SortItem> = Vec::with_capacity(self.n);
        v.extend_from_slice(a);
        v.extend(b.iter().rev().copied());
        bitonic_merge_in_place(&mut v);
        v
    }
}

/// An N-input bitonic sorter (full sorting network over unsorted input).
///
/// Stage ST of the MPU contains two of these at width N/2.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BitonicSorter {
    n: usize,
}

impl BitonicSorter {
    /// Creates an N-input sorter.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two and at least 2.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2 && n.is_power_of_two(), "sorter width must be a power of two ≥ 2");
        BitonicSorter { n }
    }

    /// Sorter width N.
    pub fn width(&self) -> usize {
        self.n
    }

    /// Comparator stages: `log2(N)·(log2(N)+1)/2`.
    pub fn stages(&self) -> u32 {
        let l = self.n.trailing_zeros();
        l * (l + 1) / 2
    }

    /// Comparators in the network: `N/2` per stage.
    pub fn comparators(&self) -> usize {
        self.n / 2 * self.stages() as usize
    }

    /// Functionally sorts exactly N items (one combinational pass).
    ///
    /// # Panics
    ///
    /// Panics if `items.len() != N`.
    pub fn sort(&self, items: &[SortItem]) -> Vec<SortItem> {
        assert_eq!(items.len(), self.n, "sorter takes exactly N items");
        let mut v = items.to_vec();
        // The network computes a fixed permutation; a comparison sort
        // with the same key order is functionally identical.
        v.sort_by_key(|i| i.key);
        v
    }
}

/// Recursive bitonic merge of a bitonic sequence (functional model of the
/// merger's comparator stages).
fn bitonic_merge_in_place(v: &mut [SortItem]) {
    let n = v.len();
    if n <= 1 {
        return;
    }
    let h = n / 2;
    for i in 0..h {
        if v[i].key > v[i + h].key {
            v.swap(i, i + h);
        }
    }
    let (lo, hi) = v.split_at_mut(h);
    bitonic_merge_in_place(lo);
    bitonic_merge_in_place(hi);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(keys: &[u128]) -> Vec<SortItem> {
        keys.iter().enumerate().map(|(i, &k)| SortItem::new(k, i as u64)).collect()
    }

    #[test]
    fn merge_interleaved_runs() {
        let m = BitonicMerger::new(8);
        let out = m.merge(&items(&[0, 2, 4, 6]), &items(&[1, 3, 5, 7]));
        let keys: Vec<u128> = out.iter().map(|i| i.key).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn merge_with_duplicates_keeps_both() {
        let m = BitonicMerger::new(4);
        let out = m.merge(&items(&[5, 5]), &items(&[5, 9]));
        let keys: Vec<u128> = out.iter().map(|i| i.key).collect();
        assert_eq!(keys, vec![5, 5, 5, 9]);
    }

    #[test]
    fn merger_structure_counts() {
        let m = BitonicMerger::new(64);
        assert_eq!(m.stages(), 6);
        assert_eq!(m.comparators(), 192);
    }

    #[test]
    fn sorter_structure_counts() {
        let s = BitonicSorter::new(32);
        assert_eq!(s.stages(), 15);
        assert_eq!(s.comparators(), 240);
    }

    #[test]
    fn sorter_sorts() {
        let s = BitonicSorter::new(8);
        let out = s.sort(&items(&[5, 1, 9, 0, 3, 3, 7, 2]));
        let keys: Vec<u128> = out.iter().map(|i| i.key).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 3, 5, 7, 9]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = BitonicMerger::new(6);
    }

    #[test]
    #[should_panic(expected = "N/2 items")]
    fn wrong_run_length_rejected() {
        let m = BitonicMerger::new(8);
        let _ = m.merge(&items(&[1, 2, 3]), &items(&[4, 5, 6]));
    }
}
