//! Off-chip DRAM channel model (Ramulator substitute).
//!
//! The paper integrates a cycle-accurate simulator with Ramulator [20] to
//! model DRAM. Every experiment consumes only two DRAM-derived numbers —
//! sustained transfer time and energy — so this substitute models each
//! channel as sustained bandwidth + per-burst latency overhead + pJ/byte,
//! parameterized per the memory types of Table 3.

use crate::{Cycles, PicoJoules};

/// The DRAM technologies of paper Table 3.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum DramKind {
    /// HBM2 (full-size PointAcc): 256 GB/s.
    Hbm2,
    /// DDR4-2133 (PointAcc.Edge): 17 GB/s.
    Ddr4_2133,
    /// LPDDR3-1600 (Mesorasi): 12.8 GB/s.
    Lpddr3_1600,
}

impl DramKind {
    /// Peak bandwidth in bytes per second.
    pub fn bandwidth_bytes_per_sec(self) -> f64 {
        match self {
            DramKind::Hbm2 => 256.0e9,
            DramKind::Ddr4_2133 => 17.0e9,
            DramKind::Lpddr3_1600 => 12.8e9,
        }
    }

    /// Idle (first-word) access latency in nanoseconds.
    pub fn latency_ns(self) -> f64 {
        match self {
            DramKind::Hbm2 => 60.0,
            DramKind::Ddr4_2133 => 75.0,
            DramKind::Lpddr3_1600 => 90.0,
        }
    }

    /// Access energy in picojoules per byte (interface + array; typical
    /// published figures: HBM2 ≈ 4 pJ/bit, DDR4 ≈ 15 pJ/bit,
    /// LPDDR3 ≈ 12 pJ/bit).
    pub fn energy_pj_per_byte(self) -> f64 {
        match self {
            DramKind::Hbm2 => 32.0,
            DramKind::Ddr4_2133 => 120.0,
            DramKind::Lpddr3_1600 => 96.0,
        }
    }

    /// Burst (minimum transfer) size in bytes.
    pub fn burst_bytes(self) -> usize {
        match self {
            DramKind::Hbm2 => 32,
            DramKind::Ddr4_2133 => 64,
            DramKind::Lpddr3_1600 => 64,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DramKind::Hbm2 => "HBM2",
            DramKind::Ddr4_2133 => "DDR4-2133",
            DramKind::Lpddr3_1600 => "LPDDR3-1600",
        }
    }
}

/// An accounting DRAM channel: records read/write traffic and converts it
/// to time and energy.
///
/// # Examples
///
/// ```
/// use pointacc_sim::{DramChannel, DramKind};
/// let mut ch = DramChannel::new(DramKind::Hbm2);
/// ch.read(1 << 20);
/// assert_eq!(ch.bytes_read(), 1 << 20);
/// assert!(ch.transfer_seconds() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct DramChannel {
    kind: DramKind,
    bytes_read: u64,
    bytes_written: u64,
    requests: u64,
}

impl DramChannel {
    /// New idle channel of the given technology.
    pub fn new(kind: DramKind) -> Self {
        DramChannel { kind, bytes_read: 0, bytes_written: 0, requests: 0 }
    }

    /// The channel's technology.
    pub fn kind(&self) -> DramKind {
        self.kind
    }

    /// Records a read of `bytes` (rounded up to whole bursts).
    pub fn read(&mut self, bytes: u64) {
        let b = self.round_to_burst(bytes);
        self.bytes_read += b;
        self.requests += 1;
    }

    /// Records a write of `bytes` (rounded up to whole bursts).
    pub fn write(&mut self, bytes: u64) {
        let b = self.round_to_burst(bytes);
        self.bytes_written += b;
        self.requests += 1;
    }

    fn round_to_burst(&self, bytes: u64) -> u64 {
        let burst = self.kind.burst_bytes() as u64;
        bytes.div_ceil(burst) * burst
    }

    /// Total bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total traffic (read + write).
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Number of requests issued.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Sustained transfer time for all recorded traffic, seconds. A small
    /// per-request latency charge models row-activation overhead on
    /// scattered access patterns; streaming requests amortize it away.
    pub fn transfer_seconds(&self) -> f64 {
        let stream = self.total_bytes() as f64 / self.kind.bandwidth_bytes_per_sec();
        // Only a fraction of request latencies are exposed (bank-level
        // parallelism hides most); 5 % is a conservative exposure factor.
        let exposed = 0.05 * self.requests as f64 * self.kind.latency_ns() * 1e-9;
        stream + exposed
    }

    /// Transfer time in cycles at `freq_hz`.
    pub fn transfer_cycles(&self, freq_hz: f64) -> Cycles {
        Cycles::new((self.transfer_seconds() * freq_hz).ceil() as u64)
    }

    /// Energy of all recorded traffic.
    pub fn energy(&self) -> PicoJoules {
        PicoJoules::new(self.total_bytes() as f64 * self.kind.energy_pj_per_byte())
    }

    /// Resets the counters, keeping the technology.
    pub fn reset(&mut self) {
        self.bytes_read = 0;
        self.bytes_written = 0;
        self.requests = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_rounding() {
        let mut ch = DramChannel::new(DramKind::Ddr4_2133);
        ch.read(1);
        assert_eq!(ch.bytes_read(), 64);
        ch.write(65);
        assert_eq!(ch.bytes_written(), 128);
        assert_eq!(ch.requests(), 2);
    }

    #[test]
    fn hbm_is_faster_than_ddr4() {
        let mut h = DramChannel::new(DramKind::Hbm2);
        let mut d = DramChannel::new(DramKind::Ddr4_2133);
        h.read(1 << 24);
        d.read(1 << 24);
        assert!(h.transfer_seconds() < d.transfer_seconds());
        assert!(h.energy().get() < d.energy().get());
    }

    #[test]
    fn reset_clears_counters() {
        let mut ch = DramChannel::new(DramKind::Hbm2);
        ch.read(100);
        ch.reset();
        assert_eq!(ch.total_bytes(), 0);
        assert_eq!(ch.requests(), 0);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let mut ch = DramChannel::new(DramKind::Hbm2);
        ch.read(256_000_000); // 256 MB at 256 GB/s ≈ 1 ms
        let t = ch.transfer_seconds();
        assert!(t > 0.9e-3 && t < 1.5e-3, "got {t}");
    }
}
