//! 40 nm per-operation energy constants.
//!
//! PointAcc is synthesized in TSMC 40 nm; this table provides the
//! logic-level energies the simulator multiplies by event counts.
//! Values follow published per-op energy surveys at 45/40 nm (Horowitz,
//! ISSCC'14, scaled): a 16-bit multiply-accumulate ≈ 1 pJ, a 96-bit
//! compare-exchange ≈ 0.4 pJ, register/pipeline overheads folded in.

use crate::PicoJoules;

/// Per-operation energies at the 40 nm node.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct EnergyTable {
    /// One 16-bit multiply-accumulate in the systolic array, including
    /// local register movement, operand forwarding and its share of
    /// array control (system-level figure, calibrated to the paper's
    /// Fig. 21 energy breakdown).
    pub mac_pj: f64,
    /// One comparator (compare-exchange) evaluation in the sorting
    /// networks, key width ~96 bit.
    pub compare_pj: f64,
    /// One 32-bit ALU op (distance calculation, address generation).
    pub alu_pj: f64,
    /// One pipeline register transfer of a `ComparatorStruct`.
    pub reg_pj: f64,
}

impl EnergyTable {
    /// The 40 nm table used throughout the reproduction.
    pub const fn tsmc40() -> Self {
        EnergyTable { mac_pj: 3.2, compare_pj: 0.5, alu_pj: 0.3, reg_pj: 0.06 }
    }

    /// Energy of `n` MACs.
    pub fn macs(&self, n: u64) -> PicoJoules {
        PicoJoules::new(self.mac_pj * n as f64)
    }

    /// Energy of `n` comparator evaluations.
    pub fn compares(&self, n: u64) -> PicoJoules {
        PicoJoules::new(self.compare_pj * n as f64)
    }

    /// Energy of `n` ALU operations.
    pub fn alu_ops(&self, n: u64) -> PicoJoules {
        PicoJoules::new(self.alu_pj * n as f64)
    }
}

impl Default for EnergyTable {
    fn default() -> Self {
        Self::tsmc40()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_dominates_compare() {
        let t = EnergyTable::tsmc40();
        assert!(t.mac_pj > t.compare_pj);
        assert!((t.macs(1000).get() - 1000.0 * t.mac_pj).abs() < 1e-9);
    }
}
