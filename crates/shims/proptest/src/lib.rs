//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this in-tree shim
//! provides the slice of the `proptest` API the workspace's property
//! tests use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`, range / tuple / [`collection::vec`] / [`sample::select`]
//! strategies, [`ProptestConfig::with_cases`], and the `prop_assert*`
//! macros.
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! generated from a deterministic per-test seed (no persisted failure
//! regressions), and failing cases are **not shrunk** — the failing
//! values are reported as generated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic test RNG: the in-tree `rand` shim's generator seeded
/// per (test, case).
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange, SeedableRng};

    /// The RNG strategies draw from.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// RNG for one `(test, case)` pair.
        pub fn for_case(test_hash: u64, case: u32) -> Self {
            let seed = test_hash ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            TestRng { inner: StdRng::seed_from_u64(seed) }
        }

        /// Uniform sample from a half-open or inclusive numeric range.
        pub fn sample<T, R: SampleRange<T>>(&mut self, range: R) -> T {
            self.inner.gen_range(range)
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn next_index(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty index range");
            self.inner.gen_range(lo..hi)
        }
    }

    /// FNV-1a hash of a test name, used as the per-test seed base.
    pub fn hash_name(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Value-generation strategies (subset of `proptest::strategy`).
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.sample(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(f32, f64, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!((A / 0, B / 1), (A / 0, B / 1, C / 2), (A / 0, B / 1, C / 2, D / 3));
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with a length drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy with elements from `element` and length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.next_index(self.len.start, self.len.end.max(self.len.start + 1));
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (subset of `proptest::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy picking one of a fixed list of options.
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Strategy drawing uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics at generation time if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select over empty options");
            self.options[rng.next_index(0, self.options.len())].clone()
        }
    }
}

/// The macro and trait re-exports tests glob-import.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each argument is drawn from its strategy for
/// every generated case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let hash = $crate::test_runner::hash_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::test_runner::TestRng::for_case(hash, case);
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut proptest_rng); )+
                    $body
                }
            }
        )+
    };
    ( $($rest:tt)+ ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)+
        }
    };
}

/// `assert!` under proptest's name (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's name (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's name (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u64..100, 2..10)) {
            prop_assert!((2..10).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn tuples_and_maps_compose(
            p in (0i32..10, 0i32..10).prop_map(|(a, b)| a + b),
            choice in prop::sample::select(vec![1usize, 2, 4]),
        ) {
            prop_assert!((0..19).contains(&p));
            prop_assert!([1usize, 2, 4].contains(&choice));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case(9, 3);
        let mut b = crate::test_runner::TestRng::for_case(9, 3);
        assert_eq!(a.sample(0u64..u64::MAX), b.sample(0u64..u64::MAX));
    }
}
