//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this in-tree shim
//! provides the benchmark-definition surface the workspace's benches
//! use — [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], `iter`,
//! and the [`criterion_group!`] / [`criterion_main!`] macros — backed by
//! a plain wall-clock timing loop (median of samples) instead of
//! criterion's statistical machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::Instant;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    median_ns: f64,
}

impl Bencher {
    /// Times `f`, recording the median over the configured sample count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up, and a rough scale estimate to size the inner loop.
        let start = Instant::now();
        black_box(f());
        let once_ns = start.elapsed().as_nanos().max(1) as f64;
        // Target ~5 ms per sample so fast kernels are measurable.
        let inner = ((5e6 / once_ns).ceil() as usize).clamp(1, 10_000);
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..inner {
                black_box(f());
            }
            times.push(t.elapsed().as_nanos() as f64 / inner as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
        self.median_ns = times[times.len() / 2];
    }
}

/// A named set of related benchmarks sharing a sample count.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let mut b = Bencher { samples: self.sample_size, median_ns: 0.0 };
        f(&mut b);
        report(&self.name, &id.label, b.median_ns);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.sample_size, median_ns: 0.0 };
        f(&mut b, input);
        report(&self.name, &id.label, b.median_ns);
        self
    }

    /// Ends the group (parity with criterion's API; nothing to flush).
    pub fn finish(&mut self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

/// Entry point owning benchmark execution (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 10 }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.benchmark_group("").bench_function(name, f);
        self
    }
}

fn report(group: &str, label: &str, median_ns: f64) {
    let name = if group.is_empty() { label.to_string() } else { format!("{group}/{label}") };
    if median_ns >= 1e6 {
        println!("{name:<40} {:>10.3} ms/iter", median_ns / 1e6);
    } else if median_ns >= 1e3 {
        println!("{name:<40} {:>10.3} us/iter", median_ns / 1e3);
    } else {
        println!("{name:<40} {:>10.0} ns/iter", median_ns);
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut ran = 0u64;
        g.bench_function("count", |b| b.iter(|| ran = ran.wrapping_add(1)));
        g.finish();
        assert!(ran > 0);
    }
}
