//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this in-tree shim
//! provides the benchmark-definition surface the workspace's benches
//! use — [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], `iter`,
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — backed by a plain wall-clock timing loop (median of
//! samples) instead of criterion's statistical machinery.
//!
//! Beyond API parity, the shim adds
//! [`BenchmarkGroup::report_metric`]: a line for metrics the bench
//! computed itself (e.g. an engine's *simulated* points/s from
//! `EngineReport`), printed alongside the wall-clock rows. Wall-clock
//! numbers vary with the host; a reported metric derived from modeled
//! cycle costs is the stable signal perf PRs should watch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::Instant;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    median_ns: f64,
}

impl Bencher {
    /// Times `f`, recording the median over the configured sample count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up, and a rough scale estimate to size the inner loop.
        let start = Instant::now();
        black_box(f());
        let once_ns = start.elapsed().as_nanos().max(1) as f64;
        // Target ~5 ms per sample so fast kernels are measurable.
        let inner = ((5e6 / once_ns).ceil() as usize).clamp(1, 10_000);
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..inner {
                black_box(f());
            }
            times.push(t.elapsed().as_nanos() as f64 / inner as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
        self.median_ns = times[times.len() / 2];
    }
}

/// Work performed per benchmark iteration; when set on a group, each
/// wall-clock row also reports a derived rate (elements/s or bytes/s).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements (points, requests…).
    Elements(u64),
    /// Iterations move this many bytes.
    Bytes(u64),
}

/// A named set of related benchmarks sharing a sample count.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration work; subsequent benchmarks in the
    /// group report a wall-clock rate next to the time per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let mut b = Bencher { samples: self.sample_size, median_ns: 0.0 };
        f(&mut b);
        report(&self.name, &id.label, b.median_ns, self.throughput);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.sample_size, median_ns: 0.0 };
        f(&mut b, input);
        report(&self.name, &id.label, b.median_ns, self.throughput);
        self
    }

    /// Prints a metric the benchmark computed itself (no timing loop) —
    /// the channel for **stable, non-wall-clock** numbers such as an
    /// engine's simulated points/s: identical on every host, so perf
    /// regressions in the model show up as clean diffs.
    pub fn report_metric(
        &mut self,
        id: impl Into<BenchmarkId>,
        value: f64,
        unit: &str,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let name =
            if self.name.is_empty() { id.label } else { format!("{}/{}", self.name, id.label) };
        println!("{name:<40} {value:>14.1} {unit} (modeled)");
        self
    }

    /// Ends the group (parity with criterion's API; nothing to flush).
    pub fn finish(&mut self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

/// Entry point owning benchmark execution (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.benchmark_group("").bench_function(name, f);
        self
    }
}

fn report(group: &str, label: &str, median_ns: f64, throughput: Option<Throughput>) {
    let name = if group.is_empty() { label.to_string() } else { format!("{group}/{label}") };
    let time = if median_ns >= 1e6 {
        format!("{:>10.3} ms/iter", median_ns / 1e6)
    } else if median_ns >= 1e3 {
        format!("{:>10.3} us/iter", median_ns / 1e3)
    } else {
        format!("{median_ns:>10.0} ns/iter")
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.3} Melem/s", n as f64 / median_ns.max(1.0) * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.3} MiB/s", n as f64 / median_ns.max(1.0) * 1e9 / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{name:<40} {time}{rate}");
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut ran = 0u64;
        g.bench_function("count", |b| b.iter(|| ran = ran.wrapping_add(1)));
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn throughput_and_metric_reporting_do_not_disturb_timing() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("rates");
        g.sample_size(2).throughput(Throughput::Elements(1024));
        let mut ran = 0u64;
        g.bench_function("elems", |b| b.iter(|| ran = ran.wrapping_add(1)));
        g.throughput(Throughput::Bytes(4096));
        g.bench_function("bytes", |b| b.iter(|| ran = ran.wrapping_add(1)));
        // A self-computed metric needs no timing loop at all.
        g.report_metric(BenchmarkId::new("modeled", "engine"), 123456.7, "points/s");
        g.finish();
        assert!(ran > 0);
    }
}
