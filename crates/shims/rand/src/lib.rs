//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this in-tree shim
//! reimplements the (small) slice of the `rand` 0.8 API the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open and inclusive numeric ranges, and
//! [`Rng::gen_bool`]. The generator is SplitMix64 — deterministic,
//! seedable and statistically solid for synthetic-data generation (it is
//! **not** the ChaCha12 generator real `StdRng` wraps, and must not be
//! used for anything security-sensitive).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range type (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample using the raw 64-bit output `x`.
    fn sample_from(self, x: u64) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, x: u64) -> $t {
                assert!(self.start < self.end, "empty range");
                // 53 uniform mantissa bits in [0, 1).
                let u = (x >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start + (u as $t) * (self.end - self.start);
                // Narrowing to the target type can round up onto the
                // excluded bound; keep the half-open contract.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, x: u64) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let u = (x >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + (u as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, x: u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (x as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, x: u64) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (x as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Core RNG interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self.next_u64())
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(3..=5usize);
            assert!((3..=5).contains(&i));
            let s = rng.gen_range(-7i32..7);
            assert!((-7..7).contains(&s));
        }
    }

    #[test]
    fn half_open_ranges_exclude_the_upper_bound() {
        use super::SampleRange;
        // The largest raw draw must stay below the bound even after the
        // f64 → f32 narrowing rounds the unit sample up.
        let v: f32 = (-1.0f32..1.0).sample_from(u64::MAX);
        assert!(v < 1.0, "{v}");
        let w: f64 = (0.0f64..1.0).sample_from(u64::MAX);
        assert!(w < 1.0, "{w}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "{frac}");
    }
}
