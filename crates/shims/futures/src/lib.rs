//! Offline stand-in for the `futures` crate.
//!
//! The build environment has no registry access, so this in-tree shim
//! provides exactly the executor surface the workspace's async serving
//! front-end uses: [`executor::block_on`], a thread-parking waker
//! loop, plus [`future::yield_now`] as the cooperative-scheduling
//! primitive its tests exercise it with. Futures polled by `block_on`
//! may be woken from other threads — the waker unparks the blocked
//! thread — which is exactly what the serving front-end needs: worker
//! threads draining a bounded queue wake the async producer awaiting
//! queue capacity.
//!
//! No `unsafe` is required: the waker is built from [`std::task::Wake`]
//! and the root future is pinned with [`std::pin::pin!`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Single-future executors (subset of `futures::executor`).
pub mod executor {
    use std::future::Future;
    use std::pin::pin;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::task::{Context, Poll, Wake, Waker};
    use std::thread::Thread;

    /// Wakes the executor thread by unparking it. The `notified` flag
    /// closes the wake-before-park race: a wake that lands between a
    /// `Pending` poll and the park is consumed instead of lost.
    struct ThreadWaker {
        thread: Thread,
        notified: AtomicBool,
    }

    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.wake_by_ref();
        }

        fn wake_by_ref(self: &Arc<Self>) {
            self.notified.store(true, Ordering::SeqCst);
            self.thread.unpark();
        }
    }

    /// Runs `future` to completion on the calling thread, parking it
    /// while the future is pending and relying on the waker (callable
    /// from any thread) to resume polling.
    pub fn block_on<F: Future>(future: F) -> F::Output {
        let mut future = pin!(future);
        let state = Arc::new(ThreadWaker {
            thread: std::thread::current(),
            notified: AtomicBool::new(false),
        });
        let waker = Waker::from(state.clone());
        let mut cx = Context::from_waker(&waker);
        loop {
            match future.as_mut().poll(&mut cx) {
                Poll::Ready(out) => return out,
                Poll::Pending => {
                    // Sleep only if no wake arrived since the last poll;
                    // `park` can also wake spuriously, which just costs
                    // an extra poll.
                    while !state.notified.swap(false, Ordering::SeqCst) {
                        std::thread::park();
                    }
                }
            }
        }
    }
}

/// Future combinators (subset of `futures::future`).
pub mod future {
    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Poll};

    /// A future that yields once ([`Poll::Pending`] with an immediate
    /// self-wake) before completing — the cooperative-scheduling
    /// primitive async code uses to hand the executor back to other
    /// tasks.
    pub fn yield_now() -> YieldNow {
        YieldNow { yielded: false }
    }

    /// Future returned by [`yield_now`].
    pub struct YieldNow {
        yielded: bool,
    }

    impl Future for YieldNow {
        type Output = ();

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.yielded {
                Poll::Ready(())
            } else {
                self.yielded = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::executor::block_on;
    use super::future::yield_now;

    #[test]
    fn block_on_runs_a_ready_future() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn block_on_survives_yields() {
        let out = block_on(async {
            let mut acc = 0;
            for i in 0..5 {
                yield_now().await;
                acc += i;
            }
            acc
        });
        assert_eq!(out, 10);
    }

    #[test]
    fn cross_thread_wakes_unpark_the_executor() {
        use std::sync::mpsc;
        use std::task::Poll;
        // A future pending until another thread flips a channel: polls
        // return Pending and hand the waker to the producer thread.
        let (tx, rx) = mpsc::channel::<()>();
        let (waker_tx, waker_rx) = mpsc::channel::<std::task::Waker>();
        std::thread::spawn(move || {
            let waker = waker_rx.recv().expect("waker handed over");
            tx.send(()).expect("receiver alive");
            waker.wake();
        });
        let mut sent_waker = false;
        let out = block_on(std::future::poll_fn(move |cx| {
            if !sent_waker {
                waker_tx.send(cx.waker().clone()).expect("thread alive");
                sent_waker = true;
            }
            match rx.try_recv() {
                Ok(()) => Poll::Ready(7),
                Err(_) => Poll::Pending,
            }
        }));
        assert_eq!(out, 7);
    }
}
