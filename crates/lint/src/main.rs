//! `pointacc-lint` — repo-invariant linter for the PointAcc workspace.
//!
//! A dependency-free static checker enforcing the conventions the
//! workspace relies on for robustness and reproducibility. It walks
//! every `crates/*/src/**/*.rs` source (integration `tests/`,
//! `benches/` and `examples/` trees are out of scope), masks comments
//! and string/char literals with a line scanner — no external parser —
//! tracks `#[cfg(test)]` regions by brace depth, and reports
//! `file:line` diagnostics, exiting nonzero on any violation.
//!
//! # Rules
//!
//! | rule | invariant |
//! |------|-----------|
//! | `mutex-unwrap` | no `.unwrap()` / `.expect(` on `lock()` / `.wait(` results outside tests — use the poison-recovering helpers in `pointacc_bench::sync` (`PoisonError::into_inner`) |
//! | `env-var` | no `std::env::var` outside the designated read-once accessors in `crates/bench/src/lib.rs` |
//! | `wall-clock` | no `Instant::now` / `SystemTime::now` outside `Clock` impls and the criterion shim — timing must flow through injectable clocks |
//! | `unsafe` | no `unsafe` code anywhere (the workspace also denies it at the compiler level) |
//! | `panic` | no `panic!` / `todo!` / `unimplemented!` in non-test library code — surface typed errors instead |
//! | `thread-spawn` | no `thread::spawn` / `thread::scope` in non-test library code outside the `pointacc_geom::par` pool and the futures shim — the persistent pool is the single scheduler |
//! | `allow-attr` | no `#[allow(` without a `// lint:` justification on the same or preceding line |
//!
//! # Allowlisting
//!
//! A site that legitimately needs an exemption carries a justification
//! comment on the same or the immediately preceding line:
//!
//! ```text
//! // lint: allow(panic): documented panicking facade over try_run.
//! self.try_run(net, points).unwrap_or_else(|e| panic!("{e}"))
//! ```
//!
//! A few designated files are allowlisted wholesale for one rule each:
//! `crates/bench/src/lib.rs` for `env-var` (the read-once accessors),
//! `crates/shims/criterion/src/lib.rs` for `wall-clock` (the benchmark
//! shim is a timing source by definition), and `crates/geom/src/par.rs`
//! plus `crates/shims/futures/src/lib.rs` for `thread-spawn` (the
//! worker pool and the executor shim are the two legitimate thread
//! sources).

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    path: String,
    /// 1-based line number.
    line: usize,
    /// Rule identifier, usable in `// lint: allow(<rule>)`.
    rule: &'static str,
    /// What the rule enforces and how to comply.
    message: &'static str,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// Masks comments and string/char literals in `src` with spaces,
/// preserving line structure, so rule matching never fires inside a
/// doc comment or a test fixture string. Handles line comments, nested
/// block comments, normal/byte strings with escapes, raw strings with
/// any `#` count, and char literals (distinguished from lifetimes by
/// lookahead).
fn mask_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    let n = bytes.len();
    let blank = |out: &mut Vec<u8>, b: u8| out.push(if b == b'\n' { b'\n' } else { b' ' });
    while i < n {
        let b = bytes[i];
        // Line comment or block comment.
        if b == b'/' && i + 1 < n && bytes[i + 1] == b'/' {
            while i < n && bytes[i] != b'\n' {
                blank(&mut out, bytes[i]);
                i += 1;
            }
            continue;
        }
        if b == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
            let mut depth = 1;
            blank(&mut out, bytes[i]);
            blank(&mut out, bytes[i + 1]);
            i += 2;
            while i < n && depth > 0 {
                if bytes[i] == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                    depth += 1;
                    blank(&mut out, bytes[i]);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                    depth -= 1;
                    blank(&mut out, bytes[i]);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                } else {
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: r"..." / r#"..."# / br##"..."##.
        let raw_start = if b == b'r' {
            Some(i + 1)
        } else if b == b'b' && i + 1 < n && bytes[i + 1] == b'r' {
            Some(i + 2)
        } else {
            None
        };
        if let Some(mut j) = raw_start {
            // Only a raw string if `r` is not part of a wider identifier.
            let prev_ident =
                i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
            let mut hashes = 0;
            while j < n && bytes[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if !prev_ident && j < n && bytes[j] == b'"' {
                while i <= j {
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
                // Scan to the closing quote followed by `hashes` hashes.
                'raw: while i < n {
                    if bytes[i] == b'"' {
                        let mut k = i + 1;
                        let mut seen = 0;
                        while k < n && bytes[k] == b'#' && seen < hashes {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            while i < k {
                                blank(&mut out, bytes[i]);
                                i += 1;
                            }
                            break 'raw;
                        }
                    }
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
                continue;
            }
        }
        // Normal or byte string.
        if b == b'"' || (b == b'b' && i + 1 < n && bytes[i + 1] == b'"') {
            if b == b'b' {
                blank(&mut out, bytes[i]);
                i += 1;
            }
            blank(&mut out, bytes[i]);
            i += 1;
            while i < n {
                if bytes[i] == b'\\' && i + 1 < n {
                    blank(&mut out, bytes[i]);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                    continue;
                }
                let closed = bytes[i] == b'"';
                blank(&mut out, bytes[i]);
                i += 1;
                if closed {
                    break;
                }
            }
            continue;
        }
        // Char literal vs lifetime: 'x' / '\n' / '\u{1F600}' are
        // literals; 'a in `&'a str` is a lifetime (no closing quote
        // within the short lookahead window).
        if b == b'\'' {
            let mut j = i + 1;
            if j < n && bytes[j] == b'\\' {
                j += 2;
                // Cover \u{...} and multi-char escapes.
                while j < n && bytes[j] != b'\'' && j - i < 12 && bytes[j] != b'\n' {
                    j += 1;
                }
            } else if j < n {
                j += 1;
            }
            if j < n && bytes[j] == b'\'' {
                while i <= j {
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
                continue;
            }
        }
        out.push(b);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Per-line test-region flags: a line is "test code" when it lies in
/// the braces of an item annotated `#[cfg(test)]` (tracked by brace
/// depth on the masked source), or is part of the annotation itself.
fn test_lines(masked: &str) -> Vec<bool> {
    let lines: Vec<&str> = masked.lines().collect();
    let mut flags = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut entry_depths: Vec<i64> = Vec::new();
    let mut pending_attr = false;
    for (idx, line) in lines.iter().enumerate() {
        if line.contains("#[cfg(test)]") {
            pending_attr = true;
        }
        if pending_attr || !entry_depths.is_empty() {
            flags[idx] = true;
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    if pending_attr {
                        entry_depths.push(depth);
                        pending_attr = false;
                        flags[idx] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if entry_depths.last().is_some_and(|&d| depth <= d) {
                        entry_depths.pop();
                    }
                }
                // `#[cfg(test)] use foo;` — the attribute's item ended
                // without a body, so nothing to exempt beyond it.
                ';' if pending_attr => pending_attr = false,
                _ => {}
            }
        }
    }
    flags
}

/// Whether `needle` occurs in `line` as a whole word (neither the
/// preceding nor the following character is part of an identifier —
/// so `unsafe` never matches `unsafe_code`).
fn word_hit(line: &str, needle: &str) -> bool {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !line[..at].chars().next_back().is_some_and(ident);
        let after_ok = !line[at + needle.len()..].chars().next().is_some_and(ident);
        if before_ok && after_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Whether `raw_lines[idx]` carries a `// lint: allow(<rule>)`
/// justification on the same or the immediately preceding line.
fn allowed(raw_lines: &[&str], idx: usize, rule: &str) -> bool {
    let marker = format!("// lint: allow({rule})");
    raw_lines[idx].contains(&marker) || (idx > 0 && raw_lines[idx - 1].contains(&marker))
}

/// Files exempt from one rule wholesale (the rule's designated sites).
fn allowlisted(rule: &str, path: &str) -> bool {
    match rule {
        "env-var" => path.ends_with("crates/bench/src/lib.rs"),
        "wall-clock" => path.ends_with("crates/shims/criterion/src/lib.rs"),
        "thread-spawn" => {
            path.ends_with("crates/geom/src/par.rs")
                || path.ends_with("crates/shims/futures/src/lib.rs")
        }
        _ => false,
    }
}

/// Runs every rule over one source file, returning its diagnostics.
fn check_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let masked = mask_source(src);
    let masked_lines: Vec<&str> = masked.lines().collect();
    let raw_lines: Vec<&str> = src.lines().collect();
    let in_test = test_lines(&masked);
    let mut diags = Vec::new();
    let mut push = |idx: usize, rule: &'static str, message: &'static str| {
        if !allowlisted(rule, path) && !allowed(&raw_lines, idx, rule) {
            diags.push(Diagnostic { path: path.to_string(), line: idx + 1, rule, message });
        }
    };
    for (idx, line) in masked_lines.iter().enumerate() {
        let test = in_test.get(idx).copied().unwrap_or(false);
        if !test {
            let on_lock = line.contains("lock()") || line.contains(".wait(");
            if on_lock && (line.contains(".unwrap()") || line.contains(".expect(")) {
                push(
                    idx,
                    "mutex-unwrap",
                    "unwrap/expect on a lock result: recover with PoisonError::into_inner \
                     (pointacc_bench::sync::{lock, wait})",
                );
            }
            if line.contains("env::var") {
                push(
                    idx,
                    "env-var",
                    "environment read outside the designated read-once accessors \
                     (crates/bench/src/lib.rs)",
                );
            }
            if line.contains("Instant::now") || line.contains("SystemTime::now") {
                push(
                    idx,
                    "wall-clock",
                    "direct wall-clock read: route timing through an injectable Clock impl",
                );
            }
            if line.contains("thread::spawn") || line.contains("thread::scope") {
                push(
                    idx,
                    "thread-spawn",
                    "thread creation outside the pointacc_geom::par pool: route parallelism \
                     through parallel_map/parallel_map_with so workers are reused",
                );
            }
            if word_hit(line, "panic!")
                || word_hit(line, "todo!")
                || word_hit(line, "unimplemented!")
            {
                push(
                    idx,
                    "panic",
                    "panicking macro in non-test library code: surface a typed error instead",
                );
            }
        }
        if word_hit(line, "unsafe") {
            push(idx, "unsafe", "unsafe code is banned workspace-wide");
        }
        if line.contains("#[allow(") {
            push(
                idx,
                "allow-attr",
                "lint suppression without justification: add a `// lint:` comment explaining why",
            );
        }
    }
    diags
}

/// Recursively collects the in-scope sources: every `.rs` file under a
/// `crates/*/src` tree (skipping `target/`, and any `tests/`,
/// `benches/` or `examples/` components).
fn rs_files(workspace_root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![workspace_root.join("crates")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                let name = entry.file_name();
                if name != "target" {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                let scoped = path.components().any(|c| c.as_os_str() == "src")
                    && !path.components().any(|c| {
                        let c = c.as_os_str();
                        c == "tests" || c == "benches" || c == "examples"
                    });
                if scoped {
                    out.push(path);
                }
            }
        }
    }
    out.sort();
    out
}

fn main() -> ExitCode {
    // The linter lives at <workspace>/crates/lint, so the workspace
    // root is two levels up from its own manifest — no environment
    // variable read at runtime.
    let manifest: &Path = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest.ancestors().nth(2).unwrap_or(manifest);
    let files = rs_files(root);
    if files.is_empty() {
        eprintln!("pointacc-lint: no sources found under {}", root.display());
        return ExitCode::FAILURE;
    }
    let mut total = 0usize;
    for file in &files {
        let Ok(src) = std::fs::read_to_string(file) else {
            eprintln!("pointacc-lint: unreadable source {}", file.display());
            total += 1;
            continue;
        };
        let rel = file.strip_prefix(root).unwrap_or(file).to_string_lossy().replace('\\', "/");
        for diag in check_source(&rel, &src) {
            eprintln!("{diag}");
            total += 1;
        }
    }
    if total > 0 {
        eprintln!("pointacc-lint: {total} violation(s) in {} file(s) scanned", files.len());
        ExitCode::FAILURE
    } else {
        println!("pointacc-lint: clean ({} files scanned)", files.len());
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(path: &str, src: &str) -> Vec<(&'static str, usize)> {
        check_source(path, src).into_iter().map(|d| (d.rule, d.line)).collect()
    }

    const LIB: &str = "crates/x/src/lib.rs";

    #[test]
    fn mutex_unwrap_flags_unwrap_and_expect_on_lock_results() {
        let src = "fn f(m: &Mutex<u32>) {\n    let a = m.lock().unwrap();\n    let b = m.lock().expect(\"poisoned\");\n    let c = cv.wait(g).expect(\"poisoned\");\n}\n";
        assert_eq!(
            rules(LIB, src),
            vec![("mutex-unwrap", 2), ("mutex-unwrap", 3), ("mutex-unwrap", 4)]
        );
    }

    #[test]
    fn poison_recovering_lock_is_clean() {
        let src = "fn f(m: &Mutex<u32>) {\n    let g = m.lock().unwrap_or_else(PoisonError::into_inner);\n    let g = cv.wait(g).unwrap_or_else(PoisonError::into_inner);\n}\n";
        assert_eq!(rules(LIB, src), vec![]);
        // Unwraps on non-lock results are someone else's business.
        assert_eq!(rules(LIB, "fn f() { let x = rx.recv().unwrap(); }\n"), vec![]);
    }

    #[test]
    fn env_var_flags_reads_outside_the_designated_accessor() {
        let src = "fn f() {\n    let s = std::env::var(\"POINTACC_SCALE\");\n    let t = std::env::var_os(\"DIR\");\n}\n";
        assert_eq!(rules(LIB, src), vec![("env-var", 2), ("env-var", 3)]);
        // The designated accessor file is allowlisted wholesale.
        assert_eq!(rules("crates/bench/src/lib.rs", src), vec![]);
        // `env!` (compile time) and `env::args` are not banned.
        assert_eq!(rules(LIB, "fn f() { let a: Vec<_> = std::env::args().collect(); }\n"), vec![]);
    }

    #[test]
    fn wall_clock_flags_instant_and_system_time() {
        let src = "fn f() {\n    let t = Instant::now();\n    let s = SystemTime::now();\n}\n";
        assert_eq!(rules(LIB, src), vec![("wall-clock", 2), ("wall-clock", 3)]);
        assert_eq!(rules("crates/shims/criterion/src/lib.rs", src), vec![]);
    }

    #[test]
    fn thread_spawn_flags_library_code_but_not_the_pool_or_tests() {
        let src = "fn f() {\n    let h = std::thread::spawn(|| 1);\n    std::thread::scope(|s| { s.spawn(|| 2); });\n}\n";
        assert_eq!(rules(LIB, src), vec![("thread-spawn", 2), ("thread-spawn", 3)]);
        // The worker pool and the executor shim are the designated sites.
        assert_eq!(rules("crates/geom/src/par.rs", src), vec![]);
        assert_eq!(rules("crates/shims/futures/src/lib.rs", src), vec![]);
        // Test-only helpers may spawn raw threads.
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| 1).join().unwrap(); }\n}\n";
        assert_eq!(rules(LIB, test_src), vec![]);
        // A justified site passes with an explanatory comment.
        let justified = "// lint: allow(thread-spawn): blocking queue workers, not map-shaped.\nfn f() { std::thread::scope(|s| { let _ = s; }); }\n";
        assert_eq!(rules(LIB, justified), vec![]);
    }

    #[test]
    fn unsafe_is_flagged_even_in_tests_but_not_inside_identifiers() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { unsafe { () } }\n}\n";
        assert_eq!(rules(LIB, src), vec![("unsafe", 3)]);
        // `unsafe_code` (the lint name in attributes) is a different token.
        assert_eq!(rules(LIB, "#![forbid(unsafe_code)]\n"), vec![]);
    }

    #[test]
    fn panic_macros_flag_in_library_code_only() {
        let src = "fn f() { panic!(\"boom\"); }\nfn g() { todo!() }\nfn h() { unimplemented!() }\n";
        assert_eq!(rules(LIB, src), vec![("panic", 1), ("panic", 2), ("panic", 3)]);
        let test_src =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { panic!(\"expected\"); }\n}\n";
        assert_eq!(rules(LIB, test_src), vec![]);
        // assert!/unreachable! stay legal.
        assert_eq!(rules(LIB, "fn f() { assert!(true); unreachable!_placeholder(); }\n"), vec![]);
    }

    #[test]
    fn cfg_test_region_tracking_survives_nested_braces_and_attr_items() {
        let src = "fn live() { panic!(\"flagged\"); }\n#[cfg(test)]\nmod tests {\n    fn deep() { if true { panic!(\"exempt\"); } }\n}\nfn live_again() { panic!(\"flagged\"); }\n#[cfg(test)]\nuse std::fmt;\nfn after_use() { panic!(\"flagged\"); }\n";
        assert_eq!(rules(LIB, src), vec![("panic", 1), ("panic", 6), ("panic", 9)]);
    }

    #[test]
    fn allow_attr_requires_a_lint_justification() {
        let bare = "#[allow(dead_code)]\nfn f() {}\n";
        assert_eq!(rules(LIB, bare), vec![("allow-attr", 1)]);
        let justified = "// lint: allow(allow-attr): speculative API kept for the next PR.\n#[allow(dead_code)]\nfn f() {}\n";
        assert_eq!(rules(LIB, justified), vec![]);
    }

    #[test]
    fn lint_allow_comments_exempt_same_and_preceding_line() {
        let same = "fn f() { panic!(\"x\") } // lint: allow(panic): facade.\n";
        assert_eq!(rules(LIB, same), vec![]);
        let preceding = "// lint: allow(panic): documented facade.\nfn f() { panic!(\"x\") }\n";
        assert_eq!(rules(LIB, preceding), vec![]);
        // An allow for one rule does not silence another.
        let wrong_rule = "// lint: allow(env-var): wrong rule.\nfn f() { panic!(\"x\") }\n";
        assert_eq!(rules(LIB, wrong_rule), vec![("panic", 2)]);
    }

    #[test]
    fn comments_strings_and_char_literals_never_trigger_rules() {
        let src = "// panic! in a comment is fine\n/* block with env::var and\n   unsafe across lines */\nfn f() -> &'static str {\n    let s = \"panic!(env::var unsafe Instant::now)\";\n    let r = r#\"lock().unwrap() \"quoted\" panic!\"#;\n    let c = '{';\n    let esc = '\\n';\n    s\n}\n";
        assert_eq!(rules(LIB, src), vec![]);
    }

    #[test]
    fn brace_depth_in_strings_does_not_corrupt_test_regions() {
        // The `{` char literal and the brace-bearing string would break
        // naive depth tracking; masking removes them first.
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let b = '{'; let s = \"}}}\"; panic!(\"exempt\"); }\n}\nfn live() { panic!(\"flagged\"); }\n";
        assert_eq!(rules(LIB, src), vec![("panic", 5)]);
    }

    #[test]
    fn diagnostics_render_file_line_and_rule() {
        let d = &check_source(LIB, "fn f() { panic!(\"x\") }\n")[0];
        let shown = d.to_string();
        assert!(shown.contains("crates/x/src/lib.rs:1:"), "{shown}");
        assert!(shown.contains("[panic]"), "{shown}");
    }

    #[test]
    fn raw_strings_with_hashes_mask_to_the_matching_terminator() {
        let src = "fn f() {\n    let a = r##\"unsafe \"# still inside\"##;\n    let b = panic!(\"after the raw string we still lint\");\n}\n";
        assert_eq!(rules(LIB, src), vec![("panic", 3)]);
    }
}
