//! Analytic models of the general-purpose platforms the paper compares
//! against (Fig. 6, 13, 14).
//!
//! Each platform is a small roofline-style model over the same
//! [`NetworkTrace`] the accelerator replays. The model exposes exactly
//! the mechanisms the paper identifies: low matrix utilization on
//! fragmented point-cloud matmuls, per-step launch overhead that
//! dominates iterative mapping operations (FPS launches one kernel per
//! sampled point), Gather-MatMul-Scatter memory traffic, and — for the
//! TPU — host round trips because the accelerator cannot run mapping
//! operations at all.

use pointacc::{Engine, EngineReport, Seconds};
use pointacc_nn::{ComputeKind, LayerTrace, MappingOp, NetworkTrace};
use pointacc_sim::PicoJoules;

/// An analytic platform model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Platform {
    /// Platform name as shown in the figures.
    pub name: &'static str,
    /// Peak dense matmul throughput, GFLOP/s (2 × MACs).
    pub dense_gflops: f64,
    /// Achieved fraction of peak on point-cloud matmuls (fragmented
    /// per-offset GEMMs, gather/scatter interleaved).
    pub sparse_utilization: f64,
    /// Sustained memory bandwidth, GB/s.
    pub mem_bw_gbps: f64,
    /// Mapping-operation scalar throughput, Gop/s (distance / hash-probe
    /// evaluations).
    pub mapping_gops: f64,
    /// Per-layer framework dispatch overhead (kernel launches + host
    /// bookkeeping for one operator), microseconds.
    pub launch_overhead_us: f64,
    /// Per-serial-step launch overhead inside iterative mapping
    /// operations (e.g. one FPS iteration), microseconds.
    pub step_overhead_us: f64,
    /// Host↔accelerator link bandwidth for offload platforms, GB/s
    /// (`None` when compute and mapping share one memory space).
    pub host_link_gbps: Option<f64>,
    /// Average board power under load, watts.
    pub power_w: f64,
}

impl Platform {
    /// NVIDIA RTX 2080 Ti (server GPU).
    pub fn rtx_2080ti() -> Self {
        Platform {
            name: "RTX 2080Ti",
            dense_gflops: 13_450.0,
            sparse_utilization: 0.20,
            mem_bw_gbps: 616.0,
            mapping_gops: 3.0,
            launch_overhead_us: 20.0,
            step_overhead_us: 1.5,
            host_link_gbps: None,
            power_w: 250.0,
        }
    }

    /// Intel Xeon Gold 6130 (server CPU).
    pub fn xeon_6130() -> Self {
        Platform {
            name: "Xeon Gold 6130",
            dense_gflops: 1_300.0,
            sparse_utilization: 0.03,
            mem_bw_gbps: 120.0,
            mapping_gops: 0.25,
            launch_overhead_us: 200.0,
            step_overhead_us: 0.3,
            host_link_gbps: None,
            power_w: 125.0,
        }
    }

    /// Xeon Skylake host + TPU v3: matmuls on the TPU, but every mapping
    /// operation requires moving data back to the host, computing there,
    /// and shipping gathered matrices in (paper §3, Bottleneck I).
    pub fn xeon_tpu_v3() -> Self {
        Platform {
            name: "Xeon + TPUv3",
            dense_gflops: 61_000.0,
            sparse_utilization: 0.03,
            mem_bw_gbps: 900.0,
            mapping_gops: 0.25,
            launch_overhead_us: 100.0,
            step_overhead_us: 30.0,
            host_link_gbps: Some(12.0),
            power_w: 280.0,
        }
    }

    /// NVIDIA Jetson Xavier NX (edge GPU).
    pub fn jetson_xavier_nx() -> Self {
        Platform {
            name: "Jetson Xavier NX",
            dense_gflops: 1_700.0,
            sparse_utilization: 0.25,
            mem_bw_gbps: 51.0,
            mapping_gops: 1.0,
            launch_overhead_us: 40.0,
            step_overhead_us: 4.0,
            host_link_gbps: None,
            power_w: 15.0,
        }
    }

    /// NVIDIA Jetson Nano (edge GPU).
    pub fn jetson_nano() -> Self {
        Platform {
            name: "Jetson Nano",
            dense_gflops: 472.0,
            sparse_utilization: 0.25,
            mem_bw_gbps: 25.6,
            mapping_gops: 0.4,
            launch_overhead_us: 60.0,
            step_overhead_us: 8.0,
            host_link_gbps: None,
            power_w: 10.0,
        }
    }

    /// Raspberry Pi 4 Model B (edge CPU).
    pub fn raspberry_pi_4b() -> Self {
        Platform {
            name: "Raspberry Pi 4B",
            dense_gflops: 12.0,
            sparse_utilization: 0.30,
            mem_bw_gbps: 4.0,
            mapping_gops: 0.04,
            launch_overhead_us: 2.0,
            step_overhead_us: 0.5,
            host_link_gbps: None,
            power_w: 6.0,
        }
    }

    /// Runs a trace, returning the unified latency/energy report with
    /// the mapping / matmul / data-movement breakdown of paper Fig. 6.
    /// General-purpose platforms serialize the three components, so
    /// `total` is their sum; energy is `latency × average power`.
    pub fn run(&self, trace: &NetworkTrace) -> EngineReport {
        let mut mapping = 0.0f64;
        let mut matmul = 0.0f64;
        let mut datamove = 0.0f64;
        let mut dram_bytes = 0u64;
        for layer in &trace.layers {
            let (m, x, d) = self.layer_times(layer);
            mapping += m;
            matmul += x;
            datamove += d;
            dram_bytes += gather_scatter_bytes(layer, 4);
        }
        let total = mapping + matmul + datamove;
        EngineReport {
            engine: self.name.to_string(),
            network: trace.network.clone(),
            mapping: Seconds(mapping),
            matmul: Seconds(matmul),
            datamove: Seconds(datamove),
            total: Seconds(total),
            energy: PicoJoules::from_joules(total * self.power_w),
            dram_bytes,
        }
    }

    /// `(mapping, matmul, data-movement)` seconds of one layer.
    pub fn layer_times(&self, layer: &LayerTrace) -> (f64, f64, f64) {
        let launch = self.launch_overhead_us * 1e-6;
        let step = self.step_overhead_us * 1e-6;
        // --- Mapping operations ---
        let mut mapping = 0.0;
        for op in &layer.mapping {
            let steps = serial_steps(op) as f64;
            let ops = op.scalar_ops() as f64;
            // Feature-space kNN (DGCNN) compiles to pairwise-distance
            // GEMMs, which general-purpose hardware runs at matmul rates
            // rather than scalar mapping rates.
            let rate = match op {
                pointacc_nn::MappingOp::KnnFeature { .. } => {
                    self.dense_gflops * 1e9 * (self.sparse_utilization * 2.0).min(0.5)
                }
                _ => self.mapping_gops * 1e9,
            };
            mapping += steps * step + 2.0 * ops / rate;
        }

        // --- Matrix computation ---
        let flops = 2.0 * layer.macs() as f64;
        let util = match layer.compute {
            // Dense point-wise layers reach decent utilization even on
            // general-purpose hardware.
            ComputeKind::Dense => (self.sparse_utilization * 4.0).min(0.6),
            _ => self.sparse_utilization,
        };
        let mut matmul =
            if flops > 0.0 { flops / (self.dense_gflops * 1e9 * util) + launch } else { 0.0 };

        // --- Data movement: Gather-MatMul-Scatter traffic ---
        let elem = 4u64; // fp32 on general-purpose platforms
        let bytes = gather_scatter_bytes(layer, elem);
        let mut datamove = bytes as f64 / (self.mem_bw_gbps * 1e9);

        // Offload platforms (TPU) round-trip through the host for every
        // mapping + gather (paper: 60–90 % of runtime).
        if let Some(link) = self.host_link_gbps {
            let roundtrip = 2.0 * layer.input_feature_bytes(elem as usize) as f64 / (link * 1e9);
            datamove += roundtrip + launch;
            // Small matrices are padded to the TPU's systolic tiles.
            matmul *= 1.5;
        }
        (mapping, matmul, datamove)
    }
}

impl Engine for Platform {
    fn name(&self) -> String {
        self.name.to_string()
    }

    fn evaluate(&self, trace: &NetworkTrace) -> EngineReport {
        self.run(trace)
    }
}

/// Serial dependency steps of a mapping operation — each is a separate
/// kernel launch on GPU-like platforms. FPS is the pathological case: one
/// dependent step per sampled point.
fn serial_steps(op: &MappingOp) -> u64 {
    match *op {
        MappingOp::Fps { n_out, .. } => n_out as u64,
        MappingOp::Quantize { .. } => 2,
        MappingOp::KernelMap { kernel_volume, .. } => kernel_volume as u64,
        MappingOp::Knn { .. } | MappingOp::BallQuery { .. } | MappingOp::KnnFeature { .. } => 3,
    }
}

/// DRAM bytes of the Gather-MatMul-Scatter flow on a general-purpose
/// platform (explicit gather, contiguous matmul, scatter-aggregate).
fn gather_scatter_bytes(layer: &LayerTrace, elem: u64) -> u64 {
    let maps = layer.maps.as_ref().map(|m| m.len() as u64);
    let ic = layer.in_ch as u64;
    let oc = layer.out_ch as u64;
    match layer.compute {
        ComputeKind::SparseConv | ComputeKind::Grouped | ComputeKind::Interpolate => {
            let n = maps.unwrap_or(layer.n_out as u64);
            // gather read+write, matmul read+write, scatter read+write.
            n * ic * elem * 3 + n * oc * elem * 2 + layer.n_out as u64 * oc * elem
        }
        ComputeKind::Dense => (layer.n_in as u64 * ic + layer.n_out as u64 * oc) * elem,
        ComputeKind::Pool => layer.n_in as u64 * ic * elem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pointacc_geom::{Point3, PointSet};
    use pointacc_nn::{zoo, ExecMode, Executor};

    fn trace() -> NetworkTrace {
        let pts: PointSet = (0..512)
            .map(|i| {
                let t = i as f32;
                Point3::new((t * 0.3).sin() * 2.0, (t * 0.9).cos() * 2.0, (t * 0.07).sin())
            })
            .collect();
        Executor::new(ExecMode::TraceOnly, 1).run(&zoo::pointnet_pp_classification(), &pts).trace
    }

    #[test]
    fn gpu_beats_cpu_on_matmul() {
        let t = trace();
        let gpu = Platform::rtx_2080ti().run(&t);
        let cpu = Platform::xeon_6130().run(&t);
        assert!(gpu.total.0 < cpu.total.0);
        assert!(gpu.matmul.0 < cpu.matmul.0);
    }

    #[test]
    fn pointnet_pp_is_mapping_bound_on_gpu() {
        // Paper Fig. 6 left: PointNet++-based networks spend > 50 % of
        // runtime on mapping operations on general-purpose platforms.
        let report = Platform::rtx_2080ti().run(&trace());
        let frac = report.mapping.0 / report.total.0;
        assert!(frac > 0.4, "mapping fraction {frac} should dominate");
    }

    #[test]
    fn tpu_pays_host_roundtrips() {
        let t = trace();
        let tpu = Platform::xeon_tpu_v3().run(&t);
        // Paper §3: data movement takes 60–90 % of runtime on CPU+TPU.
        let frac = (tpu.datamove.0 + tpu.mapping.0) / tpu.total.0;
        assert!(frac > 0.6, "offload overheads {frac} should dominate");
    }

    #[test]
    fn edge_devices_rank_correctly() {
        let t = trace();
        let nx = Platform::jetson_xavier_nx().run(&t);
        let nano = Platform::jetson_nano().run(&t);
        let rpi = Platform::raspberry_pi_4b().run(&t);
        assert!(nx.total.0 < nano.total.0);
        assert!(nano.total.0 < rpi.total.0);
    }

    #[test]
    fn energy_is_latency_times_power() {
        let report = Platform::jetson_nano().run(&trace());
        assert!((report.energy.to_joules() - report.total.0 * 10.0).abs() < 1e-9);
    }

    #[test]
    fn engine_surface_matches_inherent_run() {
        let t = trace();
        let p = Platform::rtx_2080ti();
        let dyn_engine: &dyn Engine = &p;
        assert!(dyn_engine.supports(&t));
        assert_eq!(dyn_engine.evaluate(&t), p.run(&t));
        assert_eq!(dyn_engine.name(), "RTX 2080Ti");
    }
}
