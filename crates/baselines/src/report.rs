//! Shared report types for baseline platform models.

use std::fmt;

/// Seconds newtype for latency components.
#[derive(Copy, Clone, PartialEq, PartialOrd, Debug, Default)]
pub struct Seconds(pub f64);

impl Seconds {
    /// Milliseconds.
    pub fn to_millis(self) -> f64 {
        self.0 * 1e3
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms", self.to_millis())
    }
}

/// Latency/energy report of a baseline platform running one network.
#[derive(Clone, Debug, PartialEq)]
pub struct PlatformReport {
    /// Platform name.
    pub platform: String,
    /// Network name.
    pub network: String,
    /// Time in mapping operations.
    pub mapping: Seconds,
    /// Time in matrix computation.
    pub matmul: Seconds,
    /// Time in data movement (gather / scatter / host transfers).
    pub datamove: Seconds,
    /// End-to-end latency.
    pub total: Seconds,
    /// Energy in joules (`latency × average power`).
    pub energy_j: f64,
}

impl PlatformReport {
    /// Fractional breakdown `(mapping, matmul, datamove)` (paper Fig. 6).
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let t = self.total.0.max(f64::MIN_POSITIVE);
        (self.mapping.0 / t, self.matmul.0 / t, self.datamove.0 / t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums_to_one() {
        let r = PlatformReport {
            platform: "p".into(),
            network: "n".into(),
            mapping: Seconds(1.0),
            matmul: Seconds(2.0),
            datamove: Seconds(1.0),
            total: Seconds(4.0),
            energy_j: 8.0,
        };
        let (m, x, d) = r.breakdown();
        assert!((m + x + d - 1.0).abs() < 1e-12);
        assert_eq!(r.total.to_millis(), 4000.0);
    }
}
