//! Baseline hardware models for the PointAcc evaluation: server and edge
//! general-purpose platforms (Fig. 6/13/14), the Mesorasi accelerator
//! (Fig. 15/16) and alternative specialized engines (hash-table kernel
//! mapping, quick-select top-k) for the §4.1 ablations.
//!
//! All models consume the same [`pointacc_nn::NetworkTrace`] the
//! accelerator replays, so comparisons are workload-identical, and all
//! implement the unified [`pointacc::Engine`] trait, reporting through
//! the shared [`pointacc::EngineReport`] (core `perf` units).
//!
//! # Example
//!
//! ```
//! use pointacc::Engine;
//! use pointacc_baselines::Platform;
//! use pointacc_nn::{zoo, ExecMode, Executor};
//! use pointacc_geom::{Point3, PointSet};
//!
//! let pts: PointSet = (0..128)
//!     .map(|i| Point3::new((i as f32).sin(), (i as f32).cos(), 0.0))
//!     .collect();
//! let trace = Executor::new(ExecMode::TraceOnly, 0).run(&zoo::pointnet(), &pts).trace;
//! let gpu = Platform::rtx_2080ti().evaluate(&trace);
//! println!("GPU: {} ({:.3} J)", gpu.total, gpu.energy.to_joules());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engines;
mod mesorasi;
mod platform;

pub use engines::{HashKernelMapEngine, QuickSelectTopK};
pub use mesorasi::{delayed_aggregation_trace, Mesorasi, MesorasiSw};
pub use platform::Platform;
