//! Alternative specialized-engine designs the paper ablates against:
//! the hash-table kernel-mapping engine (§4.1.1, Fig. 17 left) and the
//! quick-selection top-k engine from SpAtten (§4.1.4).

use pointacc_geom::{golden, VoxelCloud};
use pointacc_sim::area;

/// Cycle model of a parallel hash-table kernel-mapping engine with `n`
/// lanes: build the table once (insert one point per lane per cycle, with
/// collision retries at load factor 2), then probe every (output ×
/// offset) pair. Parallel random reads contend on the banked table SRAM
/// through the N×N crossbar, which throttles effective probe throughput.
#[derive(Copy, Clone, Debug)]
pub struct HashKernelMapEngine {
    /// Parallel lanes (same parallelism as the merge-sort engine's N).
    pub lanes: usize,
}

impl HashKernelMapEngine {
    /// Average probes per query at load factor 2 (linear probing).
    const PROBES: f64 = 1.5;
    /// Effective slowdown of parallel random SRAM reads: bank conflicts
    /// + crossbar arbitration across N concurrent lanes.
    const CONFLICT_FACTOR: f64 = 3.6;

    /// Cycles to build the table and probe all offsets.
    pub fn cycles(&self, n_in: usize, n_out: usize, kernel_volume: usize) -> u64 {
        let lanes = self.lanes as f64;
        let build = (n_in as f64 * Self::PROBES * 1.2 / lanes).ceil();
        let probes = (kernel_volume as f64)
            * (n_out as f64 * Self::PROBES * Self::CONFLICT_FACTOR / lanes).ceil();
        (build + probes) as u64
    }

    /// Engine area in mm² (crossbar-dominated, paper §4.1.1).
    pub fn area_mm2(&self, n_points: usize) -> f64 {
        area::hash_engine_area_mm2(self.lanes, area::hash_table_bytes(n_points))
    }

    /// Functional reference (identical to the golden hash algorithm).
    pub fn kernel_map(
        &self,
        input: &VoxelCloud,
        output: &VoxelCloud,
        kernel_size: usize,
    ) -> pointacc_geom::MapTable {
        golden::kernel_map_hash(input, output, kernel_size)
    }
}

/// Cycle model of the quick-selection top-k engine of SpAtten (HPCA'21),
/// at the same lane count as the MPU's ranking engine. Random-pivot
/// quick-select scans a geometrically shrinking candidate set (expected
/// total ≈ 2n elements) and pays a pivot-broadcast round per iteration.
#[derive(Copy, Clone, Debug)]
pub struct QuickSelectTopK {
    /// Parallel comparator lanes.
    pub lanes: usize,
}

impl QuickSelectTopK {
    /// Expected cycles to select the top `k` of `n` elements.
    pub fn cycles(&self, n: usize, k: usize) -> u64 {
        if n == 0 {
            return 0;
        }
        let lanes = self.lanes as f64;
        // Expected elements scanned: n + n/2 + n/4 + … ≈ 2n, plus a
        // final pass to emit the k selected elements in order.
        let scans = (2.0 * n as f64 + k as f64) / lanes;
        // Pivot rounds: one broadcast + partition bookkeeping per
        // iteration, ~log2(n/k) iterations.
        let rounds = ((n as f64 / k.max(1) as f64).log2().max(1.0)).ceil() * 6.0;
        (scans * 1.35 + rounds).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pointacc::Mpu;
    use pointacc_geom::Coord;
    use pointacc_sim::SortItem;

    fn cloud(n: usize, seed: u64) -> VoxelCloud {
        let mut x = seed | 1;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 40) as i32 - 20
        };
        VoxelCloud::from_unsorted((0..n).map(|_| Coord::new(step(), step(), step())).collect(), 1)
    }

    #[test]
    fn mergesort_engine_beats_hash_engine() {
        // Paper §4.1.1: "our mergesort-based solution could provide 1.4×
        // speedup … with the same parallelism".
        let c = cloud(5000, 3);
        let mpu = Mpu::new(64);
        let merge_cycles = mpu.kernel_map_cycles_estimate(c.len(), c.len(), 27);
        let hash = HashKernelMapEngine { lanes: 64 };
        let hash_cycles = hash.cycles(c.len(), c.len(), 27);
        let ratio = hash_cycles as f64 / merge_cycles as f64;
        assert!(
            (1.1..2.2).contains(&ratio),
            "hash/mergesort cycle ratio should be ≈1.4, got {ratio}"
        );
    }

    #[test]
    fn hash_engine_is_functionally_correct() {
        let c = cloud(200, 9);
        let engine = HashKernelMapEngine { lanes: 16 };
        let maps = engine.kernel_map(&c, &c, 3);
        let golden_maps = golden::kernel_map_hash(&c, &c, 3);
        assert_eq!(maps.canonicalized(), golden_maps.canonicalized());
    }

    #[test]
    fn ranking_topk_beats_quickselect() {
        // Paper §4.1.4: "on average our design is 1.18× faster than the
        // quick-selection-based top-k engine proposed in SpAtten with the
        // same parallelism". Average over the typical (n, k) operating
        // points of point cloud networks.
        let engine = pointacc::mpu::RankEngine::new(64);
        let qs = QuickSelectTopK { lanes: 64 };
        let mut ratios = Vec::new();
        for (n, k) in [(1024usize, 16usize), (4096, 32), (8192, 64)] {
            let items: Vec<SortItem> = (0..n)
                .map(|i| SortItem::new(((i * 2_654_435_761) % 1_000_000) as u128, i as u64))
                .collect();
            let (_, stats) = engine.topk(&items, k);
            ratios.push(qs.cycles(n, k) as f64 / stats.cycles as f64);
        }
        let geomean = ratios.iter().product::<f64>().powf(1.0 / ratios.len() as f64);
        assert!(
            (1.0..1.6).contains(&geomean),
            "quickselect/ranking ratio should be ≈1.18, got {geomean} ({ratios:?})"
        );
    }
}
