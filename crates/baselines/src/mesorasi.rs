//! Mesorasi (MICRO 2020) — the prior point cloud accelerator the paper
//! compares against (Fig. 15/16, Table 3).
//!
//! Mesorasi's *delayed aggregation* rewrites PointNet++-style layers so
//! the shared MLP runs on the **unique input points** instead of the
//! gathered `n_out × k` neighborhood rows; the aggregation unit (AU) then
//! max-reduces MLP outputs along the maps. This only works when every
//! neighbor shares the same weight — SparseConv-style per-offset weights
//! are unsupported (paper §5.2.2), which is exactly the limitation
//! Fig. 16 exploits.

use pointacc::{Engine, EngineReport, Seconds};
use pointacc_nn::{ComputeKind, MappingOp, NetworkTrace};
use pointacc_sim::{DramChannel, DramKind, PicoJoules, SystolicArray};

/// The Mesorasi hardware model (Table 3: 16×16 NPU, 1 GHz, LPDDR3-1600,
/// 1624 KB SRAM).
#[derive(Clone, Debug)]
pub struct Mesorasi {
    npu: SystolicArray,
    freq_hz: f64,
    dram: DramKind,
    power_w: f64,
}

impl Default for Mesorasi {
    fn default() -> Self {
        Self::new()
    }
}

impl Mesorasi {
    /// Creates the Table 3 configuration.
    pub fn new() -> Self {
        Mesorasi {
            npu: SystolicArray::new(16, 16),
            freq_hz: 1.0e9,
            dram: DramKind::Lpddr3_1600,
            power_w: 2.0,
        }
    }

    /// Whether Mesorasi can execute this network: delayed aggregation
    /// requires shared weights per neighborhood, so any SparseConv layer
    /// (independent per-offset weights) disqualifies the network.
    pub fn supports(trace: &NetworkTrace) -> bool {
        !trace.layers.iter().any(|l| l.compute == ComputeKind::SparseConv)
    }

    /// Runs a supported trace with delayed aggregation.
    ///
    /// # Panics
    ///
    /// Panics if the network contains SparseConv layers (use
    /// [`Mesorasi::supports`] first).
    pub fn run(&self, trace: &NetworkTrace) -> EngineReport {
        assert!(
            Self::supports(trace),
            "Mesorasi does not support independent per-neighbor weights (SparseConv)"
        );
        let mut matmul_cycles: u64 = 0;
        let mut mapping_s = 0.0f64;
        let mut dram = DramChannel::new(self.dram);
        let elem = 2u64;
        for layer in &trace.layers {
            // Delayed aggregation: grouped MLP rows collapse to the
            // unique input points; the AU applies the max along maps
            // afterwards (one reduction per map, overlapped with the
            // NPU).
            let rows = match layer.compute {
                ComputeKind::Grouped => layer.n_in,
                _ => layer.n_out,
            };
            matmul_cycles += self.npu.matmul_cycles(rows, layer.in_ch, layer.out_ch).get();
            dram.read(rows as u64 * layer.in_ch as u64 * elem);
            dram.read(layer.weight_bytes(elem as usize));
            dram.write(rows as u64 * layer.out_ch as u64 * elem);
            // Mesorasi accelerates aggregation, not neighbor search:
            // mapping operations run on the host mobile CPU (the paper's
            // §5.2.2 comparison point), with FPS serialized per sample.
            for op in &layer.mapping {
                let serial = match *op {
                    MappingOp::Fps { n_out, .. } => n_out as f64 * 8e-6,
                    _ => 0.0,
                };
                mapping_s += serial + op.scalar_ops() as f64 / 0.15e9;
            }
        }
        let matmul_s = matmul_cycles as f64 / self.freq_hz;
        let datamove_s = dram.transfer_seconds();
        let total = matmul_s + mapping_s + datamove_s;
        EngineReport {
            engine: "Mesorasi".into(),
            network: trace.network.clone(),
            mapping: Seconds(mapping_s),
            matmul: Seconds(matmul_s),
            datamove: Seconds(datamove_s),
            total: Seconds(total),
            energy: PicoJoules::from_joules(total * self.power_w) + dram.energy(),
            dram_bytes: dram.total_bytes(),
        }
    }

    /// Mesorasi-SW: the delayed-aggregation *networks* without the
    /// dedicated hardware, running on a general-purpose platform. The
    /// MLP savings apply but everything else pays the platform's costs.
    pub fn run_software(platform: &crate::Platform, trace: &NetworkTrace) -> EngineReport {
        let reduced = delayed_aggregation_trace(trace);
        let mut report = platform.run(&reduced);
        report.engine = format!("Mesorasi-SW on {}", platform.name);
        report
    }
}

impl Engine for Mesorasi {
    fn name(&self) -> String {
        "Mesorasi".into()
    }

    fn supports(&self, trace: &NetworkTrace) -> bool {
        Mesorasi::supports(trace)
    }

    fn evaluate(&self, trace: &NetworkTrace) -> EngineReport {
        self.run(trace)
    }
}

/// Mesorasi-SW as a first-class engine: the delayed-aggregation network
/// rewrite running on a general-purpose [`Platform`](crate::Platform)
/// (paper Fig. 15's software bars).
#[derive(Clone, Copy, Debug)]
pub struct MesorasiSw {
    /// The platform hosting the rewritten networks.
    pub platform: crate::Platform,
}

impl MesorasiSw {
    /// Mesorasi-SW on `platform`.
    pub fn on(platform: crate::Platform) -> Self {
        MesorasiSw { platform }
    }
}

impl Engine for MesorasiSw {
    fn name(&self) -> String {
        format!("Mesorasi-SW on {}", self.platform.name)
    }

    fn supports(&self, trace: &NetworkTrace) -> bool {
        Mesorasi::supports(trace)
    }

    fn evaluate(&self, trace: &NetworkTrace) -> EngineReport {
        Mesorasi::run_software(&self.platform, trace)
    }
}

/// Rewrites a PointNet++-style trace with delayed aggregation: grouped
/// MLP layers shrink to the unique-point row count.
pub fn delayed_aggregation_trace(trace: &NetworkTrace) -> NetworkTrace {
    let mut out = trace.clone();
    for l in &mut out.layers {
        if l.compute == ComputeKind::Grouped {
            l.n_out = l.n_in;
        } else if l.compute == ComputeKind::Dense && l.pool_group.is_some() {
            // Trailing shared-MLP layers before the pool also shrink.
            l.n_out = l.n_in.min(l.n_out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pointacc_geom::{Point3, PointSet};
    use pointacc_nn::{zoo, ExecMode, Executor};

    fn trace(voxel: bool) -> NetworkTrace {
        let pts: PointSet = (0..400)
            .map(|i| {
                let t = i as f32;
                Point3::new((t * 0.37).sin() * 2.0, (t * 0.61).cos() * 2.0, (t * 0.13).sin())
            })
            .collect();
        let net = if voxel { zoo::mini_minkunet() } else { zoo::pointnet_pp_classification() };
        Executor::new(ExecMode::TraceOnly, 1).run(&net, &pts).trace
    }

    #[test]
    fn supports_pointnet_pp_not_sparseconv() {
        assert!(Mesorasi::supports(&trace(false)));
        assert!(!Mesorasi::supports(&trace(true)));
    }

    #[test]
    fn delayed_aggregation_reduces_mlp_rows() {
        let t = trace(false);
        let reduced = delayed_aggregation_trace(&t);
        assert!(
            reduced.total_macs() < t.total_macs(),
            "delayed aggregation must reduce MACs: {} vs {}",
            reduced.total_macs(),
            t.total_macs()
        );
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn sparseconv_network_panics() {
        let _ = Mesorasi::new().run(&trace(true));
    }

    #[test]
    fn hardware_beats_software_on_nano() {
        let t = trace(false);
        let hw = Mesorasi::new().run(&t);
        let sw = Mesorasi::run_software(&crate::Platform::jetson_nano(), &t);
        assert!(hw.total.0 < sw.total.0, "HW {} vs SW {}", hw.total.0, sw.total.0);
    }
}
