//! Input→output maps: the product of every mapping operation.
//!
//! A *map* is the tuple `(input point index, output point index, weight
//! index)` (paper §2). Point cloud convolution iterates over the maps,
//! multiplies the input feature by the weight matrix selected by the weight
//! index and aggregates the partial sum into the output point.
//!
//! [`MapTable`] stores the maps in **structure-of-arrays** form — one
//! contiguous input-index array and one output-index array, CSR-sliced by
//! weight group — so the gather–GEMM–scatter executor consumes index
//! slices directly ([`MapGroup::inputs`] feeds the gather with zero
//! per-group allocation) and group scans stream linear memory.
//!
//! [`KernelMap`] packages a [`MapTable`] together with the geometry it
//! connects — the exact form the gather–GEMM–scatter executor consumes
//! for SparseConv layers (unit stride, stride-`s` downsampling, and
//! transposed upsampling on the decoder path).

use crate::index::{default_backend, MappingBackend};
use crate::VoxelCloud;

/// One `(input, output, weight)` map tuple.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MapEntry {
    /// Index of the input point in the input cloud.
    pub input: u32,
    /// Index of the output point in the output cloud.
    pub output: u32,
    /// Index of the weight matrix (kernel offset index for SparseConv,
    /// always 0 for shared-weight PointNet++-style neighborhoods).
    pub weight: u16,
}

impl MapEntry {
    /// Creates a map entry.
    pub fn new(input: u32, output: u32, weight: u16) -> Self {
        MapEntry { input, output, weight }
    }
}

/// The maps of one weight group, viewed as parallel index slices.
///
/// `inputs()[i] -> outputs()[i]` is the `i`-th map of the group; the
/// slices borrow the table's SoA storage, so gathering by
/// [`MapGroup::inputs`] costs no allocation or copy.
#[derive(Copy, Clone, Debug)]
pub struct MapGroup<'a> {
    inputs: &'a [u32],
    outputs: &'a [u32],
    weight: u16,
}

impl<'a> MapGroup<'a> {
    /// Input point index of every map in the group, in emission order.
    pub fn inputs(&self) -> &'a [u32] {
        self.inputs
    }

    /// Output point index of every map in the group, in emission order
    /// (ascending for tables built by the mapping backends).
    pub fn outputs(&self) -> &'a [u32] {
        self.outputs
    }

    /// The weight index shared by every map in the group.
    pub fn weight(&self) -> u16 {
        self.weight
    }

    /// Number of maps in the group.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the group has no maps.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// The `i`-th map of the group as a [`MapEntry`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn entry(&self, i: usize) -> MapEntry {
        MapEntry::new(self.inputs[i], self.outputs[i], self.weight)
    }

    /// Iterates the group's maps as [`MapEntry`] values.
    pub fn iter(&self) -> impl Iterator<Item = MapEntry> + 'a {
        let weight = self.weight;
        self.inputs
            .iter()
            .zip(self.outputs)
            .map(move |(&input, &output)| MapEntry::new(input, output, weight))
    }
}

/// Why a structure-of-arrays triple cannot form a valid [`MapTable`]
/// (returned by [`MapTable::try_from_soa`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MapTableError {
    /// The input and output index arrays differ in length.
    UnparallelArrays {
        /// Length of the input-index array.
        inputs: usize,
        /// Length of the output-index array.
        outputs: usize,
    },
    /// The offsets array is empty (it must hold `n_weights + 1 >= 1`
    /// entries).
    EmptyOffsets,
    /// The first offset is not 0.
    OffsetsStartNonzero(usize),
    /// The offsets are not monotonically non-decreasing.
    OffsetsNotMonotone,
    /// The final offset does not equal the index-array length.
    OffsetsDoNotCover {
        /// The final offset.
        last: usize,
        /// The index-array length it should equal.
        len: usize,
    },
}

impl std::fmt::Display for MapTableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            MapTableError::UnparallelArrays { inputs, outputs } => {
                write!(f, "SoA arrays must be parallel ({inputs} inputs vs {outputs} outputs)")
            }
            MapTableError::EmptyOffsets => {
                write!(f, "offsets must hold at least n_weights + 1 = 1 entry")
            }
            MapTableError::OffsetsStartNonzero(first) => {
                write!(f, "offsets must start at 0 (got {first})")
            }
            MapTableError::OffsetsNotMonotone => write!(f, "offsets must be monotone"),
            MapTableError::OffsetsDoNotCover { last, len } => {
                write!(f, "offsets must cover arrays (last offset {last}, {len} maps)")
            }
        }
    }
}

impl std::error::Error for MapTableError {}

/// The CSR invariants shared by [`MapTable::try_from_soa`] (construction
/// from untrusted parts) and [`MapTable::validate`] (re-validation of an
/// existing table).
fn validate_soa(inputs: &[u32], outputs: &[u32], offsets: &[usize]) -> Result<(), MapTableError> {
    if inputs.len() != outputs.len() {
        return Err(MapTableError::UnparallelArrays {
            inputs: inputs.len(),
            outputs: outputs.len(),
        });
    }
    if offsets.is_empty() {
        return Err(MapTableError::EmptyOffsets);
    }
    if offsets[0] != 0 {
        return Err(MapTableError::OffsetsStartNonzero(offsets[0]));
    }
    if !offsets.windows(2).all(|w| w[0] <= w[1]) {
        return Err(MapTableError::OffsetsNotMonotone);
    }
    let last = *offsets.last().expect("non-empty");
    if last != inputs.len() {
        return Err(MapTableError::OffsetsDoNotCover { last, len: inputs.len() });
    }
    Ok(())
}

/// A complete set of maps for one convolution layer, stored grouped by
/// weight index (the *gather by weight* order of the CPU/GPU flow and of
/// the weight-stationary inner loop of the accelerator) in SoA form.
///
/// # Examples
///
/// ```
/// use pointacc_geom::{MapEntry, MapTable};
/// let t = MapTable::from_entries(
///     vec![MapEntry::new(0, 0, 1), MapEntry::new(1, 0, 0)],
///     2,
/// );
/// assert_eq!(t.group(0).inputs(), &[1]);
/// assert_eq!(t.group(1).entry(0), MapEntry::new(0, 0, 1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MapTable {
    inputs: Vec<u32>,
    outputs: Vec<u32>,
    /// CSR-style offsets: group `w` is index range `offsets[w]..offsets[w+1]`.
    offsets: Vec<usize>,
}

impl MapTable {
    /// Builds a table from unordered entries, grouping by weight index and
    /// keeping the original relative order within a group (stable counting
    /// sort, so the map order inside a weight group is the order the
    /// mapping operation emitted — which for the merge-sort based unit is
    /// output coordinate order).
    ///
    /// # Panics
    ///
    /// Panics if any entry's `weight >= n_weights`.
    pub fn from_entries(entries: Vec<MapEntry>, n_weights: usize) -> Self {
        assert!(
            entries.iter().all(|e| (e.weight as usize) < n_weights),
            "weight index out of range"
        );
        let mut offsets = vec![0usize; n_weights + 1];
        for e in &entries {
            offsets[e.weight as usize + 1] += 1;
        }
        for w in 0..n_weights {
            offsets[w + 1] += offsets[w];
        }
        let mut cursor = offsets.clone();
        let mut inputs = vec![0u32; entries.len()];
        let mut outputs = vec![0u32; entries.len()];
        for e in &entries {
            let at = cursor[e.weight as usize];
            inputs[at] = e.input;
            outputs[at] = e.output;
            cursor[e.weight as usize] += 1;
        }
        MapTable { inputs, outputs, offsets }
    }

    /// Builds a table directly from SoA storage already grouped by weight:
    /// `inputs`/`outputs` are parallel arrays and `offsets` the CSR group
    /// boundaries (`offsets.len() == n_weights + 1`). This is the
    /// allocation-free path the fused kernel-map builder uses.
    ///
    /// # Panics
    ///
    /// Panics if the arrays disagree in length or `offsets` is not a
    /// monotone prefix-sum ending at the array length.
    pub fn from_soa(inputs: Vec<u32>, outputs: Vec<u32>, offsets: Vec<usize>) -> Self {
        // lint: allow(panic): documented panicking facade over try_from_soa.
        Self::try_from_soa(inputs, outputs, offsets).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`MapTable::from_soa`] with the validation failures surfaced as a
    /// typed [`MapTableError`] instead of a panic — the entry point
    /// deserializers (the trace-artifact codec) use so a corrupt byte
    /// stream is rejected instead of aborting the process.
    pub fn try_from_soa(
        inputs: Vec<u32>,
        outputs: Vec<u32>,
        offsets: Vec<usize>,
    ) -> Result<Self, MapTableError> {
        validate_soa(&inputs, &outputs, &offsets)?;
        Ok(MapTable { inputs, outputs, offsets })
    }

    /// Re-checks the CSR invariants on an existing table, returning the
    /// same typed [`MapTableError`]s as [`MapTable::try_from_soa`].
    ///
    /// Tables built through the constructors uphold these invariants by
    /// construction; this is the re-validation entry point for tables
    /// that crossed a trust boundary (deserialized trace artifacts, the
    /// static trace verifier).
    pub fn validate(&self) -> Result<(), MapTableError> {
        validate_soa(&self.inputs, &self.outputs, &self.offsets)
    }

    /// The CSR group boundaries: group `w` spans
    /// `offsets()[w]..offsets()[w+1]` of [`MapTable::inputs`] /
    /// [`MapTable::outputs`]. Always `n_weights() + 1` monotone entries
    /// starting at 0 and ending at [`MapTable::len`] — together with the
    /// index arrays this is the complete wire representation of the
    /// table ([`MapTable::try_from_soa`] is the inverse).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Number of weight groups.
    pub fn n_weights(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of maps.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether there are no maps.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// The maps associated with weight `w`, as SoA index slices.
    ///
    /// # Panics
    ///
    /// Panics if `w >= n_weights`.
    pub fn group(&self, w: usize) -> MapGroup<'_> {
        let range = self.offsets[w]..self.offsets[w + 1];
        MapGroup {
            inputs: &self.inputs[range.clone()],
            outputs: &self.outputs[range],
            weight: w as u16,
        }
    }

    /// Every map's input point index, grouped by weight.
    pub fn inputs(&self) -> &[u32] {
        &self.inputs
    }

    /// Every map's output point index, grouped by weight.
    pub fn outputs(&self) -> &[u32] {
        &self.outputs
    }

    /// Iterates all maps in (weight, emission) order as [`MapEntry`]s.
    pub fn iter(&self) -> impl Iterator<Item = MapEntry> + '_ {
        (0..self.n_weights()).flat_map(move |w| self.group(w).iter())
    }

    /// Materializes all maps in (weight, emission) order (allocates; hot
    /// paths should iterate [`MapTable::group`] slices instead).
    pub fn to_entries(&self) -> Vec<MapEntry> {
        self.iter().collect()
    }

    /// Map counts per weight group.
    pub fn counts(&self) -> Vec<usize> {
        (0..self.n_weights()).map(|w| self.group(w).len()).collect()
    }

    /// Builds the transposed table (inputs and outputs swapped, weight
    /// index mirrored through `n_weights-1-w`), which is exactly the map
    /// set of the corresponding transposed convolution used on the decoder
    /// path of U-shaped SparseConv networks.
    #[must_use]
    pub fn transpose(&self) -> MapTable {
        let n_w = self.n_weights();
        let entries = self
            .iter()
            .map(|e| MapEntry::new(e.output, e.input, (n_w - 1 - e.weight as usize) as u16))
            .collect();
        MapTable::from_entries(entries, n_w)
    }

    /// Returns entries sorted in canonical `(weight, output, input)` order;
    /// used by tests to compare tables produced by different algorithms.
    pub fn canonicalized(&self) -> Vec<MapEntry> {
        let mut v = self.to_entries();
        v.sort_by_key(|e| (e.weight, e.output, e.input));
        v
    }

    /// Average number of times each distinct input point is referenced
    /// (feature-reuse factor; drives the cache hit rate of Fig. 18).
    pub fn input_reuse(&self) -> f64 {
        if self.inputs.is_empty() {
            return 0.0;
        }
        let mut inputs = self.inputs.clone();
        inputs.sort_unstable();
        inputs.dedup();
        self.inputs.len() as f64 / inputs.len() as f64
    }
}

/// Why a `(table, geometry)` pair cannot form a valid [`KernelMap`]
/// (returned by [`KernelMap::try_new`]), naming the offending weight
/// group and entry so diagnostics point at the exact map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelMapError {
    /// The table itself violates the CSR invariants.
    Table(MapTableError),
    /// The table's weight-group count is not the declared kernel volume.
    VolumeMismatch {
        /// Declared kernel volume (`kernel_size³`).
        kernel_volume: usize,
        /// Weight groups the table actually holds.
        n_weights: usize,
    },
    /// A map's input index is outside the declared input cloud.
    InputOutOfBounds {
        /// Weight group holding the offending map.
        group: usize,
        /// Entry position within the group.
        entry: usize,
        /// The out-of-range input index.
        index: u32,
        /// Declared input cloud size the index must stay below.
        n_in: usize,
    },
    /// A map's output index is outside the declared output cloud.
    OutputOutOfBounds {
        /// Weight group holding the offending map.
        group: usize,
        /// Entry position within the group.
        entry: usize,
        /// The out-of-range output index.
        index: u32,
        /// Declared output cloud size the index must stay below.
        n_out: usize,
    },
}

impl std::fmt::Display for KernelMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            KernelMapError::Table(ref e) => write!(f, "malformed map table: {e}"),
            KernelMapError::VolumeMismatch { kernel_volume, n_weights } => {
                write!(f, "kernel volume {kernel_volume} != {n_weights} weight groups")
            }
            KernelMapError::InputOutOfBounds { group, entry, index, n_in } => write!(
                f,
                "map (group {group}, entry {entry}) input {index} outside input cloud of {n_in}"
            ),
            KernelMapError::OutputOutOfBounds { group, entry, index, n_out } => write!(
                f,
                "map (group {group}, entry {entry}) output {index} outside output cloud of {n_out}"
            ),
        }
    }
}

impl std::error::Error for KernelMapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KernelMapError::Table(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MapTableError> for KernelMapError {
    fn from(e: MapTableError) -> Self {
        KernelMapError::Table(e)
    }
}

/// The complete kernel map of one sparse convolution layer: the
/// [`MapTable`] plus the geometry it connects, so consumers can bounds-
/// check gathers and scatters without re-deriving cloud sizes.
///
/// Constructors cover the three shapes a MinkowskiNet-style U-Net needs:
/// [`KernelMap::unit_stride`] (encoder/decoder body convs),
/// [`KernelMap::downsample`] (stride-`s` encoder stages, which also
/// produce the coarser output cloud), and [`KernelMap::transposed`]
/// (decoder upsampling: the forward fine→coarse map transposed).
///
/// # Examples
///
/// ```
/// use pointacc_geom::{Coord, KernelMap, VoxelCloud};
/// let cloud = VoxelCloud::from_unsorted(
///     vec![Coord::new(0, 0, 0), Coord::new(1, 0, 0), Coord::new(3, 1, 0)],
///     1,
/// );
/// let km = KernelMap::unit_stride(&cloud, 3);
/// assert_eq!(km.kernel_volume(), 27);
/// assert_eq!((km.n_in(), km.n_out()), (3, 3));
/// // Every voxel maps onto itself through the center offset.
/// assert!(km.table().len() >= cloud.len());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelMap {
    table: MapTable,
    n_in: usize,
    n_out: usize,
    kernel_volume: usize,
}

impl KernelMap {
    fn new(table: MapTable, n_in: usize, n_out: usize, kernel_volume: usize) -> Self {
        // The mapping backends construct in-bounds tables by design;
        // debug builds re-prove it through the typed checker so a backend
        // regression names the offending group/entry instead of failing
        // later inside a gather.
        debug_assert!(
            Self::check(&table, n_in, n_out, kernel_volume).is_ok(),
            "kernel map references out-of-range points: {:?}",
            Self::check(&table, n_in, n_out, kernel_volume)
        );
        KernelMap { table, n_in, n_out, kernel_volume }
    }

    /// Builds a kernel map from parts that did **not** come from a
    /// trusted mapping backend, verifying the table's CSR invariants,
    /// the group-count/kernel-volume agreement and every index bound —
    /// the typed-error counterpart of the backend constructors.
    pub fn try_new(
        table: MapTable,
        n_in: usize,
        n_out: usize,
        kernel_volume: usize,
    ) -> Result<Self, KernelMapError> {
        Self::check(&table, n_in, n_out, kernel_volume)?;
        Ok(KernelMap { table, n_in, n_out, kernel_volume })
    }

    /// The invariant body of [`KernelMap::try_new`], naming the first
    /// offending group/entry on failure.
    fn check(
        table: &MapTable,
        n_in: usize,
        n_out: usize,
        kernel_volume: usize,
    ) -> Result<(), KernelMapError> {
        table.validate()?;
        if table.n_weights() != kernel_volume {
            return Err(KernelMapError::VolumeMismatch {
                kernel_volume,
                n_weights: table.n_weights(),
            });
        }
        for group in 0..table.n_weights() {
            let g = table.group(group);
            for (entry, (&input, &output)) in g.inputs().iter().zip(g.outputs()).enumerate() {
                if input as usize >= n_in {
                    return Err(KernelMapError::InputOutOfBounds {
                        group,
                        entry,
                        index: input,
                        n_in,
                    });
                }
                if output as usize >= n_out {
                    return Err(KernelMapError::OutputOutOfBounds {
                        group,
                        entry,
                        index: output,
                        n_out,
                    });
                }
            }
        }
        Ok(())
    }

    /// Maps of a stride-1 convolution: input and output share `cloud`'s
    /// coordinates, so every voxel maps onto itself through the center
    /// offset (odd kernels) plus one map per occupied neighbor offset.
    ///
    /// Built through the process-wide
    /// [`default_backend`](crate::index::default_backend); use
    /// [`KernelMap::unit_stride_with`] to pin a backend explicitly.
    pub fn unit_stride(cloud: &VoxelCloud, kernel_size: usize) -> Self {
        Self::unit_stride_with(default_backend(), cloud, kernel_size)
    }

    /// [`KernelMap::unit_stride`] through an explicit mapping backend.
    pub fn unit_stride_with(
        backend: &dyn MappingBackend,
        cloud: &VoxelCloud,
        kernel_size: usize,
    ) -> Self {
        let table = backend.kernel_map(cloud, cloud, kernel_size);
        KernelMap::new(table, cloud.len(), cloud.len(), kernel_size.pow(3))
    }

    /// Maps of a stride-`stride` downsampling convolution: quantizes
    /// `cloud` to the coarser lattice, then maps every input voxel into
    /// the output cell it falls in. Returns the coarse cloud alongside
    /// the maps (the executor threads it to the next layer).
    ///
    /// Built through the process-wide
    /// [`default_backend`](crate::index::default_backend); use
    /// [`KernelMap::downsample_with`] to pin a backend explicitly.
    pub fn downsample(cloud: &VoxelCloud, kernel_size: usize, stride: i32) -> (VoxelCloud, Self) {
        Self::downsample_with(default_backend(), cloud, kernel_size, stride)
    }

    /// [`KernelMap::downsample`] through an explicit mapping backend.
    pub fn downsample_with(
        backend: &dyn MappingBackend,
        cloud: &VoxelCloud,
        kernel_size: usize,
        stride: i32,
    ) -> (VoxelCloud, Self) {
        let (coarse, _) = cloud.downsample(stride);
        let table = backend.kernel_map(cloud, &coarse, kernel_size);
        let km = KernelMap::new(table, cloud.len(), coarse.len(), kernel_size.pow(3));
        (coarse, km)
    }

    /// Maps of the transposed (upsampling) convolution from `coarse`
    /// back onto `fine`: exactly the forward `fine → coarse` map with
    /// inputs/outputs swapped and the weight index mirrored — the
    /// decoder counterpart of [`KernelMap::downsample`].
    ///
    /// Built through the process-wide
    /// [`default_backend`](crate::index::default_backend); use
    /// [`KernelMap::transposed_with`] to pin a backend explicitly.
    pub fn transposed(fine: &VoxelCloud, coarse: &VoxelCloud, kernel_size: usize) -> Self {
        Self::transposed_with(default_backend(), fine, coarse, kernel_size)
    }

    /// [`KernelMap::transposed`] through an explicit mapping backend.
    pub fn transposed_with(
        backend: &dyn MappingBackend,
        fine: &VoxelCloud,
        coarse: &VoxelCloud,
        kernel_size: usize,
    ) -> Self {
        let table = backend.kernel_map(fine, coarse, kernel_size).transpose();
        KernelMap::new(table, coarse.len(), fine.len(), kernel_size.pow(3))
    }

    /// The underlying map table, grouped by weight index.
    pub fn table(&self) -> &MapTable {
        &self.table
    }

    /// Consumes the kernel map, yielding the table (for traces that own
    /// their maps).
    pub fn into_table(self) -> MapTable {
        self.table
    }

    /// Input cloud size every `input` index is bounded by.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Output cloud size every `output` index is bounded by.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Number of weight matrices (`kernel_size³`).
    pub fn kernel_volume(&self) -> usize {
        self.kernel_volume
    }

    /// Whether every map entry stays inside the declared cloud sizes and
    /// kernel volume — the invariant the gather–GEMM–scatter executor
    /// relies on to index feature rows without bounds failures.
    pub fn is_within_bounds(&self) -> bool {
        self.table.n_weights() == self.kernel_volume
            && self.table.inputs().iter().all(|&i| (i as usize) < self.n_in)
            && self.table.outputs().iter().all(|&o| (o as usize) < self.n_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> MapTable {
        MapTable::from_entries(
            vec![
                MapEntry::new(0, 1, 2),
                MapEntry::new(1, 0, 0),
                MapEntry::new(2, 2, 2),
                MapEntry::new(3, 3, 1),
            ],
            3,
        )
    }

    #[test]
    fn groups_partition_entries() {
        let t = table();
        assert_eq!(t.len(), 4);
        assert_eq!(t.group(0).len(), 1);
        assert_eq!(t.group(1).len(), 1);
        assert_eq!(t.group(2).len(), 2);
        assert_eq!(t.counts(), vec![1, 1, 2]);
    }

    #[test]
    fn grouping_is_stable_within_weight() {
        let t = MapTable::from_entries(
            vec![MapEntry::new(5, 0, 1), MapEntry::new(3, 0, 1), MapEntry::new(4, 0, 0)],
            2,
        );
        assert_eq!(t.group(1).inputs(), &[5, 3]);
        assert_eq!(t.group(1).entry(0).input, 5);
        assert_eq!(t.group(1).entry(1).input, 3);
    }

    #[test]
    fn soa_roundtrips_through_entries() {
        let t = table();
        let rebuilt = MapTable::from_entries(t.to_entries(), t.n_weights());
        assert_eq!(t, rebuilt);
        assert_eq!(t.inputs().len(), t.len());
        assert_eq!(t.outputs().len(), t.len());
        assert_eq!(t.iter().count(), t.len());
    }

    #[test]
    fn from_soa_matches_from_entries() {
        let t = table();
        let soa = MapTable::from_soa(
            t.inputs().to_vec(),
            t.outputs().to_vec(),
            (0..=t.n_weights()).map(|w| t.counts()[..w].iter().sum()).collect(),
        );
        assert_eq!(t, soa);
    }

    #[test]
    #[should_panic(expected = "offsets must cover arrays")]
    fn from_soa_rejects_short_offsets() {
        let _ = MapTable::from_soa(vec![1, 2], vec![0, 0], vec![0, 1]);
    }

    #[test]
    fn try_from_soa_returns_typed_errors() {
        assert_eq!(
            MapTable::try_from_soa(vec![1], vec![0, 0], vec![0, 1]),
            Err(MapTableError::UnparallelArrays { inputs: 1, outputs: 2 })
        );
        assert_eq!(
            MapTable::try_from_soa(vec![], vec![], vec![]),
            Err(MapTableError::EmptyOffsets)
        );
        assert_eq!(
            MapTable::try_from_soa(vec![1], vec![0], vec![1, 1]),
            Err(MapTableError::OffsetsStartNonzero(1))
        );
        assert_eq!(
            MapTable::try_from_soa(vec![1, 2], vec![0, 0], vec![0, 2, 1, 2]),
            Err(MapTableError::OffsetsNotMonotone)
        );
        assert_eq!(
            MapTable::try_from_soa(vec![1, 2], vec![0, 0], vec![0, 1]),
            Err(MapTableError::OffsetsDoNotCover { last: 1, len: 2 })
        );
        let ok = MapTable::try_from_soa(vec![1, 2], vec![0, 0], vec![0, 1, 2]).unwrap();
        assert_eq!(ok.offsets(), &[0, 1, 2]);
        assert_eq!(ok.n_weights(), 2);
    }

    #[test]
    fn transpose_swaps_and_mirrors() {
        let t = table();
        let tt = t.transpose();
        assert_eq!(tt.len(), t.len());
        // (0 -> 1, w2) becomes (1 -> 0, w0) with 3 weights.
        assert!(tt.group(0).iter().any(|e| e == MapEntry::new(1, 0, 0)));
        // Transposing twice is the identity.
        assert_eq!(tt.transpose().canonicalized(), t.canonicalized());
    }

    #[test]
    fn input_reuse_counts_duplicates() {
        let t = MapTable::from_entries(
            vec![MapEntry::new(0, 0, 0), MapEntry::new(0, 1, 0), MapEntry::new(1, 1, 0)],
            1,
        );
        assert!((t.input_reuse() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "weight index out of range")]
    fn weight_out_of_range_rejected() {
        let _ = MapTable::from_entries(vec![MapEntry::new(0, 0, 5)], 2);
    }

    mod kernel_map {
        use super::*;
        use crate::Coord;

        fn cloud() -> VoxelCloud {
            let cs = [(1, 1, 0), (2, 2, 0), (2, 4, 0), (3, 2, 0), (4, 3, 0)];
            VoxelCloud::from_unsorted(cs.iter().map(|&c| Coord::from(c)).collect(), 1)
        }

        #[test]
        fn unit_stride_is_self_map_at_center() {
            let c = cloud();
            let km = KernelMap::unit_stride(&c, 3);
            assert_eq!((km.n_in(), km.n_out(), km.kernel_volume()), (5, 5, 27));
            assert!(km.is_within_bounds());
            // Center offset of a 3³ kernel maps every voxel to itself.
            let center = km.table().group(13);
            assert_eq!(center.len(), c.len());
            assert_eq!(center.inputs(), center.outputs());
        }

        #[test]
        fn downsample_covers_every_input_once() {
            let c = cloud();
            let (coarse, km) = KernelMap::downsample(&c, 2, 2);
            assert_eq!(km.n_in(), c.len());
            assert_eq!(km.n_out(), coarse.len());
            assert!(km.is_within_bounds());
            // A kernel-2/stride-2 conv touches every input exactly once.
            assert_eq!(km.table().len(), c.len());
            let mut inputs: Vec<u32> = km.table().inputs().to_vec();
            inputs.sort_unstable();
            inputs.dedup();
            assert_eq!(inputs.len(), c.len());
        }

        #[test]
        fn transposed_is_forward_map_flipped() {
            let c = cloud();
            let (coarse, fwd) = KernelMap::downsample(&c, 2, 2);
            let tr = KernelMap::transposed(&c, &coarse, 2);
            assert_eq!((tr.n_in(), tr.n_out()), (fwd.n_out(), fwd.n_in()));
            assert!(tr.is_within_bounds());
            assert_eq!(tr.table().transpose().canonicalized(), fwd.table().canonicalized());
        }

        #[test]
        fn bounds_check_catches_truncated_clouds() {
            let c = cloud();
            let km = KernelMap::unit_stride(&c, 3);
            let truncated =
                KernelMap { table: km.table().clone(), n_in: 1, n_out: 1, kernel_volume: 27 };
            assert!(!truncated.is_within_bounds());
        }

        #[test]
        fn try_new_accepts_backend_output_and_names_violations() {
            let c = cloud();
            let km = KernelMap::unit_stride(&c, 3);
            let ok = KernelMap::try_new(km.table().clone(), km.n_in(), km.n_out(), 27)
                .expect("backend tables are in bounds");
            assert_eq!(ok, km);
            // Wrong kernel volume.
            assert_eq!(
                KernelMap::try_new(km.table().clone(), km.n_in(), km.n_out(), 8),
                Err(KernelMapError::VolumeMismatch { kernel_volume: 8, n_weights: 27 })
            );
            // Truncated input cloud: the error names the first bad map.
            let err = KernelMap::try_new(km.table().clone(), 1, km.n_out(), 27).unwrap_err();
            assert!(
                matches!(err, KernelMapError::InputOutOfBounds { n_in: 1, index, .. } if index >= 1),
                "{err:?}"
            );
            // Truncated output cloud.
            let err = KernelMap::try_new(km.table().clone(), km.n_in(), 1, 27).unwrap_err();
            assert!(matches!(err, KernelMapError::OutputOutOfBounds { n_out: 1, .. }), "{err:?}");
        }

        #[test]
        fn try_new_rejects_malformed_tables() {
            let t = MapTable::from_entries(vec![MapEntry::new(0, 0, 0)], 1);
            let err = KernelMap::try_new(t, 0, 1, 1).unwrap_err();
            assert!(matches!(err, KernelMapError::InputOutOfBounds { .. }), "{err:?}");
        }
    }

    #[test]
    fn validate_accepts_constructed_tables() {
        assert_eq!(table().validate(), Ok(()));
        assert_eq!(MapTable::default().validate(), Err(MapTableError::EmptyOffsets));
    }
}
