//! Input→output maps: the product of every mapping operation.
//!
//! A *map* is the tuple `(input point index, output point index, weight
//! index)` (paper §2). Point cloud convolution iterates over the maps,
//! multiplies the input feature by the weight matrix selected by the weight
//! index and aggregates the partial sum into the output point.

/// One `(input, output, weight)` map tuple.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MapEntry {
    /// Index of the input point in the input cloud.
    pub input: u32,
    /// Index of the output point in the output cloud.
    pub output: u32,
    /// Index of the weight matrix (kernel offset index for SparseConv,
    /// always 0 for shared-weight PointNet++-style neighborhoods).
    pub weight: u16,
}

impl MapEntry {
    /// Creates a map entry.
    pub fn new(input: u32, output: u32, weight: u16) -> Self {
        MapEntry { input, output, weight }
    }
}

/// A complete set of maps for one convolution layer, stored grouped by
/// weight index (the *gather by weight* order of the CPU/GPU flow and of
/// the weight-stationary inner loop of the accelerator).
///
/// # Examples
///
/// ```
/// use pointacc_geom::{MapEntry, MapTable};
/// let t = MapTable::from_entries(
///     vec![MapEntry::new(0, 0, 1), MapEntry::new(1, 0, 0)],
///     2,
/// );
/// assert_eq!(t.group(0), &[MapEntry::new(1, 0, 0)]);
/// assert_eq!(t.group(1), &[MapEntry::new(0, 0, 1)]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MapTable {
    entries: Vec<MapEntry>,
    /// CSR-style offsets: group `w` is `entries[offsets[w]..offsets[w+1]]`.
    offsets: Vec<usize>,
}

impl MapTable {
    /// Builds a table from unordered entries, grouping by weight index and
    /// keeping the original relative order within a group (stable sort, so
    /// the map order inside a weight group is the order the mapping
    /// operation emitted — which for the merge-sort based unit is output
    /// coordinate order).
    ///
    /// # Panics
    ///
    /// Panics if any entry's `weight >= n_weights`.
    pub fn from_entries(mut entries: Vec<MapEntry>, n_weights: usize) -> Self {
        assert!(
            entries.iter().all(|e| (e.weight as usize) < n_weights),
            "weight index out of range"
        );
        entries.sort_by_key(|e| e.weight);
        let mut offsets = vec![0usize; n_weights + 1];
        for e in &entries {
            offsets[e.weight as usize + 1] += 1;
        }
        for w in 0..n_weights {
            offsets[w + 1] += offsets[w];
        }
        MapTable { entries, offsets }
    }

    /// Number of weight groups.
    pub fn n_weights(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of maps.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no maps.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The maps associated with weight `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w >= n_weights`.
    pub fn group(&self, w: usize) -> &[MapEntry] {
        &self.entries[self.offsets[w]..self.offsets[w + 1]]
    }

    /// All entries, grouped by weight.
    pub fn entries(&self) -> &[MapEntry] {
        &self.entries
    }

    /// Map counts per weight group.
    pub fn counts(&self) -> Vec<usize> {
        (0..self.n_weights()).map(|w| self.group(w).len()).collect()
    }

    /// Builds the transposed table (inputs and outputs swapped, weight
    /// index mirrored through `n_weights-1-w`), which is exactly the map
    /// set of the corresponding transposed convolution used on the decoder
    /// path of U-shaped SparseConv networks.
    #[must_use]
    pub fn transpose(&self) -> MapTable {
        let n_w = self.n_weights();
        let entries = self
            .entries
            .iter()
            .map(|e| MapEntry::new(e.output, e.input, (n_w - 1 - e.weight as usize) as u16))
            .collect();
        MapTable::from_entries(entries, n_w)
    }

    /// Returns entries sorted in canonical `(weight, output, input)` order;
    /// used by tests to compare tables produced by different algorithms.
    pub fn canonicalized(&self) -> Vec<MapEntry> {
        let mut v = self.entries.clone();
        v.sort_by_key(|e| (e.weight, e.output, e.input));
        v
    }

    /// Average number of times each distinct input point is referenced
    /// (feature-reuse factor; drives the cache hit rate of Fig. 18).
    pub fn input_reuse(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let mut inputs: Vec<u32> = self.entries.iter().map(|e| e.input).collect();
        inputs.sort_unstable();
        inputs.dedup();
        self.entries.len() as f64 / inputs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> MapTable {
        MapTable::from_entries(
            vec![
                MapEntry::new(0, 1, 2),
                MapEntry::new(1, 0, 0),
                MapEntry::new(2, 2, 2),
                MapEntry::new(3, 3, 1),
            ],
            3,
        )
    }

    #[test]
    fn groups_partition_entries() {
        let t = table();
        assert_eq!(t.len(), 4);
        assert_eq!(t.group(0).len(), 1);
        assert_eq!(t.group(1).len(), 1);
        assert_eq!(t.group(2).len(), 2);
        assert_eq!(t.counts(), vec![1, 1, 2]);
    }

    #[test]
    fn grouping_is_stable_within_weight() {
        let t = MapTable::from_entries(
            vec![MapEntry::new(5, 0, 1), MapEntry::new(3, 0, 1), MapEntry::new(4, 0, 0)],
            2,
        );
        assert_eq!(t.group(1)[0].input, 5);
        assert_eq!(t.group(1)[1].input, 3);
    }

    #[test]
    fn transpose_swaps_and_mirrors() {
        let t = table();
        let tt = t.transpose();
        assert_eq!(tt.len(), t.len());
        // (0 -> 1, w2) becomes (1 -> 0, w0) with 3 weights.
        assert!(tt.group(0).contains(&MapEntry::new(1, 0, 0)));
        // Transposing twice is the identity.
        assert_eq!(tt.transpose().canonicalized(), t.canonicalized());
    }

    #[test]
    fn input_reuse_counts_duplicates() {
        let t = MapTable::from_entries(
            vec![MapEntry::new(0, 0, 0), MapEntry::new(0, 1, 0), MapEntry::new(1, 1, 0)],
            1,
        );
        assert!((t.input_reuse() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "weight index out of range")]
    fn weight_out_of_range_rejected() {
        let _ = MapTable::from_entries(vec![MapEntry::new(0, 0, 5)], 2);
    }
}
