//! Minimal thread-parallel map, shared by the whole workspace.
//!
//! This lives at the bottom of the crate graph so the mapping backends in
//! [`crate::index`] can parallelize per-query and per-offset work with
//! the *same* scheduler the bench harness uses for (engine × benchmark ×
//! seed) grids — `pointacc_bench::harness` re-exports these functions
//! unchanged.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// Worker-thread count: `POINTACC_THREADS` when set, otherwise one per
/// available core.
///
/// The environment is read **once** per process; later mutations are
/// ignored. Callers that need a specific worker count (tests, tuned
/// drivers) should use [`parallel_map_with`] instead of mutating the
/// process environment.
pub fn worker_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        // lint: allow(env-var): designated read-once accessor for POINTACC_THREADS.
        std::env::var("POINTACC_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| thread::available_parallelism().map_or(4, |n| n.get()))
    })
}

/// Runs `f` over `items` on all available cores (override with
/// `POINTACC_THREADS`), preserving input order.
///
/// The unit of scheduling is one item: a shared atomic cursor hands the
/// next index to whichever worker frees up first, so skewed workloads
/// (MinkNet traces cost orders of magnitude more than PointNet) balance
/// automatically.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_with(worker_threads(), items, f)
}

/// [`parallel_map`] with an explicit worker-thread count.
pub fn parallel_map_with<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if items.len() <= 1 || workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let workers = workers.min(items.len());
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, U)>();
    let mut slots: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() || tx.send((i, f(&items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, v) in rx {
            slots[i] = Some(v);
        }
    });
    slots.into_iter().map(|v| v.expect("every index produced")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order_across_workers() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map_with(4, &items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_tiny_inputs() {
        assert_eq!(parallel_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(parallel_map(&[7u64], |&x| x + 1), vec![8]);
    }
}
