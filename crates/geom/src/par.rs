//! Persistent-pool thread-parallel map, shared by the whole workspace.
//!
//! This lives at the bottom of the crate graph so the mapping backends in
//! [`crate::index`] can parallelize per-query and per-offset work with
//! the *same* scheduler the bench harness uses for (engine × benchmark ×
//! seed) grids — `pointacc_bench::harness` re-exports these functions
//! unchanged.
//!
//! # Pool lifecycle
//!
//! The process-wide pool is built lazily on the first parallel call:
//! [`worker_threads`]` − 1` helper threads are spawned once and parked on
//! a condvar for the life of the process — steady-state [`parallel_map`]
//! calls spawn **zero** threads (verified by test via
//! [`threads_spawned`]). Each call is a *round*: the caller publishes a
//! type-erased reference to its loop body, enqueues one helper job per
//! extra worker, runs the body itself, then retires whatever jobs no
//! helper claimed (the shared cursor is exhausted by then, so an
//! unclaimed job has no work left) and blocks until every claimed job
//! has finished. Because a round always completes on its caller alone,
//! nested rounds — a grid cell's `parallel_map` fanning out into the
//! executor's per-group conv map — can never deadlock, whatever the pool
//! size. Tests that need a private scheduler build their own [`Pool`].
//!
//! # `POINTACC_THREADS`
//!
//! `POINTACC_THREADS` (read **once** per process) sets both the pool
//! size (helpers = threads − 1; the caller is always the last worker)
//! and the default fan-out of [`parallel_map`]. `POINTACC_THREADS=1`
//! keeps every map on the calling thread. [`parallel_map_with`] may ask
//! for any worker count: the pool caps *concurrency* at its size, while
//! order and results stay identical for every count by construction.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread;

/// Poison-recovering `Mutex::lock`: a panic in another worker's closure
/// must not cascade into every later round. (`pointacc_bench::sync`
/// holds the workspace helpers, but `geom` sits below it in the crate
/// graph, so the idiom is mirrored here.)
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Worker-thread count: `POINTACC_THREADS` when set, otherwise one per
/// available core.
///
/// The environment is read **once** per process; later mutations are
/// ignored. The first parallel call also sizes the process-wide pool
/// from this value, so the count is fixed for the process lifetime.
/// Callers that need a specific worker count (tests, tuned drivers)
/// should use [`parallel_map_with`] instead of mutating the process
/// environment.
pub fn worker_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        // lint: allow(env-var): designated read-once accessor for POINTACC_THREADS.
        std::env::var("POINTACC_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| thread::available_parallelism().map_or(4, |n| n.get()))
    })
}

/// Monotone count of helper threads ever spawned by [`Pool`]s in this
/// process (the global pool and any test-local ones). `parallel_map`
/// itself never spawns, so in steady state this number is constant — the
/// property the pool tests pin.
pub fn threads_spawned() -> usize {
    SPAWNED.load(Ordering::SeqCst)
}

static SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// Type-erased shared reference to one round's worker body.
///
/// The pointee is a stack-allocated closure in the caller's
/// [`Pool::map_with`] frame. The round protocol keeps it alive for every
/// dereference: each run happens strictly before that job's `pending`
/// decrement, and the owning caller does not leave its frame until
/// `pending` reaches zero. After the round the pointer may dangle, but
/// it is never dereferenced again (a raw pointer, unlike a reference,
/// may dangle safely).
#[derive(Clone, Copy)]
struct TaskRef(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (shared calls from any thread are safe)
// and outlives every dereference per the round protocol above. This is
// the one lifetime erasure that lets a persistent pool run borrowing
// closures — the same erasure every scoped-pool implementation makes.
// lint: allow(allow-attr): the crate denies unsafe_code; this is the one audited exemption.
#[allow(unsafe_code)]
// lint: allow(unsafe): audited pool-task lifetime erasure; see TaskRef docs.
unsafe impl Send for TaskRef {}

impl TaskRef {
    /// Erases `body`'s borrow lifetime so the job can sit in the
    /// process-wide queue. The caller must uphold the round protocol
    /// documented on [`TaskRef`]: stay in its frame until every job
    /// holding this pointer has been retired.
    // lint: allow(allow-attr): the crate denies unsafe_code; this is the one audited exemption.
    #[allow(unsafe_code)]
    fn erase(body: &(dyn Fn() + Sync)) -> TaskRef {
        // SAFETY: only the lifetime is transmuted (the pointee type is
        // unchanged), and the pointer is dereferenced exclusively while
        // the round's caller is still blocked in `map_with`.
        // lint: allow(unsafe): audited pool-task lifetime erasure; see TaskRef docs.
        let erased: &'static (dyn Fn() + Sync) = unsafe { std::mem::transmute(body) };
        TaskRef(erased as *const (dyn Fn() + Sync))
    }

    /// Runs the body once, catching panics so a poisoned closure cannot
    /// take the pool worker down with it.
    // lint: allow(allow-attr): the crate denies unsafe_code; this is the one audited exemption.
    #[allow(unsafe_code)]
    fn run(&self) -> Result<(), Box<dyn Any + Send>> {
        // SAFETY: see the `Send` impl — the round's caller is blocked in
        // `map_with` until this job is retired, so the pointee is alive.
        // lint: allow(unsafe): audited pool-task lifetime erasure; see TaskRef docs.
        let body = unsafe { &*self.0 };
        catch_unwind(AssertUnwindSafe(body))
    }
}

/// Completion tracking for one `map_with` round.
struct Round {
    /// Helper jobs enqueued for this round and not yet retired.
    pending: Mutex<usize>,
    done: Condvar,
    /// First panic payload raised by a helper body, re-raised by the
    /// caller once the round has quiesced.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Round {
    /// Retires `k` helper jobs, waking the caller when none remain.
    fn retire(&self, k: usize) {
        let mut pending = lock(&self.pending);
        *pending -= k;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

/// One queued helper job: run the round body, record any panic, retire.
struct Job {
    task: TaskRef,
    round: Arc<Round>,
}

impl Job {
    fn run(self) {
        if let Err(payload) = self.task.run() {
            lock(&self.round.panic).get_or_insert(payload);
        }
        self.round.retire(1);
    }
}

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signaled when jobs arrive (or at shutdown).
    available: Condvar,
}

/// A pool of parked helper threads executing [`Pool::map_with`] rounds.
///
/// The process-wide instance behind [`parallel_map`] is built once and
/// lives forever; tests that must observe scheduling in isolation
/// construct their own (helpers join on drop). See the module docs for
/// the round protocol and its no-deadlock argument.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawns a pool with `helpers` parked worker threads (the caller of
    /// each map is always an additional worker, so `helpers = 0` still
    /// completes every round serially).
    pub fn new(helpers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue { jobs: VecDeque::new(), shutdown: false }),
            available: Condvar::new(),
        });
        let handles = (0..helpers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                SPAWNED.fetch_add(1, Ordering::SeqCst);
                thread::spawn(move || Self::worker_loop(&shared))
            })
            .collect();
        Pool { shared, handles }
    }

    /// Number of helper threads this pool parked at construction.
    pub fn helpers(&self) -> usize {
        self.handles.len()
    }

    fn worker_loop(shared: &Shared) {
        loop {
            let job = {
                let mut q = lock(&shared.queue);
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        break job;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = shared.available.wait(q).unwrap_or_else(PoisonError::into_inner);
                }
            };
            job.run();
        }
    }

    /// Order-preserving parallel map on this pool — the semantics of
    /// [`parallel_map_with`], scheduled on this pool's helpers.
    ///
    /// The unit of scheduling is one item: a shared atomic cursor hands
    /// the next index to whichever participant frees up first, so skewed
    /// workloads (MinkNet traces cost orders of magnitude more than
    /// PointNet) balance automatically. Each participant accumulates its
    /// `(index, value)` pairs locally and merges them into the result
    /// once, so there is no per-item channel traffic.
    pub fn map_with<T, U, F>(&self, workers: usize, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        if items.len() <= 1 || workers <= 1 {
            return items.iter().map(&f).collect();
        }
        let workers = workers.min(items.len());
        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<U>>> = Mutex::new((0..items.len()).map(|_| None).collect());
        let body = || {
            let mut local: Vec<(usize, U)> = Vec::new();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                local.push((i, f(&items[i])));
            }
            if !local.is_empty() {
                let mut sink = lock(&slots);
                for (i, v) in local {
                    sink[i] = Some(v);
                }
            }
        };
        let helpers = workers - 1;
        let round = Arc::new(Round {
            pending: Mutex::new(helpers),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        let task = TaskRef::erase(&body);
        {
            let mut q = lock(&self.shared.queue);
            for _ in 0..helpers {
                q.jobs.push_back(Job { task, round: Arc::clone(&round) });
            }
        }
        self.shared.available.notify_all();
        // The caller is the round's first participant.
        let mine = catch_unwind(AssertUnwindSafe(&body));
        // Retire the helper jobs no pool worker claimed: the cursor is
        // exhausted, so running one would be a no-op. This is what makes
        // nested rounds deadlock-free — a caller never waits on work
        // only a busy pool could perform.
        {
            let mut q = lock(&self.shared.queue);
            let before = q.jobs.len();
            q.jobs.retain(|j| !Arc::ptr_eq(&j.round, &round));
            let unclaimed = before - q.jobs.len();
            drop(q);
            if unclaimed > 0 {
                round.retire(unclaimed);
            }
        }
        // Block until every claimed job has finished running the body —
        // only then may the borrowed closure (and this frame) go away.
        let mut pending = lock(&round.pending);
        while *pending > 0 {
            pending = round.done.wait(pending).unwrap_or_else(PoisonError::into_inner);
        }
        drop(pending);
        if let Err(payload) = mine {
            resume_unwind(payload);
        }
        if let Some(payload) = lock(&round.panic).take() {
            resume_unwind(payload);
        }
        let slots = slots.into_inner().unwrap_or_else(PoisonError::into_inner);
        slots.into_iter().map(|v| v.expect("every index produced")).collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        lock(&self.shared.queue).shutdown = true;
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The process-wide pool: [`worker_threads`]` − 1` helpers, built on
/// first use, never torn down.
fn global_pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::new(worker_threads().saturating_sub(1)))
}

/// Runs `f` over `items` on all available cores (override with
/// `POINTACC_THREADS`), preserving input order.
///
/// Scheduled on the process-wide persistent pool — no threads are
/// spawned per call. See the module docs for the round protocol.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_with(worker_threads(), items, f)
}

/// [`parallel_map`] with an explicit worker count (an upper bound on
/// concurrency; results are identical for every count).
pub fn parallel_map_with<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    global_pool().map_with(workers, items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order_across_workers() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map_with(4, &items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_tiny_inputs() {
        assert_eq!(parallel_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(parallel_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn steady_state_maps_spawn_zero_threads() {
        // Warm the global pool (first call may build it).
        let warm: Vec<u64> = (0..64).collect();
        let _ = parallel_map_with(8, &warm, |&x| x);
        let spawned = threads_spawned();
        for workers in [1usize, 2, 3, 8, worker_threads()] {
            for round in 0..25u64 {
                let items: Vec<u64> = (0..97).collect();
                let out = parallel_map_with(workers, &items, |&x| x * 7 + round);
                let want: Vec<u64> = items.iter().map(|&x| x * 7 + round).collect();
                assert_eq!(out, want, "workers={workers} round={round}");
            }
        }
        assert_eq!(threads_spawned(), spawned, "steady-state parallel_map must not spawn threads");
    }

    #[test]
    fn injectable_pool_is_order_identical_for_every_worker_count() {
        let pool = Pool::new(3);
        assert_eq!(pool.helpers(), 3);
        let items: Vec<u64> = (0..513).collect();
        let want: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(31) ^ 7).collect();
        for workers in [1usize, 2, 3, 8, worker_threads().max(2)] {
            assert_eq!(
                pool.map_with(workers, &items, |&x| x.wrapping_mul(31) ^ 7),
                want,
                "workers={workers}"
            );
        }
        // Drop joins the helpers cleanly.
    }

    #[test]
    fn nested_rounds_complete_without_deadlock() {
        let outer: Vec<u64> = (0..8).collect();
        let out = parallel_map_with(4, &outer, |&x| {
            let inner: Vec<u64> = (0..32).collect();
            parallel_map_with(4, &inner, |&y| y * x).iter().sum::<u64>()
        });
        let want: Vec<u64> = (0..8).map(|x| (0..32).map(|y| y * x).sum()).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn worker_panics_propagate_and_leave_the_pool_usable() {
        let items: Vec<u64> = (0..64).collect();
        let poisoned = std::panic::catch_unwind(|| {
            parallel_map_with(4, &items, |&x| {
                assert!(x != 13, "boom");
                x
            })
        });
        assert!(poisoned.is_err(), "the item panic must reach the caller");
        // The pool survives: later rounds still run and stay ordered.
        let out = parallel_map_with(4, &items, |&x| x + 1);
        assert_eq!(out, items.iter().map(|&x| x + 1).collect::<Vec<_>>());
    }
}
