//! Grid-hash spatial indexing and the unified mapping-op backend.
//!
//! The golden algorithms in [`crate::golden`] are deliberately naive —
//! O(n²) kNN scans, O(n·m) FPS — which makes them a trustworthy test
//! oracle and a terrible hot path: trace compilation and functional
//! execution spend almost all their time in them. This module provides
//! the production path:
//!
//! - [`GridIndex`] — a uniform grid hash over continuous points with
//!   bucketed neighbor iteration (expanding-shell kNN, AABB ball query),
//! - [`CoordIndex`] — a hash index over a [`VoxelCloud`]'s lattice
//!   coordinates, probed per kernel offset during map construction,
//! - [`MappingBackend`] — one trait for every mapping operation (FPS,
//!   kNN, ball query, kernel mapping), with two implementations:
//!   [`Golden`] (the brute-force oracle) and [`Indexed`] (grid-hash
//!   traversal plus per-query/per-offset parallelism via [`crate::par`]).
//!
//! **Both backends are bit-identical by construction** — same ranking
//! key `(dist², index)`, same tie-breaking, same map emission order per
//! weight group — and the equivalence is property-tested over random
//! clouds, radii and strides in `tests/mapping_backends.rs`. Consumers
//! (the reference executor, `KernelMap` constructors, the bench harness)
//! default to [`Indexed`]; set `POINTACC_BACKEND=golden` to force the
//! oracle (read once per process).

use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::thread;

use crate::par::{parallel_map, worker_threads};
use crate::{golden, Coord, MapEntry, MapTable, Point3, PointSet, VoxelCloud};

/// Packs a non-negative squared distance and tie-breaking index into one
/// ascending comparator key: `(dist² bits, index)`. IEEE-754 bit patterns
/// of non-negative floats preserve order, so sorting by this key equals
/// sorting by `(dist², index)` — the ranking key of the golden kNN, the
/// MPU's top-k comparators, and the grid traversal below.
pub fn dist_key(d2: f32, index: u32) -> u128 {
    debug_assert!(d2 >= 0.0, "squared distances are non-negative");
    ((d2.to_bits() as u128) << 32) | index as u128
}

/// [`dist_key`] hardened against non-finite input coordinates: a NaN
/// distance (e.g. a point with a NaN coordinate, or ∞−∞) ranks **after
/// every real distance**, so a corrupt point can never displace a real
/// neighbor. The golden oracle panics on NaN instead; the backends are
/// bit-identical over finite clouds (the documented contract), while
/// the production path degrades benignly on garbage input.
fn total_dist_key(d2: f32, index: u32) -> u128 {
    let bits = if d2.is_nan() { u32::MAX } else { d2.to_bits() };
    ((bits as u128) << 32) | index as u128
}

/// Work thresholds below which the indexed backend stays serial: thread
/// spawns cost more than the loop they would split. Kernel-map probes
/// are single hash lookups (cheap per unit of "work"), so that gate sits
/// much higher than the distance-heavy query gate.
const QUERY_PAR_WORK: usize = 1 << 13;
const KERNEL_PAR_WORK: usize = 1 << 17;
const FPS_PAR_WORK: u64 = 1 << 21;

/// A uniform grid hash over a slice of continuous points.
///
/// Cell size is chosen from the bounding box so cells hold ~2 points on
/// average (capped so the cell array stays O(n)); buckets are stored CSR
/// style. Queries walk cells in expanding Chebyshev shells (kNN) or the
/// ball's AABB (ball query) and rank candidates by [`dist_key`], so the
/// results are identical to a brute-force scan.
///
/// # Examples
///
/// ```
/// use pointacc_geom::index::GridIndex;
/// use pointacc_geom::Point3;
///
/// let pts: Vec<Point3> = (0..64)
///     .map(|i| Point3::new(i as f32 * 0.25, (i % 8) as f32, 0.0))
///     .collect();
/// let idx = GridIndex::build(&pts);
/// let nn = idx.knn(Point3::new(0.1, 0.0, 0.0), 3);
/// assert_eq!(nn[0], 0); // nearest point first
/// assert_eq!(nn.len(), 3);
/// ```
pub struct GridIndex<'a> {
    points: &'a [Point3],
    cell: f32,
    origin: Point3,
    dims: [usize; 3],
    /// CSR offsets: bucket `b` is `entries[starts[b]..starts[b + 1]]`.
    starts: Vec<u32>,
    entries: Vec<u32>,
}

impl<'a> GridIndex<'a> {
    /// Builds the index over `points` (an empty slice yields an empty,
    /// queryable index).
    pub fn build(points: &'a [Point3]) -> Self {
        let n = points.len();
        if n == 0 {
            return GridIndex {
                points,
                cell: 1.0,
                origin: Point3::ORIGIN,
                dims: [1, 1, 1],
                starts: vec![0, 0],
                entries: Vec::new(),
            };
        }
        let mut min = points[0];
        let mut max = points[0];
        for p in points {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            min.z = min.z.min(p.z);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
            max.z = max.z.max(p.z);
        }
        let ext = [max.x - min.x, max.y - min.y, max.z - min.z];
        let (cell, dims) = if ext.iter().all(|e| e.is_finite()) {
            Self::pick_cell(ext, n)
        } else {
            // Non-finite extent: degrade to a single bucket (brute force).
            (1.0, [1, 1, 1])
        };
        let n_cells = dims[0] * dims[1] * dims[2];
        let bucket_of = |p: &Point3| -> usize {
            let cx = Self::axis_cell(p.x, min.x, cell).clamp(0, dims[0] as i128 - 1) as usize;
            let cy = Self::axis_cell(p.y, min.y, cell).clamp(0, dims[1] as i128 - 1) as usize;
            let cz = Self::axis_cell(p.z, min.z, cell).clamp(0, dims[2] as i128 - 1) as usize;
            (cx * dims[1] + cy) * dims[2] + cz
        };
        // Counting sort into CSR buckets.
        let mut starts = vec![0u32; n_cells + 1];
        for p in points {
            starts[bucket_of(p) + 1] += 1;
        }
        for b in 0..n_cells {
            starts[b + 1] += starts[b];
        }
        let mut cursor = starts.clone();
        let mut entries = vec![0u32; n];
        for (i, p) in points.iter().enumerate() {
            let b = bucket_of(p);
            entries[cursor[b] as usize] = i as u32;
            cursor[b] += 1;
        }
        GridIndex { points, cell, origin: min, dims, starts, entries }
    }

    /// Cell size targeting ~2 points per occupied cell, grown until the
    /// dense cell array stays O(n).
    fn pick_cell(ext: [f32; 3], n: usize) -> (f32, [usize; 3]) {
        let vol = ext.iter().map(|&e| e as f64).product::<f64>();
        let mut cell = ((vol / n as f64) * 2.0).cbrt() as f32;
        if !(cell.is_finite() && cell > 0.0) {
            let max_ext = ext.iter().fold(0.0f32, |a, &b| a.max(b));
            cell = max_ext / (n as f32).cbrt();
        }
        if !(cell.is_finite() && cell > 0.0) {
            cell = 1.0;
        }
        let limit = (4 * n + 64) as f64;
        loop {
            let dims = ext.map(|e| ((e / cell).floor() as i64 + 1).max(1) as usize);
            let total = dims.iter().map(|&d| d as f64).product::<f64>();
            if total <= limit {
                return (cell, dims);
            }
            cell *= 1.5;
        }
    }

    /// The cell coordinate of `v` along one axis (unclamped; `i128` so
    /// arithmetic on far-out queries cannot overflow).
    fn axis_cell(v: f32, origin: f32, cell: f32) -> i128 {
        ((v - origin) / cell).floor() as i128
    }

    /// The (unclamped) cell coordinates of a query point.
    fn cell_of(&self, q: Point3) -> [i128; 3] {
        [
            Self::axis_cell(q.x, self.origin.x, self.cell),
            Self::axis_cell(q.y, self.origin.y, self.cell),
            Self::axis_cell(q.z, self.origin.z, self.cell),
        ]
    }

    fn bucket(&self, x: usize, y: usize, z: usize) -> &[u32] {
        let b = (x * self.dims[1] + y) * self.dims[2] + z;
        &self.entries[self.starts[b] as usize..self.starts[b + 1] as usize]
    }

    /// Visits every bucket at Chebyshev cell distance exactly `r` from
    /// `c`, clipped to the grid.
    fn for_shell(&self, c: [i128; 3], r: i128, visit: &mut dyn FnMut(&[u32])) {
        let d = self.dims;
        let clip = |lo: i128, hi: i128, dim: usize| {
            let lo = lo.max(0);
            let hi = hi.min(dim as i128 - 1);
            lo..=hi
        };
        if r == 0 {
            if (0..3).all(|a| (0..d[a] as i128).contains(&c[a])) {
                visit(self.bucket(c[0] as usize, c[1] as usize, c[2] as usize));
            }
            return;
        }
        // x-faces: |δx| = r.
        for x in [c[0] - r, c[0] + r] {
            if !(0..d[0] as i128).contains(&x) {
                continue;
            }
            for y in clip(c[1] - r, c[1] + r, d[1]) {
                for z in clip(c[2] - r, c[2] + r, d[2]) {
                    visit(self.bucket(x as usize, y as usize, z as usize));
                }
            }
        }
        // y-faces: |δy| = r, |δx| < r.
        for y in [c[1] - r, c[1] + r] {
            if !(0..d[1] as i128).contains(&y) {
                continue;
            }
            for x in clip(c[0] - r + 1, c[0] + r - 1, d[0]) {
                for z in clip(c[2] - r, c[2] + r, d[2]) {
                    visit(self.bucket(x as usize, y as usize, z as usize));
                }
            }
        }
        // z-faces: |δz| = r, |δx| < r, |δy| < r.
        for z in [c[2] - r, c[2] + r] {
            if !(0..d[2] as i128).contains(&z) {
                continue;
            }
            for x in clip(c[0] - r + 1, c[0] + r - 1, d[0]) {
                for y in clip(c[1] - r + 1, c[1] + r - 1, d[1]) {
                    visit(self.bucket(x as usize, y as usize, z as usize));
                }
            }
        }
    }

    /// Brute-force fallback (pathological queries, tiny inputs): scan
    /// every point. Identical ranking key, so identical results.
    fn brute(&self, q: Point3, k: usize, radius2: Option<f32>) -> Vec<usize> {
        let mut keys: Vec<u128> = self
            .points
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                let d = p.dist2(q);
                radius2.is_none_or(|r2| d <= r2).then(|| total_dist_key(d, i as u32))
            })
            .collect();
        keys.sort_unstable();
        keys.truncate(k);
        keys.into_iter().map(|key| (key & 0xFFFF_FFFF) as usize).collect()
    }

    /// The `k` nearest points to `q` in ascending `(dist², index)` order
    /// (fewer than `k` when the index holds fewer points) — identical to
    /// [`golden::k_nearest_neighbors`] on the same input.
    pub fn knn(&self, q: Point3, k: usize) -> Vec<usize> {
        if k == 0 || self.points.is_empty() {
            return Vec::new();
        }
        let c = self.cell_of(q);
        // Distance (in cells) from the query cell to the grid box; shells
        // closer than this are empty and skipped.
        let r0: i128 = (0..3)
            .map(|a| (-c[a]).max(c[a] - (self.dims[a] as i128 - 1)).max(0))
            .max()
            .unwrap_or(0);
        let span = (self.dims[0] + self.dims[1] + self.dims[2]) as i128;
        if r0 > span + 8 {
            // Query so far outside the grid that shell walking would cost
            // more than one full scan.
            return self.brute(q, k, None);
        }
        let max_ring: i128 =
            (0..3).map(|a| c[a].max(self.dims[a] as i128 - 1 - c[a])).max().unwrap_or(0);
        // Max-heap of the best k candidate keys seen so far.
        let mut heap: BinaryHeap<u128> = BinaryHeap::with_capacity(k + 1);
        for r in r0..=max_ring.max(r0) {
            self.for_shell(c, r, &mut |bucket| {
                for &i in bucket {
                    let d = self.points[i as usize].dist2(q);
                    let key = total_dist_key(d, i);
                    if heap.len() < k {
                        heap.push(key);
                    } else if *heap.peek().expect("heap holds k keys") > key {
                        heap.pop();
                        heap.push(key);
                    }
                }
            });
            if heap.len() == k {
                // Points in shells ≥ r+1 are ≥ (r-1)·cell away (one cell
                // of slack absorbs floating-point bucketing error); once
                // that exceeds the kth distance, no candidate remains.
                let kth_d2 = f32::from_bits((*heap.peek().expect("k > 0") >> 32) as u32);
                let bound = ((r - 1).max(0) as f64) * self.cell as f64;
                if bound * bound > kth_d2 as f64 {
                    break;
                }
            }
        }
        let mut keys = heap.into_vec();
        keys.sort_unstable();
        keys.into_iter().map(|key| (key & 0xFFFF_FFFF) as usize).collect()
    }

    /// The ≤ `k` nearest points within squared radius `radius2`, in
    /// ascending `(dist², index)` order — identical to
    /// [`golden::ball_query`] on the same input.
    pub fn ball(&self, q: Point3, radius2: f32, k: usize) -> Vec<usize> {
        if k == 0 || self.points.is_empty() {
            return Vec::new();
        }
        let r = radius2.max(0.0).sqrt();
        if !r.is_finite() {
            return self.brute(q, k, Some(radius2));
        }
        // Cells overlapping the ball's AABB (computed with the same
        // monotone cell mapping as bucketing, so no candidate escapes).
        let clamp = |v: i128, dim: usize| v.clamp(0, dim as i128 - 1);
        let lo = self.cell_of(Point3::new(q.x - r, q.y - r, q.z - r));
        let hi = self.cell_of(Point3::new(q.x + r, q.y + r, q.z + r));
        if (0..3).any(|a| hi[a] < 0 || lo[a] >= self.dims[a] as i128) {
            return Vec::new();
        }
        let mut keys: Vec<u128> = Vec::new();
        for x in clamp(lo[0], self.dims[0])..=clamp(hi[0], self.dims[0]) {
            for y in clamp(lo[1], self.dims[1])..=clamp(hi[1], self.dims[1]) {
                for z in clamp(lo[2], self.dims[2])..=clamp(hi[2], self.dims[2]) {
                    for &i in self.bucket(x as usize, y as usize, z as usize) {
                        let d = self.points[i as usize].dist2(q);
                        if d <= radius2 {
                            keys.push(total_dist_key(d, i));
                        }
                    }
                }
            }
        }
        keys.sort_unstable();
        keys.truncate(k);
        keys.into_iter().map(|key| (key & 0xFFFF_FFFF) as usize).collect()
    }
}

/// A hash index over a [`VoxelCloud`]'s lattice coordinates: built once
/// per layer, probed once per (output point × kernel offset) during
/// kernel-map construction.
///
/// # Examples
///
/// ```
/// use pointacc_geom::index::CoordIndex;
/// use pointacc_geom::{Coord, VoxelCloud};
///
/// let vc = VoxelCloud::from_unsorted(vec![Coord::new(0, 0, 0), Coord::new(2, 1, 0)], 1);
/// let idx = CoordIndex::build(&vc);
/// assert_eq!(idx.get(Coord::new(2, 1, 0)), Some(1));
/// assert_eq!(idx.get(Coord::new(9, 9, 9)), None);
/// ```
pub struct CoordIndex {
    map: HashMap<Coord, u32>,
}

impl CoordIndex {
    /// Builds the index over a cloud's (unique) coordinates.
    pub fn build(cloud: &VoxelCloud) -> Self {
        CoordIndex { map: cloud.coords().iter().enumerate().map(|(i, &c)| (c, i as u32)).collect() }
    }

    /// Index of `c` in the cloud, if present.
    pub fn get(&self, c: Coord) -> Option<u32> {
        self.map.get(&c).copied()
    }

    /// Number of indexed coordinates.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// One implementation of every mapping operation (paper §2.1): farthest
/// point sampling, k-nearest-neighbors, ball query, and kernel mapping.
///
/// All implementations must be **bit-identical over clouds with finite
/// coordinates**: same ranking key `(dist², index)`, FPS starting at
/// index 0 with ties to the lowest index, kernel maps emitted per
/// offset in output order. The equivalence suite in
/// `tests/mapping_backends.rs` enforces this, and it is what lets the
/// executor swap backends without perturbing traces, golden snapshots,
/// or functional outputs. Non-finite coordinates are a caller bug and
/// outside the contract: the [`Golden`] oracle panics on the NaN
/// distances they produce, while [`Indexed`] ranks them after every
/// real neighbor so production queries degrade benignly.
pub trait MappingBackend: Sync {
    /// Short backend name for reports and benches.
    fn name(&self) -> &'static str;

    /// Farthest point sampling: `m` indices in selection order, starting
    /// at index 0, ties to the lowest index.
    ///
    /// # Panics
    ///
    /// Panics if `m > points.len()`.
    fn farthest_point_sampling(&self, points: &PointSet, m: usize) -> Vec<usize>;

    /// k-nearest-neighbors of every query: ≤ `k` indices per query in
    /// ascending `(dist², index)` order.
    fn k_nearest_neighbors(
        &self,
        input: &PointSet,
        queries: &PointSet,
        k: usize,
    ) -> Vec<Vec<usize>>;

    /// Ball query: like kNN but only points within squared radius
    /// `radius2` qualify (unpadded).
    fn ball_query(
        &self,
        input: &PointSet,
        queries: &PointSet,
        radius2: f32,
        k: usize,
    ) -> Vec<Vec<usize>>;

    /// Kernel mapping between an input and an output cloud for a cubic
    /// kernel of size `kernel_size` (offsets in [`golden::kernel_offsets`]
    /// order, maps within each weight group in output order).
    fn kernel_map(&self, input: &VoxelCloud, output: &VoxelCloud, kernel_size: usize) -> MapTable;

    /// Ball query with PointNet++-style padding: short neighborhoods
    /// repeat their nearest member, empty balls fall back to the global
    /// nearest neighbor. An empty input yields empty neighborhoods (the
    /// executor rejects empty clouds before ever padding).
    fn ball_query_padded(
        &self,
        input: &PointSet,
        queries: &PointSet,
        radius2: f32,
        k: usize,
    ) -> Vec<Vec<usize>> {
        let mut out = self.ball_query(input, queries, radius2, k);
        for (qi, nbrs) in out.iter_mut().enumerate() {
            if nbrs.is_empty() {
                let fallback = self.k_nearest_neighbors(
                    input,
                    &PointSet::from_points(vec![queries.point(qi)]),
                    1,
                );
                nbrs.extend_from_slice(&fallback[0]);
            }
            let Some(&first) = nbrs.first() else { continue };
            while nbrs.len() < k {
                nbrs.push(first);
            }
        }
        out
    }
}

/// The brute-force oracle backend: every operation delegates to
/// [`crate::golden`]. Slow by design; kept as the reference the
/// [`Indexed`] backend (and the MPU hardware model) must reproduce
/// bit-exactly.
#[derive(Copy, Clone, Debug, Default)]
pub struct Golden;

impl MappingBackend for Golden {
    fn name(&self) -> &'static str {
        "golden"
    }

    fn farthest_point_sampling(&self, points: &PointSet, m: usize) -> Vec<usize> {
        golden::farthest_point_sampling(points, m)
    }

    fn k_nearest_neighbors(
        &self,
        input: &PointSet,
        queries: &PointSet,
        k: usize,
    ) -> Vec<Vec<usize>> {
        golden::k_nearest_neighbors(input, queries, k)
    }

    fn ball_query(
        &self,
        input: &PointSet,
        queries: &PointSet,
        radius2: f32,
        k: usize,
    ) -> Vec<Vec<usize>> {
        golden::ball_query(input, queries, radius2, k)
    }

    fn kernel_map(&self, input: &VoxelCloud, output: &VoxelCloud, kernel_size: usize) -> MapTable {
        golden::kernel_map_hash(input, output, kernel_size)
    }
}

/// The production backend: [`GridIndex`] traversal for kNN/ball query,
/// chunk-parallel exact FPS, [`CoordIndex`]-probed kernel maps with
/// per-offset parallelism. Falls back to serial loops below the work
/// thresholds where thread spawns would dominate.
#[derive(Copy, Clone, Debug, Default)]
pub struct Indexed;

impl Indexed {
    /// Runs `query` over every query point, parallelizing when the total
    /// work justifies the thread spawns. Queries are handed out in
    /// chunks (several per worker for balance) so per-item scheduling
    /// and channel traffic stay off the per-query cost.
    fn batch<F>(&self, input: &PointSet, queries: &PointSet, query: F) -> Vec<Vec<usize>>
    where
        F: Fn(&GridIndex<'_>, Point3) -> Vec<usize> + Sync,
    {
        let index = GridIndex::build(input.points());
        let work = input.len().saturating_mul(queries.len());
        if work >= QUERY_PAR_WORK && queries.len() > 1 && worker_threads() > 1 {
            let qs = queries.points();
            let chunk = qs.len().div_ceil(worker_threads() * 4).max(8);
            let chunks: Vec<&[Point3]> = qs.chunks(chunk).collect();
            parallel_map(&chunks, |c| c.iter().map(|&q| query(&index, q)).collect::<Vec<_>>())
                .concat()
        } else {
            queries.points().iter().map(|&q| query(&index, q)).collect()
        }
    }
}

impl MappingBackend for Indexed {
    fn name(&self) -> &'static str {
        "indexed"
    }

    fn farthest_point_sampling(&self, points: &PointSet, m: usize) -> Vec<usize> {
        assert!(m <= points.len(), "cannot sample {m} from {} points", points.len());
        let n = points.len();
        let workers = worker_threads().min(n / 2048).max(1);
        if m == 0 || workers <= 1 || (n as u64) * (m as u64) < FPS_PAR_WORK {
            return golden::farthest_point_sampling(points, m);
        }
        fps_parallel(points, m, workers)
    }

    fn k_nearest_neighbors(
        &self,
        input: &PointSet,
        queries: &PointSet,
        k: usize,
    ) -> Vec<Vec<usize>> {
        self.batch(input, queries, |index, q| index.knn(q, k))
    }

    fn ball_query(
        &self,
        input: &PointSet,
        queries: &PointSet,
        radius2: f32,
        k: usize,
    ) -> Vec<Vec<usize>> {
        self.batch(input, queries, |index, q| index.ball(q, radius2, k))
    }

    /// Same semantics as the trait default, but the ball pass and the
    /// empty-ball nearest-neighbor fallback share one [`GridIndex`]
    /// build instead of re-indexing per fallback query.
    fn ball_query_padded(
        &self,
        input: &PointSet,
        queries: &PointSet,
        radius2: f32,
        k: usize,
    ) -> Vec<Vec<usize>> {
        self.batch(input, queries, |index, q| {
            let mut nbrs = index.ball(q, radius2, k);
            if nbrs.is_empty() {
                nbrs = index.knn(q, 1);
            }
            if let Some(&first) = nbrs.first() {
                while nbrs.len() < k {
                    nbrs.push(first);
                }
            }
            nbrs
        })
    }

    fn kernel_map(&self, input: &VoxelCloud, output: &VoxelCloud, kernel_size: usize) -> MapTable {
        let offsets = golden::kernel_offsets(kernel_size);
        let index = CoordIndex::build(input);
        let s = input.stride();
        let probe = |(w, d): &(usize, Coord)| -> Vec<MapEntry> {
            let dd = d.scale(s);
            output
                .coords()
                .iter()
                .enumerate()
                .filter_map(|(qi, &q)| {
                    index.get(q.offset(dd)).map(|pi| MapEntry::new(pi, qi as u32, *w as u16))
                })
                .collect()
        };
        let work = output.len().saturating_mul(offsets.len());
        let entries: Vec<MapEntry> = if work >= KERNEL_PAR_WORK && worker_threads() > 1 {
            let jobs: Vec<(usize, Coord)> = offsets.iter().copied().enumerate().collect();
            parallel_map(&jobs, probe).concat()
        } else {
            // Serial path: emit straight into one vector (no per-offset
            // allocations), exactly the golden loop over a shared index.
            let mut entries = Vec::new();
            for (w, &d) in offsets.iter().enumerate() {
                let dd = d.scale(s);
                for (qi, &q) in output.coords().iter().enumerate() {
                    if let Some(pi) = index.get(q.offset(dd)) {
                        entries.push(MapEntry::new(pi, qi as u32, w as u16));
                    }
                }
            }
            entries
        };
        MapTable::from_entries(entries, offsets.len())
    }
}

/// Exact chunk-parallel farthest point sampling.
///
/// Each worker owns a contiguous chunk of the running min-distance
/// array; per iteration it updates its chunk, reduces a chunk-local
/// arg-max, and publishes it. After a barrier every worker performs the
/// same deterministic cross-chunk reduction (strictly-greater distance
/// wins, ties to the lowest index — encoded so `max` on the packed key
/// implements exactly the serial scan's policy), so all workers agree on
/// the next selected point without further communication.
fn fps_parallel(points: &PointSet, m: usize, workers: usize) -> Vec<usize> {
    let n = points.len();
    let pts = points.points();
    let chunk_len = n.div_ceil(workers);
    let workers = n.div_ceil(chunk_len);
    let mut dist = vec![f32::INFINITY; n];
    // Per-worker slots: (dist bits << 32) | (u32::MAX - index), so the
    // maximum key is the maximum distance with ties to the lowest index.
    let slots: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let barrier = Barrier::new(workers);
    let mut selected = Vec::with_capacity(m);
    selected.push(0usize);

    let worker_loop = |base: usize, chunk: &mut [f32], mut record: Option<&mut Vec<usize>>| {
        let mut current = 0usize;
        for _ in 1..m {
            let q = pts[current];
            let slot = &slots[base / chunk_len];
            let mut best_key = 0u64;
            for (j, d) in chunk.iter_mut().enumerate() {
                let i = base + j;
                let nd = pts[i].dist2(q);
                if nd < *d {
                    *d = nd;
                }
                let key = ((d.to_bits() as u64) << 32) | u64::from(u32::MAX - i as u32);
                if key > best_key {
                    best_key = key;
                }
            }
            slot.store(best_key, Ordering::SeqCst);
            barrier.wait();
            let global = slots
                .iter()
                .map(|s| s.load(Ordering::SeqCst))
                .max()
                .expect("at least one worker slot");
            current = (u32::MAX - (global & 0xFFFF_FFFF) as u32) as usize;
            if let Some(sel) = record.as_deref_mut() {
                sel.push(current);
            }
            // Keep slots stable until every worker has read them.
            barrier.wait();
        }
    };

    thread::scope(|scope| {
        let mut chunks = dist.chunks_mut(chunk_len);
        let first = chunks.next().expect("n > 0");
        for (w, chunk) in chunks.enumerate() {
            let base = (w + 1) * chunk_len;
            let worker_loop = &worker_loop;
            scope.spawn(move || worker_loop(base, chunk, None));
        }
        worker_loop(0, first, Some(&mut selected));
    });
    selected
}

/// The golden oracle backend instance.
pub static GOLDEN: Golden = Golden;
/// The grid-hash production backend instance.
pub static INDEXED: Indexed = Indexed;

/// Resolves a backend by name (`"golden"` / `"indexed"`).
pub fn backend_by_name(name: &str) -> Option<&'static dyn MappingBackend> {
    match name {
        "golden" => Some(&GOLDEN),
        "indexed" => Some(&INDEXED),
        _ => None,
    }
}

/// The process-wide default backend: [`Indexed`], unless
/// `POINTACC_BACKEND=golden` forces the oracle. The environment is read
/// **once** per process; code that needs a specific backend should pass
/// it explicitly (e.g. `Executor::with_backend`,
/// `KernelMap::unit_stride_with`).
pub fn default_backend() -> &'static dyn MappingBackend {
    static CHOICE: std::sync::OnceLock<&'static dyn MappingBackend> = std::sync::OnceLock::new();
    *CHOICE.get_or_init(|| {
        std::env::var("POINTACC_BACKEND")
            .ok()
            .and_then(|name| backend_by_name(&name))
            .unwrap_or(&INDEXED)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_points(n: usize, seed: u64) -> PointSet {
        let mut x = seed | 1;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 1000) as f32 / 50.0 - 10.0
        };
        (0..n).map(|_| Point3::new(step(), step(), step())).collect()
    }

    fn pseudo_cloud(n: usize, seed: u64, stride: i32) -> VoxelCloud {
        let mut x = seed | 1;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x % 48) as i32 - 24) * stride
        };
        VoxelCloud::from_unsorted(
            (0..n).map(|_| Coord::new(step(), step(), step())).collect(),
            stride,
        )
    }

    #[test]
    fn dist_key_orders_like_floats() {
        assert!(dist_key(0.5, 9) < dist_key(0.5, 10));
        assert!(dist_key(0.5, 10) < dist_key(1.5, 0));
        assert!(dist_key(0.0, 0) < dist_key(f32::MIN_POSITIVE, 0));
    }

    #[test]
    fn grid_knn_matches_golden() {
        let input = pseudo_points(300, 3);
        let queries = pseudo_points(40, 7);
        let index = GridIndex::build(input.points());
        for k in [1usize, 3, 8, 300, 500] {
            let want = golden::k_nearest_neighbors(&input, &queries, k);
            for (qi, &q) in queries.points().iter().enumerate() {
                assert_eq!(index.knn(q, k), want[qi], "k={k} query={qi}");
            }
        }
    }

    #[test]
    fn grid_ball_matches_golden() {
        let input = pseudo_points(250, 11);
        let queries = pseudo_points(30, 5);
        let index = GridIndex::build(input.points());
        for r2 in [0.01f32, 1.0, 25.0, 1e6] {
            let want = golden::ball_query(&input, &queries, r2, 6);
            for (qi, &q) in queries.points().iter().enumerate() {
                assert_eq!(index.ball(q, r2, 6), want[qi], "r2={r2} query={qi}");
            }
        }
    }

    #[test]
    fn grid_handles_degenerate_clouds() {
        // All points identical: zero extent in every axis.
        let same: PointSet = (0..20).map(|_| Point3::new(1.5, -2.0, 3.0)).collect();
        let index = GridIndex::build(same.points());
        assert_eq!(index.knn(Point3::ORIGIN, 3), vec![0, 1, 2]);
        // Collinear points: zero extent in two axes.
        let line: PointSet = (0..50).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
        let index = GridIndex::build(line.points());
        assert_eq!(index.knn(Point3::new(10.2, 0.0, 0.0), 2), vec![10, 11]);
        // Empty cloud.
        let empty = GridIndex::build(&[]);
        assert!(empty.knn(Point3::ORIGIN, 4).is_empty());
        assert!(empty.ball(Point3::ORIGIN, 1.0, 4).is_empty());
    }

    #[test]
    fn nan_points_rank_last_never_first() {
        // A point with a NaN coordinate must not displace any real
        // neighbor (NaN distances rank after every finite distance).
        let mut pts: Vec<Point3> = (0..20).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
        pts[7] = Point3::new(f32::NAN, 0.0, 0.0);
        let index = GridIndex::build(&pts);
        let q = Point3::new(15.0, 0.0, 0.0);
        assert_eq!(index.knn(q, 3), vec![15, 14, 16]);
        // The corrupt point only appears once every real point is taken.
        assert_eq!(index.knn(q, 20).last(), Some(&7));
        // Balls never admit a NaN distance (NaN ≤ r² is false).
        assert!(index.ball(Point3::new(7.0, 0.0, 0.0), 4.0, 8).iter().all(|&i| i != 7));
    }

    #[test]
    fn far_queries_fall_back_to_brute_force() {
        let input = pseudo_points(100, 9);
        let index = GridIndex::build(input.points());
        let far = Point3::new(1e30, -1e30, 1e30);
        let queries = PointSet::from_points(vec![far]);
        assert_eq!(vec![index.knn(far, 5)], golden::k_nearest_neighbors(&input, &queries, 5));
    }

    #[test]
    fn indexed_backend_matches_golden_end_to_end() {
        let input = pseudo_points(220, 1);
        let queries = pseudo_points(35, 2);
        assert_eq!(
            INDEXED.k_nearest_neighbors(&input, &queries, 9),
            GOLDEN.k_nearest_neighbors(&input, &queries, 9)
        );
        assert_eq!(
            INDEXED.ball_query_padded(&input, &queries, 4.0, 8),
            GOLDEN.ball_query_padded(&input, &queries, 4.0, 8)
        );
        assert_eq!(
            INDEXED.farthest_point_sampling(&input, 64),
            GOLDEN.farthest_point_sampling(&input, 64)
        );
        let cloud = pseudo_cloud(150, 5, 1);
        assert_eq!(
            INDEXED.kernel_map(&cloud, &cloud, 3).canonicalized(),
            GOLDEN.kernel_map(&cloud, &cloud, 3).canonicalized()
        );
    }

    #[test]
    fn parallel_fps_is_bit_identical_to_serial() {
        // Big enough to cross FPS_PAR_WORK with several workers.
        let pts = pseudo_points(8192, 17);
        let want = golden::farthest_point_sampling(&pts, 300);
        assert_eq!(fps_parallel(&pts, 300, 4), want);
        assert_eq!(INDEXED.farthest_point_sampling(&pts, 300), want);
    }

    #[test]
    fn padded_ball_query_on_empty_input_is_empty() {
        let queries = pseudo_points(4, 3);
        let empty = PointSet::new();
        let out = INDEXED.ball_query_padded(&empty, &queries, 1.0, 4);
        assert_eq!(out, vec![Vec::<usize>::new(); 4]);
    }

    #[test]
    fn backend_lookup_by_name() {
        assert_eq!(backend_by_name("indexed").map(|b| b.name()), Some("indexed"));
        assert_eq!(backend_by_name("golden").map(|b| b.name()), Some("golden"));
        assert!(backend_by_name("quantum").is_none());
        assert!(!default_backend().name().is_empty());
    }

    #[test]
    fn coord_index_roundtrip() {
        let vc = pseudo_cloud(60, 2, 2);
        let idx = CoordIndex::build(&vc);
        assert_eq!(idx.len(), vc.len());
        assert!(!idx.is_empty());
        for (i, &c) in vc.coords().iter().enumerate() {
            assert_eq!(idx.get(c), Some(i as u32));
        }
    }
}
