//! Grid-hash spatial indexing and the unified mapping-op backend.
//!
//! The golden algorithms in [`crate::golden`] are deliberately naive —
//! O(n²) kNN scans, O(n·m) FPS — which makes them a trustworthy test
//! oracle and a terrible hot path: trace compilation and functional
//! execution spend almost all their time in them. This module provides
//! the production path:
//!
//! - [`GridIndex`] — a uniform grid hash over continuous points with
//!   bucketed neighbor iteration (expanding-shell kNN, AABB ball query).
//!   Buckets are laid out in **Morton (Z-curve) order** with the point
//!   coordinates mirrored into x/y/z SoA arrays, so spatially adjacent
//!   cells sit adjacent in memory and shell/AABB scans stream linear
//!   loads instead of chasing the point array,
//! - [`CoordIndex`] — an open-addressing hash index over a
//!   [`VoxelCloud`]'s packed lattice keys (no per-probe SipHash), for
//!   point lookups whose probe order is arbitrary (kernel-map probes
//!   themselves ascend per bucket and use a merge join instead),
//! - [`MappingBackend`] — one trait for every mapping operation (FPS,
//!   kNN, ball query, kernel mapping, opt-in approximate FPS), with two
//!   implementations: [`Golden`] (the brute-force oracle) and [`Indexed`]
//!   (grid-hash traversal, **fused kernel-map probing** over output
//!   buckets, plus per-query/per-bucket parallelism via [`crate::par`]).
//!
//! **Both backends are bit-identical by construction** — same ranking
//! key `(dist², index)`, same tie-breaking, same map emission order per
//! weight group — and the equivalence is property-tested over random
//! clouds, radii and strides in `tests/mapping_backends.rs`. Consumers
//! (the reference executor, `KernelMap` constructors, the bench harness)
//! default to [`Indexed`]; set `POINTACC_BACKEND=golden` to force the
//! oracle (read once per process).

use std::collections::BinaryHeap;
use std::sync::Mutex;

use crate::par::{lock, parallel_map, parallel_map_with, worker_threads};
use crate::{golden, Coord, MapTable, Point3, PointSet, VoxelCloud};

/// Packs a non-negative squared distance and tie-breaking index into one
/// ascending comparator key: `(dist² bits, index)`. IEEE-754 bit patterns
/// of non-negative floats preserve order, so sorting by this key equals
/// sorting by `(dist², index)` — the ranking key of the golden kNN, the
/// MPU's top-k comparators, and the grid traversal below.
pub fn dist_key(d2: f32, index: u32) -> u128 {
    debug_assert!(d2 >= 0.0, "squared distances are non-negative");
    ((d2.to_bits() as u128) << 32) | index as u128
}

/// [`dist_key`] hardened against non-finite input coordinates: a NaN
/// distance (e.g. a point with a NaN coordinate, or ∞−∞) ranks **after
/// every real distance**, so a corrupt point can never displace a real
/// neighbor. The golden oracle panics on NaN instead; the backends are
/// bit-identical over finite clouds (the documented contract), while
/// the production path degrades benignly on garbage input.
fn total_dist_key(d2: f32, index: u32) -> u128 {
    let bits = if d2.is_nan() { u32::MAX } else { d2.to_bits() };
    ((bits as u128) << 32) | index as u128
}

/// Work thresholds below which the indexed backend stays serial: thread
/// spawns cost more than the loop they would split. Kernel-map probes
/// are single hash lookups (cheap per unit of "work"), so that gate sits
/// much higher than the distance-heavy query gate.
const QUERY_PAR_WORK: usize = 1 << 13;
const KERNEL_PAR_WORK: usize = 1 << 17;
const FPS_PAR_WORK: u64 = 1 << 21;

/// Minimum points per parallel-FPS worker chunk: below this the
/// per-iteration barrier dominates the chunk scan.
const FPS_MIN_CHUNK: usize = 2048;

/// Minimum `n·m` work product for the bucket-pruned exact FPS path:
/// below it, the `O(n)` index/tile build costs more than the distance
/// evaluations pruning could save, so the golden serial sweep runs
/// as-is.
const FPS_PRUNE_WORK: u64 = 1 << 14;

/// Minimum cloud size for grid-stratified approximate FPS; smaller
/// clouds fall back to exact sampling (stratification overhead and the
/// approximation error both outweigh the saved distance evaluations).
const FPS_APPROX_MIN: usize = 2048;

/// A uniform grid hash over a slice of continuous points.
///
/// Cell size is chosen from the bounding box so cells hold ~2 points on
/// average (capped so the cell array stays O(n)); buckets are stored CSR
/// style, **ordered by the Morton (Z-curve) code of their cell** so
/// spatially adjacent buckets sit adjacent in memory, and the point
/// coordinates are mirrored into x/y/z SoA arrays in bucket-slot order
/// so candidate scans read linear memory instead of gathering through
/// the point slice. Queries walk cells in expanding Chebyshev shells
/// (kNN) or the ball's AABB (ball query) and rank candidates by
/// [`dist_key`], so the results are identical to a brute-force scan —
/// the layout moves bytes, never bits.
///
/// # Examples
///
/// ```
/// use pointacc_geom::index::GridIndex;
/// use pointacc_geom::Point3;
///
/// let pts: Vec<Point3> = (0..64)
///     .map(|i| Point3::new(i as f32 * 0.25, (i % 8) as f32, 0.0))
///     .collect();
/// let idx = GridIndex::build(&pts);
/// let nn = idx.knn(Point3::new(0.1, 0.0, 0.0), 3);
/// assert_eq!(nn[0], 0); // nearest point first
/// assert_eq!(nn.len(), 3);
/// ```
pub struct GridIndex {
    points: Vec<Point3>,
    /// The point count the cell sizing was chosen for; when the live
    /// count drifts past 2× in either direction, [`GridIndex::apply_delta`]
    /// rebuilds instead of patching (occupancy would no longer be ~2).
    built_n: usize,
    cell: f32,
    origin: Point3,
    dims: [usize; 3],
    /// Linear cell id → Morton-ordered bucket slot.
    slot_of: Vec<u32>,
    /// CSR offsets by slot: bucket at slot `s` is
    /// `entries[starts[s]..starts[s + 1]]`.
    starts: Vec<u32>,
    /// Original point index of each bucket slot.
    entries: Vec<u32>,
    /// Point coordinates in bucket-slot order (SoA mirror of `entries`,
    /// so candidate scans stream linear memory).
    xs: Vec<f32>,
    ys: Vec<f32>,
    zs: Vec<f32>,
    /// Tight elementwise min/max over the indexed points (`None` when
    /// empty), maintained through [`GridIndex::apply_delta`] — callers
    /// that already hold an index reuse this instead of re-scanning the
    /// cloud (e.g. [`fps_stratified_with_bounds`]).
    bounds: Option<(Point3, Point3)>,
}

impl GridIndex {
    /// Builds the index over a copy of `points` (an empty slice yields
    /// an empty, queryable index). The index owns its point storage so
    /// it can outlive the caller's buffer and absorb deltas in place —
    /// see [`GridIndex::apply_delta`].
    pub fn build(points: &[Point3]) -> Self {
        Self::build_owned(points.to_vec())
    }

    /// [`GridIndex::build`] reusing an already-computed tight bounding
    /// box (as returned by [`PointSet::bounds`]) so callers that just
    /// scanned the cloud — stratified FPS falling back to exact, the
    /// streaming frame path — do not pay the min/max pass twice.
    pub fn build_with_bounds(points: &[Point3], bounds: (Point3, Point3)) -> Self {
        Self::build_owned_with(points.to_vec(), Some(bounds))
    }

    fn build_owned(points: Vec<Point3>) -> Self {
        Self::build_owned_with(points, None)
    }

    fn build_owned_with(points: Vec<Point3>, known_bounds: Option<(Point3, Point3)>) -> Self {
        let n = points.len();
        if n == 0 {
            return GridIndex {
                points,
                built_n: 0,
                cell: 1.0,
                origin: Point3::ORIGIN,
                dims: [1, 1, 1],
                slot_of: vec![0],
                starts: vec![0, 0],
                entries: Vec::new(),
                xs: Vec::new(),
                ys: Vec::new(),
                zs: Vec::new(),
                bounds: None,
            };
        }
        let (min, max) = known_bounds.unwrap_or_else(|| {
            let mut min = points[0];
            let mut max = points[0];
            for p in &points {
                min.x = min.x.min(p.x);
                min.y = min.y.min(p.y);
                min.z = min.z.min(p.z);
                max.x = max.x.max(p.x);
                max.y = max.y.max(p.y);
                max.z = max.z.max(p.z);
            }
            (min, max)
        });
        let ext = [max.x - min.x, max.y - min.y, max.z - min.z];
        let (cell, dims) = if ext.iter().all(|e| e.is_finite()) {
            Self::pick_cell(ext, n)
        } else {
            // Non-finite extent: degrade to a single bucket (brute force).
            (1.0, [1, 1, 1])
        };
        let n_cells = dims[0] * dims[1] * dims[2];
        let slot_of = Self::morton_slots(dims);
        let bucket_of = |p: &Point3| -> usize {
            let cx = Self::axis_cell(p.x, min.x, cell).clamp(0, dims[0] as i128 - 1) as usize;
            let cy = Self::axis_cell(p.y, min.y, cell).clamp(0, dims[1] as i128 - 1) as usize;
            let cz = Self::axis_cell(p.z, min.z, cell).clamp(0, dims[2] as i128 - 1) as usize;
            slot_of[(cx * dims[1] + cy) * dims[2] + cz] as usize
        };
        // Counting sort into Morton-ordered CSR buckets.
        let mut starts = vec![0u32; n_cells + 1];
        for p in &points {
            starts[bucket_of(p) + 1] += 1;
        }
        for b in 0..n_cells {
            starts[b + 1] += starts[b];
        }
        let mut cursor = starts.clone();
        let mut entries = vec![0u32; n];
        for (i, p) in points.iter().enumerate() {
            let b = bucket_of(p);
            entries[cursor[b] as usize] = i as u32;
            cursor[b] += 1;
        }
        // SoA mirror of the slot order: one gather at build time buys
        // linear scans on every query.
        let mut xs = vec![0.0f32; n];
        let mut ys = vec![0.0f32; n];
        let mut zs = vec![0.0f32; n];
        for (s, &i) in entries.iter().enumerate() {
            let p = points[i as usize];
            xs[s] = p.x;
            ys[s] = p.y;
            zs[s] = p.z;
        }
        GridIndex {
            points,
            built_n: n,
            cell,
            origin: min,
            dims,
            slot_of,
            starts,
            entries,
            xs,
            ys,
            zs,
            bounds: Some((min, max)),
        }
    }

    /// Tight elementwise bounding box of the indexed points (`None`
    /// when empty) — computed during the build, kept tight through
    /// [`GridIndex::apply_delta`], so holders of an index never need to
    /// re-scan the cloud for its extent.
    pub fn bounds(&self) -> Option<(Point3, Point3)> {
        self.bounds
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points, in index order (the order queries report).
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    /// Whether `p` falls inside the built grid's coverage box without
    /// clamping. Clamped points would break the kNN shell-termination
    /// bound (which assumes every point lies inside its assigned cell),
    /// so [`GridIndex::apply_delta`] rebuilds rather than admit one.
    fn covers(&self, p: Point3) -> bool {
        if !(p.x.is_finite() && p.y.is_finite() && p.z.is_finite()) {
            return false;
        }
        let c = self.cell_of(p);
        (0..3).all(|a| c[a] >= 0 && c[a] < self.dims[a] as i128)
    }

    /// Applies a point delta in place: removes the points at positions
    /// `removes`, then inserts `inserts`, re-indexing with
    /// [`apply_point_delta`]'s deterministic layout (holes filled by
    /// inserts in order, spill appended, leftover holes back-filled from
    /// the tail). Returns the `(from, to)` position moves of surviving
    /// points so callers can track external per-point state.
    ///
    /// After the call the index is **bit-identical to
    /// [`GridIndex::build`] over the same transformed array** — same
    /// query results, enforced by property test in `tests/streaming.rs`.
    /// The patch path keeps the grid geometry (origin, cell size, Morton
    /// slot table) and rebuilds only the CSR buckets in one streaming
    /// merge — `O(n)` sequential copy plus `O(churn·log churn)` sorting,
    /// skipping the bounding-box scan, cell sizing, and Morton-code sort
    /// that dominate a cold build. A full rebuild happens only when an
    /// insert escapes the coverage box (or is non-finite), the point
    /// count drifts 2× from the sizing target, or the index was empty.
    ///
    /// # Panics
    ///
    /// Panics if any remove position is out of bounds (duplicates are
    /// tolerated and collapse to one removal).
    pub fn apply_delta(&mut self, removes: &[u32], inserts: &[Point3]) -> Vec<(u32, u32)> {
        let old_n = self.points.len();
        let mut rem: Vec<u32> = removes.to_vec();
        rem.sort_unstable();
        rem.dedup();
        assert!(
            rem.last().is_none_or(|&r| (r as usize) < old_n),
            "remove position out of bounds: {:?} (len {old_n})",
            rem.last()
        );
        let n_new = old_n - rem.len() + inserts.len();
        let patchable = old_n > 0
            && n_new > 0
            && n_new >= self.built_n / 2
            && n_new <= self.built_n.saturating_mul(2)
            && inserts.iter().all(|&p| self.covers(p));
        if !patchable {
            let mut pts = std::mem::take(&mut self.points);
            let moves = apply_point_delta(&mut pts, &rem, inserts);
            *self = Self::build_owned(pts);
            return moves;
        }

        // Which old positions vanish from the buckets: the removed
        // points, plus the tail points the transformation relocates.
        let mut is_del = vec![false; old_n];
        for &r in &rem {
            is_del[r as usize] = true;
        }
        let moves = apply_point_delta(&mut self.points, &rem, inserts);
        for &(from, _) in &moves {
            is_del[from as usize] = true;
        }

        // Which new positions enter the buckets: hole positions filled
        // by inserts, appended inserts, and relocated tail points — by
        // the transformation's layout, the first `filled` holes and the
        // appended range hold the inserts, the moves hold the rest.
        let filled = rem.len().min(inserts.len());
        let mut adds: Vec<(u32, u32)> = Vec::with_capacity(inserts.len() + moves.len());
        let slot_at = |p: Point3| -> u32 {
            let c = self.cell_of(p);
            let cx = c[0].clamp(0, self.dims[0] as i128 - 1) as usize;
            let cy = c[1].clamp(0, self.dims[1] as i128 - 1) as usize;
            let cz = c[2].clamp(0, self.dims[2] as i128 - 1) as usize;
            self.slot_of[(cx * self.dims[1] + cy) * self.dims[2] + cz]
        };
        for &h in &rem[..filled] {
            adds.push((slot_at(self.points[h as usize]), h));
        }
        for i in old_n - rem.len() + filled..n_new {
            adds.push((slot_at(self.points[i]), i as u32));
        }
        for &(_, to) in &moves {
            adds.push((slot_at(self.points[to as usize]), to));
        }
        adds.sort_unstable();

        // One streaming merge over the CSR buckets: per slot, the
        // surviving old entries (ascending point index, `is_del`
        // filtered) interleave with this slot's additions (ascending by
        // construction of the sort). Survivor coordinates stream from
        // the old SoA mirror; additions read the fresh point array.
        // Ascending-by-index per bucket is exactly the counting sort's
        // stable order, so the result matches a from-scratch build.
        let n_slots = self.starts.len() - 1;
        let mut starts = Vec::with_capacity(n_slots + 1);
        starts.push(0u32);
        let mut entries = Vec::with_capacity(n_new);
        let mut xs = Vec::with_capacity(n_new);
        let mut ys = Vec::with_capacity(n_new);
        let mut zs = Vec::with_capacity(n_new);
        let mut ai = 0usize;
        for s in 0..n_slots {
            let mut oi = self.starts[s] as usize;
            let o_end = self.starts[s + 1] as usize;
            let a_end = ai + adds[ai..].iter().take_while(|&&(slot, _)| slot == s as u32).count();
            let mut aj = ai;
            loop {
                // Skip deleted survivors eagerly so the merge head is
                // always a live entry.
                while oi < o_end && is_del[self.entries[oi] as usize] {
                    oi += 1;
                }
                let take_old = match (oi < o_end, aj < a_end) {
                    (false, false) => break,
                    (true, false) => true,
                    (false, true) => false,
                    (true, true) => self.entries[oi] < adds[aj].1,
                };
                if take_old {
                    entries.push(self.entries[oi]);
                    xs.push(self.xs[oi]);
                    ys.push(self.ys[oi]);
                    zs.push(self.zs[oi]);
                    oi += 1;
                } else {
                    let idx = adds[aj].1;
                    let p = self.points[idx as usize];
                    entries.push(idx);
                    xs.push(p.x);
                    ys.push(p.y);
                    zs.push(p.z);
                    aj += 1;
                }
            }
            ai = a_end;
            starts.push(entries.len() as u32);
        }
        debug_assert_eq!(entries.len(), n_new);
        self.starts = starts;
        self.entries = entries;
        self.xs = xs;
        self.ys = ys;
        self.zs = zs;
        // Re-tighten the stored bounds (removals can shrink them): one
        // more linear pass over a path that is already O(n).
        let mut min = self.points[0];
        let mut max = self.points[0];
        for p in &self.points {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            min.z = min.z.min(p.z);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
            max.z = max.z.max(p.z);
        }
        self.bounds = Some((min, max));
        moves
    }

    /// Spreads the low 21 bits of `v` to every third bit (Morton
    /// interleave helper).
    fn morton_spread(v: u64) -> u64 {
        let mut x = v & 0x1F_FFFF;
        x = (x | (x << 32)) & 0x001F_0000_0000_FFFF;
        x = (x | (x << 16)) & 0x1F_0000_FF00_00FF;
        x = (x | (x << 8)) & 0x100F_00F0_0F00_F00F;
        x = (x | (x << 4)) & 0x10C3_0C30_C30C_30C3;
        x = (x | (x << 2)) & 0x1249_2492_4924_9249;
        x
    }

    /// Maps every linear cell id to its rank along the Morton curve, so
    /// spatially adjacent cells land in adjacent CSR buckets. Falls back
    /// to the identity (x-major) layout if a dimension exceeds the
    /// 21-bit interleave range — unreachable for any cell array capped
    /// at `4n + 64`, but cheap to guard.
    fn morton_slots(dims: [usize; 3]) -> Vec<u32> {
        let n_cells = dims[0] * dims[1] * dims[2];
        if dims.iter().any(|&d| d >= (1 << 21)) {
            return (0..n_cells as u32).collect();
        }
        let mut order: Vec<u32> = (0..n_cells as u32).collect();
        let code = |b: u32| -> u64 {
            let b = b as usize;
            let x = b / (dims[1] * dims[2]);
            let y = (b / dims[2]) % dims[1];
            let z = b % dims[2];
            Self::morton_spread(x as u64)
                | (Self::morton_spread(y as u64) << 1)
                | (Self::morton_spread(z as u64) << 2)
        };
        order.sort_unstable_by_key(|&b| code(b));
        let mut slot_of = vec![0u32; n_cells];
        for (slot, &b) in order.iter().enumerate() {
            slot_of[b as usize] = slot as u32;
        }
        slot_of
    }

    /// Cell size targeting ~2 points per occupied cell, grown until the
    /// dense cell array stays O(n).
    fn pick_cell(ext: [f32; 3], n: usize) -> (f32, [usize; 3]) {
        let vol = ext.iter().map(|&e| e as f64).product::<f64>();
        let mut cell = ((vol / n as f64) * 2.0).cbrt() as f32;
        if !(cell.is_finite() && cell > 0.0) {
            let max_ext = ext.iter().fold(0.0f32, |a, &b| a.max(b));
            cell = max_ext / (n as f32).cbrt();
        }
        if !(cell.is_finite() && cell > 0.0) {
            cell = 1.0;
        }
        let limit = (4 * n + 64) as f64;
        loop {
            let dims = ext.map(|e| ((e / cell).floor() as i64 + 1).max(1) as usize);
            let total = dims.iter().map(|&d| d as f64).product::<f64>();
            if total <= limit {
                return (cell, dims);
            }
            cell *= 1.5;
        }
    }

    /// The cell coordinate of `v` along one axis (unclamped; `i128` so
    /// arithmetic on far-out queries cannot overflow).
    fn axis_cell(v: f32, origin: f32, cell: f32) -> i128 {
        ((v - origin) / cell).floor() as i128
    }

    /// The (unclamped) cell coordinates of a query point.
    fn cell_of(&self, q: Point3) -> [i128; 3] {
        [
            Self::axis_cell(q.x, self.origin.x, self.cell),
            Self::axis_cell(q.y, self.origin.y, self.cell),
            Self::axis_cell(q.z, self.origin.z, self.cell),
        ]
    }

    /// Slot range of the bucket at cell `(x, y, z)` — scan it with
    /// [`GridIndex::scan_bucket`].
    fn bucket(&self, x: usize, y: usize, z: usize) -> std::ops::Range<usize> {
        let s = self.slot_of[(x * self.dims[1] + y) * self.dims[2] + z] as usize;
        self.starts[s] as usize..self.starts[s + 1] as usize
    }

    /// Streams one bucket's candidates from the SoA coordinate arrays:
    /// `visit(point index, dist²(q))` per slot, in slot order. Distances
    /// come from the same `Point3::dist2` arithmetic as the brute scan,
    /// so the layout changes locality, never values.
    fn scan_bucket(
        &self,
        range: std::ops::Range<usize>,
        q: Point3,
        visit: &mut impl FnMut(u32, f32),
    ) {
        for s in range {
            let d = Point3::new(self.xs[s], self.ys[s], self.zs[s]).dist2(q);
            visit(self.entries[s], d);
        }
    }

    /// Visits every bucket at Chebyshev cell distance exactly `r` from
    /// `c`, clipped to the grid.
    fn for_shell(&self, c: [i128; 3], r: i128, visit: &mut dyn FnMut(std::ops::Range<usize>)) {
        let d = self.dims;
        let clip = |lo: i128, hi: i128, dim: usize| {
            let lo = lo.max(0);
            let hi = hi.min(dim as i128 - 1);
            lo..=hi
        };
        if r == 0 {
            if (0..3).all(|a| (0..d[a] as i128).contains(&c[a])) {
                visit(self.bucket(c[0] as usize, c[1] as usize, c[2] as usize));
            }
            return;
        }
        // x-faces: |δx| = r.
        for x in [c[0] - r, c[0] + r] {
            if !(0..d[0] as i128).contains(&x) {
                continue;
            }
            for y in clip(c[1] - r, c[1] + r, d[1]) {
                for z in clip(c[2] - r, c[2] + r, d[2]) {
                    visit(self.bucket(x as usize, y as usize, z as usize));
                }
            }
        }
        // y-faces: |δy| = r, |δx| < r.
        for y in [c[1] - r, c[1] + r] {
            if !(0..d[1] as i128).contains(&y) {
                continue;
            }
            for x in clip(c[0] - r + 1, c[0] + r - 1, d[0]) {
                for z in clip(c[2] - r, c[2] + r, d[2]) {
                    visit(self.bucket(x as usize, y as usize, z as usize));
                }
            }
        }
        // z-faces: |δz| = r, |δx| < r, |δy| < r.
        for z in [c[2] - r, c[2] + r] {
            if !(0..d[2] as i128).contains(&z) {
                continue;
            }
            for x in clip(c[0] - r + 1, c[0] + r - 1, d[0]) {
                for y in clip(c[1] - r + 1, c[1] + r - 1, d[1]) {
                    visit(self.bucket(x as usize, y as usize, z as usize));
                }
            }
        }
    }

    /// Brute-force fallback (pathological queries, tiny inputs): scan
    /// every point. Identical ranking key, so identical results.
    fn brute(&self, q: Point3, k: usize, radius2: Option<f32>) -> Vec<usize> {
        let mut keys: Vec<u128> = self
            .points
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                let d = p.dist2(q);
                radius2.is_none_or(|r2| d <= r2).then(|| total_dist_key(d, i as u32))
            })
            .collect();
        keys.sort_unstable();
        keys.truncate(k);
        keys.into_iter().map(|key| (key & 0xFFFF_FFFF) as usize).collect()
    }

    /// The `k` nearest points to `q` in ascending `(dist², index)` order
    /// (fewer than `k` when the index holds fewer points) — identical to
    /// [`golden::k_nearest_neighbors`] on the same input.
    pub fn knn(&self, q: Point3, k: usize) -> Vec<usize> {
        if k == 0 || self.points.is_empty() {
            return Vec::new();
        }
        let c = self.cell_of(q);
        // Distance (in cells) from the query cell to the grid box; shells
        // closer than this are empty and skipped.
        let r0: i128 = (0..3)
            .map(|a| (-c[a]).max(c[a] - (self.dims[a] as i128 - 1)).max(0))
            .max()
            .unwrap_or(0);
        // Shell walking pays off only while shells still intersect the
        // grid box within a few rings; once the query sits further from
        // the box (per axis, in cells) than the *largest* grid dimension,
        // every remaining shell clips to roughly the whole grid and one
        // brute scan is cheaper. (This used to compare against the *sum*
        // of the three dims, so elongated grids — e.g. a LiDAR sweep's
        // long x-extent — kept shell-walking far past the crossover.)
        let span = self.dims.iter().copied().max().unwrap_or(1) as i128;
        if r0 > span + 8 {
            return self.brute(q, k, None);
        }
        let max_ring: i128 =
            (0..3).map(|a| c[a].max(self.dims[a] as i128 - 1 - c[a])).max().unwrap_or(0);
        // Max-heap of the best k candidate keys seen so far.
        let mut heap: BinaryHeap<u128> = BinaryHeap::with_capacity(k + 1);
        for r in r0..=max_ring.max(r0) {
            self.for_shell(c, r, &mut |bucket| {
                self.scan_bucket(bucket, q, &mut |i, d| {
                    let key = total_dist_key(d, i);
                    if heap.len() < k {
                        heap.push(key);
                    } else if *heap.peek().expect("heap holds k keys") > key {
                        heap.pop();
                        heap.push(key);
                    }
                });
            });
            if heap.len() == k {
                // Points in shells ≥ r+1 are ≥ (r-1)·cell away (one cell
                // of slack absorbs floating-point bucketing error); once
                // that exceeds the kth distance, no candidate remains.
                let kth_d2 = f32::from_bits((*heap.peek().expect("k > 0") >> 32) as u32);
                let bound = ((r - 1).max(0) as f64) * self.cell as f64;
                if bound * bound > kth_d2 as f64 {
                    break;
                }
            }
        }
        let mut keys = heap.into_vec();
        keys.sort_unstable();
        keys.into_iter().map(|key| (key & 0xFFFF_FFFF) as usize).collect()
    }

    /// The ≤ `k` nearest points within squared radius `radius2`, in
    /// ascending `(dist², index)` order — identical to
    /// [`golden::ball_query`] on the same input.
    pub fn ball(&self, q: Point3, radius2: f32, k: usize) -> Vec<usize> {
        if k == 0 || self.points.is_empty() {
            return Vec::new();
        }
        let r = radius2.max(0.0).sqrt();
        if !r.is_finite() {
            return self.brute(q, k, Some(radius2));
        }
        // Cells overlapping the ball's AABB (computed with the same
        // monotone cell mapping as bucketing, so no candidate escapes).
        let clamp = |v: i128, dim: usize| v.clamp(0, dim as i128 - 1);
        let lo = self.cell_of(Point3::new(q.x - r, q.y - r, q.z - r));
        let hi = self.cell_of(Point3::new(q.x + r, q.y + r, q.z + r));
        if (0..3).any(|a| hi[a] < 0 || lo[a] >= self.dims[a] as i128) {
            return Vec::new();
        }
        let mut keys: Vec<u128> = Vec::new();
        for x in clamp(lo[0], self.dims[0])..=clamp(hi[0], self.dims[0]) {
            for y in clamp(lo[1], self.dims[1])..=clamp(hi[1], self.dims[1]) {
                for z in clamp(lo[2], self.dims[2])..=clamp(hi[2], self.dims[2]) {
                    let bucket = self.bucket(x as usize, y as usize, z as usize);
                    self.scan_bucket(bucket, q, &mut |i, d| {
                        if d <= radius2 {
                            keys.push(total_dist_key(d, i));
                        }
                    });
                }
            }
        }
        keys.sort_unstable();
        keys.truncate(k);
        keys.into_iter().map(|key| (key & 0xFFFF_FFFF) as usize).collect()
    }
}

/// Applies a remove-then-insert delta to a point array with one fixed,
/// deterministic layout — the common language between a streaming frame
/// producer and an incrementally updated [`GridIndex`]:
///
/// 1. remove positions (sorted, deduplicated) become holes,
/// 2. holes are filled in ascending position order by the inserts in
///    order; inserts beyond the hole count are appended at the end,
/// 3. holes beyond the insert count are back-filled by relocating the
///    last surviving points (highest position first), then the array is
///    truncated to its new length.
///
/// Unremoved points below the truncation point keep their position and
/// value; the returned `(from, to)` pairs record every relocated
/// survivor, so callers can patch external per-point state (an index's
/// buckets, a frame stream's ray-slot table) in `O(churn)`.
///
/// # Panics
///
/// Panics if any remove position is out of bounds (duplicates collapse
/// to one removal).
pub fn apply_point_delta(
    points: &mut Vec<Point3>,
    removes: &[u32],
    inserts: &[Point3],
) -> Vec<(u32, u32)> {
    let n = points.len();
    let mut holes: Vec<u32> = removes.to_vec();
    holes.sort_unstable();
    holes.dedup();
    assert!(
        holes.last().is_none_or(|&r| (r as usize) < n),
        "remove position out of bounds: {:?} (len {n})",
        holes.last()
    );
    let n_new = n - holes.len() + inserts.len();
    let filled = holes.len().min(inserts.len());
    for (&h, &p) in holes.iter().zip(inserts.iter()) {
        points[h as usize] = p;
    }
    points.extend_from_slice(&inserts[filled..]);
    let mut moves = Vec::new();
    // Leftover holes (ascending): back-fill from the tail. A tail
    // position that is itself a hole is consumed, not relocated.
    let leftover = &holes[filled..];
    let mut front = 0usize;
    let mut back = leftover.len();
    let mut tail = points.len();
    while front < back {
        tail -= 1;
        if leftover[back - 1] as usize == tail {
            back -= 1;
            continue;
        }
        let to = leftover[front];
        points[to as usize] = points[tail];
        moves.push((tail as u32, to));
        front += 1;
    }
    points.truncate(n_new);
    moves
}

/// A hash index over a [`VoxelCloud`]'s lattice coordinates, for point
/// lookups whose probe order is arbitrary. (Kernel-map construction
/// probes coordinates in ascending key order, where a merge join
/// against the sorted cloud beats any per-probe hash — see
/// [`Indexed::kernel_map`].)
///
/// Open addressing with linear probing over [`Coord::key`]'s 96-bit
/// packed keys: no per-probe SipHash, no per-entry heap boxes, ~50%
/// load factor.
///
/// # Examples
///
/// ```
/// use pointacc_geom::index::CoordIndex;
/// use pointacc_geom::{Coord, VoxelCloud};
///
/// let vc = VoxelCloud::from_unsorted(vec![Coord::new(0, 0, 0), Coord::new(2, 1, 0)], 1);
/// let idx = CoordIndex::build(&vc);
/// assert_eq!(idx.get(Coord::new(2, 1, 0)), Some(1));
/// assert_eq!(idx.get(Coord::new(9, 9, 9)), None);
/// ```
pub struct CoordIndex {
    /// Packed coordinate key per slot; [`CoordIndex::EMPTY`] marks a
    /// never-used slot and [`CoordIndex::TOMB`] a deleted one
    /// ([`Coord::key`] uses only the low 96 bits, so neither sentinel
    /// can collide with a real key).
    keys: Vec<u128>,
    vals: Vec<u32>,
    mask: usize,
    len: usize,
    /// Live tombstones: deleted slots that still break probe chains.
    /// Counted toward occupancy so deletion churn triggers a rehash
    /// instead of degrading every probe toward a full-table scan.
    tombs: usize,
}

impl CoordIndex {
    const EMPTY: u128 = u128::MAX;
    const TOMB: u128 = u128::MAX - 1;

    /// Builds the index over a cloud's (unique) coordinates, with each
    /// coordinate mapping to its cloud position.
    pub fn build(cloud: &VoxelCloud) -> Self {
        let mut idx = Self::with_capacity_for(cloud.len());
        for (i, &c) in cloud.coords().iter().enumerate() {
            idx.insert(c.key(), i as u32);
        }
        idx
    }

    fn with_capacity_for(n: usize) -> Self {
        let capacity = (2 * n).next_power_of_two().max(4);
        CoordIndex {
            keys: vec![Self::EMPTY; capacity],
            vals: vec![0; capacity],
            mask: capacity - 1,
            len: 0,
            tombs: 0,
        }
    }

    /// Avalanching hash of a packed key, folded to the table's slot
    /// range. Fibonacci multiplicative hashing on the xor-folded halves
    /// mixes all 96 key bits into the high output bits.
    fn slot(&self, key: u128) -> usize {
        let folded = (key as u64) ^ ((key >> 64) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let h = folded.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.mask
    }

    fn insert(&mut self, key: u128, val: u32) {
        let mut s = self.slot(key);
        let mut grave: Option<usize> = None;
        loop {
            if self.keys[s] == Self::EMPTY {
                // Absent: claim the earliest tombstone on the probe
                // path (keeps chains short) or this empty slot.
                match grave {
                    Some(g) => {
                        self.keys[g] = key;
                        self.vals[g] = val;
                        self.tombs -= 1;
                    }
                    None => {
                        self.keys[s] = key;
                        self.vals[s] = val;
                    }
                }
                self.len += 1;
                return;
            }
            if self.keys[s] == Self::TOMB {
                grave.get_or_insert(s);
            } else if self.keys[s] == key {
                // Existing coordinate: last write wins, as with a
                // HashMap build.
                self.vals[s] = val;
                return;
            }
            s = (s + 1) & self.mask;
        }
    }

    /// Inserts or overwrites one coordinate's value, rehashing first if
    /// occupancy (live keys + tombstones) would pass ~50 % load.
    pub fn upsert(&mut self, c: Coord, val: u32) {
        if (self.len + self.tombs + 1) * 2 > self.keys.len() {
            self.rehash();
        }
        self.insert(c.key(), val);
    }

    /// Removes `c`, returning its value if it was present. The slot
    /// becomes a tombstone (probe chains through it stay intact);
    /// tombstone buildup is reclaimed by the next [`CoordIndex::upsert`]
    /// rehash.
    pub fn remove(&mut self, c: Coord) -> Option<u32> {
        let key = c.key();
        let mut s = self.slot(key);
        loop {
            if self.keys[s] == key {
                self.keys[s] = Self::TOMB;
                self.len -= 1;
                self.tombs += 1;
                return Some(self.vals[s]);
            }
            if self.keys[s] == Self::EMPTY {
                return None;
            }
            s = (s + 1) & self.mask;
        }
    }

    /// Applies a coordinate delta: removes first, then upserts — so a
    /// coordinate both removed and (re)inserted ends up present with
    /// its new value, matching [`GridIndex::apply_delta`]'s
    /// remove-then-insert order. Cost scales with the delta, not the
    /// table (amortized over rehashes). Equivalence to a from-scratch
    /// [`CoordIndex::build`] is property-tested in `tests/streaming.rs`.
    pub fn apply_delta(&mut self, removes: &[Coord], inserts: &[(Coord, u32)]) {
        for &c in removes {
            self.remove(c);
        }
        for &(c, v) in inserts {
            self.upsert(c, v);
        }
    }

    /// Rebuilds the table from its live entries at ~50 % load for the
    /// current size, dropping every tombstone.
    fn rehash(&mut self) {
        let mut fresh = Self::with_capacity_for(self.len + 1);
        for (i, &key) in self.keys.iter().enumerate() {
            if key != Self::EMPTY && key != Self::TOMB {
                fresh.insert(key, self.vals[i]);
            }
        }
        *self = fresh;
    }

    /// Index of `c` in the cloud, if present.
    pub fn get(&self, c: Coord) -> Option<u32> {
        let key = c.key();
        let mut s = self.slot(key);
        loop {
            if self.keys[s] == key {
                return Some(self.vals[s]);
            }
            if self.keys[s] == Self::EMPTY {
                return None;
            }
            s = (s + 1) & self.mask;
        }
    }

    /// Kernel mapping probed through this index instead of a freshly
    /// hashed table: the exact loop structure of
    /// [`golden::kernel_map_hash`] (offset-major, outputs ascending per
    /// weight group), so when the stored values equal the input cloud's
    /// positions the result is **bit-identical** to the golden table —
    /// an incrementally maintained index can serve kernel maps without
    /// re-hashing the full cloud each frame. `stride` is the input
    /// cloud's stride (the kernel's dilation).
    pub fn kernel_map_probe(
        &self,
        stride: i32,
        output: &VoxelCloud,
        kernel_size: usize,
    ) -> MapTable {
        let offsets = golden::kernel_offsets(kernel_size);
        let mut entries = Vec::new();
        for (w, &d) in offsets.iter().enumerate() {
            let dd = d.scale(stride);
            for (qi, &q) in output.coords().iter().enumerate() {
                if let Some(pi) = self.get(q.offset(dd)) {
                    entries.push(crate::MapEntry::new(pi, qi as u32, w as u16));
                }
            }
        }
        MapTable::from_entries(entries, offsets.len())
    }

    /// Number of indexed coordinates.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One implementation of every mapping operation (paper §2.1): farthest
/// point sampling, k-nearest-neighbors, ball query, and kernel mapping.
///
/// All implementations must be **bit-identical over clouds with finite
/// coordinates**: same ranking key `(dist², index)`, FPS starting at
/// index 0 with ties to the lowest index, kernel maps emitted per
/// offset in output order. The equivalence suite in
/// `tests/mapping_backends.rs` enforces this, and it is what lets the
/// executor swap backends without perturbing traces, golden snapshots,
/// or functional outputs. Non-finite coordinates are a caller bug and
/// outside the contract: the [`Golden`] oracle panics on the NaN
/// distances they produce, while [`Indexed`] ranks them after every
/// real neighbor so production queries degrade benignly.
pub trait MappingBackend: Sync {
    /// Short backend name for reports and benches.
    fn name(&self) -> &'static str;

    /// Farthest point sampling: `m` indices in selection order, starting
    /// at index 0, ties to the lowest index.
    ///
    /// # Panics
    ///
    /// Panics if `m > points.len()`.
    fn farthest_point_sampling(&self, points: &PointSet, m: usize) -> Vec<usize>;

    /// Approximate farthest point sampling: same signature and selection
    /// invariants as [`MappingBackend::farthest_point_sampling`] (starts
    /// at index 0, returns `m` distinct indices, panics if
    /// `m > points.len()`), but the sampled set may deviate from exact
    /// FPS within a bounded coverage radius in exchange for fewer
    /// distance evaluations. The default implementation **is** exact
    /// FPS; backends that override it (grid-stratified seeding in
    /// [`Indexed`]) must keep the coverage radius within
    /// `2·r_exact + 3·√3·cell` of the exact sample (see
    /// [`fps_stratified`]). Callers opt in explicitly — the executor
    /// only routes here under its `ExecOptions::approx_fps` knob.
    fn fps_approx(&self, points: &PointSet, m: usize) -> Vec<usize> {
        self.farthest_point_sampling(points, m)
    }

    /// k-nearest-neighbors of every query: ≤ `k` indices per query in
    /// ascending `(dist², index)` order.
    fn k_nearest_neighbors(
        &self,
        input: &PointSet,
        queries: &PointSet,
        k: usize,
    ) -> Vec<Vec<usize>>;

    /// Ball query: like kNN but only points within squared radius
    /// `radius2` qualify (unpadded).
    fn ball_query(
        &self,
        input: &PointSet,
        queries: &PointSet,
        radius2: f32,
        k: usize,
    ) -> Vec<Vec<usize>>;

    /// Kernel mapping between an input and an output cloud for a cubic
    /// kernel of size `kernel_size` (offsets in [`golden::kernel_offsets`]
    /// order, maps within each weight group in output order).
    fn kernel_map(&self, input: &VoxelCloud, output: &VoxelCloud, kernel_size: usize) -> MapTable;

    /// Ball query with PointNet++-style padding: short neighborhoods
    /// repeat their nearest member, empty balls fall back to the global
    /// nearest neighbor. An empty input yields empty neighborhoods (the
    /// executor rejects empty clouds before ever padding).
    fn ball_query_padded(
        &self,
        input: &PointSet,
        queries: &PointSet,
        radius2: f32,
        k: usize,
    ) -> Vec<Vec<usize>> {
        let mut out = self.ball_query(input, queries, radius2, k);
        for (qi, nbrs) in out.iter_mut().enumerate() {
            if nbrs.is_empty() {
                let fallback = self.k_nearest_neighbors(
                    input,
                    &PointSet::from_points(vec![queries.point(qi)]),
                    1,
                );
                nbrs.extend_from_slice(&fallback[0]);
            }
            let Some(&first) = nbrs.first() else { continue };
            while nbrs.len() < k {
                nbrs.push(first);
            }
        }
        out
    }
}

/// The brute-force oracle backend: every operation delegates to
/// [`crate::golden`]. Slow by design; kept as the reference the
/// [`Indexed`] backend (and the MPU hardware model) must reproduce
/// bit-exactly.
#[derive(Copy, Clone, Debug, Default)]
pub struct Golden;

impl MappingBackend for Golden {
    fn name(&self) -> &'static str {
        "golden"
    }

    fn farthest_point_sampling(&self, points: &PointSet, m: usize) -> Vec<usize> {
        golden::farthest_point_sampling(points, m)
    }

    fn k_nearest_neighbors(
        &self,
        input: &PointSet,
        queries: &PointSet,
        k: usize,
    ) -> Vec<Vec<usize>> {
        golden::k_nearest_neighbors(input, queries, k)
    }

    fn ball_query(
        &self,
        input: &PointSet,
        queries: &PointSet,
        radius2: f32,
        k: usize,
    ) -> Vec<Vec<usize>> {
        golden::ball_query(input, queries, radius2, k)
    }

    fn kernel_map(&self, input: &VoxelCloud, output: &VoxelCloud, kernel_size: usize) -> MapTable {
        golden::kernel_map_hash(input, output, kernel_size)
    }
}

/// The production backend: [`GridIndex`] traversal for kNN/ball query,
/// chunk-parallel exact FPS, and fused merge-join kernel maps with
/// per-bucket parallelism. Falls back to serial loops below the work
/// thresholds where thread spawns would dominate.
#[derive(Copy, Clone, Debug, Default)]
pub struct Indexed;

impl Indexed {
    /// Runs `query` over every query point, parallelizing when the total
    /// work justifies the thread spawns. Queries are handed out in
    /// chunks (several per worker for balance) so per-item scheduling
    /// and channel traffic stay off the per-query cost.
    fn batch<F>(&self, input: &PointSet, queries: &PointSet, query: F) -> Vec<Vec<usize>>
    where
        F: Fn(&GridIndex, Point3) -> Vec<usize> + Sync,
    {
        let index = GridIndex::build(input.points());
        let work = input.len().saturating_mul(queries.len());
        if work >= QUERY_PAR_WORK && queries.len() > 1 && worker_threads() > 1 {
            let qs = queries.points();
            let chunk = qs.len().div_ceil(worker_threads() * 4).max(8);
            let chunks: Vec<&[Point3]> = qs.chunks(chunk).collect();
            parallel_map(&chunks, |c| c.iter().map(|&q| query(&index, q)).collect::<Vec<_>>())
                .concat()
        } else {
            queries.points().iter().map(|&q| query(&index, q)).collect()
        }
    }
}

impl MappingBackend for Indexed {
    fn name(&self) -> &'static str {
        "indexed"
    }

    /// Exact FPS, bit-identical to golden on every path: the
    /// bucket-pruned sweep ([`fps_pruned`]) once the `n·m` work product
    /// covers the index build, with the chunk-parallel layer
    /// ([`fps_parallel`]) on top past [`fps_workers`]' gate; tiny
    /// workloads run the golden serial scan directly.
    fn farthest_point_sampling(&self, points: &PointSet, m: usize) -> Vec<usize> {
        assert!(m <= points.len(), "cannot sample {m} from {} points", points.len());
        let n = points.len();
        let workers = fps_workers(worker_threads(), n, m);
        if workers > 1 {
            return fps_parallel(points, m, workers);
        }
        if (n as u64).saturating_mul(m as u64) >= FPS_PRUNE_WORK && m >= 2 {
            return fps_pruned(points, m).0;
        }
        golden::farthest_point_sampling(points, m)
    }

    /// Grid-stratified approximate FPS ([`fps_stratified`]); falls back
    /// to exact sampling whenever stratification cannot pay for itself
    /// (small clouds, dense sampling ratios, degenerate bounding boxes).
    /// The bounding box is scanned **once** and shared between the
    /// stratifier and the exact fallback's grid build.
    fn fps_approx(&self, points: &PointSet, m: usize) -> Vec<usize> {
        assert!(m <= points.len(), "cannot sample {m} from {} points", points.len());
        let n = points.len();
        if n >= FPS_APPROX_MIN && m >= 1 && 2 * m < n {
            let Some(bounds) = points.bounds() else {
                return self.farthest_point_sampling(points, m);
            };
            if let Some((sel, _cell)) = fps_stratified_with_bounds(points, m, bounds) {
                return sel;
            }
            // Exact fallback: reuse the same bounds for the grid build.
            let workers = fps_workers(worker_threads(), n, m);
            if workers > 1 {
                return fps_parallel(points, m, workers);
            }
            if (n as u64).saturating_mul(m as u64) >= FPS_PRUNE_WORK && m >= 2 {
                let index = GridIndex::build_with_bounds(points.points(), bounds);
                return fps_pruned_with_index(&index, m).0;
            }
            return golden::farthest_point_sampling(points, m);
        }
        self.farthest_point_sampling(points, m)
    }

    fn k_nearest_neighbors(
        &self,
        input: &PointSet,
        queries: &PointSet,
        k: usize,
    ) -> Vec<Vec<usize>> {
        self.batch(input, queries, |index, q| index.knn(q, k))
    }

    fn ball_query(
        &self,
        input: &PointSet,
        queries: &PointSet,
        radius2: f32,
        k: usize,
    ) -> Vec<Vec<usize>> {
        self.batch(input, queries, |index, q| index.ball(q, radius2, k))
    }

    /// Same semantics as the trait default, but the ball pass and the
    /// empty-ball nearest-neighbor fallback share one [`GridIndex`]
    /// build instead of re-indexing per fallback query.
    fn ball_query_padded(
        &self,
        input: &PointSet,
        queries: &PointSet,
        radius2: f32,
        k: usize,
    ) -> Vec<Vec<usize>> {
        self.batch(input, queries, |index, q| {
            let mut nbrs = index.ball(q, radius2, k);
            if nbrs.is_empty() {
                nbrs = index.knn(q, 1);
            }
            if let Some(&first) = nbrs.first() {
                while nbrs.len() < k {
                    nbrs.push(first);
                }
            }
            nbrs
        })
    }

    /// Fused kernel-map probing: instead of one hash lookup per (output
    /// point × kernel offset) — `kernel_volume · m` SipHash-class probes,
    /// each a random access — the output coords are cut into contiguous
    /// buckets (already spatially coherent, since a [`VoxelCloud`] is
    /// sorted lexicographically) and every offset of a bucket is
    /// resolved while the bucket stays hot in cache. Per offset the
    /// probe coords `q + δ` ascend with `q` and the packed keys are
    /// monotone in the cloud order, so each bucket×offset pass is a
    /// **sorted-set intersection** against the input keys: no hashing at
    /// all, both sides stream sequentially, and the two cursor advances
    /// compile to conditional moves rather than data-dependent branches.
    /// The keys pack into 21-bit lanes of a `u64` and the probe key is
    /// one `wrapping_add` of a per-offset constant; the rare cloud whose
    /// lanes exceed the ±2^19 guard delegates to the golden hash probe,
    /// which is bit-identical by definition. Parallelism is over
    /// buckets, so small kernels (k=2: 8 offsets) scale past 8 workers.
    /// Hits leave each bucket offset-major and in ascending output
    /// order, so the bucket-order merge yields exactly the golden
    /// emission order regardless of worker count.
    fn kernel_map(&self, input: &VoxelCloud, output: &VoxelCloud, kernel_size: usize) -> MapTable {
        let offsets = golden::kernel_offsets(kernel_size);
        let s = input.stride();
        let deltas: Vec<Coord> = offsets.iter().map(|d| d.scale(s)).collect();
        let v = offsets.len();
        let qs = output.coords();

        // 64-bit fast path: with every lane in ±2^19 the biased 21-bit
        // lanes can absorb any guarded delta without wrapping into a
        // neighbor lane, so `key64(q + δ) = key64(q) + key64_delta(δ)`
        // with plain wrapping adds, and key order still matches the
        // cloud's lexicographic order.
        const LANE64: i32 = 1 << 19;
        let lane_ok = |c: &Coord| {
            c.x > -LANE64
                && c.x < LANE64
                && c.y > -LANE64
                && c.y < LANE64
                && c.z > -LANE64
                && c.z < LANE64
        };
        if !(input.coords().iter().all(lane_ok)
            && qs.iter().all(lane_ok)
            && deltas.iter().all(lane_ok))
        {
            return golden::kernel_map_hash(input, output, kernel_size);
        }
        // Ascending, since `key64` preserves the lexicographic sort
        // order of the cloud; the index of a key is the input index.
        let in64: Vec<u64> = input.coords().iter().map(|&c| key64(c)).collect();
        let q64: Vec<u64> = qs.iter().map(|&c| key64(c)).collect();
        let origin64 = key64(Coord::new(0, 0, 0));
        let d64: Vec<u64> = deltas.iter().map(|&d| key64(d).wrapping_sub(origin64)).collect();
        let n_in = input.len();

        // Self-map symmetry (odd kernels over one cloud — every
        // stride-1 sparse-conv layer): `q + δ = p  ⟺  p + (−δ) = q`,
        // and `kernel_offsets` lists `−δ` at the mirrored weight index,
        // so the upper half of the weight groups is the transpose of
        // the lower half and the center offset is the identity map.
        // Only the lower half gets probed; the rest is derived.
        let self_map = kernel_size % 2 == 1
            && (std::ptr::eq(input, output) || input.coords() == output.coords());
        let center = v / 2;
        let n_probe = if self_map { center } else { v };

        // One bucket's fused probe: SoA hit arrays, CSR by weight. Per
        // offset, binary-search to the bucket's window, then intersect;
        // hits land in a pre-sized scratch pair (plain cursor stores —
        // `Vec::push` in this loop defeats the register allocation of
        // the merge state) and are bulk-appended per offset.
        let probe_bucket = |&(base, chunk): &(usize, &[Coord])| -> BucketHits {
            let mlen = chunk.len();
            let qk = &q64[base..base + mlen];
            let mut inputs = Vec::new();
            let mut outputs = Vec::new();
            let mut counts = vec![0usize; n_probe + 1];
            let mut buf_i = vec![0u32; mlen];
            let mut buf_o = vec![0u32; mlen];
            for (w, &dk) in d64[..n_probe].iter().enumerate() {
                let mut c = 0usize;
                let mut i = match qk.first() {
                    Some(&k0) => in64.partition_point(|&key| key < k0.wrapping_add(dk)),
                    None => 0,
                };
                let mut j = 0usize;
                while i < n_in && j < mlen {
                    let a = in64[i];
                    let b = qk[j].wrapping_add(dk);
                    if a == b {
                        buf_i[c] = i as u32;
                        buf_o[c] = (base + j) as u32;
                        c += 1;
                    }
                    i += usize::from(a <= b);
                    j += usize::from(a >= b);
                }
                inputs.extend_from_slice(&buf_i[..c]);
                outputs.extend_from_slice(&buf_o[..c]);
                counts[w + 1] = inputs.len();
            }
            BucketHits { inputs, outputs, offsets: counts }
        };

        let work = qs.len().saturating_mul(v);
        let parts: Vec<BucketHits> = if work >= KERNEL_PAR_WORK && worker_threads() > 1 {
            // Several buckets per worker for balance; large enough that
            // the per-bucket sort and merge copies stay amortized.
            let chunk = qs.len().div_ceil(worker_threads() * 4).max(256);
            let jobs: Vec<(usize, &[Coord])> =
                qs.chunks(chunk).enumerate().map(|(i, c)| (i * chunk, c)).collect();
            parallel_map(&jobs, probe_bucket)
        } else {
            vec![probe_bucket(&(0, qs))]
        };

        // Deterministic merge: weight-major over buckets in output
        // order, straight into the table's SoA storage. Derived groups
        // (self-map only) mirror the probed totals; the center offset
        // maps every point to itself.
        let mut group_len = vec![0usize; v];
        for part in &parts {
            for (w, len) in group_len[..n_probe].iter_mut().enumerate() {
                *len += part.group_len(w);
            }
        }
        if self_map {
            for w in 0..center {
                group_len[v - 1 - w] = group_len[w];
            }
            group_len[center] = n_in;
        }
        let mut offsets = vec![0usize; v + 1];
        for (w, &len) in group_len.iter().enumerate() {
            offsets[w + 1] = offsets[w] + len;
        }
        let total = offsets[v];
        let mut inputs = vec![0u32; total];
        let mut outputs = vec![0u32; total];
        let mut cursor = offsets[..n_probe].to_vec();
        for part in &parts {
            for (w, at) in cursor.iter_mut().enumerate() {
                let (pi, qi) = part.group(w);
                inputs[*at..*at + pi.len()].copy_from_slice(pi);
                outputs[*at..*at + qi.len()].copy_from_slice(qi);
                *at += pi.len();
            }
        }
        if self_map {
            // Center: the identity map, in ascending output order.
            let at = offsets[center];
            for (i, (pi, qi)) in
                inputs[at..at + n_in].iter_mut().zip(&mut outputs[at..at + n_in]).enumerate()
            {
                *pi = i as u32;
                *qi = i as u32;
            }
            // Mirrors: transpose the probed group, counting-sorted by
            // its input index — the mirrored group's output — so the
            // golden per-group emission order (ascending output) holds.
            // The probed + center groups all precede the mirrored ones,
            // so one split separates reads from writes.
            let split = offsets[center + 1];
            let (in_src, in_dst) = inputs.split_at_mut(split);
            let (out_src, out_dst) = outputs.split_at_mut(split);
            let mut pos = vec![0u32; n_in + 1];
            for w in 0..center {
                let src = offsets[w]..offsets[w + 1];
                let dst0 = offsets[v - 1 - w] - split;
                pos.fill(0);
                for &p in &in_src[src.clone()] {
                    pos[p as usize + 1] += 1;
                }
                for b in 0..n_in {
                    pos[b + 1] += pos[b];
                }
                for (&p, &q) in in_src[src.clone()].iter().zip(&out_src[src.clone()]) {
                    let at = dst0 + pos[p as usize] as usize;
                    in_dst[at] = q;
                    out_dst[at] = p;
                    pos[p as usize] += 1;
                }
            }
        }
        MapTable::from_soa(inputs, outputs, offsets)
    }
}

/// [`Coord::key`]'s 21-bit-lane sibling: packs a coordinate whose lanes
/// all lie in ±2^19 into a `u64` that preserves the lexicographic coord
/// order. The headroom above the guard is what lets kernel-map probes
/// add a per-offset delta with one wrapping add — see
/// [`Indexed::kernel_map`].
fn key64(c: Coord) -> u64 {
    const BIAS: i64 = 1 << 20;
    (((c.x as i64 + BIAS) as u64) << 42)
        | (((c.y as i64 + BIAS) as u64) << 21)
        | ((c.z as i64 + BIAS) as u64)
}

/// One output bucket's kernel-map hits, grouped by weight (the
/// per-bucket product of the fused probe, merged bucket-major into the
/// final [`MapTable`]).
struct BucketHits {
    inputs: Vec<u32>,
    outputs: Vec<u32>,
    /// CSR offsets by weight into `inputs`/`outputs`.
    offsets: Vec<usize>,
}

impl BucketHits {
    fn group_len(&self, w: usize) -> usize {
        self.offsets[w + 1] - self.offsets[w]
    }

    fn group(&self, w: usize) -> (&[u32], &[u32]) {
        let range = self.offsets[w]..self.offsets[w + 1];
        (&self.inputs[range.clone()], &self.outputs[range])
    }
}

/// Parallel-FPS gating, as a single predicate: the op's work is `n·m`
/// distance evaluations — below [`FPS_PAR_WORK`] the per-iteration
/// barrier costs more than it splits, and above it each worker still
/// needs a chunk of at least [`FPS_MIN_CHUNK`] points to amortize its
/// share of the barrier traffic. Returns 1 (stay serial) or the capped
/// worker count.
///
/// (Replaces the former `min(n / 2048).max(1)` gating, whose `max(1)`
/// clamp made the `workers <= 1` guard fire for every `n < 4096`
/// regardless of `m` — leaving the work threshold dead for mid-size
/// clouds with large sample counts.)
fn fps_workers(available: usize, n: usize, m: usize) -> usize {
    if (n as u64).saturating_mul(m as u64) < FPS_PAR_WORK {
        1
    } else {
        available.min(n.div_ceil(FPS_MIN_CHUNK)).max(1)
    }
}

/// Grid-stratified approximate farthest point sampling: bins the cloud
/// into a uniform grid sized so the occupied cells oversample `m` by
/// ~1.2×, takes the lowest-index point of each occupied cell as its
/// representative, and runs **exact** FPS over the representatives —
/// `O(n + 1.2m·m)` distance evaluations instead of `O(n·m)`.
///
/// Selection invariants match exact FPS: the representatives are sorted
/// by original index, so point 0 (always the lowest index in its cell)
/// is representative 0 and the selection starts there; all returned
/// indices are distinct.
///
/// Error bound (property-tested in `tests/mapping_backends.rs`): every
/// point is within one cell diagonal `√3·cell` of its representative,
/// and FPS is a 2-approximation of the optimal k-center cost, so the
/// coverage radius of the approximate sample is at most
/// `2·r_exact + 3·√3·cell`, where `r_exact` is the exact sample's
/// coverage radius. The chosen `cell` is returned alongside the
/// selection so callers can evaluate the bound.
///
/// Returns `None` when stratification degenerates — non-finite or
/// zero-volume bounding box, or too few occupied cells to pick `m`
/// distinct points — and the caller should fall back to exact FPS.
pub fn fps_stratified(points: &PointSet, m: usize) -> Option<(Vec<usize>, f32)> {
    fps_stratified_with_bounds(points, m, points.bounds()?)
}

/// [`fps_stratified`] reusing an already-computed tight bounding box —
/// from [`PointSet::bounds`] or [`GridIndex::bounds`] when an index is
/// already built for the cloud — so callers (notably per-frame
/// streaming sampling) do not re-scan the cloud extent on every call.
pub fn fps_stratified_with_bounds(
    points: &PointSet,
    m: usize,
    (min, max): (Point3, Point3),
) -> Option<(Vec<usize>, f32)> {
    let n = points.len();
    if m == 0 || m > n {
        return None;
    }
    let pts = points.points();
    let ext = [max.x - min.x, max.y - min.y, max.z - min.z];
    if !ext.iter().all(|e| e.is_finite()) {
        return None;
    }
    let vol = ext.iter().map(|&e| (e as f64).max(f64::MIN_POSITIVE)).product::<f64>();
    let target = (m as f64 * 1.2).min(n as f64);
    let mut cell = (vol / target).cbrt() as f32;
    if !(cell.is_finite() && cell > 0.0) {
        return None;
    }
    // Occupancy is data-dependent: shrink the cell by ∛2 per retry —
    // doubling the expected occupancy each step, so the accepted grid
    // overshoots the target (and with it the rep-FPS cost, which scales
    // with the rep count) by at most ~2× — until enough cells are
    // occupied to oversample m. Bounded retries keep the dense
    // cell-count explosion of clustered clouds in check.
    for _ in 0..18 {
        let dims = ext.map(|e| ((e / cell).floor() as i64 + 1).max(1) as usize);
        let n_cells = dims[0].checked_mul(dims[1]).and_then(|xy| xy.checked_mul(dims[2]))?;
        if n_cells > 8 * n + 64 {
            return None; // cell array no longer O(n); give up cleanly
        }
        // Lowest point index per occupied cell = its representative.
        let mut rep_of_cell: Vec<u32> = vec![u32::MAX; n_cells];
        for (i, p) in pts.iter().enumerate() {
            let cx = (((p.x - min.x) / cell).floor() as i64).clamp(0, dims[0] as i64 - 1) as usize;
            let cy = (((p.y - min.y) / cell).floor() as i64).clamp(0, dims[1] as i64 - 1) as usize;
            let cz = (((p.z - min.z) / cell).floor() as i64).clamp(0, dims[2] as i64 - 1) as usize;
            let b = (cx * dims[1] + cy) * dims[2] + cz;
            rep_of_cell[b] = rep_of_cell[b].min(i as u32);
        }
        let mut reps: Vec<u32> = rep_of_cell.into_iter().filter(|&r| r != u32::MAX).collect();
        if reps.len() >= target as usize || cell <= f32::MIN_POSITIVE {
            if reps.len() < m {
                return None;
            }
            // Ascending original index ⇒ reps[0] is point 0, the exact
            // policy's starting point.
            reps.sort_unstable();
            let rep_points: PointSet = reps.iter().map(|&r| points.point(r as usize)).collect();
            let sel = INDEXED.farthest_point_sampling(&rep_points, m);
            return Some((sel.into_iter().map(|i| reps[i] as usize).collect(), cell));
        }
        cell *= 0.793_700_5; // 2^(-1/3): halves the expected cell volume
    }
    None
}

/// One contiguous run of Morton-ordered bucket slots with the tight
/// AABB of its member points — the pruning granule of [`fps_pruned`].
struct FpsTile {
    /// Global slot range `[start, end)`.
    start: u32,
    end: u32,
    lo: [f32; 3],
    hi: [f32; 3],
}

impl FpsTile {
    /// Conservative lower bound on the squared distance from `q` to any
    /// point of the tile: the squared gap to the AABB (0 inside).
    /// Non-finite coordinates degrade safely — `f32::max` discards a
    /// NaN operand, and a NaN result fails the `>=` skip test — so the
    /// bound can only ever under-estimate, never prune wrongly.
    fn gap2(&self, q: Point3) -> f32 {
        let gx = (self.lo[0] - q.x).max(q.x - self.hi[0]).max(0.0);
        let gy = (self.lo[1] - q.y).max(q.y - self.hi[1]).max(0.0);
        let gz = (self.lo[2] - q.z).max(q.z - self.hi[2]).max(0.0);
        gx * gx + gy * gy + gz * gz
    }
}

/// Work accounting from one pruned-FPS run, for the MPU cycle model
/// (`Mpu::fps_cycles_estimate_pruned`) and the bench trajectory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FpsWork {
    /// Candidate points whose distance to a selected point was actually
    /// evaluated (the pruned inner-loop trip count).
    pub scanned: u64,
    /// What a dense sweep would have evaluated: `n · (m − 1)`.
    pub dense: u64,
}

/// Packs a running min-distance and original point index into the
/// total-order arg-max key: `(dist² bits << 32) | (MAX − index)`, so
/// `max` picks the greatest distance with ties to the **lowest** index —
/// exactly the golden serial scan's selection policy. `dmin` is never
/// NaN (updates are gated on `nd < dmin`), so bit order equals numeric
/// order.
fn fps_key(dmin: f32, index: u32) -> u64 {
    ((dmin.to_bits() as u64) << 32) | u64::from(u32::MAX - index)
}

/// One worker's contiguous share of the pruned-FPS state: the running
/// min-distances of its slot range plus the cached per-tile arg-max
/// keys and upper bounds.
struct FpsChunk<'a> {
    index: &'a GridIndex,
    /// First global slot of this chunk (`dmin[0]` is that slot).
    slot_base: usize,
    dmin: Vec<f32>,
    tiles: Vec<FpsTile>,
    /// Cached arg-max key of each tile — exact as long as the tile's
    /// `dmin` entries are unchanged, which is precisely what the skip
    /// condition proves.
    keys: Vec<u64>,
    scanned: u64,
}

impl<'a> FpsChunk<'a> {
    /// Builds the chunk state over global slots `[lo, hi)`, cutting the
    /// range into tiles of `tile_len` slots with member-point AABBs.
    fn new(index: &'a GridIndex, lo: usize, hi: usize, tile_len: usize) -> Self {
        let mut tiles = Vec::with_capacity((hi - lo).div_ceil(tile_len.max(1)));
        let mut keys = Vec::with_capacity(tiles.capacity());
        let mut s = lo;
        while s < hi {
            let e = (s + tile_len).min(hi);
            let mut t = FpsTile {
                start: s as u32,
                end: e as u32,
                lo: [f32::INFINITY; 3],
                hi: [f32::NEG_INFINITY; 3],
            };
            let mut key = 0u64;
            for j in s..e {
                t.lo[0] = t.lo[0].min(index.xs[j]);
                t.lo[1] = t.lo[1].min(index.ys[j]);
                t.lo[2] = t.lo[2].min(index.zs[j]);
                t.hi[0] = t.hi[0].max(index.xs[j]);
                t.hi[1] = t.hi[1].max(index.ys[j]);
                t.hi[2] = t.hi[2].max(index.zs[j]);
                // All min-distances start at +∞, so the initial arg-max
                // key of a tile is its lowest original index.
                key = key.max(fps_key(f32::INFINITY, index.entries[j]));
            }
            tiles.push(t);
            keys.push(key);
            s = e;
        }
        FpsChunk {
            index,
            slot_base: lo,
            dmin: vec![f32::INFINITY; hi - lo],
            tiles,
            keys,
            scanned: 0,
        }
    }

    /// One FPS iteration over this chunk with `q` the newly selected
    /// point: per tile, either *prove* no min-distance can drop —
    /// `gap²(q, tile) ≥ max dmin` means every update `nd < dmin` fails,
    /// so the cached arg-max key stays exact — or scan the tile,
    /// updating `dmin` and re-deriving the key. Returns the chunk's
    /// arg-max key.
    fn step(&mut self, q: Point3) -> u64 {
        let idx = self.index;
        let mut best = 0u64;
        for (t, tile) in self.tiles.iter().enumerate() {
            // The cached key's distance field *is* the tile's max dmin.
            let ub = f32::from_bits((self.keys[t] >> 32) as u32);
            if tile.gap2(q) >= ub {
                best = best.max(self.keys[t]);
                continue;
            }
            let mut tile_key = 0u64;
            for s in tile.start as usize..tile.end as usize {
                let dx = idx.xs[s] - q.x;
                let dy = idx.ys[s] - q.y;
                let dz = idx.zs[s] - q.z;
                let nd = dx * dx + dy * dy + dz * dz;
                let d = &mut self.dmin[s - self.slot_base];
                if nd < *d {
                    *d = nd;
                }
                tile_key = tile_key.max(fps_key(*d, idx.entries[s]));
            }
            self.scanned += u64::from(tile.end - tile.start);
            self.keys[t] = tile_key;
            best = best.max(tile_key);
        }
        best
    }
}

/// Tile size for pruned FPS: ~√n slots balances the per-iteration tile
/// sweep (`n / tile_len` bound checks) against the scan granularity.
fn fps_tile_len(n: usize) -> usize {
    ((n as f64).sqrt() as usize).clamp(16, 4096)
}

/// Bucket-pruned **exact** farthest point sampling over a prebuilt
/// [`GridIndex`].
///
/// The running min-distance array lives in Morton slot order; tiles of
/// ~√n consecutive slots cache their arg-max key (max dmin, ties to the
/// lowest original index, packed by [`fps_key`]). Per iteration a tile
/// whose AABB gap to the new point is ≥ its cached max dmin is skipped
/// outright — the gap lower-bounds every new distance, so no update
/// could fire and the cached key is still exact — and the global
/// arg-max reduces over per-tile keys. Selection is therefore
/// **bit-identical to [`golden::farthest_point_sampling`]** on every
/// input (property-tested on adversarial clouds, including +∞
/// coordinates, in `tests/mapping_backends.rs`); only the amount of
/// scanned work changes, and that is reported in [`FpsWork`].
pub fn fps_pruned_with_index(index: &GridIndex, m: usize) -> (Vec<usize>, FpsWork) {
    let n = index.len();
    let mut work =
        FpsWork { scanned: 0, dense: (n as u64).saturating_mul(m.saturating_sub(1) as u64) };
    if m == 0 || n == 0 {
        return (Vec::new(), work);
    }
    let mut chunk = FpsChunk::new(index, 0, n, fps_tile_len(n));
    let mut selected = Vec::with_capacity(m);
    let mut current = 0usize;
    selected.push(current);
    for _ in 1..m {
        let key = chunk.step(index.points[current]);
        current = (u32::MAX - (key & 0xFFFF_FFFF) as u32) as usize;
        selected.push(current);
    }
    work.scanned = chunk.scanned;
    (selected, work)
}

/// [`fps_pruned_with_index`] over a bare cloud: builds the index first
/// (`O(n)`, amortized over the `m` pruned iterations).
pub fn fps_pruned(points: &PointSet, m: usize) -> (Vec<usize>, FpsWork) {
    fps_pruned_with_index(&GridIndex::build(points.points()), m)
}

/// Exact chunk-parallel farthest point sampling: the pruned algorithm
/// of [`fps_pruned_with_index`] with the Morton slot range split into
/// per-worker chunks (tile boundaries never straddle chunks).
///
/// Each iteration is one persistent-pool round ([`parallel_map_with`]):
/// every chunk updates its own tiles and returns its arg-max key, and
/// the cross-chunk `max` over the ordered results implements exactly
/// the serial scan's policy (greatest distance, ties to the lowest
/// original index) — so the selection is bit-identical to golden for
/// every worker count, and no barrier or thread spawn is involved.
fn fps_parallel(points: &PointSet, m: usize, workers: usize) -> Vec<usize> {
    let n = points.len();
    if m == 0 || n == 0 {
        return Vec::new();
    }
    let index = GridIndex::build(points.points());
    let tile_len = fps_tile_len(n);
    // Chunk boundaries in whole tiles, sized for `workers` chunks.
    let tiles_total = n.div_ceil(tile_len);
    let tiles_per_chunk = tiles_total.div_ceil(workers).max(1);
    let mut chunks: Vec<Mutex<FpsChunk>> = Vec::new();
    let mut lo = 0usize;
    while lo < n {
        let hi = (lo + tiles_per_chunk * tile_len).min(n);
        chunks.push(Mutex::new(FpsChunk::new(&index, lo, hi, tile_len)));
        lo = hi;
    }
    let workers = chunks.len();
    let mut selected = Vec::with_capacity(m);
    let mut current = 0usize;
    selected.push(current);
    for _ in 1..m {
        let q = index.points[current];
        let keys = parallel_map_with(workers, &chunks, |c| lock(c).step(q));
        let key = keys.into_iter().max().unwrap_or(0);
        current = (u32::MAX - (key & 0xFFFF_FFFF) as u32) as usize;
        selected.push(current);
    }
    selected
}

/// The golden oracle backend instance.
pub static GOLDEN: Golden = Golden;
/// The grid-hash production backend instance.
pub static INDEXED: Indexed = Indexed;

/// Resolves a backend by name (`"golden"` / `"indexed"`).
pub fn backend_by_name(name: &str) -> Option<&'static dyn MappingBackend> {
    match name {
        "golden" => Some(&GOLDEN),
        "indexed" => Some(&INDEXED),
        _ => None,
    }
}

/// The process-wide default backend: [`Indexed`], unless
/// `POINTACC_BACKEND=golden` forces the oracle. The environment is read
/// **once** per process; code that needs a specific backend should pass
/// it explicitly (e.g. `Executor::with_backend`,
/// `KernelMap::unit_stride_with`).
pub fn default_backend() -> &'static dyn MappingBackend {
    static CHOICE: std::sync::OnceLock<&'static dyn MappingBackend> = std::sync::OnceLock::new();
    *CHOICE.get_or_init(|| {
        // lint: allow(env-var): designated read-once accessor for POINTACC_BACKEND.
        std::env::var("POINTACC_BACKEND")
            .ok()
            .and_then(|name| backend_by_name(&name))
            .unwrap_or(&INDEXED)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_points(n: usize, seed: u64) -> PointSet {
        let mut x = seed | 1;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 1000) as f32 / 50.0 - 10.0
        };
        (0..n).map(|_| Point3::new(step(), step(), step())).collect()
    }

    fn pseudo_cloud(n: usize, seed: u64, stride: i32) -> VoxelCloud {
        let mut x = seed | 1;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x % 48) as i32 - 24) * stride
        };
        VoxelCloud::from_unsorted(
            (0..n).map(|_| Coord::new(step(), step(), step())).collect(),
            stride,
        )
    }

    #[test]
    fn dist_key_orders_like_floats() {
        assert!(dist_key(0.5, 9) < dist_key(0.5, 10));
        assert!(dist_key(0.5, 10) < dist_key(1.5, 0));
        assert!(dist_key(0.0, 0) < dist_key(f32::MIN_POSITIVE, 0));
    }

    #[test]
    fn grid_knn_matches_golden() {
        let input = pseudo_points(300, 3);
        let queries = pseudo_points(40, 7);
        let index = GridIndex::build(input.points());
        for k in [1usize, 3, 8, 300, 500] {
            let want = golden::k_nearest_neighbors(&input, &queries, k);
            for (qi, &q) in queries.points().iter().enumerate() {
                assert_eq!(index.knn(q, k), want[qi], "k={k} query={qi}");
            }
        }
    }

    #[test]
    fn grid_ball_matches_golden() {
        let input = pseudo_points(250, 11);
        let queries = pseudo_points(30, 5);
        let index = GridIndex::build(input.points());
        for r2 in [0.01f32, 1.0, 25.0, 1e6] {
            let want = golden::ball_query(&input, &queries, r2, 6);
            for (qi, &q) in queries.points().iter().enumerate() {
                assert_eq!(index.ball(q, r2, 6), want[qi], "r2={r2} query={qi}");
            }
        }
    }

    #[test]
    fn grid_handles_degenerate_clouds() {
        // All points identical: zero extent in every axis.
        let same: PointSet = (0..20).map(|_| Point3::new(1.5, -2.0, 3.0)).collect();
        let index = GridIndex::build(same.points());
        assert_eq!(index.knn(Point3::ORIGIN, 3), vec![0, 1, 2]);
        // Collinear points: zero extent in two axes.
        let line: PointSet = (0..50).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
        let index = GridIndex::build(line.points());
        assert_eq!(index.knn(Point3::new(10.2, 0.0, 0.0), 2), vec![10, 11]);
        // Empty cloud.
        let empty = GridIndex::build(&[]);
        assert!(empty.knn(Point3::ORIGIN, 4).is_empty());
        assert!(empty.ball(Point3::ORIGIN, 1.0, 4).is_empty());
    }

    #[test]
    fn nan_points_rank_last_never_first() {
        // A point with a NaN coordinate must not displace any real
        // neighbor (NaN distances rank after every finite distance).
        let mut pts: Vec<Point3> = (0..20).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
        pts[7] = Point3::new(f32::NAN, 0.0, 0.0);
        let index = GridIndex::build(&pts);
        let q = Point3::new(15.0, 0.0, 0.0);
        assert_eq!(index.knn(q, 3), vec![15, 14, 16]);
        // The corrupt point only appears once every real point is taken.
        assert_eq!(index.knn(q, 20).last(), Some(&7));
        // Balls never admit a NaN distance (NaN ≤ r² is false).
        assert!(index.ball(Point3::new(7.0, 0.0, 0.0), 4.0, 8).iter().all(|&i| i != 7));
    }

    #[test]
    fn far_queries_fall_back_to_brute_force() {
        let input = pseudo_points(100, 9);
        let index = GridIndex::build(input.points());
        let far = Point3::new(1e30, -1e30, 1e30);
        let queries = PointSet::from_points(vec![far]);
        assert_eq!(vec![index.knn(far, 5)], golden::k_nearest_neighbors(&input, &queries, 5));
    }

    #[test]
    fn indexed_backend_matches_golden_end_to_end() {
        let input = pseudo_points(220, 1);
        let queries = pseudo_points(35, 2);
        assert_eq!(
            INDEXED.k_nearest_neighbors(&input, &queries, 9),
            GOLDEN.k_nearest_neighbors(&input, &queries, 9)
        );
        assert_eq!(
            INDEXED.ball_query_padded(&input, &queries, 4.0, 8),
            GOLDEN.ball_query_padded(&input, &queries, 4.0, 8)
        );
        assert_eq!(
            INDEXED.farthest_point_sampling(&input, 64),
            GOLDEN.farthest_point_sampling(&input, 64)
        );
        let cloud = pseudo_cloud(150, 5, 1);
        assert_eq!(
            INDEXED.kernel_map(&cloud, &cloud, 3).canonicalized(),
            GOLDEN.kernel_map(&cloud, &cloud, 3).canonicalized()
        );
    }

    #[test]
    fn parallel_fps_is_bit_identical_to_serial() {
        // Big enough to cross FPS_PAR_WORK with several workers.
        let pts = pseudo_points(8192, 17);
        let want = golden::farthest_point_sampling(&pts, 300);
        assert_eq!(fps_parallel(&pts, 300, 4), want);
        assert_eq!(INDEXED.farthest_point_sampling(&pts, 300), want);
    }

    #[test]
    fn padded_ball_query_on_empty_input_is_empty() {
        let queries = pseudo_points(4, 3);
        let empty = PointSet::new();
        let out = INDEXED.ball_query_padded(&empty, &queries, 1.0, 4);
        assert_eq!(out, vec![Vec::<usize>::new(); 4]);
    }

    #[test]
    fn backend_lookup_by_name() {
        assert_eq!(backend_by_name("indexed").map(|b| b.name()), Some("indexed"));
        assert_eq!(backend_by_name("golden").map(|b| b.name()), Some("golden"));
        assert!(backend_by_name("quantum").is_none());
        assert!(!default_backend().name().is_empty());
    }

    #[test]
    fn fps_gating_is_one_predicate() {
        // Below the work threshold: serial regardless of availability.
        assert_eq!(fps_workers(8, 4096, 511), 1);
        // At the threshold (4096·512 = FPS_PAR_WORK): parallel.
        assert_eq!(fps_workers(8, 4096, 512), 2);
        // Mid-size cloud, large m: the old min-then-max gating clamped
        // to 1 worker for every n < 2·FPS_MIN_CHUNK, even with n·m far
        // above the threshold. One predicate, so this parallelizes.
        assert_eq!(fps_workers(8, 3000, 1000), 2);
        // Worker count caps at availability.
        assert_eq!(fps_workers(2, 1 << 20, 64), 2);
        // m = 0 does no update work.
        assert_eq!(fps_workers(8, 1 << 20, 0), 1);
    }

    #[test]
    fn fps_approx_selection_invariants() {
        let pts = pseudo_points(4096, 23);
        let m = 256;
        let sel = INDEXED.fps_approx(&pts, m);
        assert_eq!(sel.len(), m);
        assert_eq!(sel[0], 0, "selection starts at index 0, like exact FPS");
        let mut uniq = sel.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), m, "selected indices are distinct");
        assert!(uniq.iter().all(|&i| i < pts.len()));
    }

    #[test]
    fn fps_approx_falls_back_to_exact() {
        // Small clouds: stratification cannot pay for itself.
        let small = pseudo_points(256, 9);
        assert_eq!(INDEXED.fps_approx(&small, 64), GOLDEN.farthest_point_sampling(&small, 64));
        // The trait default is exact FPS.
        assert_eq!(GOLDEN.fps_approx(&small, 64), GOLDEN.farthest_point_sampling(&small, 64));
        // Dense sampling ratios (2m ≥ n): representatives would not
        // oversample the target, so exact runs instead.
        let pts = pseudo_points(4096, 31);
        assert_eq!(INDEXED.fps_approx(&pts, 3000), GOLDEN.farthest_point_sampling(&pts, 3000));
    }

    #[test]
    fn pruned_fps_is_bit_identical_to_golden_and_prunes_work() {
        let pts = pseudo_points(4096, 41);
        for m in [1usize, 2, 37, 300] {
            let (sel, work) = fps_pruned(&pts, m);
            assert_eq!(sel, golden::farthest_point_sampling(&pts, m), "m={m}");
            assert!(work.scanned <= work.dense, "m={m}: {work:?}");
        }
        // At a realistic sampling ratio the bound scan must actually
        // prune: this cloud drops well below half the dense sweep.
        let (_, work) = fps_pruned(&pts, 512);
        assert!(work.scanned * 2 < work.dense, "no pruning happened: {work:?}");
    }

    #[test]
    fn pruned_fps_handles_duplicate_and_degenerate_clouds() {
        // All-identical points: every dmin collapses to 0 and golden
        // re-selects index 0 forever — the packed key must reproduce it.
        let dup: PointSet = (0..64).map(|_| Point3::new(1.0, 2.0, 3.0)).collect();
        assert_eq!(fps_pruned(&dup, 5).0, golden::farthest_point_sampling(&dup, 5));
        // Collinear cloud.
        let line: PointSet = (0..257).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
        assert_eq!(fps_pruned(&line, 31).0, golden::farthest_point_sampling(&line, 31));
        // A +∞ coordinate: dmin stays +∞, its tile is never skipped, and
        // golden keeps re-selecting it — exactness must survive.
        let mut pts: Vec<Point3> =
            (0..128).map(|i| Point3::new(i as f32, (i % 7) as f32, 0.0)).collect();
        pts[17] = Point3::new(f32::INFINITY, 0.0, 0.0);
        let inf: PointSet = pts.into_iter().collect();
        assert_eq!(fps_pruned(&inf, 9).0, golden::farthest_point_sampling(&inf, 9));
    }

    #[test]
    fn grid_index_bounds_match_point_set_bounds_through_deltas() {
        let pts = pseudo_points(300, 8);
        let mut idx = GridIndex::build(pts.points());
        assert_eq!(idx.bounds(), pts.bounds());
        assert_eq!(GridIndex::build(&[]).bounds(), None);
        // Bounds stay tight through a patched delta (remove the current
        // extremes, insert interior points).
        let inserts = [Point3::new(0.1, 0.1, 0.1), Point3::new(0.2, 0.2, 0.2)];
        idx.apply_delta(&[0, 7, 19], &inserts);
        let live: PointSet = idx.points().iter().copied().collect();
        assert_eq!(idx.bounds(), live.bounds());
    }

    #[test]
    fn stratified_with_bounds_matches_the_scanning_entry() {
        let pts = pseudo_points(4096, 55);
        let bounds = pts.bounds().expect("non-empty");
        assert_eq!(fps_stratified(&pts, 200), fps_stratified_with_bounds(&pts, 200, bounds));
        let idx = GridIndex::build(pts.points());
        assert_eq!(
            fps_stratified_with_bounds(&pts, 200, idx.bounds().expect("non-empty")),
            fps_stratified(&pts, 200),
            "GridIndex bounds are a drop-in for the scan"
        );
    }

    #[test]
    fn build_with_bounds_is_identical_to_build() {
        let pts = pseudo_points(500, 21);
        let a = GridIndex::build(pts.points());
        let b = GridIndex::build_with_bounds(pts.points(), pts.bounds().expect("non-empty"));
        assert_eq!(a.bounds(), b.bounds());
        let q = Point3::new(0.3, 0.4, 0.5);
        assert_eq!(a.knn(q, 7), b.knn(q, 7));
        assert_eq!(fps_pruned_with_index(&a, 64), fps_pruned_with_index(&b, 64));
    }

    #[test]
    fn morton_slots_are_a_permutation() {
        let slots = GridIndex::morton_slots([3, 4, 5]);
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..60u32).collect::<Vec<_>>());
        // The Z-curve keeps the all-zero cell first.
        assert_eq!(slots[0], 0);
    }

    #[test]
    fn fused_kernel_map_emission_order_matches_golden() {
        // Bit-for-bit table equality, including grouping and the
        // within-group output order the cache simulator binary-searches.
        let cloud = pseudo_cloud(500, 77, 1);
        for ks in [2usize, 3] {
            let got = INDEXED.kernel_map(&cloud, &cloud, ks);
            let want = GOLDEN.kernel_map(&cloud, &cloud, ks);
            assert_eq!(got.to_entries(), want.to_entries(), "kernel_size={ks}");
        }
        let (coarse, _) = cloud.downsample(2);
        let got = INDEXED.kernel_map(&cloud, &coarse, 2);
        let want = GOLDEN.kernel_map(&cloud, &coarse, 2);
        assert_eq!(got.to_entries(), want.to_entries());
    }

    #[test]
    fn coord_index_roundtrip() {
        let vc = pseudo_cloud(60, 2, 2);
        let idx = CoordIndex::build(&vc);
        assert_eq!(idx.len(), vc.len());
        assert!(!idx.is_empty());
        for (i, &c) in vc.coords().iter().enumerate() {
            assert_eq!(idx.get(c), Some(i as u32));
        }
    }

    #[test]
    fn coord_index_remove_and_upsert() {
        let vc = pseudo_cloud(40, 13, 1);
        let mut idx = CoordIndex::build(&vc);
        let victim = vc.coords()[7];
        assert!(idx.remove(victim).is_some());
        assert_eq!(idx.get(victim), None);
        assert_eq!(idx.len(), vc.len() - 1);
        // Probe chains through the tombstone stay intact.
        for (i, &c) in vc.coords().iter().enumerate() {
            if c != victim {
                assert_eq!(idx.get(c), Some(i as u32), "coord {i} lost after remove");
            }
        }
        // Re-inserting reclaims the tombstone; removing a missing
        // coordinate is a no-op.
        idx.upsert(victim, 99);
        assert_eq!(idx.get(victim), Some(99));
        assert_eq!(idx.len(), vc.len());
        assert_eq!(idx.remove(Coord::new(1000, 1000, 1000)), None);
    }

    #[test]
    fn coord_index_survives_churn_rehash() {
        // Heavy remove/insert churn forces tombstone buildup past the
        // load threshold: every probe must still terminate and resolve.
        let mut idx = CoordIndex::with_capacity_for(8);
        for round in 0..200i32 {
            idx.upsert(Coord::new(round, -round, 1), round as u32);
            if round >= 8 {
                idx.remove(Coord::new(round - 8, -(round - 8), 1));
            }
        }
        assert_eq!(idx.len(), 8);
        for round in 192..200i32 {
            assert_eq!(idx.get(Coord::new(round, -round, 1)), Some(round as u32));
        }
        assert_eq!(idx.get(Coord::new(0, 0, 1)), None);
    }

    #[test]
    fn coord_index_probe_matches_golden_kernel_map() {
        let cloud = pseudo_cloud(120, 21, 1);
        let (coarse, _) = cloud.downsample(2);
        let idx = CoordIndex::build(&cloud);
        for ks in [2usize, 3] {
            let got = idx.kernel_map_probe(cloud.stride(), &coarse, ks);
            let want = golden::kernel_map_hash(&cloud, &coarse, ks);
            assert_eq!(got.to_entries(), want.to_entries(), "kernel_size={ks}");
        }
    }

    #[test]
    fn apply_point_delta_layout() {
        let p = |i: i32| Point3::new(i as f32, 0.0, 0.0);
        // More inserts than holes: holes filled in order, spill appended.
        let mut pts: Vec<Point3> = (0..5).map(p).collect();
        let moves = apply_point_delta(&mut pts, &[1, 3], &[p(10), p(11), p(12)]);
        assert!(moves.is_empty());
        assert_eq!(pts, vec![p(0), p(10), p(2), p(11), p(4), p(12)]);
        // More holes than inserts: tail back-fills, array shrinks.
        let mut pts: Vec<Point3> = (0..6).map(p).collect();
        let moves = apply_point_delta(&mut pts, &[0, 2, 4], &[p(20)]);
        assert_eq!(moves, vec![(5, 2)]);
        assert_eq!(pts, vec![p(20), p(1), p(5), p(3)]);
        // Tail positions that are themselves holes are consumed, not moved.
        let mut pts: Vec<Point3> = (0..6).map(p).collect();
        let moves = apply_point_delta(&mut pts, &[1, 4, 5], &[]);
        assert_eq!(moves, vec![(3, 1)]);
        assert_eq!(pts, vec![p(0), p(3), p(2)]);
        // Empty delta is the identity.
        let mut pts: Vec<Point3> = (0..4).map(p).collect();
        assert!(apply_point_delta(&mut pts, &[], &[]).is_empty());
        assert_eq!(pts.len(), 4);
    }

    #[test]
    fn grid_apply_delta_matches_rebuild() {
        let base = pseudo_points(400, 41);
        let mut live = GridIndex::build(base.points());
        let mut mirror: Vec<Point3> = base.points().to_vec();
        let extra = pseudo_points(64, 43);
        let queries = pseudo_points(25, 47);
        let steps = [
            (vec![3u32, 9, 9, 250], &extra.points()[..8]),
            (vec![], &extra.points()[8..8]), // empty delta
            ((0..32u32).collect::<Vec<_>>(), &extra.points()[8..12]), // shrink
            (vec![0, 1, 2], &extra.points()[12..64]), // grow
        ];
        for (step, (removes, inserts)) in steps.into_iter().enumerate() {
            live.apply_delta(&removes, inserts);
            apply_point_delta(&mut mirror, &removes, inserts);
            let fresh = GridIndex::build(&mirror);
            assert_eq!(live.points(), fresh.points(), "step {step}: arrays diverged");
            for &q in queries.points() {
                assert_eq!(live.knn(q, 7), fresh.knn(q, 7), "step {step}");
                assert_eq!(live.ball(q, 9.0, 6), fresh.ball(q, 9.0, 6), "step {step}");
            }
        }
    }

    #[test]
    fn grid_apply_delta_outside_coverage_rebuilds_correctly() {
        let base = pseudo_points(200, 51);
        let mut live = GridIndex::build(base.points());
        // Far outside the built bounding box: must take the rebuild
        // path, and queries must still match a from-scratch build.
        let outlier = Point3::new(1e4, -1e4, 1e4);
        live.apply_delta(&[5], &[outlier]);
        let mut mirror: Vec<Point3> = base.points().to_vec();
        apply_point_delta(&mut mirror, &[5], &[outlier]);
        let fresh = GridIndex::build(&mirror);
        for &q in pseudo_points(10, 53).points() {
            assert_eq!(live.knn(q, 5), fresh.knn(q, 5));
        }
        assert_eq!(live.knn(outlier, 1), fresh.knn(outlier, 1));
    }
}
