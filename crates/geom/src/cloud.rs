//! Point cloud containers: continuous [`PointSet`]s and lattice
//! [`VoxelCloud`]s.

use crate::{Coord, Point3};

/// A set of continuous points (a raw sensor point cloud).
///
/// This is the input representation for PointNet++-based networks and the
/// source for voxelization into a [`VoxelCloud`].
///
/// # Examples
///
/// ```
/// use pointacc_geom::{Point3, PointSet};
/// let ps = PointSet::from_points(vec![Point3::new(0.0, 0.0, 0.0)]);
/// assert_eq!(ps.len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PointSet {
    points: Vec<Point3>,
}

impl PointSet {
    /// Creates an empty point set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing vector of points.
    pub fn from_points(points: Vec<Point3>) -> Self {
        PointSet { points }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points as a slice.
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    /// Point at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn point(&self, i: usize) -> Point3 {
        self.points[i]
    }

    /// Returns the subset selected by `indices` (e.g. FPS centroids).
    #[must_use]
    pub fn select(&self, indices: &[usize]) -> PointSet {
        PointSet::from_points(indices.iter().map(|&i| self.points[i]).collect())
    }

    /// Axis-aligned bounding box as `(min, max)`, or `None` if empty.
    pub fn bounds(&self) -> Option<(Point3, Point3)> {
        let first = *self.points.first()?;
        let mut min = first;
        let mut max = first;
        for p in &self.points {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            min.z = min.z.min(p.z);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
            max.z = max.z.max(p.z);
        }
        Some((min, max))
    }

    /// Voxelizes into a [`VoxelCloud`] at `voxel_size`, also returning for
    /// every input point the index of the voxel it landed in. Duplicate
    /// voxels are merged (the standard sparse-tensor construction).
    pub fn voxelize(&self, voxel_size: f32) -> (VoxelCloud, Vec<u32>) {
        let coords: Vec<Coord> = self.points.iter().map(|p| p.voxelize(voxel_size)).collect();
        let cloud = VoxelCloud::from_unsorted(coords.clone(), 1);
        let idx = coords
            .iter()
            .map(|c| {
                cloud.index_of(*c).expect("voxelized coordinate must be present in its own cloud")
                    as u32
            })
            .collect();
        (cloud, idx)
    }
}

impl FromIterator<Point3> for PointSet {
    fn from_iter<I: IntoIterator<Item = Point3>>(iter: I) -> Self {
        PointSet::from_points(iter.into_iter().collect())
    }
}

/// A sparse tensor's coordinate list: sorted, de-duplicated lattice
/// coordinates plus the tensor stride they live at.
///
/// Invariants: `coords` is strictly increasing in the lexicographic
/// [`Coord`] order and every coordinate is a multiple of `stride`
/// (enforced on construction by quantizing).
///
/// # Examples
///
/// ```
/// use pointacc_geom::{Coord, VoxelCloud};
/// let vc = VoxelCloud::from_unsorted(
///     vec![Coord::new(1, 1, 0), Coord::new(0, 0, 0), Coord::new(1, 1, 0)],
///     1,
/// );
/// assert_eq!(vc.len(), 2); // duplicates merged
/// assert!(vc.index_of(Coord::new(1, 1, 0)).is_some());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VoxelCloud {
    coords: Vec<Coord>,
    stride: i32,
}

impl VoxelCloud {
    /// Builds a cloud from arbitrary coordinates: sorts, de-duplicates and
    /// records the tensor stride.
    ///
    /// # Panics
    ///
    /// Panics if `stride <= 0` or any coordinate is not aligned to
    /// `stride`.
    pub fn from_unsorted(mut coords: Vec<Coord>, stride: i32) -> Self {
        assert!(stride > 0, "tensor stride must be positive, got {stride}");
        coords.sort_unstable();
        coords.dedup();
        for c in &coords {
            assert_eq!(
                c.quantize(stride),
                *c,
                "coordinate {c} is not aligned to tensor stride {stride}"
            );
        }
        VoxelCloud { coords, stride }
    }

    /// Builds a cloud from coordinates already known to be sorted, unique
    /// and stride-aligned.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the invariants do not hold.
    pub fn from_sorted(coords: Vec<Coord>, stride: i32) -> Self {
        debug_assert!(coords.windows(2).all(|w| w[0] < w[1]), "coords not sorted/unique");
        debug_assert!(coords.iter().all(|c| c.quantize(stride) == *c));
        VoxelCloud { coords, stride }
    }

    /// Number of nonzero points.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Whether the cloud has no points.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// The sorted coordinates.
    pub fn coords(&self) -> &[Coord] {
        &self.coords
    }

    /// Coordinate at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn coord(&self, i: usize) -> Coord {
        self.coords[i]
    }

    /// The tensor stride of the cloud.
    pub fn stride(&self) -> i32 {
        self.stride
    }

    /// Binary-searches for a coordinate; `Some(index)` if present.
    pub fn index_of(&self, c: Coord) -> Option<usize> {
        self.coords.binary_search(&c).ok()
    }

    /// Constructs the downsampled output cloud by coordinate quantization
    /// (paper §2.1.1): every coordinate is floored to the new stride
    /// `self.stride() * factor` and duplicates are merged. Also returns,
    /// for each input point, the index of the output point it quantizes to
    /// (the stride-`factor` pooling map).
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 0`.
    pub fn downsample(&self, factor: i32) -> (VoxelCloud, Vec<u32>) {
        assert!(factor > 0, "downsample factor must be positive, got {factor}");
        let new_stride = self.stride * factor;
        // Quantization is monotone per component but NOT in the
        // lexicographic order, so the quantized sequence must be re-sorted
        // before de-duplication — which is why the hardware routes the
        // quantized cloud through the mapping unit's sorter.
        let quantized: Vec<Coord> = self.coords.iter().map(|c| c.quantize(new_stride)).collect();
        let cloud = VoxelCloud::from_unsorted(quantized.clone(), new_stride);
        let idx = quantized
            .iter()
            .map(|c| {
                cloud.index_of(*c).expect("quantized coordinate must be in the downsampled cloud")
                    as u32
            })
            .collect();
        (cloud, idx)
    }

    /// Returns the occupancy density of the cloud inside its bounding box
    /// at its own stride: `len / volume(bbox in stride units)`. This is the
    /// "dataset density" metric of paper Fig. 5.
    pub fn density(&self) -> f64 {
        if self.coords.is_empty() {
            return 0.0;
        }
        let mut min = self.coords[0];
        let mut max = self.coords[0];
        for c in &self.coords {
            min.x = min.x.min(c.x);
            min.y = min.y.min(c.y);
            min.z = min.z.min(c.z);
            max.x = max.x.max(c.x);
            max.y = max.y.max(c.y);
            max.z = max.z.max(c.z);
        }
        let s = self.stride as f64;
        let vx = ((max.x - min.x) as f64 / s + 1.0).max(1.0);
        let vy = ((max.y - min.y) as f64 / s + 1.0).max(1.0);
        let vz = ((max.z - min.z) as f64 / s + 1.0).max(1.0);
        self.coords.len() as f64 / (vx * vy * vz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(cs: &[(i32, i32, i32)]) -> VoxelCloud {
        VoxelCloud::from_unsorted(cs.iter().map(|&c| Coord::from(c)).collect(), 1)
    }

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let vc = cloud(&[(2, 0, 0), (1, 0, 0), (2, 0, 0), (0, 5, 5)]);
        assert_eq!(vc.len(), 3);
        assert!(vc.coords().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn index_of_finds_members_only() {
        let vc = cloud(&[(0, 0, 0), (1, 2, 3)]);
        assert_eq!(vc.index_of(Coord::new(1, 2, 3)), Some(1));
        assert_eq!(vc.index_of(Coord::new(9, 9, 9)), None);
    }

    #[test]
    fn downsample_merges_cells() {
        let vc = cloud(&[(0, 0, 0), (1, 1, 1), (2, 2, 2), (3, 3, 3)]);
        let (ds, idx) = vc.downsample(2);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.stride(), 2);
        assert_eq!(ds.coords(), &[Coord::new(0, 0, 0), Coord::new(2, 2, 2)]);
        assert_eq!(idx, vec![0, 0, 1, 1]);
    }

    #[test]
    fn downsample_preserves_alignment_invariant() {
        let vc = VoxelCloud::from_unsorted(vec![Coord::new(-4, 6, 2), Coord::new(0, -2, 4)], 2);
        let (ds, _) = vc.downsample(2);
        assert_eq!(ds.stride(), 4);
        for c in ds.coords() {
            assert_eq!(c.quantize(4), *c);
        }
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn misaligned_coord_rejected() {
        let _ = VoxelCloud::from_unsorted(vec![Coord::new(1, 0, 0)], 2);
    }

    #[test]
    fn pointset_voxelize_maps_every_point() {
        let ps = PointSet::from_points(vec![
            Point3::new(0.1, 0.1, 0.1),
            Point3::new(0.2, 0.2, 0.2),
            Point3::new(1.5, 0.0, 0.0),
        ]);
        let (vc, idx) = ps.voxelize(1.0);
        assert_eq!(vc.len(), 2);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx[0], idx[1]);
        assert_ne!(idx[0], idx[2]);
    }

    #[test]
    fn density_of_full_block_is_one() {
        let mut cs = Vec::new();
        for x in 0..3 {
            for y in 0..3 {
                for z in 0..3 {
                    cs.push(Coord::new(x, y, z));
                }
            }
        }
        let vc = VoxelCloud::from_unsorted(cs, 1);
        assert!((vc.density() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bounds_and_select() {
        let ps =
            PointSet::from_points(vec![Point3::new(-1.0, 2.0, 0.0), Point3::new(3.0, -4.0, 5.0)]);
        let (min, max) = ps.bounds().unwrap();
        assert_eq!(min, Point3::new(-1.0, -4.0, 0.0));
        assert_eq!(max, Point3::new(3.0, 2.0, 5.0));
        assert_eq!(ps.select(&[1]).point(0), Point3::new(3.0, -4.0, 5.0));
    }
}
