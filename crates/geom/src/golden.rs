//! Golden (reference) implementations of every mapping operation.
//!
//! These are straightforward CPU algorithms — hash tables, brute-force
//! distance scans — matching the state-of-the-art CPU/GPU implementations
//! the paper profiles (§2.1). They are the workspace's **test oracle**:
//! the PointAcc mapping unit in the `pointacc` crate and the grid-hash
//! [`crate::index::Indexed`] backend must both produce bit-identical
//! results to these functions, and the test suites enforce that
//! equivalence (`tests/mpu_equivalence.rs`, `tests/mapping_backends.rs`).
//!
//! Hot paths should not call this module directly: the executor, the
//! [`crate::KernelMap`] constructors and the bench harness go through
//! [`crate::index::MappingBackend`], which defaults to the indexed
//! backend and keeps `golden` as the slow, auditable reference.

use std::collections::HashMap;

use crate::{Coord, MapEntry, MapTable, Point3, PointSet, VoxelCloud};

/// Enumerates kernel offsets for a cubic kernel of size `k` in the order
/// the weight tensor is laid out (x-major, matching the weight index
/// convention `w_{δx,δy,δz}`).
///
/// Odd kernels are centered (`δ ∈ [-(k-1)/2, (k-1)/2]`), even kernels are
/// forward (`δ ∈ [0, k-1]`), matching the MinkowskiEngine convention used
/// by the networks the paper evaluates (kernel 3 / stride 1 convs, kernel
/// 2 / stride 2 downsamples).
///
/// # Examples
///
/// ```
/// use pointacc_geom::golden::kernel_offsets;
/// assert_eq!(kernel_offsets(3).len(), 27);
/// assert_eq!(kernel_offsets(2).len(), 8);
/// ```
pub fn kernel_offsets(k: usize) -> Vec<Coord> {
    assert!(k >= 1, "kernel size must be at least 1");
    let range: Vec<i32> = if k % 2 == 1 {
        let h = (k as i32 - 1) / 2;
        (-h..=h).collect()
    } else {
        (0..k as i32).collect()
    };
    let mut out = Vec::with_capacity(k * k * k);
    for &dx in &range {
        for &dy in &range {
            for &dz in &range {
                out.push(Coord::new(dx, dy, dz));
            }
        }
    }
    out
}

/// Hash-table based kernel mapping (the state-of-the-art CPU/GPU algorithm,
/// paper §4.1.1): builds a hash table of input coordinates, then for every
/// output point and every kernel offset queries `q + δ·stride_in`; a hit
/// yields the map `(p, q, w_δ)`.
///
/// `input.stride()` is the dilation of the kernel (offsets step by the
/// input tensor stride).
pub fn kernel_map_hash(input: &VoxelCloud, output: &VoxelCloud, kernel_size: usize) -> MapTable {
    let offsets = kernel_offsets(kernel_size);
    let table: HashMap<Coord, u32> =
        input.coords().iter().enumerate().map(|(i, &c)| (c, i as u32)).collect();
    let s = input.stride();
    let mut entries = Vec::new();
    for (w, &d) in offsets.iter().enumerate() {
        let dd = d.scale(s);
        for (qi, &q) in output.coords().iter().enumerate() {
            if let Some(&pi) = table.get(&q.offset(dd)) {
                entries.push(MapEntry::new(pi, qi as u32, w as u16));
            }
        }
    }
    MapTable::from_entries(entries, offsets.len())
}

/// Farthest point sampling (paper §2.1.1): iteratively selects `m` points,
/// each the input point with the maximum distance to the already-selected
/// set. Selection starts from index 0 and ties resolve to the lowest
/// index, which is the deterministic policy the hardware model also uses.
///
/// Returns the indices of the sampled points in selection order.
///
/// # Panics
///
/// Panics if `m > points.len()`.
pub fn farthest_point_sampling(points: &PointSet, m: usize) -> Vec<usize> {
    assert!(m <= points.len(), "cannot sample {m} from {} points", points.len());
    if m == 0 {
        return Vec::new();
    }
    let n = points.len();
    let mut selected = Vec::with_capacity(m);
    let mut dist = vec![f32::INFINITY; n];
    let mut current = 0usize;
    selected.push(current);
    for _ in 1..m {
        let q = points.point(current);
        let mut best = 0usize;
        let mut best_d = f32::NEG_INFINITY;
        for (i, d) in dist.iter_mut().enumerate() {
            let nd = points.point(i).dist2(q);
            if nd < *d {
                *d = nd;
            }
            if *d > best_d {
                best_d = *d;
                best = i;
            }
        }
        selected.push(best);
        current = best;
    }
    selected
}

/// Brute-force k-nearest-neighbors: for every query, the `k` input points
/// with the smallest squared distance, ties broken by index (the ranking
/// key is `(dist², index)`, exactly the comparator key of the mapping
/// unit's top-k). Returns `queries.len()` vectors of ≤ `k` indices in
/// ascending `(dist², index)` order.
pub fn k_nearest_neighbors(input: &PointSet, queries: &PointSet, k: usize) -> Vec<Vec<usize>> {
    queries.points().iter().map(|&q| knn_one(input, q, k, None)).collect()
}

/// Ball query (paper §2.1.2): like kNN but only points within squared
/// radius `radius2` qualify. PointNet++ pads short neighborhoods by
/// repeating the first (nearest) neighbor; this function returns the
/// unpadded result and [`ball_query_padded`] applies the padding.
pub fn ball_query(input: &PointSet, queries: &PointSet, radius2: f32, k: usize) -> Vec<Vec<usize>> {
    queries.points().iter().map(|&q| knn_one(input, q, k, Some(radius2))).collect()
}

/// Ball query with PointNet++-style padding: neighborhoods shorter than
/// `k` repeat their nearest member so every output has exactly `k`
/// entries. Queries with an empty ball fall back to the single nearest
/// neighbor repeated `k` times (matches the reference implementation's
/// behaviour of always grouping something).
pub fn ball_query_padded(
    input: &PointSet,
    queries: &PointSet,
    radius2: f32,
    k: usize,
) -> Vec<Vec<usize>> {
    let mut out = ball_query(input, queries, radius2, k);
    for (qi, nbrs) in out.iter_mut().enumerate() {
        if nbrs.is_empty() {
            let fallback = knn_one(input, queries.point(qi), 1, None);
            nbrs.extend_from_slice(&fallback);
        }
        let first = nbrs[0];
        while nbrs.len() < k {
            nbrs.push(first);
        }
    }
    out
}

fn knn_one(input: &PointSet, q: Point3, k: usize, radius2: Option<f32>) -> Vec<usize> {
    let mut cands: Vec<(f32, usize)> = input
        .points()
        .iter()
        .enumerate()
        .map(|(i, &p)| (p.dist2(q), i))
        .filter(|&(d, _)| radius2.is_none_or(|r2| d <= r2))
        .collect();
    cands.sort_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
    cands.truncate(k);
    cands.into_iter().map(|(_, i)| i).collect()
}

/// Converts per-query neighbor lists into a shared-weight [`MapTable`]
/// (weight index 0 for every map), the form PointNet++-style aggregation
/// consumes.
pub fn neighbors_to_maps(neighbors: &[Vec<usize>]) -> MapTable {
    let entries = neighbors
        .iter()
        .enumerate()
        .flat_map(|(q, ns)| ns.iter().map(move |&p| MapEntry::new(p as u32, q as u32, 0)))
        .collect();
    MapTable::from_entries(entries, 1)
}

/// Converts per-query neighbor lists into a *positional* map table where
/// the weight index is the neighbor rank (0..k). Used by convolutions that
/// apply a different weight per neighbor rank (e.g. PointCNN-style).
pub fn neighbors_to_ranked_maps(neighbors: &[Vec<usize>], k: usize) -> MapTable {
    let entries = neighbors
        .iter()
        .enumerate()
        .flat_map(|(q, ns)| {
            ns.iter().enumerate().map(move |(r, &p)| MapEntry::new(p as u32, q as u32, r as u16))
        })
        .collect();
    MapTable::from_entries(entries, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PointSet;

    fn grid_cloud() -> VoxelCloud {
        // 2-D-ish cross of points on z=0.
        let cs = [(1, 1, 0), (2, 2, 0), (2, 4, 0), (3, 2, 0), (4, 3, 0)];
        VoxelCloud::from_unsorted(cs.iter().map(|&c| Coord::from(c)).collect(), 1)
    }

    #[test]
    fn kernel_offsets_order_and_count() {
        let o3 = kernel_offsets(3);
        assert_eq!(o3.len(), 27);
        assert_eq!(o3[0], Coord::new(-1, -1, -1));
        assert_eq!(o3[26], Coord::new(1, 1, 1));
        let o2 = kernel_offsets(2);
        assert_eq!(o2[0], Coord::ZERO);
        assert_eq!(o2[7], Coord::new(1, 1, 1));
    }

    #[test]
    fn kernel_map_stride1_center_offset_is_identity() {
        let c = grid_cloud();
        let maps = kernel_map_hash(&c, &c, 3);
        // Center weight (offset (0,0,0)) index for k=3 is 13.
        let center = maps.group(13);
        assert_eq!(center.len(), c.len());
        assert_eq!(center.inputs(), center.outputs());
    }

    #[test]
    fn kernel_map_finds_paper_fig9_pairs() {
        // Paper Fig. 9: inputs {(1,1),(2,2),(2,4),(3,2),(4,3)}, stride-1
        // outputs identical; offset w_{-1,-1} (shift input by (1,1))
        // produces maps (p0 -> q1) and (p3 -> q4).
        let c = grid_cloud();
        let maps = kernel_map_hash(&c, &c, 3);
        // In our 3-D offset enumeration, δ = (-1,-1,0) means p = q + δ, so
        // maps pair input (1,1,0) with output (2,2,0).
        let w = kernel_offsets(3).iter().position(|&d| d == Coord::new(-1, -1, 0)).unwrap();
        let g = maps.group(w);
        assert_eq!(g.len(), 2);
        let p0 = c.index_of(Coord::new(1, 1, 0)).unwrap() as u32;
        let q1 = c.index_of(Coord::new(2, 2, 0)).unwrap() as u32;
        let p3 = c.index_of(Coord::new(3, 2, 0)).unwrap() as u32;
        let q4 = c.index_of(Coord::new(4, 3, 0)).unwrap() as u32;
        assert!(g.iter().any(|e| e == MapEntry::new(p0, q1, w as u16)));
        assert!(g.iter().any(|e| e == MapEntry::new(p3, q4, w as u16)));
    }

    #[test]
    fn kernel_map_downsample_covers_every_input() {
        let c = grid_cloud();
        let (ds, _) = c.downsample(2);
        let maps = kernel_map_hash(&c, &ds, 2);
        // A kernel-2/stride-2 downsampling conv touches every input point
        // exactly once (each input falls in exactly one output cell at
        // exactly one offset).
        assert_eq!(maps.len(), c.len());
        let mut seen: Vec<u32> = maps.inputs().to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), c.len());
    }

    #[test]
    fn fps_selects_extremes_first() {
        // Paper Fig. 3c: q0 selected first, then the farthest point q4.
        let ps = PointSet::from_points(vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(2.0, 0.0, 0.0),
            Point3::new(10.0, 0.0, 0.0),
        ]);
        let sel = farthest_point_sampling(&ps, 3);
        assert_eq!(sel[0], 0);
        assert_eq!(sel[1], 3); // farthest from point 0
        assert_eq!(sel[2], 2); // midpoint-ish maximizes min-distance
    }

    #[test]
    fn fps_full_sample_is_permutation() {
        let ps = PointSet::from_points(vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(5.0, 1.0, 0.0),
            Point3::new(-3.0, 2.0, 1.0),
            Point3::new(0.5, -2.0, 4.0),
        ]);
        let mut sel = farthest_point_sampling(&ps, 4);
        sel.sort_unstable();
        assert_eq!(sel, vec![0, 1, 2, 3]);
    }

    #[test]
    fn knn_orders_by_distance_then_index() {
        let ps = PointSet::from_points(vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(-1.0, 0.0, 0.0), // tie with index 1
            Point3::new(5.0, 0.0, 0.0),
        ]);
        let q = PointSet::from_points(vec![Point3::ORIGIN]);
        let nn = k_nearest_neighbors(&ps, &q, 3);
        assert_eq!(nn[0], vec![0, 1, 2]);
    }

    #[test]
    fn ball_query_respects_radius() {
        let ps = PointSet::from_points(vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(0.5, 0.0, 0.0),
            Point3::new(3.0, 0.0, 0.0),
        ]);
        let q = PointSet::from_points(vec![Point3::ORIGIN]);
        let b = ball_query(&ps, &q, 1.0, 8);
        assert_eq!(b[0], vec![0, 1]);
        let padded = ball_query_padded(&ps, &q, 1.0, 4);
        assert_eq!(padded[0], vec![0, 1, 0, 0]);
    }

    #[test]
    fn ball_query_empty_falls_back_to_nearest() {
        let ps = PointSet::from_points(vec![Point3::new(10.0, 0.0, 0.0)]);
        let q = PointSet::from_points(vec![Point3::ORIGIN]);
        let padded = ball_query_padded(&ps, &q, 0.01, 2);
        assert_eq!(padded[0], vec![0, 0]);
    }

    #[test]
    fn neighbor_map_conversions() {
        let nbrs = vec![vec![1, 2], vec![0]];
        let shared = neighbors_to_maps(&nbrs);
        assert_eq!(shared.n_weights(), 1);
        assert_eq!(shared.len(), 3);
        let ranked = neighbors_to_ranked_maps(&nbrs, 2);
        assert_eq!(ranked.n_weights(), 2);
        assert_eq!(ranked.group(1).iter().collect::<Vec<_>>(), vec![MapEntry::new(2, 0, 1)]);
    }
}
