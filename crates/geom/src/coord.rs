//! Integer lattice coordinates used by SparseConv-style point cloud
//! convolution.
//!
//! Quantized point clouds live on an integer lattice whose spacing is the
//! *tensor stride* (`ts = 2^k` after `k` downsamplings, see §2.1.1 of the
//! paper). [`Coord`] is one lattice position; its derived ordering is the
//! lexicographic `(x, y, z)` order that the PointAcc mapping unit sorts by.

use std::fmt;

/// A 3-D integer lattice coordinate.
///
/// The derived `Ord` is lexicographic over `(x, y, z)`; this is the order
/// the hardware sorters operate in, and [`Coord::key`] produces the packed
/// 96-bit comparator key with the same ordering.
///
/// # Examples
///
/// ```
/// use pointacc_geom::Coord;
/// let p = Coord::new(3, 5, -1);
/// assert_eq!(p.quantize(2), Coord::new(2, 4, -2));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Coord {
    /// x component.
    pub x: i32,
    /// y component.
    pub y: i32,
    /// z component.
    pub z: i32,
}

impl Coord {
    /// Creates a coordinate from its three components.
    pub const fn new(x: i32, y: i32, z: i32) -> Self {
        Coord { x, y, z }
    }

    /// The origin `(0, 0, 0)`.
    pub const ZERO: Coord = Coord::new(0, 0, 0);

    /// Component-wise addition; used to shift a point cloud by a kernel
    /// offset (paper Fig. 9: "shift inputs").
    #[must_use]
    pub const fn offset(self, d: Coord) -> Coord {
        Coord::new(self.x + d.x, self.y + d.y, self.z + d.z)
    }

    /// Component-wise subtraction.
    #[must_use]
    pub const fn sub(self, d: Coord) -> Coord {
        Coord::new(self.x - d.x, self.y - d.y, self.z - d.z)
    }

    /// Component-wise scaling by `s`.
    #[must_use]
    pub const fn scale(self, s: i32) -> Coord {
        Coord::new(self.x * s, self.y * s, self.z * s)
    }

    /// Quantizes to the lattice of spacing `stride`:
    /// `q = floor(p / stride) * stride` (paper §2.1.1, Coordinates
    /// Quantization). Works for negative coordinates (true floor division);
    /// for the power-of-two strides used by SparseConv networks this is
    /// exactly "clearing the lowest `log2(stride)` bits" in two's
    /// complement, which is how the hardware implements it.
    ///
    /// # Panics
    ///
    /// Panics if `stride <= 0`.
    #[must_use]
    pub fn quantize(self, stride: i32) -> Coord {
        assert!(stride > 0, "tensor stride must be positive, got {stride}");
        if stride.count_ones() == 1 {
            // Hardware path: clear the low bits.
            let mask = !(stride - 1);
            Coord::new(self.x & mask, self.y & mask, self.z & mask)
        } else {
            Coord::new(
                self.x.div_euclid(stride) * stride,
                self.y.div_euclid(stride) * stride,
                self.z.div_euclid(stride) * stride,
            )
        }
    }

    /// Squared Euclidean distance to `other`, exact in `i64`.
    pub fn dist2(self, other: Coord) -> i64 {
        let dx = (self.x - other.x) as i64;
        let dy = (self.y - other.y) as i64;
        let dz = (self.z - other.z) as i64;
        dx * dx + dy * dy + dz * dz
    }

    /// Packs the coordinate into a single 96-bit comparator key (stored in
    /// a `u128`) whose unsigned order equals the lexicographic `(x, y, z)`
    /// order of the coordinates. Each component is biased by `2^31` so that
    /// negative values sort before positive ones. This is the
    /// `ComparatorStruct` key format of the mapping unit.
    pub fn key(self) -> u128 {
        const BIAS: u64 = 1 << 31;
        let kx = (self.x as i64 + BIAS as i64) as u128;
        let ky = (self.y as i64 + BIAS as i64) as u128;
        let kz = (self.z as i64 + BIAS as i64) as u128;
        (kx << 64) | (ky << 32) | kz
    }

    /// Inverse of [`Coord::key`].
    pub fn from_key(key: u128) -> Coord {
        const BIAS: i64 = 1 << 31;
        let kx = ((key >> 64) & 0xFFFF_FFFF) as i64 - BIAS;
        let ky = ((key >> 32) & 0xFFFF_FFFF) as i64 - BIAS;
        let kz = (key & 0xFFFF_FFFF) as i64 - BIAS;
        Coord::new(kx as i32, ky as i32, kz as i32)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl From<(i32, i32, i32)> for Coord {
    fn from((x, y, z): (i32, i32, i32)) -> Self {
        Coord::new(x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_matches_paper_examples() {
        // "point (3, 5) whose ts = 1 will be quantized to (2, 4) whose
        //  ts = 2" — paper §2.1.1 (2-D example, z held at 0).
        assert_eq!(Coord::new(3, 5, 0).quantize(2), Coord::new(2, 4, 0));
        // "point (4, 8) whose ts = 4 will be quantized to (0, 8) whose
        //  ts = 8".
        assert_eq!(Coord::new(4, 8, 0).quantize(8), Coord::new(0, 8, 0));
    }

    #[test]
    fn quantize_negative_is_floor() {
        assert_eq!(Coord::new(-1, -2, -3).quantize(2), Coord::new(-2, -2, -4));
        assert_eq!(Coord::new(-5, 0, 7).quantize(4), Coord::new(-8, 0, 4));
    }

    #[test]
    fn quantize_non_power_of_two() {
        assert_eq!(Coord::new(7, -7, 3).quantize(3), Coord::new(6, -9, 3));
    }

    #[test]
    #[should_panic(expected = "tensor stride must be positive")]
    fn quantize_zero_stride_panics() {
        let _ = Coord::new(1, 1, 1).quantize(0);
    }

    #[test]
    fn key_roundtrip() {
        for c in [Coord::ZERO, Coord::new(1, -2, 3), Coord::new(i32::MIN / 2, i32::MAX / 2, 0)] {
            assert_eq!(Coord::from_key(c.key()), c);
        }
    }

    #[test]
    fn key_order_matches_lexicographic() {
        let a = Coord::new(-1, 100, 100);
        let b = Coord::new(0, -100, -100);
        assert!(a < b);
        assert!(a.key() < b.key());
    }

    #[test]
    fn dist2_is_symmetric() {
        let a = Coord::new(1, 2, 3);
        let b = Coord::new(-4, 0, 9);
        assert_eq!(a.dist2(b), b.dist2(a));
        assert_eq!(a.dist2(a), 0);
    }

    #[test]
    fn offset_and_sub_are_inverse() {
        let p = Coord::new(5, -3, 2);
        let d = Coord::new(-1, 1, 0);
        assert_eq!(p.offset(d).sub(d), p);
    }
}
