//! Point cloud geometry substrate for the PointAcc reproduction.
//!
//! This crate provides the data structures shared by the whole workspace —
//! lattice coordinates, continuous points, clouds, feature matrices and
//! map tables — plus two implementations of every mapping operation the
//! paper discusses (farthest point sampling, k-nearest neighbors, ball
//! query, kernel mapping, coordinate quantization):
//!
//! - [`golden`] — brute-force **reference oracles**, kept deliberately
//!   naive so they are easy to audit, and
//! - [`index`] — the production [`index::MappingBackend`] surface:
//!   grid-hash spatial indexing with per-query/per-offset parallelism
//!   ([`index::Indexed`], the process default) next to the oracle
//!   ([`index::Golden`]), bit-identical by construction and enforced by
//!   the property suite in `tests/mapping_backends.rs`.
//!
//! The accelerator model in the `pointacc` crate implements the same
//! operations with the hardware's ranking-based algorithms and is tested
//! for bit-identical results against this crate.
//!
//! # Quick example
//!
//! ```
//! use pointacc_geom::{golden, Coord, VoxelCloud};
//!
//! // A tiny sparse tensor at stride 1.
//! let cloud = VoxelCloud::from_unsorted(
//!     vec![Coord::new(0, 0, 0), Coord::new(1, 1, 0), Coord::new(4, 2, 0)],
//!     1,
//! );
//! // Kernel mapping for a 3×3×3 SparseConv.
//! let maps = golden::kernel_map_hash(&cloud, &cloud, 3);
//! assert_eq!(maps.n_weights(), 27);
//! ```

#![warn(missing_docs)]
// Denied (not forbidden) so the single audited lifetime erasure in the
// `par` worker pool can carry an item-level allow; everything else in
// the crate remains compiler-checked safe code.
#![deny(unsafe_code)]

mod cloud;
mod coord;
mod feature;
mod maps;
mod point;

pub mod golden;
pub mod index;
pub mod par;

pub use cloud::{PointSet, VoxelCloud};
pub use coord::Coord;
pub use feature::FeatureMatrix;
pub use maps::{KernelMap, KernelMapError, MapEntry, MapTable, MapTableError};
pub use point::Point3;
