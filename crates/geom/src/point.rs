//! Continuous 3-D points used by PointNet++-style networks.
//!
//! PointNet++-based convolutions (farthest point sampling, ball query,
//! k-nearest-neighbors) operate on raw sensor coordinates before any
//! voxelization, so they need floating-point positions rather than the
//! lattice [`crate::Coord`].

use std::fmt;

/// A continuous 3-D point.
///
/// # Examples
///
/// ```
/// use pointacc_geom::Point3;
/// let a = Point3::new(0.0, 3.0, 4.0);
/// assert_eq!(a.dist2(Point3::ORIGIN), 25.0);
/// ```
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct Point3 {
    /// x component (meters in the synthetic datasets).
    pub x: f32,
    /// y component.
    pub y: f32,
    /// z component.
    pub z: f32,
}

impl Point3 {
    /// Creates a point from its components.
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Point3 { x, y, z }
    }

    /// The origin.
    pub const ORIGIN: Point3 = Point3::new(0.0, 0.0, 0.0);

    /// Squared Euclidean distance to `other`.
    pub fn dist2(self, other: Point3) -> f32 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        dx * dx + dy * dy + dz * dz
    }

    /// Component-wise subtraction, yielding the offset `self - other`.
    // lint: allow(allow-attr): named `sub`/`add` read better than operator sugar here.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn sub(self, other: Point3) -> Point3 {
        Point3::new(self.x - other.x, self.y - other.y, self.z - other.z)
    }

    /// Component-wise addition.
    // lint: allow(allow-attr): named `sub`/`add` read better than operator sugar here.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, other: Point3) -> Point3 {
        Point3::new(self.x + other.x, self.y + other.y, self.z + other.z)
    }

    /// Uniform scaling.
    #[must_use]
    pub fn scale(self, s: f32) -> Point3 {
        Point3::new(self.x * s, self.y * s, self.z * s)
    }

    /// Euclidean norm.
    pub fn norm(self) -> f32 {
        self.dist2(Point3::ORIGIN).sqrt()
    }

    /// Quantizes the point to an integer voxel coordinate at the given
    /// voxel size, i.e. `floor(p / voxel_size)`. This is the voxelization
    /// step that feeds SparseConv-based networks.
    ///
    /// # Panics
    ///
    /// Panics if `voxel_size` is not strictly positive and finite.
    pub fn voxelize(self, voxel_size: f32) -> crate::Coord {
        assert!(
            voxel_size > 0.0 && voxel_size.is_finite(),
            "voxel size must be positive and finite, got {voxel_size}"
        );
        crate::Coord::new(
            (self.x / voxel_size).floor() as i32,
            (self.y / voxel_size).floor() as i32,
            (self.z / voxel_size).floor() as i32,
        )
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

impl From<(f32, f32, f32)> for Point3 {
    fn from((x, y, z): (f32, f32, f32)) -> Self {
        Point3::new(x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist2_basics() {
        let a = Point3::new(1.0, 0.0, 0.0);
        let b = Point3::new(0.0, 1.0, 0.0);
        assert_eq!(a.dist2(b), 2.0);
        assert_eq!(a.dist2(a), 0.0);
    }

    #[test]
    fn voxelize_floors_toward_negative_infinity() {
        let p = Point3::new(-0.01, 0.99, 1.0);
        assert_eq!(p.voxelize(1.0), crate::Coord::new(-1, 0, 1));
        assert_eq!(p.voxelize(0.5), crate::Coord::new(-1, 1, 2));
    }

    #[test]
    #[should_panic(expected = "voxel size must be positive")]
    fn voxelize_rejects_zero() {
        let _ = Point3::ORIGIN.voxelize(0.0);
    }

    #[test]
    fn norm_of_345() {
        assert!((Point3::new(3.0, 4.0, 0.0).norm() - 5.0).abs() < 1e-6);
    }
}
