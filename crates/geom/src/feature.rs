//! Dense row-major feature matrices attached to point clouds.
//!
//! Every point carries a 1-D feature vector (paper §2: `x_k = (p_k, f_k)`).
//! Features for a whole cloud form an `n_points × channels` matrix.

/// Row-major `rows × cols` matrix of `f32` features.
///
/// Row `i` is the feature vector of point `i`.
///
/// # Examples
///
/// ```
/// use pointacc_geom::FeatureMatrix;
/// let mut f = FeatureMatrix::zeros(2, 3);
/// f.row_mut(1)[2] = 5.0;
/// assert_eq!(f.row(1), &[0.0, 0.0, 5.0]);
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FeatureMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl FeatureMatrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        FeatureMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        FeatureMatrix { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        FeatureMatrix { rows, cols, data }
    }

    /// Number of rows (points).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (channels).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The raw row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Gathers rows by index into a new matrix (the explicit *gather*
    /// operation of the Gather-MatMul-Scatter flow).
    #[must_use]
    pub fn gather(&self, indices: &[u32]) -> FeatureMatrix {
        let mut out = FeatureMatrix::zeros(indices.len(), self.cols);
        for (r, &i) in indices.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.row(i as usize));
        }
        out
    }

    /// Concatenates two matrices along the channel dimension.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    #[must_use]
    pub fn concat_cols(&self, other: &FeatureMatrix) -> FeatureMatrix {
        assert_eq!(self.rows, other.rows, "row counts must match to concatenate channels");
        let mut out = FeatureMatrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Dense matrix multiply: `self (r×c) * weights (c×n) -> (r×n)`.
    ///
    /// # Panics
    ///
    /// Panics if `weights.rows() != self.cols()`.
    #[must_use]
    pub fn matmul(&self, weights: &FeatureMatrix) -> FeatureMatrix {
        assert_eq!(self.cols, weights.rows, "inner dimensions must agree");
        let mut out = FeatureMatrix::zeros(self.rows, weights.cols);
        for r in 0..self.rows {
            let a = self.row(r);
            let o = &mut out.data[r * weights.cols..(r + 1) * weights.cols];
            for (k, &av) in a.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b = weights.row(k);
                for (j, &bv) in b.iter().enumerate() {
                    o[j] += av * bv;
                }
            }
        }
        out
    }

    /// Applies ReLU in place.
    pub fn relu_in_place(&mut self) {
        for v in &mut self.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// Element-wise maximum accumulated into `self` from `row_src` of
    /// `src`, targeting row `row_dst` (scatter-max aggregation).
    ///
    /// # Panics
    ///
    /// Panics on column mismatch or out-of-range rows.
    pub fn scatter_max(&mut self, row_dst: usize, src: &FeatureMatrix, row_src: usize) {
        assert_eq!(self.cols, src.cols, "column counts must match");
        let s = src.row(row_src);
        let d = self.row_mut(row_dst);
        for (dv, &sv) in d.iter_mut().zip(s) {
            if sv > *dv {
                *dv = sv;
            }
        }
    }

    /// Adds `row_src` of `src` into row `row_dst` (scatter-accumulate).
    ///
    /// # Panics
    ///
    /// Panics on column mismatch or out-of-range rows.
    pub fn scatter_add(&mut self, row_dst: usize, src: &FeatureMatrix, row_src: usize) {
        assert_eq!(self.cols, src.cols, "column counts must match");
        let s = src.row(row_src);
        let d = self.row_mut(row_dst);
        for (dv, &sv) in d.iter_mut().zip(s) {
            *dv += sv;
        }
    }

    /// Maximum absolute element-wise difference to `other`; `None` when
    /// shapes differ. Used by tests to compare executor outputs.
    pub fn max_abs_diff(&self, other: &FeatureMatrix) -> Option<f32> {
        if self.rows != other.rows || self.cols != other.cols {
            return None;
        }
        Some(self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = FeatureMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = FeatureMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gather_selects_rows() {
        let a = FeatureMatrix::from_fn(3, 2, |r, c| (r * 10 + c) as f32);
        let g = a.gather(&[2, 0]);
        assert_eq!(g.row(0), &[20.0, 21.0]);
        assert_eq!(g.row(1), &[0.0, 1.0]);
    }

    #[test]
    fn concat_cols_widths_add() {
        let a = FeatureMatrix::zeros(2, 3);
        let b = FeatureMatrix::from_fn(2, 1, |r, _| r as f32);
        let c = a.concat_cols(&b);
        assert_eq!(c.cols(), 4);
        assert_eq!(c.row(1), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn scatter_max_and_add() {
        let src = FeatureMatrix::from_vec(1, 2, vec![3.0, -1.0]);
        let mut dst = FeatureMatrix::from_vec(1, 2, vec![2.0, 2.0]);
        dst.scatter_max(0, &src, 0);
        assert_eq!(dst.row(0), &[3.0, 2.0]);
        dst.scatter_add(0, &src, 0);
        assert_eq!(dst.row(0), &[6.0, 1.0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut m = FeatureMatrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        m.relu_in_place();
        assert_eq!(m.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = FeatureMatrix::zeros(1, 2);
        let b = FeatureMatrix::zeros(3, 1);
        let _ = a.matmul(&b);
    }
}
