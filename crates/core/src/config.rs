//! Accelerator configurations (paper Table 3).

use pointacc_sim::DramKind;

/// Hardware parameters of one PointAcc instance.
///
/// # Examples
///
/// ```
/// use pointacc::PointAccConfig;
/// let full = PointAccConfig::full();
/// assert_eq!(full.pe_rows * full.pe_cols, 4096);
/// let edge = PointAccConfig::edge();
/// assert_eq!(edge.pe_rows * edge.pe_cols, 256);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PointAccConfig {
    /// Configuration name.
    pub name: String,
    /// Systolic-array rows (input-channel parallelism).
    pub pe_rows: usize,
    /// Systolic-array columns (output-channel parallelism).
    pub pe_cols: usize,
    /// Mapping-unit merger width N (elements per merge pass).
    pub merger_width: usize,
    /// Clock frequency, Hz.
    pub freq_hz: f64,
    /// DRAM technology.
    pub dram: DramKind,
    /// Input feature buffer, bytes (configurable as cache in sparse mode).
    pub input_buf_bytes: usize,
    /// Output feature buffer, bytes.
    pub output_buf_bytes: usize,
    /// Weight buffer, bytes.
    pub weight_buf_bytes: usize,
    /// Sorter + merger buffers of the MPU, bytes.
    pub sorter_buf_bytes: usize,
    /// Bytes per feature element (fp16 datapath).
    pub elem_bytes: usize,
    /// Whether the compiler searches cache block sizes per layer
    /// (otherwise a fixed 32-point block is used).
    pub cache_block_search: bool,
    /// Chip + memory-system average power beyond the counted events
    /// (clock tree, control, DRAM background), watts. Distributed over
    /// the per-layer energy components proportionally.
    pub system_power_w: f64,
}

impl PointAccConfig {
    /// Full-size PointAcc (Table 3): 64×64 PEs, HBM2, 776 KB SRAM,
    /// 1 GHz, 8 TOPS peak.
    pub fn full() -> Self {
        PointAccConfig {
            name: "PointAcc".into(),
            pe_rows: 64,
            pe_cols: 64,
            merger_width: 64,
            freq_hz: 1.0e9,
            dram: DramKind::Hbm2,
            input_buf_bytes: 320 * 1024,
            output_buf_bytes: 256 * 1024,
            weight_buf_bytes: 128 * 1024,
            sorter_buf_bytes: 72 * 1024,
            elem_bytes: 2,
            cache_block_search: true,
            system_power_w: 30.0,
        }
    }

    /// PointAcc.Edge (Table 3): 16×16 PEs, DDR4-2133, 274 KB SRAM,
    /// 1 GHz, 512 GOPS peak.
    pub fn edge() -> Self {
        PointAccConfig {
            name: "PointAcc.Edge".into(),
            pe_rows: 16,
            pe_cols: 16,
            merger_width: 16,
            freq_hz: 1.0e9,
            dram: DramKind::Ddr4_2133,
            input_buf_bytes: 112 * 1024,
            output_buf_bytes: 96 * 1024,
            weight_buf_bytes: 48 * 1024,
            sorter_buf_bytes: 18 * 1024,
            elem_bytes: 2,
            cache_block_search: true,
            system_power_w: 3.0,
        }
    }

    /// Total on-chip SRAM in bytes.
    pub fn total_sram_bytes(&self) -> usize {
        self.input_buf_bytes + self.output_buf_bytes + self.weight_buf_bytes + self.sorter_buf_bytes
    }

    /// Peak throughput in operations (2 × MAC) per second.
    pub fn peak_ops(&self) -> f64 {
        2.0 * (self.pe_rows * self.pe_cols) as f64 * self.freq_hz
    }

    /// Silicon area estimate, mm² (40 nm model).
    pub fn area_mm2(&self) -> f64 {
        pointacc_sim::area::accelerator_area_mm2(
            self.pe_rows,
            self.pe_cols,
            self.total_sram_bytes(),
            self.merger_width,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_sram_budgets() {
        // Table 3: 776 KB full, 274 KB edge.
        assert_eq!(PointAccConfig::full().total_sram_bytes(), 776 * 1024);
        assert_eq!(PointAccConfig::edge().total_sram_bytes(), 274 * 1024);
    }

    #[test]
    fn table3_peak_performance() {
        // 8 TOPS full, 512 GOPS edge.
        assert!((PointAccConfig::full().peak_ops() - 8.192e12).abs() < 1e10);
        assert!((PointAccConfig::edge().peak_ops() - 512e9).abs() < 1e9);
    }

    #[test]
    fn dram_matches_table3() {
        assert_eq!(PointAccConfig::full().dram, DramKind::Hbm2);
        assert_eq!(PointAccConfig::edge().dram, DramKind::Ddr4_2133);
    }
}
