//! Temporal layer fusion of consecutive dense (FC) layers
//! (paper §4.2.4, Fig. 12, Fig. 20).
//!
//! Point-wise FCs treat the point dimension like a batch dimension, so
//! fusion needs no halo exchange: the planner tiles the point dimension,
//! keeps each tile's intermediate activations on a MIR stack, and only
//! touches DRAM for the first layer's inputs and the last layer's
//! outputs. The planner implements the paper's greedy algorithm: try to
//! fuse all unprocessed FCs; if every tiling overflows the buffer, drop
//! the last layer and retry.

use pointacc_nn::{ComputeKind, LayerTrace};

use super::mir::{MirContainer, MirMode};

/// A planned fusion group: consecutive trace indices executed without
/// spilling intermediates to DRAM.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FusionGroup {
    /// Indices into the network trace (consecutive).
    pub layers: Vec<usize>,
    /// Points per tile.
    pub tile_points: usize,
}

/// Fusion plan for a whole trace: disjoint groups in order. Layers not
/// covered by any group run standalone.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FusionPlan {
    /// The groups (each with ≥ 2 layers).
    pub groups: Vec<FusionGroup>,
}

impl FusionPlan {
    /// Returns the group containing trace index `i`, if any.
    pub fn group_of(&self, i: usize) -> Option<&FusionGroup> {
        self.groups.iter().find(|g| g.layers.contains(&i))
    }

    /// Whether layer `i` is the first of its group.
    pub fn is_group_head(&self, i: usize) -> bool {
        self.groups.iter().any(|g| g.layers.first() == Some(&i))
    }
}

/// Smallest tile worth scheduling (amortizes weight-tile switching).
const MIN_TILE_POINTS: usize = 16;

/// Plans fusion groups over `layers` given an on-chip activation budget
/// of `buf_bytes` (the input + output feature buffers in stack mode).
///
/// A chain is a maximal run of consecutive layers marked `fusable` with
/// matching row counts. Within a chain the greedy algorithm fuses the
/// longest feasible prefix, then continues after it.
pub fn plan_fusion(layers: &[LayerTrace], buf_bytes: usize, elem_bytes: usize) -> FusionPlan {
    let mut groups = Vec::new();
    let mut i = 0;
    while i < layers.len() {
        if !layers[i].fusable {
            i += 1;
            continue;
        }
        // Extend the chain of fusable layers with matching row counts.
        // A fusable pooling layer may join and transforms the row count
        // (the output datapath reduces inline), letting an MLP chain,
        // the global pool and the classifier head fuse into one group.
        let mut chain_rows = layers[i].n_out;
        let mut j = i + 1;
        while j < layers.len() && layers[j].fusable {
            let l = &layers[j];
            let joins =
                l.n_out == chain_rows || (l.compute == ComputeKind::Pool && l.n_in == chain_rows);
            if !joins {
                break;
            }
            chain_rows = l.n_out;
            j += 1;
        }
        let rows = layers[i].n_out;
        let chain = &layers[i..j];
        if chain.len() >= 2 {
            let mut start = 0;
            while start < chain.len() {
                let len = max_fusable_prefix(&chain[start..], buf_bytes, elem_bytes, rows);
                if len >= 2 {
                    let tile = tile_points_for(&chain[start..start + len], buf_bytes, elem_bytes)
                        .min(rows.max(1));
                    groups.push(FusionGroup {
                        layers: (i + start..i + start + len).collect(),
                        tile_points: tile,
                    });
                    start += len;
                } else {
                    start += 1;
                }
            }
        }
        i = j;
    }
    FusionPlan { groups }
}

/// The paper's greedy step: longest prefix of `chain` for which some
/// tiling fits the buffer.
fn max_fusable_prefix(
    chain: &[LayerTrace],
    buf_bytes: usize,
    elem_bytes: usize,
    rows: usize,
) -> usize {
    let mut len = chain.len();
    while len >= 2 {
        let t = tile_points_for(&chain[..len], buf_bytes, elem_bytes);
        if t >= MIN_TILE_POINTS.min(rows.max(1)) {
            return len;
        }
        len -= 1; // "discard the last layer and try to fuse remaining"
    }
    0
}

/// Largest tile (in points) whose resident stack fits the buffer: the
/// stack simultaneously holds one tile of every layer's activations
/// (input of layer 0 plus each layer's output).
fn tile_points_for(chain: &[LayerTrace], buf_bytes: usize, elem_bytes: usize) -> usize {
    // Layers after a pooling reduction hold one row per tile; their
    // footprint is negligible next to the pre-pool activations.
    let pre_pool =
        chain.iter().position(|l| l.compute == ComputeKind::Pool).map_or(chain.len(), |p| p + 1);
    let per_point: usize = chain
        .first()
        .map(|l| l.in_ch)
        .unwrap_or(0)
        .saturating_add(chain[..pre_pool].iter().map(|l| l.out_ch).sum::<usize>())
        * elem_bytes;
    if per_point == 0 {
        return 0;
    }
    buf_bytes / per_point
}

/// DRAM activation traffic of a fused group: first inputs in, last
/// outputs out — intermediates never leave the chip. Verified against a
/// stack-machine simulation in tests.
pub fn fused_activation_bytes(chain: &[LayerTrace], elem_bytes: usize) -> u64 {
    let first = chain.first().expect("fusion group cannot be empty");
    let last = chain.last().expect("fusion group cannot be empty");
    (first.n_in * first.in_ch + last.n_out * last.out_ch) as u64 * elem_bytes as u64
}

/// DRAM activation traffic of the same chain run layer by layer.
pub fn unfused_activation_bytes(chain: &[LayerTrace], elem_bytes: usize) -> u64 {
    chain.iter().map(|l| (l.n_in * l.in_ch + l.n_out * l.out_ch) as u64 * elem_bytes as u64).sum()
}

/// Simulates the fused execution of one chain on a MIR stack (Fig. 12b),
/// returning the DRAM bytes actually moved. Panics if the tile schedule
/// would overflow the stack — i.e. validates the planner.
pub fn simulate_fused_chain(
    chain: &[LayerTrace],
    tile_points: usize,
    buf_bytes: usize,
    elem_bytes: usize,
) -> u64 {
    assert!(!chain.is_empty() && tile_points > 0, "invalid fusion schedule");
    let rows = chain[0].n_out;
    let mut stack = MirContainer::new(MirMode::Stack, chain.len() + 1, buf_bytes);
    let mut dram: u64 = 0;
    let n_tiles = rows.div_ceil(tile_points);
    for t in 0..n_tiles {
        let pts = tile_points.min(rows - t * tile_points);
        // Load layer-0 inputs for this tile.
        let in_bytes = pts * chain[0].in_ch * elem_bytes;
        stack.push(0, in_bytes).expect("planner must size tiles to fit the stack");
        dram += in_bytes as u64;
        // Walk down the chain: each layer consumes the tile below and
        // pushes its own (Fig. 12b stages 1–2). The consumed tile is
        // released immediately (whole-tile consumption in this
        // schedule).
        for (li, l) in chain.iter().enumerate() {
            let out_bytes = pts * l.out_ch * elem_bytes;
            stack.pop().expect("input tile must be resident");
            stack.push(li as u64 + 1, out_bytes).expect("planner must size tiles to fit the stack");
        }
        // Final layer's tile goes to DRAM (or the next group).
        let out = stack.pop().expect("output tile must be resident");
        dram += out.occupancy as u64;
    }
    dram
}

#[cfg(test)]
mod tests {
    use super::*;
    use pointacc_nn::{Aggregation, ComputeKind};

    fn fc(n: usize, ic: usize, oc: usize, fusable: bool) -> LayerTrace {
        LayerTrace {
            name: format!("fc{ic}x{oc}"),
            compute: ComputeKind::Dense,
            n_in: n,
            n_out: n,
            in_ch: ic,
            out_ch: oc,
            maps: None,
            mapping: vec![],
            aggregation: Aggregation::None,
            pool_group: None,
            fusable,
        }
    }

    #[test]
    fn plans_single_group_when_it_fits() {
        let layers =
            vec![fc(1024, 64, 64, true), fc(1024, 64, 128, true), fc(1024, 128, 128, true)];
        let plan = plan_fusion(&layers, 256 * 1024, 2);
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(plan.groups[0].layers, vec![0, 1, 2]);
        assert!(plan.groups[0].tile_points >= MIN_TILE_POINTS);
    }

    #[test]
    fn drops_last_layer_on_overflow() {
        // Huge final layer forces the greedy planner to split.
        let layers =
            vec![fc(1024, 64, 64, true), fc(1024, 64, 64, true), fc(1024, 64, 100_000, true)];
        let plan = plan_fusion(&layers, 16 * 1024, 2);
        assert!(!plan.groups.is_empty());
        assert!(
            !plan.groups.iter().any(|g| g.layers.contains(&2)),
            "oversized layer must stay unfused: {plan:?}"
        );
    }

    #[test]
    fn non_fusable_layers_break_chains() {
        let layers = vec![fc(512, 32, 32, true), fc(512, 32, 32, false), fc(512, 32, 32, true)];
        let plan = plan_fusion(&layers, 256 * 1024, 2);
        assert!(plan.groups.is_empty(), "chains of length 1 cannot fuse: {plan:?}");
    }

    #[test]
    fn fusion_cuts_activation_traffic() {
        // Paper Fig. 20: fusion cuts DRAM access 33–64 %.
        let chain = vec![
            fc(1024, 3, 64, true),
            fc(1024, 64, 64, true),
            fc(1024, 64, 128, true),
            fc(1024, 128, 1024, true),
        ];
        let fused = fused_activation_bytes(&chain, 2);
        let unfused = unfused_activation_bytes(&chain, 2);
        let reduction = 1.0 - fused as f64 / unfused as f64;
        assert!(reduction > 0.3, "expected ≥ 30 % reduction, got {:.0} %", reduction * 100.0);
    }

    #[test]
    fn stack_simulation_matches_closed_form() {
        let chain = vec![fc(512, 16, 32, true), fc(512, 32, 64, true)];
        let tile = tile_points_for(&chain, 64 * 1024, 2);
        let simulated = simulate_fused_chain(&chain, tile, 64 * 1024, 2);
        assert_eq!(simulated, fused_activation_bytes(&chain, 2));
    }

    #[test]
    fn mixed_row_counts_do_not_fuse_across() {
        let layers = vec![fc(512, 32, 32, true), fc(256, 32, 32, true), fc(256, 32, 32, true)];
        let plan = plan_fusion(&layers, 256 * 1024, 2);
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(plan.groups[0].layers, vec![1, 2]);
    }
}
