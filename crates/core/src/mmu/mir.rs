//! Memory-tile Meta-Info Registers (MIRs) and their container
//! (paper Fig. 11a/b).
//!
//! The MMU manages on-chip buffers in the granularity of *tiles*; each
//! tile's metadata (base offset, capacity, occupancy, tag) lives in a
//! MIR. The MIR container is mode-switched per layer: a **tag array**
//! when the input buffers act as a cache for sparse computation, a
//! **FIFO** for plain dense streaming, and a **stack** for temporal layer
//! fusion (Fig. 12a).

/// Metadata of one memory tile.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Mir {
    /// Tile identity: cache tag in tag-array mode, layer id in stack
    /// mode.
    pub id: u64,
    /// Base offset of the tile in the buffer, bytes.
    pub base: usize,
    /// Allocated capacity, bytes.
    pub capacity: usize,
    /// Bytes currently valid.
    pub occupancy: usize,
}

/// Operating mode of the MIR container.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MirMode {
    /// Direct-mapped tag array (cache for sparse computation).
    TagArray,
    /// FIFO of prefetch tiles (dense streaming).
    Fifo,
    /// Stack of per-layer tiles (temporal layer fusion).
    Stack,
}

/// The MIR container: a fixed number of MIR slots plus the byte budget of
/// the buffer they describe.
#[derive(Clone, Debug)]
pub struct MirContainer {
    mode: MirMode,
    capacity_bytes: usize,
    slots: Vec<Option<Mir>>,
}

impl MirContainer {
    /// Creates a container with `n_slots` MIRs over a buffer of
    /// `capacity_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `n_slots == 0` or `capacity_bytes == 0`.
    pub fn new(mode: MirMode, n_slots: usize, capacity_bytes: usize) -> Self {
        assert!(n_slots > 0 && capacity_bytes > 0, "container must be nonzero");
        MirContainer { mode, capacity_bytes, slots: vec![None; n_slots] }
    }

    /// Current mode.
    pub fn mode(&self) -> MirMode {
        self.mode
    }

    /// Buffer capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Number of MIR slots.
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// Switches mode, clearing all tiles (the paper reconfigures between
    /// layers).
    pub fn set_mode(&mut self, mode: MirMode) {
        self.mode = mode;
        self.slots.fill(None);
    }

    // ---------------- Tag-array (cache) mode ----------------

    /// Cache lookup in tag-array mode: returns `true` on hit; on miss the
    /// slot is refilled with `id`.
    ///
    /// # Panics
    ///
    /// Panics if not in [`MirMode::TagArray`] mode.
    pub fn probe(&mut self, id: u64, tile_bytes: usize) -> bool {
        assert_eq!(self.mode, MirMode::TagArray, "probe requires tag-array mode");
        let set = (id % self.slots.len() as u64) as usize;
        match &self.slots[set] {
            Some(m) if m.id == id => true,
            _ => {
                self.slots[set] = Some(Mir {
                    id,
                    base: set * tile_bytes,
                    capacity: tile_bytes,
                    occupancy: tile_bytes,
                });
                false
            }
        }
    }

    // ---------------- Stack (fusion) mode ----------------

    /// Pushes a tile in stack mode; fails with `None` if the byte budget
    /// or slot count would overflow.
    ///
    /// # Panics
    ///
    /// Panics if not in [`MirMode::Stack`] mode.
    pub fn push(&mut self, id: u64, bytes: usize) -> Option<usize> {
        assert_eq!(self.mode, MirMode::Stack, "push requires stack mode");
        let used: usize = self.slots.iter().flatten().map(|m| m.occupancy).sum();
        if used + bytes > self.capacity_bytes {
            return None;
        }
        let slot = self.slots.iter().position(Option::is_none)?;
        self.slots[slot] = Some(Mir { id, base: used, capacity: bytes, occupancy: bytes });
        Some(slot)
    }

    /// The top-of-stack MIR (highest base), if any.
    pub fn top(&self) -> Option<&Mir> {
        assert_eq!(self.mode, MirMode::Stack, "top requires stack mode");
        self.slots.iter().flatten().max_by_key(|m| m.base)
    }

    /// Pops the top tile in stack mode.
    pub fn pop(&mut self) -> Option<Mir> {
        assert_eq!(self.mode, MirMode::Stack, "pop requires stack mode");
        let top_idx = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|m| (i, m.base)))
            .max_by_key(|&(_, base)| base)?
            .0;
        self.slots[top_idx].take()
    }

    /// Shrinks the occupancy of the tile `id` (partial release when a
    /// previous layer's inputs are partly consumed — Fig. 12b stage 2).
    ///
    /// Returns `false` if no such tile exists.
    pub fn shrink(&mut self, id: u64, new_occupancy: usize) -> bool {
        for slot in self.slots.iter_mut().flatten() {
            if slot.id == id {
                slot.occupancy = new_occupancy.min(slot.occupancy);
                return true;
            }
        }
        false
    }

    /// Total occupied bytes.
    pub fn occupied_bytes(&self) -> usize {
        self.slots.iter().flatten().map(|m| m.occupancy).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_array_hits_and_misses() {
        let mut c = MirContainer::new(MirMode::TagArray, 4, 4096);
        assert!(!c.probe(10, 64)); // cold miss
        assert!(c.probe(10, 64)); // hit
        assert!(!c.probe(14, 64)); // conflict: 14 % 4 == 10 % 4
        assert!(!c.probe(10, 64)); // evicted by 14
    }

    #[test]
    fn stack_push_pop_lifo() {
        let mut c = MirContainer::new(MirMode::Stack, 4, 1000);
        c.push(0, 400).unwrap();
        c.push(1, 300).unwrap();
        assert_eq!(c.top().unwrap().id, 1);
        assert_eq!(c.pop().unwrap().id, 1);
        assert_eq!(c.pop().unwrap().id, 0);
        assert!(c.pop().is_none());
    }

    #[test]
    fn stack_respects_byte_budget() {
        let mut c = MirContainer::new(MirMode::Stack, 4, 1000);
        c.push(0, 800).unwrap();
        assert!(c.push(1, 300).is_none(), "must reject overflow");
        assert_eq!(c.occupied_bytes(), 800);
    }

    #[test]
    fn shrink_releases_used_half() {
        // Fig. 12b stage 2: layer-1 tile capacity halves after half its
        // inputs are consumed.
        let mut c = MirContainer::new(MirMode::Stack, 4, 1000);
        c.push(1, 600).unwrap();
        assert!(c.shrink(1, 300));
        assert_eq!(c.occupied_bytes(), 300);
        assert!(c.push(2, 600).is_some(), "freed space is reusable");
    }

    #[test]
    fn mode_switch_clears_tiles() {
        let mut c = MirContainer::new(MirMode::Stack, 2, 100);
        c.push(0, 50).unwrap();
        c.set_mode(MirMode::TagArray);
        assert!(!c.probe(0, 50));
    }

    #[test]
    #[should_panic(expected = "tag-array mode")]
    fn probe_in_stack_mode_panics() {
        let mut c = MirContainer::new(MirMode::Stack, 2, 100);
        let _ = c.probe(0, 10);
    }
}
