//! Computation-flow DRAM traffic models (paper §4.2.3, Fig. 11c,
//! Fig. 17 right, Fig. 19).
//!
//! Two flows for sparse layers:
//!
//! - **Gather-MatMul-Scatter** (the GPU flow): gather all input rows into
//!   a contiguous matrix in DRAM, run the matmul, scatter-accumulate the
//!   partial sums — every stage round-trips through memory.
//! - **Fetch-on-Demand** (PointAcc): matrix-vector products issue as the
//!   features arrive; with the input buffer configured as a cache, each
//!   feature is fetched from DRAM close to once.

use pointacc_nn::{ComputeKind, LayerTrace};

use super::cache::{simulate_sparse_accesses, CacheConfig, CacheStats, SparseAccessPlan};

/// DRAM traffic of one layer, split by stream.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LayerTraffic {
    /// Input-feature bytes read.
    pub input_read: u64,
    /// Weight bytes read.
    pub weight_read: u64,
    /// Output bytes written.
    pub output_write: u64,
    /// Intermediate bytes (gathered matrices, spilled partial sums) read
    /// + written — zero in Fetch-on-Demand flow.
    pub intermediate: u64,
}

impl LayerTraffic {
    /// Total bytes moved.
    pub fn total(&self) -> u64 {
        self.input_read + self.weight_read + self.output_write + self.intermediate
    }
}

/// Computation flow selector.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Flow {
    /// PointAcc's streaming flow; `cache` enables the configurable input
    /// cache (None = pure streaming, every map fetches its row).
    FetchOnDemand {
        /// Optional input-cache configuration.
        cache: Option<CacheConfig>,
    },
    /// The GPU-style flow with explicit gather and scatter in DRAM.
    GatherMatMulScatter,
}

/// Computes the DRAM traffic of one sparse / grouped / interpolate layer
/// under `flow`. Returns the traffic plus cache statistics when a cache
/// was simulated.
///
/// # Panics
///
/// Panics if the layer carries no map table.
pub fn sparse_layer_traffic(
    flow: Flow,
    layer: &LayerTrace,
    plan: SparseAccessPlan,
    elem_bytes: usize,
) -> (LayerTraffic, Option<CacheStats>) {
    let maps = layer.maps.as_ref().expect("sparse layer traffic requires a map table");
    let n_maps = maps.len() as u64;
    let e = elem_bytes as u64;
    let ic = layer.in_ch as u64;
    let oc = layer.out_ch as u64;
    let weight_read = layer.weight_bytes(elem_bytes);
    let out_rows = layer.pool_group.map_or(layer.n_out, |g| layer.n_out / g.max(1)) as u64;
    let output_write = out_rows * oc * e;
    match flow {
        Flow::FetchOnDemand { cache } => match cache {
            Some(cfg) => {
                let stats = simulate_sparse_accesses(cfg, maps, plan, None);
                // The simulated stream covers row-granular accesses per
                // ic-tile; dram bytes already account for block loads.
                let traffic = LayerTraffic {
                    input_read: stats.dram_bytes,
                    weight_read,
                    output_write,
                    intermediate: 0,
                };
                (traffic, Some(stats))
            }
            None => {
                let traffic = LayerTraffic {
                    input_read: n_maps * ic * e,
                    weight_read,
                    output_write,
                    intermediate: 0,
                };
                (traffic, None)
            }
        },
        Flow::GatherMatMulScatter => {
            // gather: read rows + write contiguous matrix; matmul: read
            // matrix, write psums; scatter: read psums, accumulate into
            // outputs.
            let gather = n_maps * ic * e * 2;
            let matmul = n_maps * ic * e + n_maps * oc * e;
            let scatter = n_maps * oc * e;
            let traffic = LayerTraffic {
                input_read: n_maps * ic * e,
                weight_read,
                output_write,
                intermediate: gather + matmul + scatter - n_maps * ic * e,
            };
            (traffic, None)
        }
    }
}

/// DRAM traffic of a dense layer executed standalone (no fusion): read
/// inputs, read weights, write outputs.
pub fn dense_layer_traffic(layer: &LayerTrace, elem_bytes: usize) -> LayerTraffic {
    let e = elem_bytes as u64;
    debug_assert!(matches!(layer.compute, ComputeKind::Dense | ComputeKind::Pool));
    let out_rows = layer.pool_group.map_or(layer.n_out, |g| layer.n_out / g.max(1)) as u64;
    LayerTraffic {
        input_read: layer.n_in as u64 * layer.in_ch as u64 * e,
        weight_read: layer.weight_bytes(elem_bytes),
        output_write: out_rows * layer.out_ch as u64 * e,
        intermediate: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pointacc_geom::{MapEntry, MapTable};
    use pointacc_nn::{Aggregation, ComputeKind};

    fn layer(n: usize, k: usize, c: usize) -> LayerTrace {
        let mut entries = Vec::new();
        for q in 0..n {
            for w in 0..k {
                entries.push(MapEntry::new(((q + w) % n) as u32, q as u32, w as u16));
            }
        }
        LayerTrace {
            name: "conv".into(),
            compute: ComputeKind::SparseConv,
            n_in: n,
            n_out: n,
            in_ch: c,
            out_ch: c,
            maps: Some(MapTable::from_entries(entries, k)),
            mapping: vec![],
            aggregation: Aggregation::Sum,
            pool_group: None,
            fusable: false,
        }
    }

    fn plan() -> SparseAccessPlan {
        SparseAccessPlan { ic_tiles: 1, oc_tiles: 1, out_tile_points: 128 }
    }

    #[test]
    fn fetch_on_demand_beats_gather_scatter() {
        // Paper §4.2.3: FoD saves input-feature DRAM access by ≥ 3×.
        let l = layer(2048, 8, 64);
        let (fod, _) = sparse_layer_traffic(Flow::FetchOnDemand { cache: None }, &l, plan(), 2);
        let (gms, _) = sparse_layer_traffic(Flow::GatherMatMulScatter, &l, plan(), 2);
        assert!(
            gms.total() as f64 / fod.total() as f64 >= 2.5,
            "GMS {} should dwarf FoD {}",
            gms.total(),
            fod.total()
        );
        assert_eq!(fod.intermediate, 0);
        assert!(gms.intermediate > 0);
    }

    #[test]
    fn cache_cuts_fetch_on_demand_traffic_further() {
        // Paper Fig. 19: the configurable cache reduces per-layer DRAM
        // access 3.5–6.3×.
        let l = layer(2048, 8, 64);
        let (nocache, _) = sparse_layer_traffic(Flow::FetchOnDemand { cache: None }, &l, plan(), 2);
        let cfg = CacheConfig { capacity_bytes: 256 * 1024, block_points: 16, row_bytes: 128 };
        let (cached, stats) =
            sparse_layer_traffic(Flow::FetchOnDemand { cache: Some(cfg) }, &l, plan(), 2);
        let ratio = nocache.input_read as f64 / cached.input_read as f64;
        assert!(ratio > 2.0, "cache should cut input reads, got {ratio}×");
        assert!(stats.unwrap().miss_rate() < 0.5);
    }

    #[test]
    fn dense_traffic_counts_all_streams() {
        let l = LayerTrace {
            name: "fc".into(),
            compute: ComputeKind::Dense,
            n_in: 100,
            n_out: 100,
            in_ch: 16,
            out_ch: 32,
            maps: None,
            mapping: vec![],
            aggregation: Aggregation::None,
            pool_group: None,
            fusable: true,
        };
        let t = dense_layer_traffic(&l, 2);
        assert_eq!(t.input_read, 100 * 16 * 2);
        assert_eq!(t.output_write, 100 * 32 * 2);
        assert_eq!(t.weight_read, 16 * 32 * 2);
    }
}
