//! The Memory Management Unit (MMU): explicit, decoupled data
//! orchestration over tile-managed on-chip buffers (paper §4.2).
//!
//! - [`mir`] — Memory-tile Meta-Info Registers and their container
//!   (tag array / FIFO / stack modes).
//! - [`cache`] — the configurable-block direct-mapped input cache for
//!   Fetch-on-Demand sparse computation (Fig. 18).
//! - [`flows`] — DRAM traffic of Fetch-on-Demand vs
//!   Gather-MatMul-Scatter computation flows (Fig. 17/19).
//! - [`fusion`] — temporal layer fusion of consecutive FCs over a MIR
//!   stack (Fig. 12, Fig. 20).

pub mod cache;
pub mod flows;
pub mod fusion;
pub mod mir;

pub use cache::{
    simulate_sparse_accesses, CacheConfig, CacheStats, FeatureCache, SparseAccessPlan,
};
pub use flows::{dense_layer_traffic, sparse_layer_traffic, Flow, LayerTraffic};
pub use fusion::{
    fused_activation_bytes, plan_fusion, simulate_fused_chain, unfused_activation_bytes,
    FusionGroup, FusionPlan,
};
pub use mir::{Mir, MirContainer, MirMode};
