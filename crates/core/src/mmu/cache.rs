//! Input-buffer cache for sparse computation (paper §4.2.3, Fig. 18).
//!
//! In Fetch-on-Demand flow the MMU configures the input feature buffers
//! as a direct-mapped cache with a *software-controllable block size*:
//! one block holds the features of `block_points` consecutive input
//! points for one input-channel tile. The MIR container serves as the
//! shared tag array.

use pointacc_geom::MapTable;

use super::mir::{MirContainer, MirMode};

/// Cache geometry for one sparse layer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Cache capacity, bytes (the input feature buffer).
    pub capacity_bytes: usize,
    /// Points per cache block (software-chosen, paper Fig. 18 sweeps
    /// 1–128).
    pub block_points: usize,
    /// Bytes of one point-row within one channel tile
    /// (`ic_tile × elem_bytes`).
    pub row_bytes: usize,
}

impl CacheConfig {
    /// Bytes per cache block.
    pub fn block_bytes(&self) -> usize {
        self.block_points * self.row_bytes
    }

    /// Number of blocks (direct-mapped sets).
    pub fn n_blocks(&self) -> usize {
        (self.capacity_bytes / self.block_bytes()).max(1)
    }
}

/// Access-level results of a cache simulation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total feature-row accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses (each loading one block from DRAM).
    pub misses: u64,
    /// DRAM bytes fetched (`misses × block_bytes`).
    pub dram_bytes: u64,
}

impl CacheStats {
    /// Miss rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A direct-mapped feature cache built on the MIR container.
#[derive(Clone, Debug)]
pub struct FeatureCache {
    cfg: CacheConfig,
    tags: MirContainer,
    stats: CacheStats,
}

impl FeatureCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero blocks or zero-sized
    /// blocks.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.block_points > 0 && cfg.row_bytes > 0, "cache block must be nonzero");
        FeatureCache {
            cfg,
            tags: MirContainer::new(MirMode::TagArray, cfg.n_blocks(), cfg.capacity_bytes),
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accesses the features of input point `point` in channel-tile
    /// `ic_tile`; returns `true` on hit.
    pub fn access(&mut self, point: u32, ic_tile: u32) -> bool {
        let block = point as u64 / self.cfg.block_points as u64;
        // Tag = (point block, channel tile); mixing the tile into the id
        // spreads tiles across sets.
        let id = block.wrapping_mul(0x9E37_79B9).wrapping_add((ic_tile as u64) << 1) | 1;
        let hit = self.tags.probe(id, self.cfg.block_bytes());
        self.stats.accesses += 1;
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            self.stats.dram_bytes += self.cfg.block_bytes() as u64;
        }
        hit
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// Loop-nest description of one sparse layer's input accesses.
#[derive(Copy, Clone, Debug)]
pub struct SparseAccessPlan {
    /// Input-channel tiles (`ceil(in_ch / pe_rows)`).
    pub ic_tiles: usize,
    /// Output-channel tiles (`ceil(out_ch / pe_cols)`).
    pub oc_tiles: usize,
    /// Output points resident per output tile (bounded by the output
    /// buffer; the weight-stationary inner loop streams all maps whose
    /// output lies in the resident tile).
    pub out_tile_points: usize,
}

/// Simulates the Fetch-on-Demand access stream of one sparse layer
/// through the cache and returns the statistics.
///
/// Loop nest (paper §4.2.2): output-stationary outer over output tiles
/// and output-channel tiles; weight-stationary inner over kernel offsets
/// and the maps of the resident outputs; input channels tiled innermost.
///
/// If `sample_limit` is `Some(n)`, simulation stops after `n` accesses
/// (used by the compiler's block-size search).
pub fn simulate_sparse_accesses(
    cfg: CacheConfig,
    maps: &MapTable,
    plan: SparseAccessPlan,
    sample_limit: Option<u64>,
) -> CacheStats {
    let mut cache = FeatureCache::new(cfg);
    let n_out = maps.outputs().iter().max().map_or(0, |&m| m as usize + 1);
    let tile_pts = plan.out_tile_points.max(1);
    let n_tiles = n_out.div_ceil(tile_pts).max(1);
    'outer: for t in 0..n_tiles {
        let lo = (t * tile_pts) as u32;
        let hi = ((t + 1) * tile_pts) as u32;
        for _oc in 0..plan.oc_tiles {
            for ic in 0..plan.ic_tiles {
                for w in 0..maps.n_weights() {
                    let group = maps.group(w);
                    // Maps are emitted in ascending output order, so the
                    // resident range is a contiguous slice.
                    let start = group.outputs().partition_point(|&o| o < lo);
                    let end = group.outputs().partition_point(|&o| o < hi);
                    for &input in &group.inputs()[start..end] {
                        cache.access(input, ic as u32);
                        if let Some(limit) = sample_limit {
                            if cache.stats().accesses >= limit {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
    }
    cache.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pointacc_geom::MapEntry;

    fn seq_maps(n: usize, k: usize) -> MapTable {
        // Each output q reads inputs q, q+1, …, q+k−1 under k weights —
        // a 1-D convolution pattern.
        let mut entries = Vec::new();
        for q in 0..n {
            for w in 0..k {
                let p = (q + w) % n;
                entries.push(MapEntry::new(p as u32, q as u32, w as u16));
            }
        }
        MapTable::from_entries(entries, k)
    }

    fn plan() -> SparseAccessPlan {
        SparseAccessPlan { ic_tiles: 1, oc_tiles: 1, out_tile_points: 64 }
    }

    #[test]
    fn bigger_blocks_reduce_miss_rate() {
        // Paper Fig. 18: miss rate decreases with block size.
        let maps = seq_maps(4096, 3);
        let mut last = f64::INFINITY;
        for bp in [1usize, 4, 16, 64] {
            let cfg = CacheConfig { capacity_bytes: 64 * 1024, block_points: bp, row_bytes: 128 };
            let s = simulate_sparse_accesses(cfg, &maps, plan(), None);
            assert!(
                s.miss_rate() <= last + 1e-9,
                "block {bp}: rate {} should not exceed {last}",
                s.miss_rate()
            );
            last = s.miss_rate();
        }
    }

    #[test]
    fn more_neighbors_reduce_miss_rate() {
        // Paper Fig. 18: higher kernel size (more neighbors) → more reuse.
        let cfg = CacheConfig { capacity_bytes: 32 * 1024, block_points: 8, row_bytes: 128 };
        let s2 = simulate_sparse_accesses(cfg, &seq_maps(4096, 2), plan(), None);
        let s3 = simulate_sparse_accesses(cfg, &seq_maps(4096, 8), plan(), None);
        assert!(
            s3.miss_rate() < s2.miss_rate(),
            "k=8 rate {} should be below k=2 rate {}",
            s3.miss_rate(),
            s2.miss_rate()
        );
    }

    #[test]
    fn dram_bytes_equal_misses_times_block() {
        let cfg = CacheConfig { capacity_bytes: 4 * 1024, block_points: 4, row_bytes: 64 };
        let s = simulate_sparse_accesses(cfg, &seq_maps(512, 3), plan(), None);
        assert_eq!(s.dram_bytes, s.misses * cfg.block_bytes() as u64);
        assert_eq!(s.accesses, s.hits + s.misses);
    }

    #[test]
    fn sampling_stops_early() {
        let cfg = CacheConfig { capacity_bytes: 4 * 1024, block_points: 4, row_bytes: 64 };
        let s = simulate_sparse_accesses(cfg, &seq_maps(512, 3), plan(), Some(100));
        assert_eq!(s.accesses, 100);
    }

    #[test]
    fn perfect_reuse_when_everything_fits() {
        // Working set fits: only cold misses remain.
        let maps = seq_maps(64, 4);
        let cfg = CacheConfig { capacity_bytes: 1024 * 1024, block_points: 1, row_bytes: 128 };
        let s = simulate_sparse_accesses(cfg, &maps, plan(), None);
        assert_eq!(s.misses, 64, "one cold miss per distinct input point");
    }
}
