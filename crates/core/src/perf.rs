//! Performance reports: per-layer and whole-network cycles, DRAM traffic
//! and energy, broken down the way the paper's Fig. 21 reports them.

use std::fmt;

use pointacc_sim::{Cycles, PicoJoules};

use crate::engine::EngineReport;

/// Wall-clock seconds.
///
/// The single latency unit every hardware model reports in: cycle-based
/// models convert through their clock frequency
/// ([`Seconds::from_cycles`]), analytic models produce seconds directly.
///
/// # Examples
///
/// ```
/// use pointacc::Seconds;
/// use pointacc_sim::Cycles;
/// assert_eq!(Seconds(0.25).to_millis(), 250.0);
/// assert_eq!(Seconds::from_cycles(Cycles::new(2_000_000), 1.0e9).to_millis(), 2.0);
/// ```
#[derive(Copy, Clone, PartialEq, PartialOrd, Debug, Default)]
pub struct Seconds(pub f64);

impl Seconds {
    /// Converts a cycle count at `freq_hz` into seconds.
    pub fn from_cycles(cycles: Cycles, freq_hz: f64) -> Self {
        Seconds(cycles.to_seconds(freq_hz))
    }

    /// Milliseconds.
    pub fn to_millis(self) -> f64 {
        self.0 * 1e3
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms", self.to_millis())
    }
}

/// Performance record of one executed layer.
#[derive(Clone, Debug, Default)]
pub struct LayerPerf {
    /// Layer name from the trace.
    pub name: String,
    /// Mapping-unit cycles (mapping operations for this layer).
    pub mpu_cycles: Cycles,
    /// Matrix-unit cycles.
    pub mxu_cycles: Cycles,
    /// DRAM transfer cycles for this layer's traffic.
    pub dram_cycles: Cycles,
    /// Layer latency after overlap: `max(mxu, dram) + mpu`.
    pub latency: Cycles,
    /// DRAM bytes moved.
    pub dram_bytes: u64,
    /// MACs executed.
    pub macs: u64,
    /// Compute energy (MACs + comparators + ALU).
    pub compute_energy: PicoJoules,
    /// On-chip SRAM access energy.
    pub sram_energy: PicoJoules,
    /// DRAM access energy.
    pub dram_energy: PicoJoules,
    /// Cache miss rate for sparse layers (`None` when no cache ran).
    pub cache_miss_rate: Option<f64>,
    /// Chosen cache block size in points, if cached.
    pub cache_block_points: Option<usize>,
    /// Whether the layer executed inside a fusion group.
    pub fused: bool,
}

impl LayerPerf {
    /// Total energy of the layer.
    pub fn energy(&self) -> PicoJoules {
        self.compute_energy + self.sram_energy + self.dram_energy
    }
}

/// Whole-network report.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Configuration name.
    pub config: String,
    /// Network name.
    pub network: String,
    /// Per-layer records in execution order.
    pub layers: Vec<LayerPerf>,
    /// Clock frequency used for time conversions, Hz.
    pub freq_hz: f64,
}

impl RunReport {
    /// Total latency in cycles.
    pub fn total_cycles(&self) -> Cycles {
        self.layers.iter().map(|l| l.latency).sum()
    }

    /// Total latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.total_cycles().to_millis(self.freq_hz)
    }

    /// Total energy.
    pub fn energy(&self) -> PicoJoules {
        self.layers.iter().map(LayerPerf::energy).sum()
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.dram_bytes).sum()
    }

    /// Total MACs.
    pub fn macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Latency breakdown `(mapping, matmul, data-movement)` as fractions
    /// of total latency; data movement counts only the DRAM cycles not
    /// hidden under the matmul (Fig. 21a).
    pub fn latency_breakdown(&self) -> (f64, f64, f64) {
        let total = self.total_cycles().get().max(1) as f64;
        let mapping: u64 = self.layers.iter().map(|l| l.mpu_cycles.get()).sum();
        let exposed_dram: u64 = self
            .layers
            .iter()
            .map(|l| l.dram_cycles.get().saturating_sub(l.mxu_cycles.get()))
            .sum();
        let matmul = self.total_cycles().get() - mapping - exposed_dram;
        (mapping as f64 / total, matmul as f64 / total, exposed_dram as f64 / total)
    }

    /// Energy breakdown `(compute, sram, dram)` as fractions (Fig. 21b).
    pub fn energy_breakdown(&self) -> (f64, f64, f64) {
        let total = self.energy().get().max(f64::MIN_POSITIVE);
        let compute: f64 = self.layers.iter().map(|l| l.compute_energy.get()).sum();
        let sram: f64 = self.layers.iter().map(|l| l.sram_energy.get()).sum();
        let dram: f64 = self.layers.iter().map(|l| l.dram_energy.get()).sum();
        (compute / total, sram / total, dram / total)
    }

    /// Collapses the per-layer record into the unified [`EngineReport`]
    /// every hardware model shares: absolute seconds per component (the
    /// fractions of [`RunReport::latency_breakdown`] applied to the
    /// overlapped total), total energy and DRAM traffic.
    pub fn to_engine_report(&self) -> EngineReport {
        let total = self.total_cycles().to_seconds(self.freq_hz);
        let (mapping, matmul, datamove) = self.latency_breakdown();
        EngineReport {
            engine: self.config.clone(),
            network: self.network.clone(),
            mapping: Seconds(total * mapping),
            matmul: Seconds(total * matmul),
            datamove: Seconds(total * datamove),
            total: Seconds(total),
            energy: self.energy(),
            dram_bytes: self.dram_bytes(),
        }
    }

    /// Mean matrix-unit utilization weighted by cycles.
    pub fn mean_utilization(&self, peak_macs_per_cycle: u64) -> f64 {
        let cycles: u64 = self.layers.iter().map(|l| l.mxu_cycles.get()).sum();
        if cycles == 0 {
            return 0.0;
        }
        self.macs() as f64 / (cycles as f64 * peak_macs_per_cycle as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(mpu: u64, mxu: u64, dram: u64) -> LayerPerf {
        LayerPerf {
            name: "l".into(),
            mpu_cycles: Cycles::new(mpu),
            mxu_cycles: Cycles::new(mxu),
            dram_cycles: Cycles::new(dram),
            latency: Cycles::new(mxu.max(dram) + mpu),
            dram_bytes: dram * 16,
            macs: mxu * 256,
            compute_energy: PicoJoules::new(mxu as f64),
            sram_energy: PicoJoules::new(0.1 * mxu as f64),
            dram_energy: PicoJoules::new(0.3 * dram as f64),
            cache_miss_rate: None,
            cache_block_points: None,
            fused: false,
        }
    }

    #[test]
    fn breakdowns_sum_to_one() {
        let report = RunReport {
            config: "t".into(),
            network: "n".into(),
            layers: vec![layer(10, 100, 50), layer(5, 60, 120)],
            freq_hz: 1e9,
        };
        let (m, x, d) = report.latency_breakdown();
        assert!((m + x + d - 1.0).abs() < 1e-9, "{m} {x} {d}");
        let (c, s, dr) = report.energy_breakdown();
        assert!((c + s + dr - 1.0).abs() < 1e-9);
    }

    #[test]
    fn latency_accounts_overlap() {
        let report = RunReport {
            config: "t".into(),
            network: "n".into(),
            layers: vec![layer(10, 100, 50)],
            freq_hz: 1e9,
        };
        assert_eq!(report.total_cycles().get(), 110);
        assert!((report.latency_ms() - 110.0 / 1e6).abs() < 1e-12);
    }
}
