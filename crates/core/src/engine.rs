//! The unified execution surface every hardware model plugs into.
//!
//! The evaluation compares heterogeneous models — the PointAcc
//! [`Accelerator`](crate::Accelerator), analytic CPU/GPU/TPU platform
//! models, and the Mesorasi prior-work accelerator. Before this module
//! each surfaced its own report type; [`Engine`] unifies them behind one
//! `evaluate(trace) -> EngineReport` call so drivers (the parallel bench
//! harness, smoke tests, examples) can treat every model uniformly and
//! run (engine × benchmark × seed) grids concurrently.

use pointacc_nn::NetworkTrace;
use pointacc_sim::PicoJoules;

use crate::perf::Seconds;
use crate::Accelerator;

/// Latency / energy / DRAM-traffic report of one engine running one
/// network — the single report type shared by every hardware model.
///
/// Latency components are absolute seconds; `total` is reported
/// separately because engines overlap components differently (PointAcc
/// hides DRAM cycles under the matrix unit, general-purpose platforms
/// serialize them).
#[derive(Clone, Debug, PartialEq)]
pub struct EngineReport {
    /// Engine name as shown in figures (e.g. "PointAcc", "RTX 2080Ti").
    pub engine: String,
    /// Network name from the trace.
    pub network: String,
    /// Time in mapping operations.
    pub mapping: Seconds,
    /// Time in matrix computation.
    pub matmul: Seconds,
    /// Time in data movement not hidden under compute.
    pub datamove: Seconds,
    /// End-to-end latency after overlap.
    pub total: Seconds,
    /// Total energy.
    pub energy: PicoJoules,
    /// DRAM bytes moved (0 when the model does not track traffic).
    pub dram_bytes: u64,
}

impl EngineReport {
    /// End-to-end latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.total.to_millis()
    }

    /// Fractional latency breakdown `(mapping, matmul, datamove)`
    /// (paper Fig. 6 / Fig. 21a).
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let t = self.total.0.max(f64::MIN_POSITIVE);
        (self.mapping.0 / t, self.matmul.0 / t, self.datamove.0 / t)
    }

    /// Modeled sustained throughput in input points per second: how
    /// many points this engine processes per second of **simulated**
    /// time when fed this workload back to back. The serving layer's
    /// capacity model is built on this number — it depends only on the
    /// modeled cycle costs, never on host wall-clock, so capacity-based
    /// admission decisions are reproducible across machines.
    pub fn points_per_s(&self, input_points: usize) -> f64 {
        input_points as f64 / self.total.0.max(f64::MIN_POSITIVE)
    }

    /// Whether latency and energy are finite and strictly positive —
    /// the invariant every engine must uphold on every benchmark.
    pub fn is_physical(&self) -> bool {
        self.total.0.is_finite()
            && self.total.0 > 0.0
            && self.energy.get().is_finite()
            && self.energy.get() > 0.0
    }
}

/// A hardware model that can evaluate a network trace.
///
/// `Sync` is a supertrait so engines can be shared across the threads of
/// a batched run driver (`&dyn Engine` grids evaluate concurrently).
pub trait Engine: Sync {
    /// Engine name as shown in figures and tables.
    fn name(&self) -> String;

    /// Whether this engine can execute `trace` at all (e.g. Mesorasi
    /// cannot run SparseConv layers). Defaults to `true`.
    fn supports(&self, trace: &NetworkTrace) -> bool {
        let _ = trace;
        true
    }

    /// Evaluates one trace into the unified report.
    ///
    /// Implementations may panic on unsupported traces; drivers must
    /// check [`Engine::supports`] first.
    fn evaluate(&self, trace: &NetworkTrace) -> EngineReport;

    /// Modeled serving capacity on `trace`'s workload: the points/s
    /// budget one shard of this engine can sustain, derived from the
    /// simulated cycle costs ([`EngineReport::points_per_s`]). Returns
    /// `0.0` when the engine cannot execute the trace at all — a
    /// zero-capacity shard advertises that it can absorb no load.
    fn capacity_points_per_s(&self, trace: &NetworkTrace) -> f64 {
        if !self.supports(trace) {
            return 0.0;
        }
        self.evaluate(trace).points_per_s(trace.input_points())
    }
}

impl Engine for Accelerator {
    fn name(&self) -> String {
        self.config().name.clone()
    }

    fn evaluate(&self, trace: &NetworkTrace) -> EngineReport {
        self.run(trace).to_engine_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PointAccConfig;
    use pointacc_geom::{Point3, PointSet};
    use pointacc_nn::{zoo, ExecMode, Executor};
    use pointacc_sim::Cycles;

    fn trace() -> NetworkTrace {
        let pts: PointSet = (0..300)
            .map(|i| {
                let t = i as f32;
                Point3::new((t * 0.3).sin() * 2.0, (t * 0.7).cos() * 2.0, (t * 0.11).sin())
            })
            .collect();
        Executor::new(ExecMode::TraceOnly, 1).run(&zoo::pointnet_pp_classification(), &pts).trace
    }

    #[test]
    fn seconds_to_millis_at_the_report_boundary() {
        assert_eq!(Seconds(4.0).to_millis(), 4000.0);
        assert_eq!(Seconds::from_cycles(Cycles::new(500_000), 1.0e9).to_millis(), 0.5);
        assert_eq!(format!("{}", Seconds(0.0015)), "1.500 ms");
    }

    #[test]
    fn picojoules_to_millijoules_at_the_report_boundary() {
        assert!((PicoJoules::new(2.5e9).to_millijoules() - 2.5).abs() < 1e-12);
        assert!((PicoJoules::from_joules(0.5).to_millijoules() - 500.0).abs() < 1e-9);
        assert!((PicoJoules::from_joules(3.0).to_joules() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn accelerator_engine_report_matches_run_report() {
        let t = trace();
        let acc = Accelerator::new(PointAccConfig::edge());
        let run = acc.run(&t);
        let unified = acc.evaluate(&t);
        assert_eq!(unified.engine, "PointAcc.Edge");
        assert_eq!(unified.network, t.network);
        assert!((unified.latency_ms() - run.latency_ms()).abs() < 1e-12);
        assert!((unified.energy.get() - run.energy().get()).abs() < 1e-9);
        assert_eq!(unified.dram_bytes, run.dram_bytes());
        assert!(unified.is_physical());
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let r = Accelerator::new(PointAccConfig::full()).evaluate(&trace());
        let (m, x, d) = r.breakdown();
        assert!((m + x + d - 1.0).abs() < 1e-9, "{m} {x} {d}");
        // Component seconds must not exceed the overlapped total.
        assert!(r.mapping.0 + r.matmul.0 + r.datamove.0 <= r.total.0 * (1.0 + 1e-9));
    }

    #[test]
    fn points_per_s_is_simulated_not_wall_clock() {
        let t = trace();
        let acc = Accelerator::new(PointAccConfig::full());
        let r = acc.evaluate(&t);
        // points / simulated seconds, by definition.
        let want = t.input_points() as f64 / r.total.0;
        assert!((r.points_per_s(t.input_points()) - want).abs() < 1e-9);
        assert!(want > 0.0 && want.is_finite());
        // Identical traces give identical throughput: nothing here can
        // depend on the host machine's clock.
        assert_eq!(r.points_per_s(1000), acc.evaluate(&t).points_per_s(1000));
    }

    #[test]
    fn capacity_matches_report_throughput_and_zeroes_when_unsupported() {
        struct Refuses;
        impl Engine for Refuses {
            fn name(&self) -> String {
                "Refuses".into()
            }
            fn supports(&self, _: &NetworkTrace) -> bool {
                false
            }
            fn evaluate(&self, _: &NetworkTrace) -> EngineReport {
                panic!("must not be evaluated: supports() is false")
            }
        }
        let t = trace();
        let acc = Accelerator::new(PointAccConfig::edge());
        let want = acc.evaluate(&t).points_per_s(t.input_points());
        assert!((acc.capacity_points_per_s(&t) - want).abs() < 1e-9);
        assert_eq!(Refuses.capacity_points_per_s(&t), 0.0);
    }

    #[test]
    fn engines_are_object_safe_and_default_support_everything() {
        let acc = Accelerator::new(PointAccConfig::full());
        let dyn_engine: &dyn Engine = &acc;
        assert!(dyn_engine.supports(&trace()));
        assert_eq!(dyn_engine.name(), "PointAcc");
    }
}
