//! The four mapping operations executed on the MPU's ranking engine
//! (paper §4.1, Fig. 8): farthest point sampling, k-nearest-neighbors /
//! ball query, kernel mapping, and coordinate quantization.
//!
//! Every function returns both the functional result — tested to be
//! bit-identical to the golden algorithms in `pointacc_geom::golden` —
//! and the cycle statistics of the hardware execution.

use pointacc_geom::index::dist_key;
use pointacc_geom::{golden, Coord, MapEntry, MapTable, PointSet, VoxelCloud};
use pointacc_nn::MappingOp;
use pointacc_sim::SortItem;

use super::rank::{RankEngine, RankStats};
use super::stream::StreamMerger;

/// Payload bit marking an element of the *output* cloud in a merged
/// stream (vs. shifted input cloud).
const OUTPUT_TAG: u64 = 1 << 63;

/// Cycle statistics of a mapping operation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MappingStats {
    /// Total MPU cycles.
    pub cycles: u64,
    /// Comparator evaluations (sorting networks + detector).
    pub comparator_evals: u64,
    /// Distance-calculation ALU operations (stage CD).
    pub distance_ops: u64,
}

impl MappingStats {
    fn absorb_rank(&mut self, s: RankStats) {
        self.cycles += s.cycles;
        self.comparator_evals += s.comparator_evals;
    }
}

/// The Mapping Unit: a ranking engine plus the streaming merger and
/// intersection detector, configured at merger width N.
#[derive(Copy, Clone, Debug)]
pub struct Mpu {
    width: usize,
    engine: RankEngine,
    merger: StreamMerger,
}

impl Mpu {
    /// Creates a mapping unit with merger width `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two ≥ 2.
    pub fn new(n: usize) -> Self {
        Mpu { width: n, engine: RankEngine::new(n), merger: StreamMerger::new(n) }
    }

    /// Merger width N.
    pub fn width(&self) -> usize {
        self.width
    }

    // ------------------------------------------------------------------
    // Farthest point sampling (Fig. 8b): iterative Max on distances.
    // ------------------------------------------------------------------

    /// Samples `m` points by farthest point sampling. Functionally
    /// identical to [`golden::farthest_point_sampling`] (start index 0,
    /// ties to the lowest index).
    ///
    /// # Panics
    ///
    /// Panics if `m > points.len()`.
    pub fn farthest_point_sampling(
        &self,
        points: &PointSet,
        m: usize,
    ) -> (Vec<usize>, MappingStats) {
        assert!(m <= points.len(), "cannot sample {m} from {}", points.len());
        let mut stats = MappingStats::default();
        if m == 0 {
            return (Vec::new(), stats);
        }
        let n = points.len();
        // The running min-distance array lives in the sorter buffer; each
        // iteration streams all points through FS → CD → ST, updating
        // distances and reducing the arg-max (paper §4.1.2, blue path).
        let mut dist = vec![f32::INFINITY; n];
        let mut selected = Vec::with_capacity(m);
        let mut current = 0usize;
        selected.push(current);
        let passes_per_iter = (n as u64).div_ceil(self.width as u64);
        for _ in 1..m {
            let q = points.point(current);
            let mut best = 0usize;
            let mut best_d = f32::NEG_INFINITY;
            for (i, d) in dist.iter_mut().enumerate() {
                let nd = points.point(i).dist2(q);
                if nd < *d {
                    *d = nd;
                }
                if *d > best_d {
                    best_d = *d;
                    best = i;
                }
            }
            selected.push(best);
            current = best;
            stats.cycles += passes_per_iter + 2; // stream + forward bubble
            stats.distance_ops += n as u64;
            stats.comparator_evals += n as u64; // max-reduction tree
        }
        (selected, stats)
    }

    /// Closed-form FPS cycle estimate for the dense sweep (every
    /// iteration streams all `n` points). This is the modeled cost the
    /// golden speedup/energy snapshots are locked to; the pruned
    /// variant below tracks the indexed backend's actual work.
    pub fn fps_cycles_estimate(&self, n: usize, m: usize) -> u64 {
        (m.saturating_sub(1) as u64) * ((n as u64).div_ceil(self.width as u64) + 2)
    }

    /// FPS cycle estimate for the **bucket-pruned** exact sweep: the
    /// per-iteration pipeline bubble is unchanged (2 cycles × (m − 1)),
    /// but only `scanned` candidate points stream through the distance
    /// lanes — the work count `pointacc_geom::index::FpsWork::scanned`
    /// reports from a pruned run. With `scanned = n·(m − 1)` (nothing
    /// pruned) this is bounded above by [`Mpu::fps_cycles_estimate`],
    /// since the dense form rounds each iteration's lane passes up
    /// separately.
    pub fn fps_cycles_estimate_pruned(&self, scanned: u64, m: usize) -> u64 {
        (m.saturating_sub(1) as u64) * 2 + scanned.div_ceil(self.width as u64)
    }

    // ------------------------------------------------------------------
    // k-nearest-neighbors / ball query (Fig. 8c): TopK on distances.
    // ------------------------------------------------------------------

    /// k-nearest-neighbors of every query point. Functionally identical
    /// to [`golden::k_nearest_neighbors`] (ranking key `(dist², index)`).
    pub fn k_nearest_neighbors(
        &self,
        input: &PointSet,
        queries: &PointSet,
        k: usize,
    ) -> (Vec<Vec<usize>>, MappingStats) {
        self.knn_inner(input, queries, k, None)
    }

    /// Ball query: k nearest within squared radius `radius2`, padded the
    /// PointNet++ way (repeat the nearest member; empty balls fall back
    /// to the global nearest neighbor). Matches
    /// [`golden::ball_query_padded`].
    pub fn ball_query_padded(
        &self,
        input: &PointSet,
        queries: &PointSet,
        radius2: f32,
        k: usize,
    ) -> (Vec<Vec<usize>>, MappingStats) {
        let (mut out, stats) = self.knn_inner(input, queries, k, Some(radius2));
        for (qi, nbrs) in out.iter_mut().enumerate() {
            if nbrs.is_empty() {
                let (fallback, _) =
                    self.knn_inner(input, &PointSet::from_points(vec![queries.point(qi)]), 1, None);
                nbrs.extend_from_slice(&fallback[0]);
            }
            let first = nbrs[0];
            while nbrs.len() < k {
                nbrs.push(first);
            }
        }
        (out, stats)
    }

    fn knn_inner(
        &self,
        input: &PointSet,
        queries: &PointSet,
        k: usize,
        radius2: Option<f32>,
    ) -> (Vec<Vec<usize>>, MappingStats) {
        let mut stats = MappingStats::default();
        let mut out = Vec::with_capacity(queries.len());
        for &q in queries.points() {
            // Stage CD computes distances at N lanes/cycle; the ranking
            // engine consumes them at the same rate, so the top-k pass
            // dominates.
            let items: Vec<SortItem> = input
                .points()
                .iter()
                .enumerate()
                .filter_map(|(i, &p)| {
                    let d = p.dist2(q);
                    if radius2.is_some_and(|r2| d > r2) {
                        // Ball query: thresholding happens in the same
                        // comparator pass (distance > r² lanes are
                        // invalidated), so filtered items cost nothing
                        // extra downstream.
                        None
                    } else {
                        Some(SortItem::new(dist_key(d, i as u32), i as u64))
                    }
                })
                .collect();
            stats.distance_ops += input.len() as u64;
            let (top, s) = if items.is_empty() {
                (Vec::new(), RankStats::default())
            } else {
                self.engine.topk(&items, k)
            };
            stats.absorb_rank(s);
            stats.cycles += (input.len() as u64).div_ceil(self.width as u64).max(1);
            out.push(top.into_iter().map(|i| i.payload as usize).collect());
        }
        (out, stats)
    }

    /// Closed-form kNN/ball-query cycle estimate.
    pub fn knn_cycles_estimate(&self, n: usize, n_queries: usize, k: usize) -> u64 {
        let per_query =
            self.engine.topk_cycles_estimate(n, k) + (n as u64).div_ceil(self.width as u64).max(1);
        per_query * n_queries as u64
    }

    // ------------------------------------------------------------------
    // Kernel mapping (Fig. 9): MergeSort + intersection detection.
    // ------------------------------------------------------------------

    /// Kernel mapping by merge-sort + intersection detection. The input
    /// cloud is shifted by `−δ` per kernel offset (a uniform shift keeps
    /// it sorted), merge-sorted with the output cloud, and adjacent
    /// equal-coordinate pairs become maps. Bit-identical to
    /// [`golden::kernel_map_hash`].
    pub fn kernel_map(
        &self,
        input: &VoxelCloud,
        output: &VoxelCloud,
        kernel_size: usize,
    ) -> (MapTable, MappingStats) {
        let offsets = golden::kernel_offsets(kernel_size);
        let s = input.stride();
        let mut stats = MappingStats::default();
        let mut entries = Vec::new();
        // Output cloud keys are reused across all offsets.
        let out_items: Vec<SortItem> = output
            .coords()
            .iter()
            .enumerate()
            .map(|(i, c)| SortItem::new(c.key(), i as u64 | OUTPUT_TAG))
            .collect();
        for (w, &d) in offsets.iter().enumerate() {
            // Shift the input cloud by −δ·s: map condition p = q + δ·s
            // becomes (p − δ·s) = q. Adding a constant offset preserves
            // the sorted order, so no re-sort is needed (stage CD does
            // the adds inline).
            let dd = d.scale(s);
            let shifted: Vec<SortItem> = input
                .coords()
                .iter()
                .enumerate()
                .map(|(i, c)| SortItem::new(c.sub(dd).key(), i as u64))
                .collect();
            stats.distance_ops += input.len() as u64;
            let (merged, ms) = self.merger.merge(&shifted, &out_items);
            stats.cycles += ms.iterations + self.merger.depth();
            stats.comparator_evals += ms.comparator_evals;
            // Stage DI: adjacent equal keys from different sources form a
            // map (coordinates are unique within each cloud, so equal
            // runs have length ≤ 2).
            for pair in merged.windows(2) {
                if pair[0].key == pair[1].key {
                    let (inp, outp) = if pair[0].payload & OUTPUT_TAG == 0 {
                        (pair[0].payload, pair[1].payload)
                    } else {
                        (pair[1].payload, pair[0].payload)
                    };
                    debug_assert!(outp & OUTPUT_TAG != 0, "duplicate key within one cloud");
                    entries.push(MapEntry::new(inp as u32, (outp & !OUTPUT_TAG) as u32, w as u16));
                }
            }
            stats.comparator_evals += merged.len().saturating_sub(1) as u64;
        }
        (MapTable::from_entries(entries, offsets.len()), stats)
    }

    /// Closed-form kernel-mapping cycle estimate.
    pub fn kernel_map_cycles_estimate(
        &self,
        n_in: usize,
        n_out: usize,
        kernel_volume: usize,
    ) -> u64 {
        let h = (self.width / 2).max(1) as u64;
        let per_offset =
            (n_in as u64).div_ceil(h) + (n_out as u64).div_ceil(h) + self.merger.depth();
        per_offset * kernel_volume as u64
    }

    // ------------------------------------------------------------------
    // Output cloud construction: coordinate quantization.
    // ------------------------------------------------------------------

    /// Downsamples a cloud by coordinate quantization: clears the low
    /// bits (stage CD), re-sorts the quantized stream (the quantized
    /// sequence is *not* lexicographically sorted), and removes adjacent
    /// duplicates in the detector. Matches [`VoxelCloud::downsample`].
    pub fn quantize(&self, input: &VoxelCloud, factor: i32) -> (VoxelCloud, MappingStats) {
        let mut stats = MappingStats::default();
        let new_stride = input.stride() * factor;
        let items: Vec<SortItem> =
            input.coords().iter().map(|c| SortItem::new(c.quantize(new_stride).key(), 0)).collect();
        stats.distance_ops += input.len() as u64;
        let (sorted, rs) = self.engine.sort(&items);
        stats.absorb_rank(rs);
        // Detector pass removes duplicates.
        let mut coords = Vec::with_capacity(sorted.len());
        let mut last: Option<u128> = None;
        for item in &sorted {
            if last != Some(item.key) {
                coords.push(Coord::from_key(item.key));
                last = Some(item.key);
            }
        }
        stats.comparator_evals += sorted.len() as u64;
        (VoxelCloud::from_sorted(coords, new_stride), stats)
    }

    /// Closed-form quantization cycle estimate.
    pub fn quantize_cycles_estimate(&self, n_in: usize) -> u64 {
        self.engine.sort_cycles_estimate(n_in) + (n_in as u64).div_ceil(self.width as u64)
    }

    // ------------------------------------------------------------------
    // Descriptor-driven costing.
    // ------------------------------------------------------------------

    /// Cycle estimate for one trace-level [`MappingOp`] descriptor — the
    /// **same** descriptor the executor records while building the maps,
    /// so the modeled cycles and the executed mapping work can never
    /// diverge. This is the single entry point the accelerator's
    /// per-layer costing uses.
    pub fn op_cycles(&self, op: &MappingOp) -> u64 {
        match *op {
            MappingOp::Quantize { n_in, .. } => self.quantize_cycles_estimate(n_in),
            MappingOp::KernelMap { n_in, n_out, kernel_volume, .. } => {
                self.kernel_map_cycles_estimate(n_in, n_out, kernel_volume)
            }
            MappingOp::Fps { n_in, n_out } => self.fps_cycles_estimate(n_in, n_out),
            MappingOp::Knn { n_in, n_queries, k } | MappingOp::BallQuery { n_in, n_queries, k } => {
                self.knn_cycles_estimate(n_in, n_queries, k)
            }
            MappingOp::KnnFeature { n_in, n_queries, k, dim } => {
                // High-dimensional distances lengthen stage CD: the
                // reduction over `dim` components shares the N lanes.
                let extra =
                    (n_queries as u64) * (n_in as u64 * dim as u64).div_ceil(4 * self.width as u64);
                self.knn_cycles_estimate(n_in, n_queries, k) + extra
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pointacc_geom::Point3;

    fn pseudo_points(n: usize, seed: u64) -> PointSet {
        let mut x = seed | 1;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 1000) as f32 / 100.0 - 5.0
        };
        (0..n).map(|_| Point3::new(step(), step(), step())).collect()
    }

    fn pseudo_cloud(n: usize, seed: u64, stride: i32) -> VoxelCloud {
        let mut x = seed | 1;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x % 32) as i32 - 16) * stride
        };
        VoxelCloud::from_unsorted(
            (0..n).map(|_| Coord::new(step(), step(), step())).collect(),
            stride,
        )
    }

    #[test]
    fn fps_matches_golden() {
        let mpu = Mpu::new(16);
        for (n, m) in [(50usize, 10usize), (200, 64), (31, 31)] {
            let pts = pseudo_points(n, n as u64);
            let (got, stats) = mpu.farthest_point_sampling(&pts, m);
            let want = golden::farthest_point_sampling(&pts, m);
            assert_eq!(got, want, "n={n} m={m}");
            assert_eq!(stats.cycles, mpu.fps_cycles_estimate(n, m));
        }
    }

    #[test]
    fn pruned_fps_estimate_tracks_measured_work_and_never_exceeds_dense() {
        use pointacc_geom::index::fps_pruned;
        let mpu = Mpu::new(16);
        for (n, m) in [(512usize, 64usize), (2048, 300), (4096, 17)] {
            let pts = pseudo_points(n, n as u64 | 3);
            let (sel, work) = fps_pruned(&pts, m);
            // The pruned sweep selects exactly what the dense model does…
            assert_eq!(sel, golden::farthest_point_sampling(&pts, m), "n={n} m={m}");
            // …while its modeled cycles track the measured scan count and
            // are bounded by the dense estimate the snapshots lock.
            let pruned = mpu.fps_cycles_estimate_pruned(work.scanned, m);
            assert!(pruned > 0, "n={n} m={m}");
            assert!(
                pruned <= mpu.fps_cycles_estimate(n, m),
                "n={n} m={m}: pruned {pruned} exceeds dense {}",
                mpu.fps_cycles_estimate(n, m)
            );
        }
        // No pruning (scanned == n·(m−1)) still never exceeds dense:
        // ⌈a+b⌉-style rounding keeps the dense form an upper bound.
        assert!(mpu.fps_cycles_estimate_pruned(100 * 9, 10) <= mpu.fps_cycles_estimate(100, 10));
    }

    #[test]
    fn knn_matches_golden() {
        let mpu = Mpu::new(16);
        let input = pseudo_points(120, 5);
        let queries = pseudo_points(15, 9);
        let (got, _) = mpu.k_nearest_neighbors(&input, &queries, 8);
        let want = golden::k_nearest_neighbors(&input, &queries, 8);
        assert_eq!(got, want);
    }

    #[test]
    fn ball_query_matches_golden() {
        let mpu = Mpu::new(16);
        let input = pseudo_points(100, 1);
        let queries = pseudo_points(10, 2);
        for r2 in [0.5f32, 2.0, 50.0] {
            let (got, _) = mpu.ball_query_padded(&input, &queries, r2, 16);
            let want = golden::ball_query_padded(&input, &queries, r2, 16);
            assert_eq!(got, want, "r2={r2}");
        }
    }

    #[test]
    fn kernel_map_matches_golden_hash() {
        let mpu = Mpu::new(16);
        for seed in 1..5u64 {
            let input = pseudo_cloud(80, seed, 1);
            let maps_golden = golden::kernel_map_hash(&input, &input, 3);
            let (maps_mpu, stats) = mpu.kernel_map(&input, &input, 3);
            assert_eq!(maps_mpu.canonicalized(), maps_golden.canonicalized(), "seed={seed}");
            assert!(stats.cycles > 0);
        }
    }

    #[test]
    fn kernel_map_downsampling_matches_golden() {
        let mpu = Mpu::new(8);
        let input = pseudo_cloud(100, 3, 1);
        let (output, qstats) = mpu.quantize(&input, 2);
        let (want_out, _) = input.downsample(2);
        assert_eq!(output, want_out);
        assert!(qstats.cycles > 0);
        let maps_golden = golden::kernel_map_hash(&input, &output, 2);
        let (maps_mpu, _) = mpu.kernel_map(&input, &output, 2);
        assert_eq!(maps_mpu.canonicalized(), maps_golden.canonicalized());
    }

    #[test]
    fn kernel_map_estimate_tracks_measured() {
        let mpu = Mpu::new(16);
        let input = pseudo_cloud(300, 9, 1);
        let (_, stats) = mpu.kernel_map(&input, &input, 3);
        let est = mpu.kernel_map_cycles_estimate(input.len(), input.len(), 27);
        let ratio = est as f64 / stats.cycles as f64;
        assert!((0.5..2.0).contains(&ratio), "estimate {est} vs measured {}", stats.cycles);
    }

    #[test]
    fn dist_key_orders_like_floats() {
        let a = dist_key(0.5, 9);
        let b = dist_key(0.5, 10);
        let c = dist_key(1.5, 0);
        assert!(a < b && b < c);
        assert!(dist_key(0.0, 0) < dist_key(f32::MIN_POSITIVE, 0));
    }

    #[test]
    fn knn_on_empty_ball_is_empty() {
        let mpu = Mpu::new(8);
        let input = PointSet::from_points(vec![Point3::new(100.0, 0.0, 0.0)]);
        let queries = PointSet::from_points(vec![Point3::ORIGIN]);
        let (got, _) = mpu.knn_inner(&input, &queries, 4, Some(0.1));
        assert!(got[0].is_empty());
    }
}
