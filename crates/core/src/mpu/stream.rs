//! Streaming merge of arbitrary-length sorted inputs (paper Fig. 10a).
//!
//! An N-input bitonic merger only merges two N/2-element windows per
//! cycle. To merge streams of arbitrary length, the MPU slides a window
//! over each stream, consumes exactly one window per cycle (the one whose
//! last element is smaller), and uses that element as a *threshold*:
//! merged outputs larger than the threshold are invalidated and replayed
//! from a carry register on the next cycle. This module implements a
//! functionally exact model of that loop and reports the cycle count
//! (= iterations, the pipeline has initiation interval 1).

use pointacc_sim::{BitonicMerger, SortItem};

/// Statistics of one streaming-merge execution.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Merger iterations (≈ cycles; II = 1).
    pub iterations: u64,
    /// Comparator evaluations (for energy accounting).
    pub comparator_evals: u64,
}

impl MergeStats {
    /// Accumulates another run's statistics.
    pub fn absorb(&mut self, other: MergeStats) {
        self.iterations += other.iterations;
        self.comparator_evals += other.comparator_evals;
    }
}

/// Streaming merger with window size `N/2`.
#[derive(Copy, Clone, Debug)]
pub struct StreamMerger {
    merger: BitonicMerger,
}

/// Sentinel key used for window padding ("N/A" lanes in Fig. 10a).
const INF: u128 = u128::MAX;

impl StreamMerger {
    /// Creates a streaming merger of width `n` (a power of two ≥ 2).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two ≥ 2.
    pub fn new(n: usize) -> Self {
        StreamMerger { merger: BitonicMerger::new(n) }
    }

    /// Window size N/2 (elements consumed per cycle).
    pub fn window(&self) -> usize {
        (self.merger.width() / 2).max(1)
    }

    /// Pipeline depth in cycles (merger stages).
    pub fn depth(&self) -> u64 {
        self.merger.stages() as u64
    }

    /// Merges two sorted streams into one sorted stream, modeling the
    /// hardware's windowed loop. Returns the merged items and the cycle
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics (debug) if an input is unsorted, or if any key equals the
    /// reserved sentinel `u128::MAX`.
    pub fn merge(&self, a: &[SortItem], b: &[SortItem]) -> (Vec<SortItem>, MergeStats) {
        debug_assert!(a.windows(2).all(|w| w[0].key <= w[1].key), "stream A not sorted");
        debug_assert!(b.windows(2).all(|w| w[0].key <= w[1].key), "stream B not sorted");
        debug_assert!(
            a.iter().chain(b).all(|i| i.key != INF),
            "keys must not use the sentinel value"
        );
        let h = self.window();
        let mut out = Vec::with_capacity(a.len() + b.len());
        let mut stats = MergeStats::default();
        // Consumed-window prefix and emitted prefix per stream. Emitted
        // may run ahead of consumed: elements of the *unconsumed* window
        // that fall below the threshold are emitted now and replaced from
        // the carry register when the window is re-fed (Fig. 10a,
        // iteration 1).
        let (mut pa, mut pb) = (0usize, 0usize);
        let (mut ea, mut eb) = (0usize, 0usize);
        while ea < a.len() || eb < b.len() {
            stats.iterations += 1;
            stats.comparator_evals += self.merger.evals_per_pass();
            let wa_end = (pa + h).min(a.len());
            let wb_end = (pb + h).min(b.len());
            // A window's comparator "last element" is INF when the stream
            // cannot fill it (padding lanes).
            let last_a = if pa + h <= a.len() { a[pa + h - 1].key } else { INF };
            let last_b = if pb + h <= b.len() { b[pb + h - 1].key } else { INF };
            let threshold = last_a.min(last_b);
            // Emit every not-yet-emitted window element ≤ threshold, in
            // merged order (two-pointer over the window remainders —
            // functionally identical to the merger network's valid
            // outputs plus the carried elements).
            let mut ia = ea.max(pa);
            let mut ib = eb.max(pb);
            loop {
                let ka = if ia < wa_end { a[ia].key } else { INF };
                let kb = if ib < wb_end { b[ib].key } else { INF };
                let (k, from_a) = if ka <= kb { (ka, true) } else { (kb, false) };
                if k == INF || k > threshold {
                    break;
                }
                if from_a {
                    out.push(a[ia]);
                    ia += 1;
                } else {
                    out.push(b[ib]);
                    ib += 1;
                }
            }
            ea = ia;
            eb = ib;
            // Consume exactly one window: the one that supplied the
            // threshold (ties advance A). Everything in it was ≤
            // threshold and is therefore already emitted.
            if last_a <= last_b {
                pa = wa_end;
                debug_assert!(ea >= pa, "consumed window must be fully emitted");
            } else {
                pb = wb_end;
                debug_assert!(eb >= pb, "consumed window must be fully emitted");
            }
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(keys: &[u128]) -> Vec<SortItem> {
        keys.iter().enumerate().map(|(i, &k)| SortItem::new(k, i as u64)).collect()
    }

    fn keys(v: &[SortItem]) -> Vec<u128> {
        v.iter().map(|i| i.key).collect()
    }

    fn reference_merge(a: &[SortItem], b: &[SortItem]) -> Vec<u128> {
        let mut all: Vec<u128> = a.iter().chain(b).map(|i| i.key).collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn merges_paper_fig10a_example() {
        // Fig. 10a: two 8-element streams, merger width 8 (window 4).
        // Keys are 2-D coordinates packed so (x,y) sorts lexicographically.
        let key = |x: u128, y: u128| (x << 32) | y;
        let a = items(&[
            key(0, 2),
            key(1, 1),
            key(1, 4),
            key(2, 0),
            key(2, 3),
            key(3, 2),
            key(3, 3),
            key(4, 2),
        ]);
        let b = items(&[
            key(0, 3), // (-1,3) biased to stay unsigned
            key(0, 2),
            key(0, 5),
            key(1, 1),
            key(1, 4),
            key(2, 3),
            key(2, 4),
            key(3, 3),
        ]);
        let mut b = b;
        b.sort_by_key(|i| i.key);
        let m = StreamMerger::new(8);
        let (out, stats) = m.merge(&a, &b);
        assert_eq!(keys(&out), reference_merge(&a, &b));
        // 16 elements, window 4 → 4 window consumptions minimum.
        assert!(stats.iterations >= 4 && stats.iterations <= 6, "{stats:?}");
    }

    #[test]
    fn merge_handles_unequal_lengths() {
        let m = StreamMerger::new(8);
        let a = items(&[1, 5, 9, 13, 17, 21, 25]);
        let b = items(&[2, 4]);
        let (out, _) = m.merge(&a, &b);
        assert_eq!(keys(&out), reference_merge(&a, &b));
    }

    #[test]
    fn merge_handles_empty_streams() {
        let m = StreamMerger::new(4);
        let a = items(&[3, 4, 5]);
        let (out, _) = m.merge(&a, &[]);
        assert_eq!(keys(&out), vec![3, 4, 5]);
        let (out2, _) = m.merge(&[], &a);
        assert_eq!(keys(&out2), vec![3, 4, 5]);
        let (out3, stats) = m.merge(&[], &[]);
        assert!(out3.is_empty());
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn merge_with_all_duplicates() {
        let m = StreamMerger::new(4);
        let a = items(&[7, 7, 7, 7, 7]);
        let b = items(&[7, 7, 7]);
        let (out, _) = m.merge(&a, &b);
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(|i| i.key == 7));
    }

    #[test]
    fn merge_skewed_streams() {
        // One stream entirely smaller than the other.
        let m = StreamMerger::new(8);
        let a = items(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let b = items(&[100, 200, 300, 400, 500, 600, 700, 800]);
        let (out, _) = m.merge(&a, &b);
        assert_eq!(keys(&out), reference_merge(&a, &b));
    }

    #[test]
    fn iteration_count_tracks_window_consumption() {
        // Both streams length 32, window 4 → 16 consumptions (+ final
        // flush rounds), well below a naive per-element count.
        let m = StreamMerger::new(8);
        let a = items(&(0..64).map(|i| 2 * i as u128).collect::<Vec<_>>());
        let b = items(&(0..64).map(|i| 2 * i as u128 + 1).collect::<Vec<_>>());
        let (out, stats) = m.merge(&a, &b);
        assert_eq!(out.len(), 128);
        let ideal = 128 / 4;
        assert!(
            stats.iterations >= ideal as u64 && stats.iterations <= ideal as u64 + 2,
            "iterations {} vs ideal {}",
            stats.iterations,
            ideal
        );
    }

    #[test]
    fn payloads_survive_merging() {
        let m = StreamMerger::new(4);
        let a = vec![SortItem::new(10, 111), SortItem::new(30, 333)];
        let b = vec![SortItem::new(20, 222)];
        let (out, _) = m.merge(&a, &b);
        assert_eq!(out.iter().map(|i| i.payload).collect::<Vec<_>>(), vec![111, 222, 333]);
    }
}
