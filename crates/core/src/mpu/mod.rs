//! The Mapping Unit (MPU): every point-cloud mapping operation unified
//! onto one ranking-based compute kernel (paper §4.1).
//!
//! Pipeline stages (Fig. 7): FetchCoords → CalculateDistance →
//! Split-&-Sort → Buffering → MergeSort → DetectIntersection. The
//! submodules model the stages' composite behaviours:
//!
//! - [`stream`] — the forwarding-loop streaming merger (Fig. 10a),
//! - [`rank`] — arbitrary-length Sort / Top-K (Fig. 10b/c),
//! - [`ops`] — FPS, kNN / ball query, kernel mapping, quantization,
//!   each functionally bit-identical to the golden reference and
//!   reporting hardware cycle counts.

pub mod ops;
pub mod rank;
pub mod stream;

pub use ops::{MappingStats, Mpu};
pub use rank::{RankEngine, RankStats};
pub use stream::{MergeStats, StreamMerger};
