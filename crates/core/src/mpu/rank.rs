//! Arbitrary-length Sort and Top-K on the MPU (paper Fig. 10b/c).
//!
//! A single pass through the MPU's ST + MS stages sorts N elements. For
//! longer inputs the unit performs classical merge sort: the split-&-sort
//! stage emits sorted runs, and the streaming merger iteratively merges
//! run pairs (forwarding MS outputs back to the buffering stage). Top-K
//! reuses the same dataflow but truncates every intermediate run to `k`
//! elements, which keeps late passes nearly free for the small `k`
//! (16–64) used by point cloud networks.

use pointacc_sim::{BitonicSorter, SortItem};

use super::stream::{MergeStats, StreamMerger};

/// Statistics of one ranking operation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RankStats {
    /// Total cycles (split-&-sort pass + merge iterations + drain).
    pub cycles: u64,
    /// Comparator evaluations.
    pub comparator_evals: u64,
}

/// The MPU ranking engine: Sort / Top-K of arbitrary length at merger
/// width N.
#[derive(Copy, Clone, Debug)]
pub struct RankEngine {
    width: usize,
    merger: StreamMerger,
}

impl RankEngine {
    /// Creates an engine with merger width `n` (power of two ≥ 2).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two ≥ 2.
    pub fn new(n: usize) -> Self {
        RankEngine { width: n, merger: StreamMerger::new(n) }
    }

    /// Merger width N.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Sorts arbitrary-length input, returning sorted items and cycles.
    pub fn sort(&self, items: &[SortItem]) -> (Vec<SortItem>, RankStats) {
        self.sort_truncated(items, usize::MAX)
    }

    /// Top-K: the `k` smallest items in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn topk(&self, items: &[SortItem], k: usize) -> (Vec<SortItem>, RankStats) {
        assert!(k > 0, "top-k requires k ≥ 1");
        self.sort_truncated(items, k)
    }

    fn sort_truncated(&self, items: &[SortItem], k: usize) -> (Vec<SortItem>, RankStats) {
        let mut stats = RankStats::default();
        if items.is_empty() {
            return (Vec::new(), stats);
        }
        let n = self.width;
        // Stage ST + one MS pass: N elements enter per cycle and leave as
        // sorted N-element runs.
        let sorter = BitonicSorter::new((n / 2).max(2));
        let mut runs: Vec<Vec<SortItem>> = Vec::new();
        for chunk in items.chunks(n) {
            let mut run = chunk.to_vec();
            run.sort_by_key(|x| (x.key, x.payload));
            run.truncate(k);
            runs.push(run);
            stats.cycles += 1;
            stats.comparator_evals +=
                2 * sorter.comparators() as u64 + (n as u64 / 2) * (n.trailing_zeros() as u64);
        }
        // Iterative pairwise merge (BF ↔ MS forwarding loop), truncating
        // each merged run to k.
        let mut merge_stats = MergeStats::default();
        while runs.len() > 1 {
            let mut next = Vec::with_capacity(runs.len().div_ceil(2));
            let mut it = runs.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => {
                        let (mut merged, s) = self.merger.merge(&a, &b);
                        merge_stats.absorb(s);
                        merged.truncate(k);
                        next.push(merged);
                    }
                    None => next.push(a),
                }
            }
            runs = next;
        }
        stats.cycles += merge_stats.iterations + self.merger.depth();
        stats.comparator_evals += merge_stats.comparator_evals;
        let mut out = runs.pop().unwrap_or_default();
        out.truncate(k);
        (out, stats)
    }

    /// Closed-form cycle estimate for sorting `len` elements (used by the
    /// timing model without materializing items; verified against
    /// [`RankEngine::sort`] in tests).
    pub fn sort_cycles_estimate(&self, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let n = self.width as u64;
        let h = (self.width / 2).max(1) as u64;
        let runs = (len as u64).div_ceil(n);
        let passes = 64 - runs.leading_zeros() as u64 - u64::from(runs.is_power_of_two());
        let passes = if runs > 1 { passes + u64::from(!runs.is_power_of_two()) } else { 0 };
        let per_pass = (len as u64).div_ceil(h);
        runs + passes * per_pass + self.merger.depth()
    }

    /// Closed-form cycle estimate for top-k over `len` elements.
    pub fn topk_cycles_estimate(&self, len: usize, k: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let n = self.width as u64;
        let h = (self.width / 2).max(1) as u64;
        let mut runs = (len as u64).div_ceil(n);
        let mut run_len = n.min(len as u64).min(k as u64);
        let mut cycles = (len as u64).div_ceil(n);
        while runs > 1 {
            // Each merge of two runs streams both through the window.
            let merges = runs / 2;
            cycles += merges * 2 * run_len.div_ceil(h).max(1);
            run_len = (2 * run_len).min(k as u64);
            runs = runs.div_ceil(2);
        }
        cycles + self.merger.depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(keys: &[u128]) -> Vec<SortItem> {
        keys.iter().enumerate().map(|(i, &k)| SortItem::new(k, i as u64)).collect()
    }

    fn pseudo_random(n: usize, seed: u64) -> Vec<SortItem> {
        let mut x = seed | 1;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                SortItem::new((x % 10_000) as u128, i as u64)
            })
            .collect()
    }

    #[test]
    fn sort_matches_reference() {
        for n in [0usize, 1, 5, 16, 63, 64, 65, 500] {
            let engine = RankEngine::new(16);
            let input = pseudo_random(n, 42);
            let (out, stats) = engine.sort(&input);
            let mut want: Vec<u128> = input.iter().map(|i| i.key).collect();
            want.sort_unstable();
            assert_eq!(out.iter().map(|i| i.key).collect::<Vec<_>>(), want, "n={n}");
            if n > 0 {
                assert!(stats.cycles > 0);
            }
        }
    }

    #[test]
    fn topk_matches_reference() {
        for (n, k) in [(100usize, 5usize), (1000, 16), (8192, 32), (77, 77), (10, 100)] {
            let engine = RankEngine::new(32);
            let input = pseudo_random(n, 7);
            let (out, _) = engine.topk(&input, k);
            let mut want: Vec<u128> = input.iter().map(|i| i.key).collect();
            want.sort_unstable();
            want.truncate(k);
            assert_eq!(out.iter().map(|i| i.key).collect::<Vec<_>>(), want, "n={n} k={k}");
        }
    }

    #[test]
    fn topk_is_cheaper_than_sort() {
        let engine = RankEngine::new(32);
        let input = pseudo_random(8192, 3);
        let (_, sort_stats) = engine.sort(&input);
        let (_, topk_stats) = engine.topk(&input, 16);
        assert!(
            topk_stats.cycles < sort_stats.cycles / 2,
            "top-k {} should be far cheaper than sort {}",
            topk_stats.cycles,
            sort_stats.cycles
        );
    }

    #[test]
    fn cycle_estimates_track_measured() {
        let engine = RankEngine::new(32);
        for n in [64usize, 500, 4096] {
            let input = pseudo_random(n, 11);
            let (_, stats) = engine.sort(&input);
            let est = engine.sort_cycles_estimate(n);
            let ratio = est as f64 / stats.cycles as f64;
            assert!(
                (0.4..2.5).contains(&ratio),
                "n={n}: estimate {est} vs measured {} (ratio {ratio})",
                stats.cycles
            );
        }
    }

    #[test]
    fn ties_resolve_by_payload() {
        let engine = RankEngine::new(4);
        let input = items(&[5, 5, 5, 1]);
        let (out, _) = engine.sort(&input);
        assert_eq!(out[0].key, 1);
        // Equal keys keep ascending payload order within a run.
        assert_eq!(out[1].payload, 0);
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn topk_zero_rejected() {
        let engine = RankEngine::new(8);
        let _ = engine.topk(&items(&[1, 2]), 0);
    }
}
