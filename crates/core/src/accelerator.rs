//! The top-level PointAcc model: compiles a network trace (fusion groups,
//! cache block sizes) and replays it through the MPU / MMU / MXU models,
//! producing a [`RunReport`].

use pointacc_nn::{ComputeKind, LayerTrace, NetworkTrace};
use pointacc_sim::{Cycles, DramChannel, EnergyTable, PicoJoules, SramSpec};

use crate::mmu::{
    dense_layer_traffic, fused_activation_bytes, plan_fusion, sparse_layer_traffic, CacheConfig,
    Flow, FusionPlan, SparseAccessPlan,
};
use crate::mpu::Mpu;
use crate::mxu::Mxu;
use crate::perf::{LayerPerf, RunReport};
use crate::PointAccConfig;

/// Input-cache policy for sparse layers.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CachePolicy {
    /// No cache: pure streaming Fetch-on-Demand (ablation).
    Off,
    /// Fixed block size in points.
    Fixed(usize),
    /// Per-layer block-size search on a sampled access stream (the
    /// compiler's behaviour, paper §4.2.3).
    Search,
}

/// Execution options (ablation switches).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RunOptions {
    /// Computation flow for sparse layers.
    pub gather_scatter_flow: bool,
    /// Input-cache policy.
    pub cache: CachePolicy,
    /// Temporal layer fusion of dense chains.
    pub fusion: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { gather_scatter_flow: false, cache: CachePolicy::Search, fusion: true }
    }
}

/// Block sizes the compiler considers (paper Fig. 18 sweeps 1–128).
const BLOCK_CANDIDATES: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Accesses sampled per candidate during block-size search.
const SEARCH_SAMPLE: u64 = 50_000;

/// The accelerator model.
///
/// # Examples
///
/// ```
/// use pointacc::{Accelerator, PointAccConfig};
/// use pointacc_nn::{zoo, ExecMode, Executor};
/// use pointacc_geom::{Point3, PointSet};
///
/// let pts: PointSet = (0..256)
///     .map(|i| Point3::new((i as f32).sin(), (i as f32).cos(), 0.0))
///     .collect();
/// let out = Executor::new(ExecMode::TraceOnly, 0).run(&zoo::pointnet(), &pts);
/// let report = Accelerator::new(PointAccConfig::edge()).run(&out.trace);
/// assert!(report.latency_ms() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct Accelerator {
    cfg: PointAccConfig,
    mpu: Mpu,
    mxu: Mxu,
    energy: EnergyTable,
}

impl Accelerator {
    /// Builds an accelerator from a configuration.
    pub fn new(cfg: PointAccConfig) -> Self {
        let mpu = Mpu::new(cfg.merger_width);
        let mxu = Mxu::new(cfg.pe_rows, cfg.pe_cols);
        Accelerator { cfg, mpu, mxu, energy: EnergyTable::tsmc40() }
    }

    /// The configuration.
    pub fn config(&self) -> &PointAccConfig {
        &self.cfg
    }

    /// The mapping unit.
    pub fn mpu(&self) -> &Mpu {
        &self.mpu
    }

    /// The matrix unit.
    pub fn mxu(&self) -> &Mxu {
        &self.mxu
    }

    /// Runs a trace with default options.
    pub fn run(&self, trace: &NetworkTrace) -> RunReport {
        self.run_with(trace, RunOptions::default())
    }

    /// Runs a trace with explicit options (ablations).
    pub fn run_with(&self, trace: &NetworkTrace, opts: RunOptions) -> RunReport {
        let fusion = if opts.fusion {
            plan_fusion(
                &trace.layers,
                self.cfg.input_buf_bytes + self.cfg.output_buf_bytes,
                self.cfg.elem_bytes,
            )
        } else {
            FusionPlan::default()
        };
        let layers = trace
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| self.run_layer(i, l, trace, &fusion, opts))
            .collect();
        RunReport {
            config: self.cfg.name.clone(),
            network: trace.network.clone(),
            layers,
            freq_hz: self.cfg.freq_hz,
        }
    }

    fn run_layer(
        &self,
        index: usize,
        layer: &LayerTrace,
        trace: &NetworkTrace,
        fusion: &FusionPlan,
        opts: RunOptions,
    ) -> LayerPerf {
        let mpu_cycles = self.mapping_cycles(layer);
        let mxu_cycles = self.mxu.layer_cycles(layer);
        let (dram_bytes, cache_stats, cache_block, fused) =
            self.layer_dram(index, layer, trace, fusion, opts);

        let mut channel = DramChannel::new(self.cfg.dram);
        channel.read(dram_bytes);
        let dram_cycles = channel.transfer_cycles(self.cfg.freq_hz);
        let latency = mxu_cycles.max(dram_cycles) + mpu_cycles;

        // --- Energy ---
        let macs = layer.macs();
        // Comparator activity estimate: the MPU datapath is fully busy
        // during mapping cycles.
        let evals_per_cycle = (self.cfg.merger_width as u64 / 2)
            * (self.cfg.merger_width.trailing_zeros() as u64 + 2);
        let mut compute_energy =
            self.energy.macs(macs) + self.energy.compares(mpu_cycles.get() * evals_per_cycle);
        // Banked-access and control overhead beyond the raw CACTI
        // per-access figure (calibration constant).
        let mut sram_energy = self.sram_energy(layer, dram_bytes) * 3.0;
        let mut dram_energy =
            PicoJoules::new(dram_bytes as f64 * self.cfg.dram.energy_pj_per_byte());
        // Uncounted system power (clock tree, control, DRAM background)
        // accrues with latency and is distributed proportionally so the
        // component breakdown is preserved.
        let static_pj = latency.to_seconds(self.cfg.freq_hz) * self.cfg.system_power_w * 1e12;
        let dynamic = (compute_energy.get() + sram_energy.get() + dram_energy.get()).max(1e-12);
        let scale = 1.0 + static_pj / dynamic;
        compute_energy = compute_energy * scale;
        sram_energy = sram_energy * scale;
        dram_energy = dram_energy * scale;

        LayerPerf {
            name: layer.name.clone(),
            mpu_cycles,
            mxu_cycles,
            dram_cycles,
            latency,
            dram_bytes,
            macs,
            compute_energy,
            sram_energy,
            dram_energy,
            cache_miss_rate: cache_stats.map(|s| s.miss_rate()),
            cache_block_points: cache_block,
            fused,
        }
    }

    /// Mapping-operation cycles from the MPU's closed-form estimates
    /// (verified against the functional unit in `mpu::ops` tests).
    ///
    /// Each [`pointacc_nn::MappingOp`] descriptor recorded by the
    /// executor is costed
    /// through [`Mpu::op_cycles`] — the executed mapping work and the
    /// modeled cycles come from the same descriptors by construction.
    pub fn mapping_cycles(&self, layer: &LayerTrace) -> Cycles {
        Cycles::new(layer.mapping.iter().map(|m| self.mpu.op_cycles(m)).sum())
    }

    /// DRAM bytes of a layer under the chosen options, plus cache stats /
    /// chosen block size / fusion membership.
    fn layer_dram(
        &self,
        index: usize,
        layer: &LayerTrace,
        trace: &NetworkTrace,
        fusion: &FusionPlan,
        opts: RunOptions,
    ) -> (u64, Option<crate::mmu::CacheStats>, Option<usize>, bool) {
        // Fusion-group members (dense FCs, grouped shared-MLP layers and
        // inline pools) keep their activations on the MIR stack; only the
        // group head touches DRAM for activations.
        if let Some(group) = fusion.group_of(index) {
            let weights = layer.weight_bytes(self.cfg.elem_bytes);
            let act = if fusion.is_group_head(index) {
                let chain: Vec<LayerTrace> =
                    group.layers.iter().map(|&j| trace.layers[j].clone()).collect();
                fused_activation_bytes(&chain, self.cfg.elem_bytes)
            } else {
                0
            };
            return (weights + act, None, None, true);
        }
        match layer.compute {
            // Map-less "sparse" layers (e.g. the broadcast interpolation
            // after a global set abstraction) stream like dense layers.
            ComputeKind::SparseConv | ComputeKind::Grouped | ComputeKind::Interpolate
                if layer.maps.is_none() =>
            {
                let e = self.cfg.elem_bytes as u64;
                let bytes = layer.n_in as u64 * layer.in_ch as u64 * e
                    + layer.n_out as u64 * layer.out_ch as u64 * e;
                (bytes, None, None, false)
            }
            ComputeKind::SparseConv | ComputeKind::Grouped | ComputeKind::Interpolate => {
                let plan = self.access_plan(layer);
                if opts.gather_scatter_flow {
                    let (t, _) = sparse_layer_traffic(
                        Flow::GatherMatMulScatter,
                        layer,
                        plan,
                        self.cfg.elem_bytes,
                    );
                    return (t.total(), None, None, false);
                }
                let cache_cfg = match opts.cache {
                    CachePolicy::Off => None,
                    CachePolicy::Fixed(bp) => Some(self.cache_config(layer, bp)),
                    CachePolicy::Search => Some(self.search_block_size(layer, plan)),
                };
                let block = cache_cfg.map(|c| c.block_points);
                let (t, stats) = sparse_layer_traffic(
                    Flow::FetchOnDemand { cache: cache_cfg },
                    layer,
                    plan,
                    self.cfg.elem_bytes,
                );
                (t.total(), stats, block, false)
            }
            ComputeKind::Dense => {
                let t = dense_layer_traffic(layer, self.cfg.elem_bytes);
                (t.total(), None, None, false)
            }
            // Pooling reduces in the output datapath; its inputs are the
            // previous layer's outputs, already on chip (output
            // stationary).
            ComputeKind::Pool => (0, None, None, false),
        }
    }

    fn access_plan(&self, layer: &LayerTrace) -> SparseAccessPlan {
        let oc_rows = layer.out_ch.max(1) * self.cfg.elem_bytes;
        SparseAccessPlan {
            ic_tiles: layer.in_ch.div_ceil(self.cfg.pe_rows).max(1),
            oc_tiles: layer.out_ch.div_ceil(self.cfg.pe_cols).max(1),
            out_tile_points: (self.cfg.output_buf_bytes / oc_rows).max(1),
        }
    }

    fn cache_config(&self, layer: &LayerTrace, block_points: usize) -> CacheConfig {
        let ic_tile = layer.in_ch.min(self.cfg.pe_rows).max(1);
        CacheConfig {
            capacity_bytes: self.cfg.input_buf_bytes,
            block_points: block_points.max(1),
            row_bytes: ic_tile * self.cfg.elem_bytes,
        }
    }

    /// Compiler block-size search: simulate a sample of the access stream
    /// per candidate and keep the one moving the fewest DRAM bytes.
    fn search_block_size(&self, layer: &LayerTrace, plan: SparseAccessPlan) -> CacheConfig {
        let maps = match &layer.maps {
            Some(m) if !m.is_empty() => m,
            _ => return self.cache_config(layer, 32),
        };
        let mut best = self.cache_config(layer, BLOCK_CANDIDATES[0]);
        let mut best_bytes = u64::MAX;
        for &bp in &BLOCK_CANDIDATES {
            let cfg = self.cache_config(layer, bp);
            let stats = crate::mmu::simulate_sparse_accesses(cfg, maps, plan, Some(SEARCH_SAMPLE));
            // Normalize per access so truncated samples compare fairly.
            let bytes = stats.dram_bytes * 1_000 / stats.accesses.max(1);
            if bytes < best_bytes {
                best_bytes = bytes;
                best = cfg;
            }
        }
        best
    }

    /// SRAM energy of one layer (input, weight and output buffer
    /// activity).
    fn sram_energy(&self, layer: &LayerTrace, dram_bytes: u64) -> PicoJoules {
        let e = self.cfg.elem_bytes as u64;
        let maps = layer.maps.as_ref().map_or(layer.n_out as u64, |m| m.len() as u64);
        let word = 16usize;
        let input = SramSpec::new(self.cfg.input_buf_bytes, word);
        let output = SramSpec::new(self.cfg.output_buf_bytes, word);
        let weight = SramSpec::new(self.cfg.weight_buf_bytes, word);
        let input_reads = maps * layer.in_ch as u64 * e / word as u64;
        let input_writes = dram_bytes / word as u64;
        let out_words = maps * layer.out_ch as u64 * e / word as u64;
        let weight_words = layer.weight_bytes(self.cfg.elem_bytes) / word as u64;
        input.read_energy() * input_reads as f64
            + input.write_energy() * input_writes as f64
            + output.write_energy() * out_words as f64
            + output.read_energy() * out_words as f64
            + weight.read_energy() * weight_words as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pointacc_geom::{Point3, PointSet};
    use pointacc_nn::{zoo, ExecMode, Executor};

    fn trace(n: usize) -> NetworkTrace {
        let pts: PointSet = (0..n)
            .map(|i| {
                let t = i as f32;
                Point3::new((t * 0.3).sin() * 3.0, (t * 0.7).cos() * 3.0, (t * 0.11).sin())
            })
            .collect();
        Executor::new(ExecMode::TraceOnly, 1).run(&zoo::mini_minkunet(), &pts).trace
    }

    #[test]
    fn report_has_one_record_per_layer() {
        let t = trace(400);
        let report = Accelerator::new(PointAccConfig::edge()).run(&t);
        assert_eq!(report.layers.len(), t.layers.len());
        assert!(report.latency_ms() > 0.0);
        assert!(report.energy().get() > 0.0);
    }

    #[test]
    fn full_config_is_faster_than_edge() {
        let t = trace(600);
        let full = Accelerator::new(PointAccConfig::full()).run(&t);
        let edge = Accelerator::new(PointAccConfig::edge()).run(&t);
        assert!(
            full.latency_ms() < edge.latency_ms(),
            "full {} ms should beat edge {} ms",
            full.latency_ms(),
            edge.latency_ms()
        );
    }

    #[test]
    fn gather_scatter_ablation_moves_more_dram() {
        let t = trace(500);
        let acc = Accelerator::new(PointAccConfig::edge());
        let fod = acc.run(&t);
        let gms =
            acc.run_with(&t, RunOptions { gather_scatter_flow: true, ..RunOptions::default() });
        assert!(
            gms.dram_bytes() > 2 * fod.dram_bytes(),
            "GMS {} should far exceed FoD {}",
            gms.dram_bytes(),
            fod.dram_bytes()
        );
    }

    #[test]
    fn cache_ablation_increases_traffic() {
        let t = trace(500);
        let acc = Accelerator::new(PointAccConfig::edge());
        let cached = acc.run(&t);
        let uncached =
            acc.run_with(&t, RunOptions { cache: CachePolicy::Off, ..RunOptions::default() });
        assert!(uncached.dram_bytes() > cached.dram_bytes());
    }

    #[test]
    fn fusion_ablation_increases_dense_traffic() {
        let pts: PointSet =
            (0..512).map(|i| Point3::new((i as f32).sin(), (i as f32).cos(), 0.0)).collect();
        let t = Executor::new(ExecMode::TraceOnly, 1).run(&zoo::pointnet(), &pts).trace;
        let acc = Accelerator::new(PointAccConfig::edge());
        let fused = acc.run(&t);
        let unfused = acc.run_with(&t, RunOptions { fusion: false, ..RunOptions::default() });
        assert!(
            unfused.dram_bytes() > fused.dram_bytes(),
            "unfused {} should exceed fused {}",
            unfused.dram_bytes(),
            fused.dram_bytes()
        );
        assert!(fused.layers.iter().any(|l| l.fused));
    }

    #[test]
    fn breakdown_fractions_are_sane() {
        let t = trace(400);
        let report = Accelerator::new(PointAccConfig::full()).run(&t);
        let (m, x, d) = report.latency_breakdown();
        assert!(m >= 0.0 && x > 0.0 && d >= 0.0);
        assert!((m + x + d - 1.0).abs() < 1e-9);
    }
}
