//! PointAcc: a functional + cycle-approximate model of the point cloud
//! accelerator from "PointAcc: Efficient Point Cloud Accelerator"
//! (MICRO 2021).
//!
//! Architecture (paper Fig. 7):
//!
//! - [`mpu`] — the **Mapping Unit**: every mapping operation (farthest
//!   point sampling, kNN / ball query, kernel mapping, coordinate
//!   quantization) unified onto a ranking-based sorting-network kernel
//!   with streaming support for arbitrary-length point clouds.
//! - [`mmu`] — the **Memory Management Unit**: explicit decoupled data
//!   orchestration over MIR-managed tiles; a configurable-block input
//!   cache for Fetch-on-Demand sparse computation; temporal layer fusion
//!   of dense FC chains.
//! - [`mxu`] — the **Matrix Unit**: a weight-stationary systolic array
//!   parallelizing input × output channels (no scatter crossbar).
//!
//! [`Accelerator`] compiles a [`pointacc_nn::NetworkTrace`] (fusion
//! groups, per-layer cache block sizes) and replays it, producing a
//! [`RunReport`] with the latency / energy / DRAM breakdowns the paper's
//! evaluation reports.
//!
//! # Quick start
//!
//! ```
//! use pointacc::{Accelerator, PointAccConfig};
//! use pointacc_nn::{zoo, ExecMode, Executor};
//! use pointacc_geom::{Point3, PointSet};
//!
//! let pts: PointSet = (0..256)
//!     .map(|i| Point3::new((i as f32).sin(), (i as f32).cos(), 0.1))
//!     .collect();
//! let trace = Executor::new(ExecMode::TraceOnly, 0)
//!     .run(&zoo::pointnet_pp_classification(), &pts)
//!     .trace;
//! let report = Accelerator::new(PointAccConfig::full()).run(&trace);
//! println!("{:.3} ms, {:.3} mJ", report.latency_ms(), report.energy().to_millijoules());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod accelerator;
mod config;
pub mod engine;
pub mod mmu;
pub mod mpu;
mod mxu;
mod perf;
pub mod summary;

pub use accelerator::{Accelerator, CachePolicy, RunOptions};
pub use config::PointAccConfig;
pub use engine::{Engine, EngineReport};
pub use mpu::Mpu;
pub use mxu::Mxu;
pub use perf::{LayerPerf, RunReport, Seconds};
pub use summary::Summary;
