//! Statistical aggregation of repeated measurements.
//!
//! The evaluation harness runs every (engine, benchmark) cell across a
//! seed axis; this module turns those per-seed samples into the numbers
//! figures should report — mean, sample standard deviation and a 95 %
//! confidence interval — instead of a single arbitrary seed. The CI uses
//! the Student's-t quantile for small sample counts (the harness
//! typically runs 3–10 seeds) and falls back to the normal 1.96 beyond
//! 30 degrees of freedom.

use std::fmt;

/// Two-sided 97.5 % Student's-t quantiles for 1..=30 degrees of freedom.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Mean / spread summary of repeated samples of one quantity.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Summary {
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected); 0 for one sample.
    pub std_dev: f64,
    /// Half-width of the 95 % confidence interval of the mean
    /// (`mean ± ci95`); 0 for one sample.
    pub ci95: f64,
    /// Number of samples aggregated.
    pub n: usize,
}

impl Summary {
    /// Summarizes `samples` into mean, standard deviation and 95 % CI.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice — a figure reporting statistics over
    /// zero runs is a caller bug.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "summary of zero samples");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Summary { mean, std_dev: 0.0, ci95: 0.0, n };
        }
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let std_dev = var.sqrt();
        let t = T_975.get(n - 2).copied().unwrap_or(1.96);
        Summary { mean, std_dev, ci95: t * std_dev / (n as f64).sqrt(), n }
    }

    /// Relative CI half-width (`ci95 / mean`); `NaN` when the mean is 0.
    pub fn rel_ci95(&self) -> f64 {
        self.ci95 / self.mean
    }
}

impl fmt::Display for Summary {
    /// Formats as `mean±ci95`, inheriting the caller's precision
    /// (e.g. `{:.1}` → `3.7±0.2`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prec = f.precision().unwrap_or(2);
        write!(f, "{:.p$}±{:.p$}", self.mean, self.ci95, p = prec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample_has_zero_spread() {
        let s = Summary::from_samples(&[3.5]);
        assert_eq!(s, Summary { mean: 3.5, std_dev: 0.0, ci95: 0.0, n: 1 });
    }

    #[test]
    fn known_three_sample_distribution() {
        // Samples 2, 4, 6: mean 4, sample std 2, t(0.975, df=2)=4.303.
        let s = Summary::from_samples(&[2.0, 4.0, 6.0]);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert!((s.ci95 - 4.303 * 2.0 / 3f64.sqrt()).abs() < 1e-9);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn large_samples_use_normal_quantile() {
        let samples: Vec<f64> = (0..100).map(|i| f64::from(i % 10)).collect();
        let s = Summary::from_samples(&samples);
        assert!((s.ci95 - 1.96 * s.std_dev / 10.0).abs() < 1e-12);
    }

    #[test]
    fn identical_samples_have_zero_ci() {
        let s = Summary::from_samples(&[7.0; 5]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.ci95, 0.0);
        assert!(s.rel_ci95().abs() < 1e-12);
    }

    #[test]
    fn display_carries_precision() {
        let s = Summary::from_samples(&[2.0, 4.0, 6.0]);
        assert_eq!(format!("{s:.1}"), "4.0±5.0");
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_samples_panic() {
        let _ = Summary::from_samples(&[]);
    }
}
