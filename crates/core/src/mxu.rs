//! The Matrix Unit (MXU): a weight-stationary systolic array that
//! parallelizes input × output channels (paper §4.3), so one output
//! point's features are produced per cycle and no scatter crossbar is
//! needed.

use pointacc_geom::MapTable;
use pointacc_nn::{ComputeKind, LayerTrace};
use pointacc_sim::{Cycles, SystolicArray};

/// The matrix unit.
#[derive(Copy, Clone, Debug)]
pub struct Mxu {
    array: SystolicArray,
}

impl Mxu {
    /// Creates an MXU with a `rows × cols` PE array.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        Mxu { array: SystolicArray::new(rows, cols) }
    }

    /// The underlying array.
    pub fn array(&self) -> SystolicArray {
        self.array
    }

    /// Cycles for a sparse convolution: one weight-stationary matmul per
    /// kernel offset, `m = |maps_w|` activations streamed through each.
    pub fn sparse_conv_cycles(&self, maps: &MapTable, in_ch: usize, out_ch: usize) -> Cycles {
        (0..maps.n_weights())
            .map(|w| self.array.matmul_cycles(maps.group(w).len(), in_ch, out_ch))
            .sum()
    }

    /// Cycles for a dense / grouped matmul over `rows` rows.
    pub fn dense_cycles(&self, rows: usize, in_ch: usize, out_ch: usize) -> Cycles {
        self.array.matmul_cycles(rows, in_ch, out_ch)
    }

    /// Cycles for map-guided interpolation (`maps × out_ch` MACs on the
    /// array's columns; rows are idle — interpolation has no reduction
    /// dimension).
    pub fn interpolate_cycles(&self, n_maps: usize, out_ch: usize) -> Cycles {
        self.array.matmul_cycles(n_maps, 1, out_ch)
    }

    /// Cycles for one whole traced layer.
    pub fn layer_cycles(&self, layer: &LayerTrace) -> Cycles {
        match layer.compute {
            ComputeKind::SparseConv => {
                let maps = layer.maps.as_ref().expect("sparse layer requires maps");
                self.sparse_conv_cycles(maps, layer.in_ch, layer.out_ch)
            }
            ComputeKind::Grouped | ComputeKind::Dense => {
                self.dense_cycles(layer.n_out, layer.in_ch, layer.out_ch)
            }
            ComputeKind::Interpolate => {
                let n = layer.maps.as_ref().map_or(layer.n_out, MapTable::len);
                self.interpolate_cycles(n, layer.out_ch)
            }
            // Pooling is folded into the output datapath (one pass over
            // the rows at one row/cycle).
            ComputeKind::Pool => Cycles::new(layer.n_in as u64),
        }
    }

    /// Utilization of one layer: useful MACs over peak for the cycles
    /// spent.
    pub fn layer_utilization(&self, layer: &LayerTrace) -> f64 {
        let cycles = self.layer_cycles(layer).get();
        if cycles == 0 {
            return 0.0;
        }
        layer.macs() as f64 / (cycles as f64 * self.array.peak_macs_per_cycle() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pointacc_geom::MapEntry;
    use pointacc_nn::Aggregation;

    fn sparse_layer(n: usize, k: usize, c: usize) -> LayerTrace {
        let mut entries = Vec::new();
        for q in 0..n {
            for w in 0..k {
                entries.push(MapEntry::new(((q + w) % n) as u32, q as u32, w as u16));
            }
        }
        LayerTrace {
            name: "conv".into(),
            compute: ComputeKind::SparseConv,
            n_in: n,
            n_out: n,
            in_ch: c,
            out_ch: c,
            maps: Some(MapTable::from_entries(entries, k)),
            mapping: vec![],
            aggregation: Aggregation::Sum,
            pool_group: None,
            fusable: false,
        }
    }

    #[test]
    fn sparse_cycles_sum_over_offsets() {
        let mxu = Mxu::new(16, 16);
        let l = sparse_layer(256, 4, 16);
        let per_offset = mxu.dense_cycles(256, 16, 16);
        assert_eq!(mxu.layer_cycles(&l), per_offset * 4);
    }

    #[test]
    fn utilization_high_for_large_layers() {
        let mxu = Mxu::new(16, 16);
        let l = sparse_layer(10_000, 8, 64);
        assert!(mxu.layer_utilization(&l) > 0.8);
    }

    #[test]
    fn pool_layer_is_cheap() {
        let mut l = sparse_layer(100, 1, 8);
        l.compute = ComputeKind::Pool;
        let mxu = Mxu::new(16, 16);
        assert_eq!(mxu.layer_cycles(&l), Cycles::new(100));
    }
}
