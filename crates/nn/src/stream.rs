//! Cross-frame trace reuse for streaming point-cloud serving.
//!
//! A LiDAR stream's consecutive sweeps overlap heavily (the paper's
//! SemanticKITTI workload is a sequence, not independent clouds), yet
//! mapping-op compilation — the dominant trace cost — recomputes from
//! scratch per request. [`StreamingTracer`] wraps an [`Executor`] with
//! two delta-aware fast paths checked per frame, cheapest first:
//!
//! 1. **Exact reuse** — the frame's points are bit-identical to the
//!    previous frame's (hash-gated, then verified by full comparison, so
//!    a hash collision can never serve a wrong trace). Every executor
//!    product is a pure function of `(network, seed, points)`, so the
//!    cached output is returned as-is.
//! 2. **Voxel reuse** — for voxel-domain networks, the frame voxelizes
//!    to the same lattice cloud even though raw points jittered or
//!    churned within voxels. The executor derives both the trace and
//!    the input features from the voxel cloud alone (voxel centers), so
//!    the cached output is again exact, not approximate — equivalence
//!    is pinned by fingerprint-equality tests in `tests/streaming.rs`.
//!
//! Anything else compiles normally and replaces the cached frame.
//! Reuse is reported through [`StreamStats`], mirroring the
//! `CacheStats::accounting` style the warm-start CI check greps.

use pointacc_geom::{PointSet, VoxelCloud};

use crate::{Domain, ExecError, ExecMode, ExecOutput, Executor, Network};

/// How a frame's request was satisfied.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ReuseOutcome {
    /// Points bit-identical to the previous frame: cached output reused.
    ExactReuse,
    /// Same voxel lattice as the previous frame (voxel-domain network):
    /// cached output reused.
    VoxelReuse,
    /// No reusable previous frame: compiled by the executor.
    Compiled,
}

/// Per-stream reuse accounting, in the same spirit (and greppable line
/// format) as the trace cache's `CacheStats`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Frames served (successful runs only).
    pub frames: u64,
    /// Frames served from the exact-match fast path.
    pub exact_reuses: u64,
    /// Frames served from the voxel-equality fast path.
    pub voxel_reuses: u64,
    /// Frames that compiled a fresh trace.
    pub compiles: u64,
}

impl StreamStats {
    /// One-line accounting summary; `compiles=…` is the token CI greps
    /// to enforce that steady-state identical-geometry frames compile
    /// zero new traces.
    pub fn accounting(&self) -> String {
        format!(
            "frames={} exact_reuses={} voxel_reuses={} compiles={}",
            self.frames, self.exact_reuses, self.voxel_reuses, self.compiles
        )
    }

    fn record(&mut self, outcome: ReuseOutcome) {
        self.frames += 1;
        match outcome {
            ReuseOutcome::ExactReuse => self.exact_reuses += 1,
            ReuseOutcome::VoxelReuse => self.voxel_reuses += 1,
            ReuseOutcome::Compiled => self.compiles += 1,
        }
    }
}

/// FNV-1a over the point coordinates' bit patterns: a cheap gate before
/// the exact comparison (never trusted on its own).
fn point_hash(points: &PointSet) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u32| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for p in points.points() {
        eat(p.x.to_bits());
        eat(p.y.to_bits());
        eat(p.z.to_bits());
    }
    h
}

struct CachedFrame {
    network: String,
    point_hash: u64,
    points: PointSet,
    /// The frame's voxelization, kept only for voxel-domain networks.
    voxels: Option<VoxelCloud>,
    output: ExecOutput,
}

/// An [`Executor`] wrapper that serves a frame stream, reusing the
/// previous frame's compiled output whenever the fast-path checks prove
/// it is bit-identical to what a fresh compile would produce.
///
/// # Examples
///
/// ```
/// use pointacc_nn::stream::{ReuseOutcome, StreamingTracer};
/// use pointacc_nn::{zoo, ExecMode};
/// use pointacc_geom::{Point3, PointSet};
///
/// let net = zoo::minknet_outdoor();
/// let pts: PointSet = (0..256)
///     .map(|i| Point3::new(i as f32 * 0.3, (i % 16) as f32 * 0.4, 0.0))
///     .collect();
/// let mut tracer = StreamingTracer::new(ExecMode::TraceOnly, 42);
/// let (_, first) = tracer.run_frame(&net, &pts).unwrap();
/// let (_, second) = tracer.run_frame(&net, &pts).unwrap();
/// assert_eq!(first, ReuseOutcome::Compiled);
/// assert_eq!(second, ReuseOutcome::ExactReuse);
/// assert_eq!(tracer.stats().compiles, 1);
/// ```
pub struct StreamingTracer {
    exec: Executor,
    last: Option<CachedFrame>,
    stats: StreamStats,
}

impl StreamingTracer {
    /// Creates a streaming tracer over [`Executor::new`] with the given
    /// fidelity and weight seed.
    pub fn new(mode: ExecMode, seed: u64) -> Self {
        Self::over(Executor::new(mode, seed))
    }

    /// Wraps an explicitly configured executor (backend, exec options).
    pub fn over(exec: Executor) -> Self {
        StreamingTracer { exec, last: None, stats: StreamStats::default() }
    }

    /// Runs one frame, reusing the previous frame's output when one of
    /// the fast paths proves equivalence. Returns the output and how it
    /// was produced. A failed run neither counts a frame nor disturbs
    /// the cached one.
    pub fn run_frame(
        &mut self,
        net: &Network,
        points: &PointSet,
    ) -> Result<(ExecOutput, ReuseOutcome), ExecError> {
        let hash = point_hash(points);
        if let Some(last) = &self.last {
            if last.network == net.name()
                && last.point_hash == hash
                && last.points.points() == points.points()
            {
                self.stats.record(ReuseOutcome::ExactReuse);
                return Ok((last.output.clone(), ReuseOutcome::ExactReuse));
            }
        }
        // Voxel-domain networks depend on the input only through its
        // voxelization (the executor derives input features from voxel
        // centers), so lattice equality implies output equality.
        let voxels = match net.domain() {
            Domain::VoxelBased => match net.voxel_size() {
                Some(v) if v.is_finite() && v > 0.0 && !points.is_empty() => {
                    Some(points.voxelize(v).0)
                }
                _ => None,
            },
            Domain::PointBased => None,
        };
        if let (Some(vc), Some(last)) = (&voxels, &self.last) {
            if last.network == net.name()
                && last.voxels.as_ref().is_some_and(|lv| lv.coords() == vc.coords())
            {
                let output = last.output.clone();
                self.last = Some(CachedFrame {
                    network: net.name().to_string(),
                    point_hash: hash,
                    points: points.clone(),
                    voxels,
                    output: output.clone(),
                });
                self.stats.record(ReuseOutcome::VoxelReuse);
                return Ok((output, ReuseOutcome::VoxelReuse));
            }
        }
        let output = self.exec.try_run(net, points)?;
        self.last = Some(CachedFrame {
            network: net.name().to_string(),
            point_hash: hash,
            points: points.clone(),
            voxels,
            output: output.clone(),
        });
        self.stats.record(ReuseOutcome::Compiled);
        Ok((output, ReuseOutcome::Compiled))
    }

    /// Cumulative reuse accounting.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Drops the cached frame (the next run compiles), keeping stats.
    pub fn invalidate(&mut self) {
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use pointacc_geom::Point3;

    fn cloud(n: usize, seed: u64) -> PointSet {
        let mut x = seed | 1;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 1000) as f32 / 50.0 - 10.0
        };
        (0..n).map(|_| Point3::new(step(), step(), step())).collect()
    }

    #[test]
    fn exact_reuse_matches_fresh_compile() {
        let net = zoo::minknet_outdoor();
        let pts = cloud(600, 3);
        let mut tracer = StreamingTracer::new(ExecMode::TraceOnly, 42);
        let (first, o1) = tracer.run_frame(&net, &pts).unwrap();
        let (second, o2) = tracer.run_frame(&net, &pts).unwrap();
        assert_eq!(o1, ReuseOutcome::Compiled);
        assert_eq!(o2, ReuseOutcome::ExactReuse);
        assert_eq!(first.trace.fingerprint(), second.trace.fingerprint());
        assert_eq!(
            tracer.stats().accounting(),
            "frames=2 exact_reuses=1 voxel_reuses=0 compiles=1"
        );
    }

    #[test]
    fn voxel_reuse_fires_on_jittered_points() {
        let net = zoo::minknet_outdoor();
        let v = net.voxel_size().unwrap();
        // Snap points to voxel centers so a sub-half-voxel jitter
        // provably stays inside the same lattice cell.
        let center = |x: f32| ((x / v).floor() + 0.5) * v;
        let pts: PointSet = cloud(600, 5)
            .points()
            .iter()
            .map(|p| Point3::new(center(p.x), center(p.y), center(p.z)))
            .collect();
        let jittered: PointSet = pts
            .points()
            .iter()
            .map(|p| Point3::new(p.x + 0.2 * v, p.y - 0.2 * v, p.z + 0.1 * v))
            .collect();
        assert_eq!(pts.voxelize(v).0.coords(), jittered.voxelize(v).0.coords());
        let mut tracer = StreamingTracer::new(ExecMode::TraceOnly, 42);
        let (first, _) = tracer.run_frame(&net, &pts).unwrap();
        let (second, outcome) = tracer.run_frame(&net, &jittered).unwrap();
        assert_eq!(outcome, ReuseOutcome::VoxelReuse);
        // Bit-identical to what a fresh compile would have produced.
        let fresh = Executor::new(ExecMode::TraceOnly, 42).try_run(&net, &jittered).unwrap();
        assert_eq!(second.trace.fingerprint(), fresh.trace.fingerprint());
        assert_eq!(first.trace.fingerprint(), second.trace.fingerprint());
    }

    #[test]
    fn changed_geometry_recompiles() {
        let net = zoo::minknet_outdoor();
        let mut tracer = StreamingTracer::new(ExecMode::TraceOnly, 42);
        tracer.run_frame(&net, &cloud(500, 7)).unwrap();
        let (_, outcome) = tracer.run_frame(&net, &cloud(500, 9)).unwrap();
        assert_eq!(outcome, ReuseOutcome::Compiled);
        assert_eq!(tracer.stats().compiles, 2);
    }

    #[test]
    fn point_domain_networks_only_reuse_exact_matches() {
        let net = zoo::pointnet_pp_segmentation();
        let pts = cloud(400, 11);
        let mut tracer = StreamingTracer::new(ExecMode::TraceOnly, 42);
        tracer.run_frame(&net, &pts).unwrap();
        let nudged: PointSet =
            pts.points().iter().map(|p| Point3::new(p.x + 1e-6, p.y, p.z)).collect();
        let (_, outcome) = tracer.run_frame(&net, &nudged).unwrap();
        assert_eq!(outcome, ReuseOutcome::Compiled, "no voxel lattice to prove equivalence");
    }

    #[test]
    fn network_switch_invalidates_reuse() {
        let pts = cloud(500, 13);
        let mut tracer = StreamingTracer::new(ExecMode::TraceOnly, 42);
        tracer.run_frame(&zoo::minknet_outdoor(), &pts).unwrap();
        let (_, outcome) = tracer.run_frame(&zoo::minknet_indoor(), &pts).unwrap();
        assert_eq!(outcome, ReuseOutcome::Compiled);
    }

    #[test]
    fn failed_runs_leave_cache_and_stats_untouched() {
        let net = zoo::minknet_outdoor();
        let pts = cloud(300, 17);
        let mut tracer = StreamingTracer::new(ExecMode::TraceOnly, 42);
        tracer.run_frame(&net, &pts).unwrap();
        assert!(tracer.run_frame(&net, &PointSet::new()).is_err());
        assert_eq!(tracer.stats().frames, 1);
        let (_, outcome) = tracer.run_frame(&net, &pts).unwrap();
        assert_eq!(outcome, ReuseOutcome::ExactReuse, "cached frame survived the failed run");
    }
}
