//! Network operator IR.
//!
//! A [`Network`](crate::Network) is an ordered list of [`Op`]s executed
//! over a point cloud. The IR covers both convolution families of paper
//! Table 1: SparseConv-based ops (voxel domain, per-offset weights,
//! accumulation) and PointNet++-based ops (continuous domain, shared
//! weights, max-pool aggregation), plus the dense glue (point-wise MLPs,
//! heads).

/// One operator in a network description.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Sparse 3-D convolution (MinkowskiNet-style). `stride == 1` keeps
    /// the coordinate set; `stride == 2` constructs the output cloud by
    /// coordinate quantization and pushes the pre-downsample state onto
    /// the skip stack (U-Net encoder behaviour).
    SparseConv {
        /// Output channels.
        out_ch: usize,
        /// Cubic kernel size (2 or 3 in the evaluated networks).
        kernel_size: usize,
        /// Spatial stride (1 or 2).
        stride: usize,
    },
    /// Transposed sparse convolution (stride-2 upsample). Pops the skip
    /// stack to recover the finer coordinate set and concatenates the
    /// skip features after the convolution (U-Net decoder behaviour).
    SparseConvTr {
        /// Output channels (before skip concatenation).
        out_ch: usize,
        /// Cubic kernel size.
        kernel_size: usize,
    },
    /// Point-wise shared MLP: a chain of FC layers (with ReLU) applied to
    /// every point independently. These are the fusable dense layers the
    /// MMU's temporal layer fusion targets.
    Mlp {
        /// Output dimension of each FC in the chain.
        dims: Vec<usize>,
    },
    /// PointNet++ set-abstraction layer: farthest point sampling to
    /// `n_out` centroids, ball query grouping, shared MLP on grouped
    /// features, max-pool over each neighborhood. Pushes the
    /// pre-abstraction state onto the skip stack.
    SetAbstraction {
        /// Number of sampled centroids.
        n_out: usize,
        /// Ball query radius (same units as the point coordinates).
        radius: f32,
        /// Neighbors gathered per centroid.
        k: usize,
        /// Shared-MLP output dimensions.
        dims: Vec<usize>,
    },
    /// Group-all set abstraction: one neighborhood containing every
    /// point, producing a single global feature vector. Pushes skip.
    GlobalSetAbstraction {
        /// Shared-MLP output dimensions.
        dims: Vec<usize>,
    },
    /// PointNet++ feature propagation: 3-NN inverse-distance
    /// interpolation back to the finer cloud popped from the skip stack,
    /// skip-feature concatenation, then a point-wise MLP.
    FeaturePropagation {
        /// MLP output dimensions.
        dims: Vec<usize>,
    },
    /// DGCNN edge convolution: k-NN graph (in feature space), edge
    /// features `concat(f_i, f_j − f_i)`, shared MLP, max over neighbors.
    EdgeConv {
        /// Neighbors per point.
        k: usize,
        /// Shared-MLP output dimensions.
        dims: Vec<usize>,
    },
    /// Global max pool over all points, producing one feature vector.
    GlobalMaxPool,
    /// Classifier head: FC chain on the single global vector (ReLU
    /// between layers, none after the last).
    Head {
        /// FC output dimensions; the last entry is the class count.
        dims: Vec<usize>,
    },
}

impl Op {
    /// Short operator mnemonic for trace names.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::SparseConv { stride: 1, .. } => "conv",
            Op::SparseConv { .. } => "conv_down",
            Op::SparseConvTr { .. } => "conv_up",
            Op::Mlp { .. } => "mlp",
            Op::SetAbstraction { .. } => "sa",
            Op::GlobalSetAbstraction { .. } => "sa_global",
            Op::FeaturePropagation { .. } => "fp",
            Op::EdgeConv { .. } => "edgeconv",
            Op::GlobalMaxPool => "maxpool",
            Op::Head { .. } => "head",
        }
    }

    /// Whether this op is SparseConv-family (voxel domain).
    pub fn is_sparse_conv(&self) -> bool {
        matches!(self, Op::SparseConv { .. } | Op::SparseConvTr { .. })
    }
}

/// Which convolution family dominates a network (paper Table 1's two
/// rows); decides the input representation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Domain {
    /// PointNet++-based (continuous points, FPS / ball query / kNN).
    PointBased,
    /// SparseConv-based (voxelized, quantization / kernel mapping).
    VoxelBased,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_distinguish_strides() {
        let c1 = Op::SparseConv { out_ch: 32, kernel_size: 3, stride: 1 };
        let c2 = Op::SparseConv { out_ch: 32, kernel_size: 2, stride: 2 };
        assert_eq!(c1.mnemonic(), "conv");
        assert_eq!(c2.mnemonic(), "conv_down");
        assert!(c1.is_sparse_conv());
        assert!(!Op::GlobalMaxPool.is_sparse_conv());
    }
}
