//! Deterministic pseudo-random weight generation.
//!
//! No training happens in this reproduction, so weights only need to be
//! deterministic (same network → same outputs everywhere) and numerically
//! tame (Kaiming-style scaling so activations neither vanish nor explode
//! through deep stacks).

use pointacc_geom::FeatureMatrix;

/// Stateless deterministic weight generator. Weight `(layer, r, c)` is a
/// pure function of `(network_seed, layer_index, r, c)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WeightGen {
    seed: u64,
}

impl WeightGen {
    /// Creates a generator for one network instance.
    pub fn new(seed: u64) -> Self {
        WeightGen { seed }
    }

    /// The `in_ch × out_ch` weight matrix of layer `layer_index` (and
    /// weight-offset `w` for sparse convolutions; pass 0 otherwise).
    /// Entries are uniform in `[-a, a]` with `a = sqrt(3 / in_ch)`
    /// (unit fan-in variance).
    pub fn matrix(
        &self,
        layer_index: usize,
        w: usize,
        in_ch: usize,
        out_ch: usize,
    ) -> FeatureMatrix {
        let a = (3.0 / in_ch as f32).sqrt();
        let base = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((layer_index as u64) << 32 | w as u64);
        FeatureMatrix::from_fn(in_ch, out_ch, |r, c| {
            let h = splitmix64(base ^ ((r as u64) << 20) ^ c as u64);
            // Map to [-a, a).
            let u = (h >> 11) as f32 / (1u64 << 53) as f32; // [0,1)
            (2.0 * u - 1.0) * a
        })
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_deterministic() {
        let g = WeightGen::new(1);
        assert_eq!(g.matrix(3, 1, 8, 4), g.matrix(3, 1, 8, 4));
        assert_ne!(g.matrix(3, 1, 8, 4), g.matrix(3, 2, 8, 4));
        assert_ne!(g.matrix(3, 1, 8, 4), WeightGen::new(2).matrix(3, 1, 8, 4));
    }

    #[test]
    fn weights_are_bounded() {
        let g = WeightGen::new(7);
        let m = g.matrix(0, 0, 64, 64);
        let a = (3.0f32 / 64.0).sqrt();
        for &v in m.data() {
            assert!(v.abs() <= a + 1e-6);
        }
        // Not all zero.
        assert!(m.data().iter().any(|&v| v.abs() > 1e-4));
    }
}
