//! The benchmark networks of paper Table 2, plus Mini-MinkowskiUNet
//! (Fig. 16) and 2-D CNN reference stats.
//!
//! Layer configurations follow the cited reference implementations
//! (PointNet/PointNet++ SSG-MSG, DGCNN, F-PointNet, MinkowskiUNet). Two
//! documented simplifications: residual blocks in MinkowskiUNet are
//! modeled as plain conv pairs (same MAC count), and F-PointNet++ is
//! modeled by its dominant component, the PointNet++ instance-segmentation
//! network. Ball-query radii are expressed in the meter scale of the
//! synthetic datasets.

use crate::{Domain, Network, Op};

/// PointNet (classification, ModelNet40).
pub fn pointnet() -> Network {
    Network::new("PointNet", Domain::PointBased, 3)
        .with_default_points(1024)
        .push(Op::Mlp { dims: vec![64, 64, 64, 128, 1024] })
        .push(Op::GlobalMaxPool)
        .push(Op::Head { dims: vec![512, 256, 40] })
}

/// PointNet++ SSG classification — the paper's `PointNet++(c)`.
pub fn pointnet_pp_classification() -> Network {
    Network::new("PointNet++(c)", Domain::PointBased, 3)
        .with_default_points(1024)
        .push(Op::SetAbstraction { n_out: 512, radius: 0.2, k: 32, dims: vec![64, 64, 128] })
        .push(Op::SetAbstraction { n_out: 128, radius: 0.4, k: 64, dims: vec![128, 128, 256] })
        .push(Op::GlobalSetAbstraction { dims: vec![256, 512, 1024] })
        .push(Op::Head { dims: vec![512, 256, 40] })
}

/// PointNet++ part segmentation on ShapeNet — the paper's
/// `PointNet++(ps)` (MSG modeled at SSG granularity).
pub fn pointnet_pp_part_seg() -> Network {
    Network::new("PointNet++(ps)", Domain::PointBased, 3)
        .with_default_points(2048)
        .push(Op::SetAbstraction { n_out: 512, radius: 0.2, k: 32, dims: vec![64, 64, 128] })
        .push(Op::SetAbstraction { n_out: 128, radius: 0.4, k: 64, dims: vec![128, 128, 256] })
        .push(Op::GlobalSetAbstraction { dims: vec![256, 512, 1024] })
        .push(Op::FeaturePropagation { dims: vec![256, 256] })
        .push(Op::FeaturePropagation { dims: vec![256, 128] })
        .push(Op::FeaturePropagation { dims: vec![128, 128, 50] })
}

/// DGCNN classification (dynamic k-NN graph in feature space).
pub fn dgcnn() -> Network {
    Network::new("DGCNN", Domain::PointBased, 3)
        .with_default_points(1024)
        .push(Op::EdgeConv { k: 20, dims: vec![64] })
        .push(Op::EdgeConv { k: 20, dims: vec![64] })
        .push(Op::EdgeConv { k: 20, dims: vec![128] })
        .push(Op::EdgeConv { k: 20, dims: vec![256] })
        .push(Op::Mlp { dims: vec![1024] })
        .push(Op::GlobalMaxPool)
        .push(Op::Head { dims: vec![512, 256, 40] })
}

/// F-PointNet++ (KITTI detection): the PointNet++ instance-segmentation
/// network that dominates the frustum pipeline. Radii in meters.
pub fn f_pointnet_pp() -> Network {
    Network::new("F-PointNet++", Domain::PointBased, 4)
        .with_default_points(1024)
        .push(Op::SetAbstraction { n_out: 128, radius: 0.8, k: 64, dims: vec![64, 64, 128] })
        .push(Op::SetAbstraction { n_out: 32, radius: 1.6, k: 64, dims: vec![128, 128, 256] })
        .push(Op::GlobalSetAbstraction { dims: vec![256, 512, 1024] })
        .push(Op::FeaturePropagation { dims: vec![128, 128] })
        .push(Op::FeaturePropagation { dims: vec![128, 128] })
        .push(Op::FeaturePropagation { dims: vec![128, 128, 2] })
}

/// PointNet++ SSG semantic segmentation on S3DIS — the paper's
/// `PointNet++(s)`. Radii in meters (whole-room inputs).
pub fn pointnet_pp_segmentation() -> Network {
    Network::new("PointNet++(s)", Domain::PointBased, 9)
        .with_default_points(4096)
        .push(Op::SetAbstraction { n_out: 1024, radius: 0.4, k: 32, dims: vec![32, 32, 64] })
        .push(Op::SetAbstraction { n_out: 256, radius: 0.8, k: 32, dims: vec![64, 64, 128] })
        .push(Op::SetAbstraction { n_out: 64, radius: 1.6, k: 32, dims: vec![128, 128, 256] })
        .push(Op::SetAbstraction { n_out: 16, radius: 3.2, k: 32, dims: vec![256, 256, 512] })
        .push(Op::FeaturePropagation { dims: vec![256, 256] })
        .push(Op::FeaturePropagation { dims: vec![256, 256] })
        .push(Op::FeaturePropagation { dims: vec![256, 128] })
        .push(Op::FeaturePropagation { dims: vec![128, 128, 13] })
}

/// MinkowskiUNet (SparseConv U-Net). `voxel_size` in meters, `classes`
/// output channels. Residual pairs modeled as two plain convs.
pub fn minkunet(name: &str, voxel_size: f32, classes: usize, default_points: usize) -> Network {
    let mut net = Network::new(name, Domain::VoxelBased, 4)
        .with_voxel_size(voxel_size)
        .with_default_points(default_points)
        // Stem.
        .push(Op::SparseConv { out_ch: 32, kernel_size: 3, stride: 1 })
        .push(Op::SparseConv { out_ch: 32, kernel_size: 3, stride: 1 });
    // Encoder: 4 stride-2 stages.
    for &ch in &[64usize, 128, 256, 256] {
        net = net
            .push(Op::SparseConv { out_ch: ch, kernel_size: 2, stride: 2 })
            .push(Op::SparseConv { out_ch: ch, kernel_size: 3, stride: 1 })
            .push(Op::SparseConv { out_ch: ch, kernel_size: 3, stride: 1 });
    }
    // Decoder: 4 transposed stages with skip concatenation.
    for &ch in &[256usize, 128, 96, 96] {
        net = net
            .push(Op::SparseConvTr { out_ch: ch, kernel_size: 2 })
            .push(Op::SparseConv { out_ch: ch, kernel_size: 3, stride: 1 })
            .push(Op::SparseConv { out_ch: ch, kernel_size: 3, stride: 1 });
    }
    net.push(Op::Mlp { dims: vec![classes] })
}

/// MinkowskiNet — the canonical MinkowskiUNet segmentation network on
/// ScanNet-scale indoor scans (20 classes), sized so `ExecMode::Full`
/// runs are tractable. This is the reference network of the executor's
/// functional-mode (gather–GEMM–scatter) coverage.
pub fn minkowski_net() -> Network {
    minkunet("MinkowskiNet", 0.05, 20, 40_000)
}

/// MinkowskiUNet on S3DIS — the paper's `MinkNet(i)` (indoor).
pub fn minknet_indoor() -> Network {
    minkunet("MinkNet(i)", 0.05, 13, 80_000)
}

/// MinkowskiUNet on SemanticKITTI — the paper's `MinkNet(o)` (outdoor).
pub fn minknet_outdoor() -> Network {
    minkunet("MinkNet(o)", 0.1, 19, 80_000)
}

/// Mini-MinkowskiUNet (paper Fig. 16): a shallower, narrower
/// MinkowskiUNet co-designed for PointAcc.Edge; runs S3DIS segmentation
/// with 9.1 % higher mIoU than PointNet++SSG at far lower latency.
pub fn mini_minkunet() -> Network {
    Network::new("Mini-MinkowskiUNet", Domain::VoxelBased, 4)
        .with_voxel_size(0.05)
        .with_default_points(20_000)
        .push(Op::SparseConv { out_ch: 16, kernel_size: 3, stride: 1 })
        .push(Op::SparseConv { out_ch: 16, kernel_size: 2, stride: 2 })
        .push(Op::SparseConv { out_ch: 32, kernel_size: 3, stride: 1 })
        .push(Op::SparseConv { out_ch: 32, kernel_size: 2, stride: 2 })
        .push(Op::SparseConv { out_ch: 64, kernel_size: 3, stride: 1 })
        .push(Op::SparseConvTr { out_ch: 32, kernel_size: 2 })
        .push(Op::SparseConv { out_ch: 32, kernel_size: 3, stride: 1 })
        .push(Op::SparseConvTr { out_ch: 16, kernel_size: 2 })
        .push(Op::SparseConv { out_ch: 16, kernel_size: 3, stride: 1 })
        .push(Op::Mlp { dims: vec![13] })
}

/// One row of paper Table 2: a network paired with its dataset.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Paper notation, e.g. `"PointNet++(c)"`.
    pub notation: &'static str,
    /// Application domain, e.g. `"Classification"`.
    pub application: &'static str,
    /// Dataset name (matches `pointacc_data::Dataset::name`).
    pub dataset: &'static str,
    /// The network.
    pub network: Network,
}

/// The eight benchmarks of paper Table 2, in Fig. 13 order.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            notation: "PointNet",
            application: "Classification",
            dataset: "ModelNet40",
            network: pointnet(),
        },
        Benchmark {
            notation: "PointNet++(c)",
            application: "Classification",
            dataset: "ModelNet40",
            network: pointnet_pp_classification(),
        },
        Benchmark {
            notation: "PointNet++(ps)",
            application: "Part Segmentation",
            dataset: "ShapeNet",
            network: pointnet_pp_part_seg(),
        },
        Benchmark {
            notation: "DGCNN",
            application: "Part Segmentation",
            dataset: "ShapeNet",
            network: dgcnn(),
        },
        Benchmark {
            notation: "F-PointNet++",
            application: "Detection",
            dataset: "KITTI",
            network: f_pointnet_pp(),
        },
        Benchmark {
            notation: "PointNet++(s)",
            application: "Segmentation",
            dataset: "S3DIS",
            network: pointnet_pp_segmentation(),
        },
        Benchmark {
            notation: "MinkNet(i)",
            application: "Segmentation",
            dataset: "S3DIS",
            network: minknet_indoor(),
        },
        Benchmark {
            notation: "MinkNet(o)",
            application: "Segmentation",
            dataset: "SemanticKITTI",
            network: minknet_outdoor(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_list_matches_table2() {
        let b = benchmarks();
        assert_eq!(b.len(), 8);
        assert_eq!(b[0].notation, "PointNet");
        assert_eq!(b[7].dataset, "SemanticKITTI");
    }

    #[test]
    fn minkunet_is_balanced() {
        // Every stride-2 down must have a matching transposed up.
        for net in [minknet_outdoor(), minkowski_net()] {
            let downs =
                net.ops().iter().filter(|o| matches!(o, Op::SparseConv { stride: 2, .. })).count();
            let ups = net.ops().iter().filter(|o| matches!(o, Op::SparseConvTr { .. })).count();
            assert_eq!(downs, ups, "{}", net.name());
        }
    }

    #[test]
    fn seg_nets_balance_sa_and_fp() {
        for net in [pointnet_pp_part_seg(), pointnet_pp_segmentation(), f_pointnet_pp()] {
            let sa = net
                .ops()
                .iter()
                .filter(|o| {
                    matches!(o, Op::SetAbstraction { .. } | Op::GlobalSetAbstraction { .. })
                })
                .count();
            let fp =
                net.ops().iter().filter(|o| matches!(o, Op::FeaturePropagation { .. })).count();
            assert_eq!(sa, fp, "{}", net.name());
        }
    }
}
