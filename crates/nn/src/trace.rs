//! Execution traces: the interface between the functional executor and
//! every performance model (PointAcc, CPU/GPU/TPU baselines, Mesorasi).
//!
//! The reference executor records, for every executed layer, the exact
//! map table, matrix dimensions and mapping operations — everything a
//! timing model needs to replay the layer on its hardware.

use pointacc_geom::MapTable;

/// A mapping operation executed before a layer (paper §2.1). The fields
/// carry the sizes a hardware model needs to cost the operation.
#[derive(Clone, Debug, PartialEq)]
pub enum MappingOp {
    /// Output cloud construction by coordinate quantization.
    Quantize {
        /// Input points.
        n_in: usize,
        /// Output (deduplicated) points.
        n_out: usize,
    },
    /// Kernel mapping between an input and an output cloud.
    KernelMap {
        /// Input points.
        n_in: usize,
        /// Output points.
        n_out: usize,
        /// Number of kernel offsets (kernel_size³).
        kernel_volume: usize,
        /// Total maps found.
        n_maps: usize,
    },
    /// Farthest point sampling.
    Fps {
        /// Input points.
        n_in: usize,
        /// Sampled output points (= iterations).
        n_out: usize,
    },
    /// k-nearest-neighbors on point coordinates.
    Knn {
        /// Input points scanned per query.
        n_in: usize,
        /// Number of queries.
        n_queries: usize,
        /// Neighbors kept.
        k: usize,
    },
    /// Ball query (radius-limited top-k).
    BallQuery {
        /// Input points scanned per query.
        n_in: usize,
        /// Number of queries.
        n_queries: usize,
        /// Neighbors kept.
        k: usize,
    },
    /// k-NN in feature space (DGCNN); distance cost scales with the
    /// feature dimension.
    KnnFeature {
        /// Input rows scanned per query.
        n_in: usize,
        /// Number of queries.
        n_queries: usize,
        /// Neighbors kept.
        k: usize,
        /// Feature dimensionality of the distance computation.
        dim: usize,
    },
}

impl MappingOp {
    /// Number of scalar distance/compare operations a brute-force
    /// implementation performs (the CPU/GPU cost driver).
    pub fn scalar_ops(&self) -> u64 {
        match *self {
            MappingOp::Quantize { n_in, .. } => n_in as u64,
            MappingOp::KernelMap { n_in, n_out, kernel_volume, .. } => {
                // One hash probe per (output, offset) + table build.
                (n_out as u64) * kernel_volume as u64 + n_in as u64
            }
            MappingOp::Fps { n_in, n_out } => (n_in as u64) * n_out as u64,
            MappingOp::Knn { n_in, n_queries, .. }
            | MappingOp::BallQuery { n_in, n_queries, .. } => (n_in as u64) * n_queries as u64,
            MappingOp::KnnFeature { n_in, n_queries, dim, .. } => {
                (n_in as u64) * n_queries as u64 * dim as u64
            }
        }
    }
}

impl MappingOp {
    /// Stable wire/fingerprint tag of the operation kind.
    pub(crate) fn tag(&self) -> u8 {
        match self {
            MappingOp::Quantize { .. } => 0,
            MappingOp::KernelMap { .. } => 1,
            MappingOp::Fps { .. } => 2,
            MappingOp::Knn { .. } => 3,
            MappingOp::BallQuery { .. } => 4,
            MappingOp::KnnFeature { .. } => 5,
        }
    }

    /// The operation's size fields in declaration order (the payload the
    /// wire codec and the fingerprint both consume).
    pub(crate) fn fields(&self) -> Vec<u64> {
        match *self {
            MappingOp::Quantize { n_in, n_out } => vec![n_in as u64, n_out as u64],
            MappingOp::KernelMap { n_in, n_out, kernel_volume, n_maps } => {
                vec![n_in as u64, n_out as u64, kernel_volume as u64, n_maps as u64]
            }
            MappingOp::Fps { n_in, n_out } => vec![n_in as u64, n_out as u64],
            MappingOp::Knn { n_in, n_queries, k } => vec![n_in as u64, n_queries as u64, k as u64],
            MappingOp::BallQuery { n_in, n_queries, k } => {
                vec![n_in as u64, n_queries as u64, k as u64]
            }
            MappingOp::KnnFeature { n_in, n_queries, k, dim } => {
                vec![n_in as u64, n_queries as u64, k as u64, dim as u64]
            }
        }
    }
}

/// How a layer's matrix computation consumes its inputs.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ComputeKind {
    /// Map-guided sparse convolution: gather by weight, per-offset
    /// matmul, scatter-accumulate by output.
    SparseConv,
    /// Shared-weight matmul over gathered neighborhood rows
    /// (PointNet++-style; `maps` describe the gather).
    Grouped,
    /// Dense point-wise FC (rows already contiguous; fusable).
    Dense,
    /// Map-guided interpolation (feature propagation): one
    /// multiply-accumulate per map per channel, no weight matrix.
    Interpolate,
    /// Pure reduction (global max pool): no MACs.
    Pool,
}

impl ComputeKind {
    /// Stable wire/fingerprint tag.
    pub(crate) fn tag(self) -> u8 {
        match self {
            ComputeKind::SparseConv => 0,
            ComputeKind::Grouped => 1,
            ComputeKind::Dense => 2,
            ComputeKind::Interpolate => 3,
            ComputeKind::Pool => 4,
        }
    }

    /// Inverse of [`ComputeKind::tag`]; `None` on an unknown tag.
    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => ComputeKind::SparseConv,
            1 => ComputeKind::Grouped,
            2 => ComputeKind::Dense,
            3 => ComputeKind::Interpolate,
            4 => ComputeKind::Pool,
            _ => return None,
        })
    }
}

/// Aggregation applied to partial sums after scatter (paper Table 1).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Aggregation {
    /// Accumulation (SparseConv family).
    Sum,
    /// Max-pooling over each neighborhood (PointNet++ family).
    Max,
    /// No cross-row aggregation.
    None,
}

impl Aggregation {
    /// Stable wire/fingerprint tag.
    pub(crate) fn tag(self) -> u8 {
        match self {
            Aggregation::Sum => 0,
            Aggregation::Max => 1,
            Aggregation::None => 2,
        }
    }

    /// Inverse of [`Aggregation::tag`]; `None` on an unknown tag.
    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => Aggregation::Sum,
            1 => Aggregation::Max,
            2 => Aggregation::None,
            _ => return None,
        })
    }
}

/// Record of one executed layer.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerTrace {
    /// Human-readable layer name, e.g. `"enc2.conv_down"`.
    pub name: String,
    /// Matrix-computation kind.
    pub compute: ComputeKind,
    /// Points (or rows) in the layer's input tensor.
    pub n_in: usize,
    /// Rows in the layer's output tensor (before any pooling).
    pub n_out: usize,
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Map table guiding gather/scatter (`None` for dense layers).
    pub maps: Option<MapTable>,
    /// Mapping operations executed to produce `maps`.
    pub mapping: Vec<MappingOp>,
    /// Post-scatter aggregation.
    pub aggregation: Aggregation,
    /// If `Some(g)`, the `n_out` rows are max-pooled in groups of `g`
    /// after the matmul (neighborhood pooling).
    pub pool_group: Option<usize>,
    /// Whether the MMU may temporally fuse this layer with dense
    /// neighbors (consecutive FC layers, paper §4.2.4).
    pub fusable: bool,
}

impl LayerTrace {
    /// Multiply-accumulate count of the layer.
    pub fn macs(&self) -> u64 {
        match self.compute {
            ComputeKind::SparseConv => {
                let maps = self.maps.as_ref().map_or(0, MapTable::len) as u64;
                maps * self.in_ch as u64 * self.out_ch as u64
            }
            ComputeKind::Grouped | ComputeKind::Dense => {
                self.n_out as u64 * self.in_ch as u64 * self.out_ch as u64
            }
            ComputeKind::Interpolate => {
                let maps = self.maps.as_ref().map_or(0, MapTable::len) as u64;
                maps * self.out_ch as u64
            }
            ComputeKind::Pool => 0,
        }
    }

    /// Bytes of input features the layer reads from DRAM at `bytes_per
    /// _element` precision, assuming no reuse (upper bound; the MMU's job
    /// is to beat this).
    pub fn input_feature_bytes(&self, bytes_per_element: usize) -> u64 {
        let reads = match (&self.compute, &self.maps) {
            (
                ComputeKind::SparseConv | ComputeKind::Grouped | ComputeKind::Interpolate,
                Some(m),
            ) => m.len() as u64,
            _ => self.n_in as u64,
        };
        reads * self.in_ch as u64 * bytes_per_element as u64
    }

    /// Bytes of output features written at the given precision.
    pub fn output_feature_bytes(&self, bytes_per_element: usize) -> u64 {
        let rows = self.pool_group.map_or(self.n_out, |g| self.n_out / g.max(1));
        rows as u64 * self.out_ch as u64 * bytes_per_element as u64
    }

    /// Weight bytes of the layer at the given precision.
    pub fn weight_bytes(&self, bytes_per_element: usize) -> u64 {
        let n_w = self.maps.as_ref().map_or(1, MapTable::n_weights).max(1) as u64;
        match self.compute {
            ComputeKind::SparseConv => {
                n_w * self.in_ch as u64 * self.out_ch as u64 * bytes_per_element as u64
            }
            ComputeKind::Grouped | ComputeKind::Dense => {
                self.in_ch as u64 * self.out_ch as u64 * bytes_per_element as u64
            }
            _ => 0,
        }
    }

    /// Total scalar mapping-op cost preceding this layer.
    pub fn mapping_scalar_ops(&self) -> u64 {
        self.mapping.iter().map(MappingOp::scalar_ops).sum()
    }
}

/// Cache identity of a compiled trace: the complete set of inputs that
/// determine it.
///
/// A benchmark trace is a pure function of the network, the dataset seed
/// and the point-count scale, so `(network, seed, scale)` is a sound
/// cache key for sharing compiled traces across runs. The scale is
/// stored in parts-per-million so the key is `Eq + Hash` without
/// touching raw floats.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Network notation, e.g. `"MinkNet(i)"`.
    pub network: String,
    /// Dataset generator seed.
    pub seed: u64,
    /// Point-count scale factor in parts-per-million (1.0 → 1_000_000).
    pub scale_ppm: u64,
}

impl TraceKey {
    /// Key for `network` at `seed` and a fractional point-count `scale`.
    pub fn new(network: &str, seed: u64, scale: f64) -> Self {
        TraceKey {
            network: network.to_string(),
            seed,
            scale_ppm: (scale.max(0.0) * 1e6).round() as u64,
        }
    }

    /// The scale factor the key was built from (ppm → fraction).
    pub fn scale(&self) -> f64 {
        self.scale_ppm as f64 / 1e6
    }
}

/// Incremental FNV-1a over little-endian words — the trace fingerprint
/// and the artifact checksum share this primitive so a fingerprint can
/// be recomputed from decoded bytes without a second hash definition.
pub(crate) struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    pub(crate) fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    pub(crate) fn mix_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub(crate) fn mix(&mut self, v: u64) {
        self.mix_bytes(&v.to_le_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Trace of a full network execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetworkTrace {
    /// Network name.
    pub network: String,
    /// Input description (dataset / point count), free-form.
    pub input_desc: String,
    /// Per-layer records, in execution order.
    pub layers: Vec<LayerTrace>,
}

impl NetworkTrace {
    /// Total multiply-accumulates.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerTrace::macs).sum()
    }

    /// Total maps across all layers.
    pub fn total_maps(&self) -> u64 {
        self.layers.iter().filter_map(|l| l.maps.as_ref()).map(|m| m.len() as u64).sum()
    }

    /// Total scalar mapping-operation work.
    pub fn total_mapping_ops(&self) -> u64 {
        self.layers.iter().map(LayerTrace::mapping_scalar_ops).sum()
    }

    /// Peak feature bytes per input point at the given precision: the
    /// largest per-point activation footprint any layer produces
    /// (paper Fig. 5 right).
    pub fn peak_feature_bytes_per_point(&self, bytes_per_element: usize) -> u64 {
        self.layers
            .iter()
            .map(|l| {
                let rows = l.n_out.max(1) as u64;
                rows * l.out_ch as u64 * bytes_per_element as u64
                    / self.input_points().max(1) as u64
            })
            .max()
            .unwrap_or(0)
    }

    /// Number of points at the network input.
    pub fn input_points(&self) -> usize {
        self.layers.first().map_or(0, |l| l.n_in)
    }

    /// Content fingerprint: FNV-1a over per-layer shapes, compute and
    /// aggregation metadata (compute kind, aggregation, pool grouping,
    /// fusability), every mapping-op descriptor, and the **full map
    /// tables** (group offsets plus every input/output index pair). Two
    /// traces agree iff they are structurally identical up to layer and
    /// network names — which makes the fingerprint a sound validity
    /// check for persisted trace artifacts, where shape-only hashing
    /// would let two same-shaped traces with different kernel maps
    /// impersonate each other.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.mix(self.layers.len() as u64);
        for l in &self.layers {
            h.mix(l.n_in as u64);
            h.mix(l.n_out as u64);
            h.mix(l.in_ch as u64);
            h.mix(l.out_ch as u64);
            h.mix(u64::from(l.compute.tag()));
            h.mix(u64::from(l.aggregation.tag()));
            h.mix(l.pool_group.map_or(u64::MAX, |g| g as u64));
            h.mix(u64::from(l.fusable));
            h.mix(l.mapping.len() as u64);
            for op in &l.mapping {
                h.mix(u64::from(op.tag()));
                for field in op.fields() {
                    h.mix(field);
                }
            }
            match &l.maps {
                None => h.mix(u64::MAX),
                Some(m) => {
                    h.mix(m.n_weights() as u64);
                    h.mix(m.len() as u64);
                    for &off in m.offsets() {
                        h.mix(off as u64);
                    }
                    for (&input, &output) in m.inputs().iter().zip(m.outputs()) {
                        h.mix(u64::from(input) << 32 | u64::from(output));
                    }
                }
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pointacc_geom::{MapEntry, MapTable};

    fn sparse_layer() -> LayerTrace {
        let maps = MapTable::from_entries(
            vec![MapEntry::new(0, 0, 0), MapEntry::new(1, 0, 1), MapEntry::new(1, 1, 0)],
            2,
        );
        LayerTrace {
            name: "conv".into(),
            compute: ComputeKind::SparseConv,
            n_in: 2,
            n_out: 2,
            in_ch: 4,
            out_ch: 8,
            maps: Some(maps),
            mapping: vec![MappingOp::KernelMap { n_in: 2, n_out: 2, kernel_volume: 2, n_maps: 3 }],
            aggregation: Aggregation::Sum,
            pool_group: None,
            fusable: false,
        }
    }

    #[test]
    fn sparse_macs_count_maps() {
        assert_eq!(sparse_layer().macs(), 3 * 4 * 8);
    }

    #[test]
    fn dense_macs_count_rows() {
        let l = LayerTrace {
            compute: ComputeKind::Dense,
            maps: None,
            mapping: vec![],
            n_out: 10,
            ..sparse_layer()
        };
        assert_eq!(l.macs(), 10 * 4 * 8);
    }

    #[test]
    fn pool_has_no_macs() {
        let l = LayerTrace { compute: ComputeKind::Pool, ..sparse_layer() };
        assert_eq!(l.macs(), 0);
    }

    #[test]
    fn weight_bytes_scale_with_offsets() {
        let l = sparse_layer();
        assert_eq!(l.weight_bytes(2), 2 * 4 * 8 * 2);
    }

    #[test]
    fn trace_totals() {
        let t = NetworkTrace {
            network: "t".into(),
            input_desc: "x".into(),
            layers: vec![sparse_layer(), sparse_layer()],
        };
        assert_eq!(t.total_macs(), 2 * 3 * 4 * 8);
        assert_eq!(t.total_maps(), 6);
        assert!(t.total_mapping_ops() > 0);
    }

    #[test]
    fn trace_keys_hash_scale_in_ppm() {
        let a = TraceKey::new("PointNet", 42, 0.05);
        let b = TraceKey::new("PointNet", 42, 0.05);
        assert_eq!(a, b);
        assert!((a.scale() - 0.05).abs() < 1e-12);
        assert_ne!(a, TraceKey::new("PointNet", 42, 0.1));
        assert_ne!(a, TraceKey::new("PointNet", 43, 0.05));
        assert_ne!(a, TraceKey::new("DGCNN", 42, 0.05));
    }

    #[test]
    fn fingerprint_tracks_structure() {
        let t = NetworkTrace {
            network: "t".into(),
            input_desc: "x".into(),
            layers: vec![sparse_layer()],
        };
        assert_eq!(t.fingerprint(), t.clone().fingerprint());
        let mut bigger = t.clone();
        bigger.layers.push(sparse_layer());
        assert_ne!(t.fingerprint(), bigger.fingerprint());
        let mut wider = t.clone();
        wider.layers[0].out_ch += 1;
        assert_ne!(t.fingerprint(), wider.fingerprint());
    }

    #[test]
    fn fingerprint_covers_map_contents_and_aggregation() {
        let base = NetworkTrace {
            network: "t".into(),
            input_desc: "x".into(),
            layers: vec![sparse_layer()],
        };
        // Same shapes and map count, different map-table contents: a
        // shape-only fingerprint collides here, which is unsound as a
        // disk-artifact validity check.
        let mut remapped = base.clone();
        remapped.layers[0].maps = Some(MapTable::from_entries(
            vec![MapEntry::new(0, 0, 0), MapEntry::new(0, 1, 1), MapEntry::new(1, 1, 0)],
            2,
        ));
        assert_eq!(remapped.layers[0].maps.as_ref().unwrap().len(), 3);
        assert_ne!(base.fingerprint(), remapped.fingerprint());
        // Aggregation metadata is covered too.
        let mut maxed = base.clone();
        maxed.layers[0].aggregation = Aggregation::Max;
        assert_ne!(base.fingerprint(), maxed.fingerprint());
        let mut pooled = base.clone();
        pooled.layers[0].pool_group = Some(4);
        assert_ne!(base.fingerprint(), pooled.fingerprint());
        let mut fused = base.clone();
        fused.layers[0].fusable = true;
        assert_ne!(base.fingerprint(), fused.fingerprint());
        // Names stay outside the fingerprint: it is structural identity,
        // and the artifact key carries the network name separately.
        let mut renamed = base.clone();
        renamed.network = "other".into();
        renamed.layers[0].name = "other.conv".into();
        assert_eq!(base.fingerprint(), renamed.fingerprint());
    }

    #[test]
    fn mapping_op_costs_positive() {
        for op in [
            MappingOp::Quantize { n_in: 10, n_out: 5 },
            MappingOp::KernelMap { n_in: 10, n_out: 5, kernel_volume: 27, n_maps: 40 },
            MappingOp::Fps { n_in: 10, n_out: 4 },
            MappingOp::Knn { n_in: 10, n_queries: 4, k: 2 },
            MappingOp::BallQuery { n_in: 10, n_queries: 4, k: 2 },
            MappingOp::KnnFeature { n_in: 10, n_queries: 4, k: 2, dim: 16 },
        ] {
            assert!(op.scalar_ops() > 0, "{op:?}");
        }
    }
}
