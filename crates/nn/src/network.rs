//! Network descriptions: an ordered operator list plus input metadata.

use crate::{Domain, Op};

/// A complete network description.
///
/// Build one with [`Network::new`] and the chaining helpers, or take a
/// ready-made benchmark from [`crate::zoo`].
///
/// # Examples
///
/// ```
/// use pointacc_nn::{Network, Op, Domain};
/// let net = Network::new("tiny", Domain::VoxelBased, 4)
///     .with_voxel_size(0.05)
///     .push(Op::SparseConv { out_ch: 16, kernel_size: 3, stride: 1 })
///     .push(Op::Mlp { dims: vec![32, 32] });
/// assert_eq!(net.ops().len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Network {
    name: String,
    domain: Domain,
    in_ch: usize,
    voxel_size: Option<f32>,
    default_points: usize,
    ops: Vec<Op>,
}

impl Network {
    /// Creates an empty network with `in_ch` input feature channels.
    ///
    /// # Panics
    ///
    /// Panics if `in_ch == 0`.
    pub fn new(name: impl Into<String>, domain: Domain, in_ch: usize) -> Self {
        assert!(in_ch > 0, "input channels must be nonzero");
        Network {
            name: name.into(),
            domain,
            in_ch,
            voxel_size: None,
            default_points: 1024,
            ops: Vec::new(),
        }
    }

    /// Sets the voxel size used to quantize continuous input (required
    /// for voxel-based networks).
    #[must_use]
    pub fn with_voxel_size(mut self, v: f32) -> Self {
        self.voxel_size = Some(v);
        self
    }

    /// Sets the canonical input point count for this network.
    #[must_use]
    pub fn with_default_points(mut self, n: usize) -> Self {
        self.default_points = n;
        self
    }

    /// Appends an operator.
    #[must_use]
    pub fn push(mut self, op: Op) -> Self {
        self.ops.push(op);
        self
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Convolution family.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Input feature channels.
    pub fn in_ch(&self) -> usize {
        self.in_ch
    }

    /// Voxel size, if voxel-based.
    pub fn voxel_size(&self) -> Option<f32> {
        self.voxel_size
    }

    /// Canonical input point count.
    pub fn default_points(&self) -> usize {
        self.default_points
    }

    /// The operator list.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_ops() {
        let n = Network::new("n", Domain::PointBased, 3)
            .push(Op::GlobalMaxPool)
            .push(Op::Head { dims: vec![10] })
            .with_default_points(2048);
        assert_eq!(n.ops().len(), 2);
        assert_eq!(n.default_points(), 2048);
        assert_eq!(n.in_ch(), 3);
    }

    #[test]
    #[should_panic(expected = "input channels")]
    fn zero_channels_rejected() {
        let _ = Network::new("bad", Domain::PointBased, 0);
    }
}
