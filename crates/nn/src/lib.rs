//! Point cloud network definitions, reference executor and statistics for
//! the PointAcc reproduction.
//!
//! The crate covers paper Table 1's full operator taxonomy:
//!
//! - **SparseConv-based**: [`Op::SparseConv`] / [`Op::SparseConvTr`] with
//!   coordinate quantization + kernel mapping and per-offset weights.
//! - **PointNet++-based**: [`Op::SetAbstraction`] /
//!   [`Op::FeaturePropagation`] with FPS + ball query and shared weights.
//! - **Graph-based**: [`Op::EdgeConv`] with feature-space k-NN.
//! - Dense glue: [`Op::Mlp`], [`Op::Head`], [`Op::GlobalMaxPool`].
//!
//! [`Executor`] runs a [`Network`] functionally and records a
//! [`NetworkTrace`] — exact map tables and matrix shapes — which is the
//! interface every hardware timing model in the workspace consumes.
//! [`Executor::try_run`] surfaces malformed network/tensor combinations
//! as typed [`ExecError`]s instead of panicking. [`zoo`] provides the
//! eight Table 2 benchmarks. [`artifact`] persists recorded traces as
//! versioned, checksummed binary files so downstream harnesses can
//! warm-start instead of recompiling.
//!
//! # Example
//!
//! ```
//! use pointacc_nn::{zoo, ExecMode, Executor};
//! use pointacc_geom::{Point3, PointSet};
//!
//! let pts: PointSet = (0..128)
//!     .map(|i| Point3::new((i as f32).sin(), (i as f32).cos(), 0.1))
//!     .collect();
//! let out = Executor::new(ExecMode::Full, 0).run(&zoo::pointnet(), &pts);
//! println!("total MACs: {}", out.trace.total_macs());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod artifact;
mod error;
mod exec;
mod layer;
mod network;
pub mod stats;
pub mod stream;
mod trace;
pub mod verify;
mod weights;
pub mod zoo;

pub use error::ExecError;
pub use exec::{ExecMode, ExecOptions, ExecOutput, Executor};
pub use layer::{Domain, Op};
pub use network::Network;
pub use trace::{Aggregation, ComputeKind, LayerTrace, MappingOp, NetworkTrace, TraceKey};
pub use verify::{verify_trace, verify_with_fingerprint, VerifyError, VerifyReport};
pub use weights::WeightGen;
