//! Reference executor: runs a [`Network`] on a point cloud with plain
//! CPU arithmetic, producing functional outputs **and** the
//! [`NetworkTrace`] every hardware model replays.
//!
//! Mapping operations run on a `pointacc_geom` [`MappingBackend`] — the
//! grid-hash [`Indexed`](pointacc_geom::index::Indexed) backend by
//! default, bit-identical to the golden oracle (and to the PointAcc
//! mapping unit), so swapping backends never perturbs traces or
//! features. SparseConv layers execute the MinkowskiEngine-style
//! gather–GEMM–scatter flow over [`KernelMap`]s with per-offset weights
//! from the seeded [`WeightGen`], so [`ExecMode::Full`] yields real,
//! reproducible features for voxel networks end to end.
//!
//! Malformed network/tensor combinations never panic: every fault is a
//! typed [`ExecError`] from [`Executor::try_run`].

use pointacc_geom::index::{default_backend, dist_key, MappingBackend};
use pointacc_geom::par::{parallel_map_with, worker_threads};
use pointacc_geom::{golden, FeatureMatrix, KernelMap, MapTable, Point3, PointSet, VoxelCloud};

use crate::{
    Aggregation, ComputeKind, Domain, ExecError, LayerTrace, MappingOp, Network, NetworkTrace, Op,
    WeightGen,
};

/// MAC count below which the gather-GEMM-scatter loop stays serial:
/// worker spawns and psum-buffer traffic cost more than the matmuls
/// they would split.
const CONV_PAR_WORK: usize = 1 << 20;

/// Execution fidelity.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// Compute every feature value (slow, exact outputs).
    Full,
    /// Compute mapping operations and shapes only; skip matrix math.
    /// Traces are identical to [`ExecMode::Full`] except that DGCNN's
    /// feature-space k-NN graph is built on coordinates instead (same
    /// size, different edges). Use for large profiling runs.
    TraceOnly,
}

/// Execution tuning knobs, orthogonal to fidelity ([`ExecMode`]) and the
/// weight seed. The default is the exact, auto-threaded configuration;
/// every knob here trades nothing away silently — approximate FPS must
/// be opted into explicitly, and worker-count overrides change
/// wall-clock only (the conv reduction is deterministic by
/// construction).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecOptions {
    /// Run SetAbstraction downsampling through the backend's
    /// [`MappingBackend::fps_approx`] instead of exact FPS. Off by
    /// default; when on, sampled centroids may differ from exact FPS
    /// within the backend's documented coverage-radius bound.
    pub approx_fps: bool,
    /// Worker-thread count for the parallel gather-GEMM-scatter path
    /// (`None` = the process-wide [`worker_threads`] count). `Some(1)`
    /// forces the serial path; any value yields bit-identical features.
    pub conv_workers: Option<usize>,
}

/// Result of executing a network.
#[derive(Clone, Debug)]
pub struct ExecOutput {
    /// Per-layer execution trace.
    pub trace: NetworkTrace,
    /// Final feature matrix (all zeros in [`ExecMode::TraceOnly`]).
    pub features: FeatureMatrix,
}

/// The reference executor.
///
/// # Examples
///
/// ```
/// use pointacc_nn::{zoo, Executor, ExecMode};
/// use pointacc_geom::{Point3, PointSet};
///
/// let net = zoo::pointnet();
/// let pts: PointSet = (0..64)
///     .map(|i| Point3::new(i as f32 * 0.1, (i % 8) as f32 * 0.2, 0.0))
///     .collect();
/// let out = Executor::new(ExecMode::Full, 42).run(&net, &pts);
/// assert_eq!(out.features.rows(), 1); // classification head
/// ```
#[derive(Copy, Clone)]
pub struct Executor {
    mode: ExecMode,
    weights: WeightGen,
    backend: &'static dyn MappingBackend,
    options: ExecOptions,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("mode", &self.mode)
            .field("weights", &self.weights)
            .field("backend", &self.backend.name())
            .field("options", &self.options)
            .finish()
    }
}

/// Current tensor flowing through the network.
#[derive(Clone, Debug)]
enum State {
    Pts(PointSet),
    Vox(VoxelCloud),
    Global,
}

impl State {
    fn rows(&self, feats: &FeatureMatrix) -> usize {
        let _ = self;
        feats.rows()
    }

    /// Human-readable tensor kind for error reporting.
    fn kind(&self) -> &'static str {
        match self {
            State::Pts(_) => "point-cloud",
            State::Vox(_) => "voxelized",
            State::Global => "global",
        }
    }
}

struct Ctx {
    state: State,
    feats: FeatureMatrix,
    skips: Vec<(State, FeatureMatrix)>,
    layers: Vec<LayerTrace>,
    layer_idx: usize,
}

impl Executor {
    /// Creates an executor with the given fidelity and weight seed,
    /// running mapping operations on the process-wide
    /// [`default_backend`] (the grid-hash `Indexed` backend unless
    /// `POINTACC_BACKEND=golden`).
    pub fn new(mode: ExecMode, seed: u64) -> Self {
        Executor::with_backend(mode, seed, default_backend())
    }

    /// [`Executor::new`] pinned to an explicit mapping backend (tests,
    /// backend benchmarks). Backends are bit-identical, so this changes
    /// wall-clock only, never traces or features.
    pub fn with_backend(mode: ExecMode, seed: u64, backend: &'static dyn MappingBackend) -> Self {
        Executor { mode, weights: WeightGen::new(seed), backend, options: ExecOptions::default() }
    }

    /// Returns this executor with the given tuning knobs (builder style).
    #[must_use]
    pub fn with_options(mut self, options: ExecOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs `net` on `points`, returning outputs and trace.
    ///
    /// Thin compatibility wrapper over [`Executor::try_run`].
    ///
    /// # Panics
    ///
    /// Panics with the [`ExecError`] message if the network/tensor
    /// combination is malformed (e.g. an empty point cloud, a
    /// `FeaturePropagation` with an empty skip stack, or a voxel network
    /// without a voxel size). Serving paths should call
    /// [`Executor::try_run`] instead.
    pub fn run(&self, net: &Network, points: &PointSet) -> ExecOutput {
        // lint: allow(panic): documented panicking facade over try_run.
        self.try_run(net, points).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs `net` on `points`, returning outputs and trace, or a typed
    /// [`ExecError`] when the network/tensor combination is malformed.
    /// No `panic!` is reachable from op dispatch.
    pub fn try_run(&self, net: &Network, points: &PointSet) -> Result<ExecOutput, ExecError> {
        if points.is_empty() {
            return Err(ExecError::EmptyInput);
        }
        let (state, feats) = self.build_input(net, points)?;
        let mut ctx = Ctx { state, feats, skips: Vec::new(), layers: Vec::new(), layer_idx: 0 };
        for op in net.ops() {
            self.exec_op(op, &mut ctx)?;
        }
        Ok(ExecOutput {
            trace: NetworkTrace {
                network: net.name().to_string(),
                input_desc: format!("{} points", points.len()),
                layers: ctx.layers,
            },
            features: ctx.feats,
        })
    }

    fn build_input(
        &self,
        net: &Network,
        points: &PointSet,
    ) -> Result<(State, FeatureMatrix), ExecError> {
        match net.domain() {
            Domain::PointBased => {
                let f = input_features(points.points(), net.in_ch());
                Ok((State::Pts(points.clone()), f))
            }
            Domain::VoxelBased => {
                let v = net
                    .voxel_size()
                    .ok_or_else(|| ExecError::MissingVoxelSize { network: net.name().into() })?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(ExecError::InvalidVoxelSize {
                        network: net.name().into(),
                        voxel_size: v,
                    });
                }
                let (vc, _) = points.voxelize(v);
                let centers: Vec<Point3> = vc
                    .coords()
                    .iter()
                    .map(|c| Point3::new(c.x as f32 * v, c.y as f32 * v, c.z as f32 * v))
                    .collect();
                let f = input_features(&centers, net.in_ch());
                Ok((State::Vox(vc), f))
            }
        }
    }

    fn exec_op(&self, op: &Op, ctx: &mut Ctx) -> Result<(), ExecError> {
        match op {
            Op::Mlp { dims } => {
                self.exec_mlp(ctx, dims, "mlp", true);
                Ok(())
            }
            Op::Head { dims } => self.exec_head(ctx, dims),
            Op::GlobalMaxPool => {
                self.exec_global_pool(ctx);
                Ok(())
            }
            Op::SparseConv { out_ch, kernel_size, stride } => {
                self.exec_sparse_conv(ctx, *out_ch, *kernel_size, *stride)
            }
            Op::SparseConvTr { out_ch, kernel_size } => {
                self.exec_sparse_conv_tr(ctx, *out_ch, *kernel_size)
            }
            Op::SetAbstraction { n_out, radius, k, dims } => {
                self.exec_sa(ctx, Some((*n_out, *radius, *k)), dims)
            }
            Op::GlobalSetAbstraction { dims } => self.exec_sa(ctx, None, dims),
            Op::FeaturePropagation { dims } => self.exec_fp(ctx, dims),
            Op::EdgeConv { k, dims } => self.exec_edgeconv(ctx, *k, dims),
        }
    }

    /// Pops the skip pushed by the matching encoder stage, surfacing an
    /// empty stack or a wrong-kind skip as a typed error.
    fn pop_skip(
        ctx: &mut Ctx,
        op: &'static str,
        expected: &'static str,
    ) -> Result<(State, FeatureMatrix), ExecError> {
        let (state, feats) =
            ctx.skips.pop().ok_or(ExecError::MissingSkip { layer: ctx.layer_idx, op })?;
        if state.kind() != expected {
            return Err(ExecError::SkipMismatch {
                layer: ctx.layer_idx,
                op,
                expected,
                found: state.kind(),
            });
        }
        Ok((state, feats))
    }

    /// Point-wise FC chain with ReLU; each FC is one fusable dense trace.
    fn exec_mlp(&self, ctx: &mut Ctx, dims: &[usize], tag: &str, relu_last: bool) {
        for (i, &d) in dims.iter().enumerate() {
            let in_ch = ctx.feats.cols();
            let rows = ctx.state.rows(&ctx.feats);
            if self.mode == ExecMode::Full {
                let w = self.weights.matrix(ctx.layer_idx, 0, in_ch, d);
                let mut out = ctx.feats.matmul(&w);
                if relu_last || i + 1 < dims.len() {
                    out.relu_in_place();
                }
                ctx.feats = out;
            } else {
                ctx.feats = FeatureMatrix::zeros(rows, d);
            }
            ctx.layers.push(LayerTrace {
                name: format!("{}.{}[{}]", ctx.layer_idx, tag, i),
                compute: ComputeKind::Dense,
                n_in: rows,
                n_out: rows,
                in_ch,
                out_ch: d,
                maps: None,
                mapping: vec![],
                aggregation: Aggregation::None,
                pool_group: None,
                fusable: true,
            });
            ctx.layer_idx += 1;
        }
    }

    fn exec_head(&self, ctx: &mut Ctx, dims: &[usize]) -> Result<(), ExecError> {
        if !matches!(ctx.state, State::Global) {
            return Err(ExecError::DomainMismatch {
                layer: ctx.layer_idx,
                op: "Head",
                expected: "global",
                found: ctx.state.kind(),
            });
        }
        let n = dims.len();
        for (i, &d) in dims.iter().enumerate() {
            let in_ch = ctx.feats.cols();
            if self.mode == ExecMode::Full {
                let w = self.weights.matrix(ctx.layer_idx, 0, in_ch, d);
                let mut out = ctx.feats.matmul(&w);
                if i + 1 < n {
                    out.relu_in_place();
                }
                ctx.feats = out;
            } else {
                ctx.feats = FeatureMatrix::zeros(1, d);
            }
            ctx.layers.push(LayerTrace {
                name: format!("{}.head[{}]", ctx.layer_idx, i),
                compute: ComputeKind::Dense,
                n_in: 1,
                n_out: 1,
                in_ch,
                out_ch: d,
                maps: None,
                mapping: vec![],
                aggregation: Aggregation::None,
                pool_group: None,
                fusable: true,
            });
            ctx.layer_idx += 1;
        }
        Ok(())
    }

    fn exec_global_pool(&self, ctx: &mut Ctx) {
        let rows = ctx.feats.rows();
        let c = ctx.feats.cols();
        let pooled = if self.mode == ExecMode::Full {
            let mut out = FeatureMatrix::from_fn(1, c, |_, _| f32::NEG_INFINITY);
            for r in 0..rows {
                out.scatter_max(0, &ctx.feats, r);
            }
            out
        } else {
            FeatureMatrix::zeros(1, c)
        };
        ctx.layers.push(LayerTrace {
            name: format!("{}.maxpool", ctx.layer_idx),
            compute: ComputeKind::Pool,
            n_in: rows,
            n_out: 1,
            in_ch: c,
            out_ch: c,
            maps: None,
            mapping: vec![],
            aggregation: Aggregation::Max,
            pool_group: Some(rows),
            fusable: true,
        });
        ctx.layer_idx += 1;
        ctx.state = State::Global;
        ctx.feats = pooled;
    }

    fn exec_sparse_conv(
        &self,
        ctx: &mut Ctx,
        out_ch: usize,
        ks: usize,
        stride: usize,
    ) -> Result<(), ExecError> {
        let vc = match &ctx.state {
            State::Vox(v) => v.clone(),
            other => {
                return Err(ExecError::DomainMismatch {
                    layer: ctx.layer_idx,
                    op: "SparseConv",
                    expected: "voxelized",
                    found: other.kind(),
                })
            }
        };
        let mut mapping = Vec::new();
        let (out_vc, km) = if stride > 1 {
            // U-Net encoder: remember the finer level for the decoder.
            ctx.skips.push((State::Vox(vc.clone()), ctx.feats.clone()));
            let (ds, km) = KernelMap::downsample_with(self.backend, &vc, ks, stride as i32);
            mapping.push(MappingOp::Quantize { n_in: vc.len(), n_out: ds.len() });
            (ds, km)
        } else {
            (vc.clone(), KernelMap::unit_stride_with(self.backend, &vc, ks))
        };
        mapping.push(MappingOp::KernelMap {
            n_in: km.n_in(),
            n_out: km.n_out(),
            kernel_volume: km.kernel_volume(),
            n_maps: km.table().len(),
        });
        let in_ch = ctx.feats.cols();
        let out = self.sparse_conv_compute(ctx, km.table(), km.n_out(), in_ch, out_ch);
        ctx.layers.push(LayerTrace {
            name: format!("{}.{}", ctx.layer_idx, if stride > 1 { "conv_down" } else { "conv" }),
            compute: ComputeKind::SparseConv,
            n_in: vc.len(),
            n_out: out_vc.len(),
            in_ch,
            out_ch,
            maps: Some(km.into_table()),
            mapping,
            aggregation: Aggregation::Sum,
            pool_group: None,
            fusable: false,
        });
        ctx.layer_idx += 1;
        ctx.state = State::Vox(out_vc);
        ctx.feats = out;
        Ok(())
    }

    fn exec_sparse_conv_tr(
        &self,
        ctx: &mut Ctx,
        out_ch: usize,
        ks: usize,
    ) -> Result<(), ExecError> {
        let coarse = match &ctx.state {
            State::Vox(v) => v.clone(),
            other => {
                return Err(ExecError::DomainMismatch {
                    layer: ctx.layer_idx,
                    op: "SparseConvTr",
                    expected: "voxelized",
                    found: other.kind(),
                })
            }
        };
        let (fine_state, skip_feats) = Self::pop_skip(ctx, "SparseConvTr", "voxelized")?;
        let fine = match &fine_state {
            State::Vox(v) => v.clone(),
            _ => unreachable!("pop_skip checked the tensor kind"),
        };
        // Maps of the transposed conv = transpose of the forward
        // downsampling conv's maps (fine → coarse).
        let km = KernelMap::transposed_with(self.backend, &fine, &coarse, ks);
        let mapping = vec![MappingOp::KernelMap {
            n_in: fine.len(),
            n_out: coarse.len(),
            kernel_volume: km.kernel_volume(),
            n_maps: km.table().len(),
        }];
        let in_ch = ctx.feats.cols();
        let conv_out = self.sparse_conv_compute(ctx, km.table(), km.n_out(), in_ch, out_ch);
        // U-Net skip concatenation.
        let out = if self.mode == ExecMode::Full {
            conv_out.concat_cols(&skip_feats)
        } else {
            FeatureMatrix::zeros(fine.len(), out_ch + skip_feats.cols())
        };
        ctx.layers.push(LayerTrace {
            name: format!("{}.conv_up", ctx.layer_idx),
            compute: ComputeKind::SparseConv,
            n_in: coarse.len(),
            n_out: fine.len(),
            in_ch,
            out_ch,
            maps: Some(km.into_table()),
            mapping,
            aggregation: Aggregation::Sum,
            pool_group: None,
            fusable: false,
        });
        ctx.layer_idx += 1;
        ctx.state = State::Vox(fine);
        ctx.feats = out;
        Ok(())
    }

    /// Gather-matmul-scatter over one map table (functional reference for
    /// both SparseConv and SparseConvTr).
    ///
    /// Gathers index straight off the table's SoA slices (no per-group
    /// index materialization). Above [`CONV_PAR_WORK`] the per-weight
    /// gather+GEMM partials run on [`parallel_map_with`]; the scatter
    /// stays a single serial pass in ascending weight order, so the
    /// float-addition order into every output row — and therefore every
    /// feature bit — is identical to the serial path for any worker
    /// count.
    fn sparse_conv_compute(
        &self,
        ctx: &mut Ctx,
        maps: &MapTable,
        n_out: usize,
        in_ch: usize,
        out_ch: usize,
    ) -> FeatureMatrix {
        if self.mode != ExecMode::Full {
            return FeatureMatrix::zeros(n_out, out_ch);
        }
        let groups: Vec<usize> =
            (0..maps.n_weights()).filter(|&w| !maps.group(w).is_empty()).collect();
        let feats = &ctx.feats;
        let layer_idx = ctx.layer_idx;
        let psum_of = |&w: &usize| -> FeatureMatrix {
            let wm = self.weights.matrix(layer_idx, w, in_ch, out_ch);
            feats.gather(maps.group(w).inputs()).matmul(&wm)
        };
        let work = maps.len().saturating_mul(in_ch).saturating_mul(out_ch);
        let workers = self.options.conv_workers.unwrap_or_else(worker_threads);
        let psums: Vec<FeatureMatrix> = if workers > 1 && groups.len() > 1 && work >= CONV_PAR_WORK
        {
            parallel_map_with(workers, &groups, psum_of)
        } else {
            groups.iter().map(psum_of).collect()
        };
        let mut out = FeatureMatrix::zeros(n_out, out_ch);
        for (&w, psum) in groups.iter().zip(&psums) {
            for (r, &o) in maps.group(w).outputs().iter().enumerate() {
                out.scatter_add(o as usize, psum, r);
            }
        }
        out.relu_in_place();
        out
    }

    fn exec_sa(
        &self,
        ctx: &mut Ctx,
        spec: Option<(usize, f32, usize)>,
        dims: &[usize],
    ) -> Result<(), ExecError> {
        let pts = match &ctx.state {
            State::Pts(p) => p.clone(),
            other => {
                return Err(ExecError::DomainMismatch {
                    layer: ctx.layer_idx,
                    op: "SetAbstraction",
                    expected: "point-cloud",
                    found: other.kind(),
                })
            }
        };
        // Push the pre-abstraction level for FeaturePropagation.
        ctx.skips.push((State::Pts(pts.clone()), ctx.feats.clone()));

        let (centroids, nbrs, mapping, k) = match spec {
            Some((n_out, radius, k)) => {
                let n_out = n_out.min(pts.len());
                let sel = if self.options.approx_fps {
                    self.backend.fps_approx(&pts, n_out)
                } else {
                    self.backend.farthest_point_sampling(&pts, n_out)
                };
                let centroids = pts.select(&sel);
                let nbrs = self.backend.ball_query_padded(&pts, &centroids, radius * radius, k);
                let mapping = vec![
                    MappingOp::Fps { n_in: pts.len(), n_out },
                    MappingOp::BallQuery { n_in: pts.len(), n_queries: n_out, k },
                ];
                (centroids, nbrs, mapping, k)
            }
            None => {
                // Group-all: one neighborhood with every point.
                let centroids = PointSet::from_points(vec![Point3::ORIGIN]);
                let nbrs = vec![(0..pts.len()).collect::<Vec<_>>()];
                (centroids, nbrs, vec![], pts.len())
            }
        };
        let maps = golden::neighbors_to_maps(&nbrs);
        let in_ch = ctx.feats.cols() + 3; // features ++ relative xyz
        let rows = centroids.len() * k;

        // Build grouped features.
        let grouped = if self.mode == ExecMode::Full {
            let mut g = FeatureMatrix::zeros(rows, in_ch);
            for (q, ns) in nbrs.iter().enumerate() {
                for (j, &p) in ns.iter().enumerate() {
                    let row = g.row_mut(q * k + j);
                    row[..ctx.feats.cols()].copy_from_slice(ctx.feats.row(p));
                    let rel = pts.point(p).sub(centroids.point(q));
                    row[ctx.feats.cols()] = rel.x;
                    row[ctx.feats.cols() + 1] = rel.y;
                    row[ctx.feats.cols() + 2] = rel.z;
                }
            }
            g
        } else {
            FeatureMatrix::zeros(rows, in_ch)
        };

        // Shared MLP over grouped rows; first layer carries the gather
        // maps, last layer max-pools each neighborhood.
        let mut cur = grouped;
        let n_dims = dims.len();
        for (i, &d) in dims.iter().enumerate() {
            let ic = cur.cols();
            if self.mode == ExecMode::Full {
                let w = self.weights.matrix(ctx.layer_idx, 0, ic, d);
                cur = cur.matmul(&w);
                cur.relu_in_place();
            } else {
                cur = FeatureMatrix::zeros(rows, d);
            }
            let last = i + 1 == n_dims;
            ctx.layers.push(LayerTrace {
                name: format!("{}.sa_mlp[{}]", ctx.layer_idx, i),
                compute: if i == 0 { ComputeKind::Grouped } else { ComputeKind::Dense },
                n_in: if i == 0 { pts.len() } else { rows },
                n_out: rows,
                in_ch: ic,
                out_ch: d,
                maps: if i == 0 { Some(maps.clone()) } else { None },
                mapping: if i == 0 { mapping.clone() } else { vec![] },
                aggregation: if last { Aggregation::Max } else { Aggregation::None },
                pool_group: last.then_some(k),
                fusable: true,
            });
            ctx.layer_idx += 1;
        }

        // Max-pool over each neighborhood.
        let pooled = if self.mode == ExecMode::Full {
            let c = cur.cols();
            let mut out = FeatureMatrix::from_fn(centroids.len(), c, |_, _| f32::NEG_INFINITY);
            for q in 0..centroids.len() {
                for j in 0..k {
                    out.scatter_max(q, &cur, q * k + j);
                }
            }
            out
        } else {
            FeatureMatrix::zeros(centroids.len(), cur.cols())
        };
        if spec.is_some() {
            ctx.state = State::Pts(centroids);
        } else {
            ctx.state = State::Global;
        }
        ctx.feats = pooled;
        Ok(())
    }

    fn exec_fp(&self, ctx: &mut Ctx, dims: &[usize]) -> Result<(), ExecError> {
        if matches!(ctx.state, State::Vox(_)) {
            return Err(ExecError::DomainMismatch {
                layer: ctx.layer_idx,
                op: "FeaturePropagation",
                expected: "point-cloud or global",
                found: ctx.state.kind(),
            });
        }
        let (fine_state, skip_feats) = Self::pop_skip(ctx, "FeaturePropagation", "point-cloud")?;
        let fine = match &fine_state {
            State::Pts(p) => p.clone(),
            _ => unreachable!("pop_skip checked the tensor kind"),
        };
        let c = ctx.feats.cols();
        let (interp, maps, mapping) = match &ctx.state {
            State::Global => {
                // Broadcast the single global vector to every fine point.
                let mut f = FeatureMatrix::zeros(fine.len(), c);
                if self.mode == ExecMode::Full {
                    for r in 0..fine.len() {
                        f.row_mut(r).copy_from_slice(ctx.feats.row(0));
                    }
                }
                (f, None, vec![])
            }
            State::Pts(coarse) => {
                let k = 3.min(coarse.len());
                let nbrs = self.backend.k_nearest_neighbors(coarse, &fine, k);
                let maps = golden::neighbors_to_maps(&nbrs);
                let mut f = FeatureMatrix::zeros(fine.len(), c);
                if self.mode == ExecMode::Full {
                    for (q, ns) in nbrs.iter().enumerate() {
                        let qp = fine.point(q);
                        let ws: Vec<f32> =
                            ns.iter().map(|&p| 1.0 / (coarse.point(p).dist2(qp) + 1e-8)).collect();
                        let total: f32 = ws.iter().sum();
                        for (j, &p) in ns.iter().enumerate() {
                            let w = ws[j] / total;
                            let src = ctx.feats.row(p);
                            let dst = f.row_mut(q);
                            for (dv, &sv) in dst.iter_mut().zip(src) {
                                *dv += w * sv;
                            }
                        }
                    }
                }
                let mapping = vec![MappingOp::Knn { n_in: coarse.len(), n_queries: fine.len(), k }];
                (f, Some(maps), mapping)
            }
            State::Vox(_) => unreachable!("rejected above"),
        };
        let n_coarse = ctx.feats.rows();
        ctx.layers.push(LayerTrace {
            name: format!("{}.fp_interp", ctx.layer_idx),
            compute: ComputeKind::Interpolate,
            n_in: n_coarse,
            n_out: fine.len(),
            in_ch: c,
            out_ch: c,
            maps,
            mapping,
            aggregation: Aggregation::Sum,
            pool_group: None,
            fusable: false,
        });
        ctx.layer_idx += 1;

        ctx.feats = if self.mode == ExecMode::Full {
            interp.concat_cols(&skip_feats)
        } else {
            FeatureMatrix::zeros(fine.len(), c + skip_feats.cols())
        };
        ctx.state = State::Pts(fine);
        self.exec_mlp(ctx, dims, "fp_mlp", true);
        Ok(())
    }

    fn exec_edgeconv(&self, ctx: &mut Ctx, k: usize, dims: &[usize]) -> Result<(), ExecError> {
        let pts = match &ctx.state {
            State::Pts(p) => p.clone(),
            other => {
                return Err(ExecError::DomainMismatch {
                    layer: ctx.layer_idx,
                    op: "EdgeConv",
                    expected: "point-cloud",
                    found: other.kind(),
                })
            }
        };
        let n = pts.len();
        let c = ctx.feats.cols();
        let k = k.min(n.saturating_sub(1)).max(1);
        // DGCNN rebuilds the k-NN graph in *feature* space each layer. In
        // TraceOnly mode the graph is built on coordinates (identical
        // size and cost, different edges).
        let nbrs: Vec<Vec<usize>> = if self.mode == ExecMode::Full {
            feature_knn(&ctx.feats, k)
                .map_err(|_| ExecError::NonFiniteFeature { layer: ctx.layer_idx, op: "EdgeConv" })?
        } else {
            self.backend
                .k_nearest_neighbors(&pts, &pts, k + 1)
                .into_iter()
                .enumerate()
                .map(|(i, mut v)| {
                    v.retain(|&j| j != i);
                    v.truncate(k);
                    v
                })
                .collect()
        };
        let maps = golden::neighbors_to_maps(&nbrs);
        let mapping = vec![MappingOp::KnnFeature { n_in: n, n_queries: n, k, dim: c }];
        let rows = n * k;
        let in_ch = 2 * c;

        let mut cur = if self.mode == ExecMode::Full {
            let mut g = FeatureMatrix::zeros(rows, in_ch);
            for (i, ns) in nbrs.iter().enumerate() {
                for (j, &nb) in ns.iter().enumerate() {
                    let row = g.row_mut(i * k + j);
                    let fi = ctx.feats.row(i);
                    let fj = ctx.feats.row(nb);
                    row[..c].copy_from_slice(fi);
                    for (t, (a, b)) in fj.iter().zip(fi).enumerate() {
                        row[c + t] = a - b;
                    }
                }
                // Pad short neighbor lists by self-edges (zeros already).
            }
            g
        } else {
            FeatureMatrix::zeros(rows, in_ch)
        };

        let n_dims = dims.len();
        for (i, &d) in dims.iter().enumerate() {
            let ic = cur.cols();
            if self.mode == ExecMode::Full {
                let w = self.weights.matrix(ctx.layer_idx, 0, ic, d);
                cur = cur.matmul(&w);
                cur.relu_in_place();
            } else {
                cur = FeatureMatrix::zeros(rows, d);
            }
            let last = i + 1 == n_dims;
            ctx.layers.push(LayerTrace {
                name: format!("{}.edge_mlp[{}]", ctx.layer_idx, i),
                compute: if i == 0 { ComputeKind::Grouped } else { ComputeKind::Dense },
                n_in: if i == 0 { n } else { rows },
                n_out: rows,
                in_ch: ic,
                out_ch: d,
                maps: if i == 0 { Some(maps.clone()) } else { None },
                mapping: if i == 0 { mapping.clone() } else { vec![] },
                aggregation: if last { Aggregation::Max } else { Aggregation::None },
                pool_group: last.then_some(k),
                fusable: true,
            });
            ctx.layer_idx += 1;
        }

        // Max over neighbors.
        let pooled = if self.mode == ExecMode::Full {
            let oc = cur.cols();
            let mut out = FeatureMatrix::from_fn(n, oc, |_, _| f32::NEG_INFINITY);
            for i in 0..n {
                for j in 0..k {
                    out.scatter_max(i, &cur, i * k + j);
                }
            }
            out
        } else {
            FeatureMatrix::zeros(n, cur.cols())
        };
        ctx.state = State::Pts(pts);
        ctx.feats = pooled;
        Ok(())
    }
}

/// Initial per-point features: xyz in the first three channels (when they
/// fit), remaining channels filled with a deterministic pseudo-color.
fn input_features(points: &[Point3], in_ch: usize) -> FeatureMatrix {
    FeatureMatrix::from_fn(points.len(), in_ch, |r, c| {
        let p = points[r];
        match c {
            0 if in_ch >= 3 => p.x,
            1 if in_ch >= 3 => p.y,
            2 if in_ch >= 3 => p.z,
            _ => {
                // Pseudo-color derived from position; bounded [0, 1).
                let h = (p.x * 12.9898 + p.y * 78.233 + p.z * 37.719 + c as f32).sin() * 43758.547;
                h.fract().abs()
            }
        }
    })
}

/// Marker error: a feature-space distance came out NaN (the caller maps
/// it to [`ExecError::NonFiniteFeature`] with layer context).
struct NonFiniteDistance;

/// Brute-force k-NN over feature rows (excluding self).
///
/// Feature space is high-dimensional, so the 3-D grid index does not
/// apply; the scan ranks with the same total-order [`dist_key`] as the
/// spatial backends, which makes the sort immune to non-finite values —
/// a NaN distance (NaN or overflowed features) is detected up front and
/// surfaced as an error instead of panicking mid-sort.
fn feature_knn(feats: &FeatureMatrix, k: usize) -> Result<Vec<Vec<usize>>, NonFiniteDistance> {
    let n = feats.rows();
    (0..n)
        .map(|i| {
            let fi = feats.row(i);
            let mut keys: Vec<u128> = Vec::with_capacity(n.saturating_sub(1));
            for j in (0..n).filter(|&j| j != i) {
                let fj = feats.row(j);
                let dist: f32 = fi.iter().zip(fj).map(|(a, b)| (a - b) * (a - b)).sum();
                if dist.is_nan() {
                    return Err(NonFiniteDistance);
                }
                keys.push(dist_key(dist, j as u32));
            }
            keys.sort_unstable();
            keys.truncate(k);
            Ok(keys.into_iter().map(|key| (key & 0xFFFF_FFFF) as usize).collect())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use pointacc_geom::Point3;

    fn cloud(n: usize) -> PointSet {
        (0..n)
            .map(|i| {
                let t = i as f32;
                Point3::new((t * 0.37).sin() * 2.0, (t * 0.61).cos() * 2.0, (t * 0.13).sin() * 1.0)
            })
            .collect()
    }

    #[test]
    fn pointnet_runs_and_classifies() {
        let net = zoo::pointnet();
        let out = Executor::new(ExecMode::Full, 1).run(&net, &cloud(128));
        assert_eq!(out.features.rows(), 1);
        assert_eq!(out.features.cols(), 40);
        assert!(out.trace.total_macs() > 0);
    }

    #[test]
    fn trace_only_matches_full_trace_shape() {
        let net = zoo::pointnet_pp_classification();
        let pts = cloud(256);
        let full = Executor::new(ExecMode::Full, 1).run(&net, &pts);
        let fast = Executor::new(ExecMode::TraceOnly, 1).run(&net, &pts);
        assert_eq!(full.trace.layers.len(), fast.trace.layers.len());
        assert_eq!(full.trace.total_macs(), fast.trace.total_macs());
        for (a, b) in full.trace.layers.iter().zip(&fast.trace.layers) {
            assert_eq!(a.n_out, b.n_out, "{}", a.name);
            assert_eq!(a.out_ch, b.out_ch, "{}", a.name);
        }
    }

    #[test]
    fn minkunet_trace_has_sparse_layers() {
        let net = zoo::mini_minkunet();
        let out = Executor::new(ExecMode::Full, 3).run(&net, &cloud(400));
        let sparse =
            out.trace.layers.iter().filter(|l| l.compute == ComputeKind::SparseConv).count();
        assert!(sparse >= 4, "expected sparse conv layers, got {sparse}");
        // Decoder restores the input-resolution cloud.
        let last_sparse =
            out.trace.layers.iter().rev().find(|l| l.compute == ComputeKind::SparseConv).unwrap();
        let first_sparse =
            out.trace.layers.iter().find(|l| l.compute == ComputeKind::SparseConv).unwrap();
        assert_eq!(last_sparse.n_out, first_sparse.n_in);
    }

    #[test]
    fn executor_is_deterministic() {
        let net = zoo::dgcnn();
        let pts = cloud(64);
        let a = Executor::new(ExecMode::Full, 9).run(&net, &pts);
        let b = Executor::new(ExecMode::Full, 9).run(&net, &pts);
        assert_eq!(a.features, b.features);
    }

    #[test]
    fn seg_network_outputs_per_point() {
        let net = zoo::pointnet_pp_segmentation();
        let pts = cloud(512);
        let out = Executor::new(ExecMode::Full, 2).run(&net, &pts);
        assert_eq!(out.features.rows(), 512);
        assert_eq!(out.features.cols(), 13);
    }

    #[test]
    #[should_panic(expected = "empty point cloud")]
    fn empty_input_rejected() {
        let net = zoo::pointnet();
        let _ = Executor::new(ExecMode::Full, 1).run(&net, &PointSet::new());
    }

    #[test]
    fn try_run_surfaces_empty_input() {
        let net = zoo::pointnet();
        let err = Executor::new(ExecMode::Full, 1).try_run(&net, &PointSet::new());
        assert_eq!(err.unwrap_err(), ExecError::EmptyInput);
    }

    #[test]
    fn voxel_network_without_voxel_size_is_an_error() {
        let net = Network::new("no-voxel", Domain::VoxelBased, 4).push(Op::SparseConv {
            out_ch: 8,
            kernel_size: 3,
            stride: 1,
        });
        let err = Executor::new(ExecMode::Full, 1).try_run(&net, &cloud(16)).unwrap_err();
        assert_eq!(err, ExecError::MissingVoxelSize { network: "no-voxel".into() });
    }

    #[test]
    fn non_positive_voxel_size_is_an_error() {
        for bad in [0.0f32, -0.5, f32::NAN, f32::INFINITY] {
            let net = Network::new("bad-voxel", Domain::VoxelBased, 4).with_voxel_size(bad);
            let err = Executor::new(ExecMode::Full, 1).try_run(&net, &cloud(16)).unwrap_err();
            assert!(
                matches!(err, ExecError::InvalidVoxelSize { .. }),
                "voxel size {bad} gave {err:?}"
            );
        }
    }

    #[test]
    fn sparse_conv_on_point_cloud_is_domain_mismatch() {
        let net = Network::new("mixed", Domain::PointBased, 3).push(Op::SparseConv {
            out_ch: 8,
            kernel_size: 3,
            stride: 1,
        });
        let err = Executor::new(ExecMode::Full, 1).try_run(&net, &cloud(16)).unwrap_err();
        assert_eq!(
            err,
            ExecError::DomainMismatch {
                layer: 0,
                op: "SparseConv",
                expected: "voxelized",
                found: "point-cloud",
            }
        );
    }

    #[test]
    fn unbalanced_decoder_is_missing_skip() {
        // A SparseConvTr with no stride-2 SparseConv before it: the skip
        // stack underflows, which must be a typed error, not an abort.
        let net = Network::new("unbalanced", Domain::VoxelBased, 4)
            .with_voxel_size(0.1)
            .push(Op::SparseConv { out_ch: 8, kernel_size: 3, stride: 1 })
            .push(Op::SparseConvTr { out_ch: 8, kernel_size: 2 });
        let err = Executor::new(ExecMode::Full, 1).try_run(&net, &cloud(64)).unwrap_err();
        assert_eq!(err, ExecError::MissingSkip { layer: 1, op: "SparseConvTr" });
    }

    #[test]
    fn fp_without_sa_is_missing_skip() {
        let net = Network::new("fp-only", Domain::PointBased, 3)
            .push(Op::FeaturePropagation { dims: vec![16] });
        let err = Executor::new(ExecMode::TraceOnly, 1).try_run(&net, &cloud(32)).unwrap_err();
        assert_eq!(err, ExecError::MissingSkip { layer: 0, op: "FeaturePropagation" });
    }

    #[test]
    fn head_before_pool_is_domain_mismatch() {
        let net = Network::new("headless", Domain::PointBased, 3).push(Op::Head { dims: vec![8] });
        let err = Executor::new(ExecMode::Full, 1).try_run(&net, &cloud(16)).unwrap_err();
        assert_eq!(
            err,
            ExecError::DomainMismatch {
                layer: 0,
                op: "Head",
                expected: "global",
                found: "point-cloud",
            }
        );
    }

    #[test]
    fn nan_features_surface_as_typed_error_not_panic() {
        // A NaN coordinate propagates into the input features, so
        // DGCNN's feature-space k-NN computes NaN distances. Before the
        // total-order ranking key this panicked inside the sort
        // comparator ("finite distances"); now it is a typed error.
        let net = Network::new("edge-nan", Domain::PointBased, 3)
            .push(Op::EdgeConv { k: 2, dims: vec![8] });
        let mut pts: Vec<Point3> = cloud(8).points().to_vec();
        pts[3] = Point3::new(f32::NAN, 0.0, 0.0);
        let err = Executor::new(ExecMode::Full, 1)
            .try_run(&net, &PointSet::from_points(pts))
            .unwrap_err();
        assert!(matches!(err, ExecError::NonFiniteFeature { op: "EdgeConv", .. }), "{err:?}");
        assert!(err.to_string().contains("NaN"), "{err}");
    }

    #[test]
    fn infinite_features_still_rank_totally() {
        // +inf distances (overflowed but not NaN features) are orderable
        // under the total-order key: execution completes.
        let net = Network::new("edge-inf", Domain::PointBased, 3)
            .push(Op::EdgeConv { k: 2, dims: vec![8] });
        let mut pts: Vec<Point3> = cloud(8).points().to_vec();
        pts[5] = Point3::new(1e38, 1e38, 0.0); // dist² overflows to +inf
        let out = Executor::new(ExecMode::Full, 1).try_run(&net, &PointSet::from_points(pts));
        assert!(out.is_ok(), "{:?}", out.err());
    }

    #[test]
    fn run_panics_with_the_typed_message() {
        let net = Network::new("unbalanced", Domain::VoxelBased, 4)
            .with_voxel_size(0.1)
            .push(Op::SparseConvTr { out_ch: 8, kernel_size: 2 });
        let result = std::panic::catch_unwind(|| {
            let _ = Executor::new(ExecMode::Full, 1).run(&net, &cloud(32));
        });
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("panic carries the error message");
        assert!(msg.contains("SparseConvTr"), "{msg}");
        assert!(msg.contains("skip stack is empty"), "{msg}");
    }
}
